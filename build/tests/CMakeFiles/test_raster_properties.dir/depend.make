# Empty dependencies file for test_raster_properties.
# This may be replaced when dependencies are built.
