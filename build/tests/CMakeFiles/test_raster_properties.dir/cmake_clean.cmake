file(REMOVE_RECURSE
  "CMakeFiles/test_raster_properties.dir/test_raster_properties.cpp.o"
  "CMakeFiles/test_raster_properties.dir/test_raster_properties.cpp.o.d"
  "test_raster_properties"
  "test_raster_properties.pdb"
  "test_raster_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raster_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
