file(REMOVE_RECURSE
  "CMakeFiles/test_timing_model.dir/test_timing_model.cpp.o"
  "CMakeFiles/test_timing_model.dir/test_timing_model.cpp.o.d"
  "test_timing_model"
  "test_timing_model.pdb"
  "test_timing_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
