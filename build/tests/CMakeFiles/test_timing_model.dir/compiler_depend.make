# Empty compiler generated dependencies file for test_timing_model.
# This may be replaced when dependencies are built.
