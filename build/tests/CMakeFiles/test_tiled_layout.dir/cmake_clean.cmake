file(REMOVE_RECURSE
  "CMakeFiles/test_tiled_layout.dir/test_tiled_layout.cpp.o"
  "CMakeFiles/test_tiled_layout.dir/test_tiled_layout.cpp.o.d"
  "test_tiled_layout"
  "test_tiled_layout.pdb"
  "test_tiled_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiled_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
