file(REMOVE_RECURSE
  "CMakeFiles/test_l1_cache.dir/test_l1_cache.cpp.o"
  "CMakeFiles/test_l1_cache.dir/test_l1_cache.cpp.o.d"
  "test_l1_cache"
  "test_l1_cache.pdb"
  "test_l1_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
