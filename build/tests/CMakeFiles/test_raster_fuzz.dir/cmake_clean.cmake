file(REMOVE_RECURSE
  "CMakeFiles/test_raster_fuzz.dir/test_raster_fuzz.cpp.o"
  "CMakeFiles/test_raster_fuzz.dir/test_raster_fuzz.cpp.o.d"
  "test_raster_fuzz"
  "test_raster_fuzz.pdb"
  "test_raster_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raster_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
