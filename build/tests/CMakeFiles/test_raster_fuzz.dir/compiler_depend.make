# Empty compiler generated dependencies file for test_raster_fuzz.
# This may be replaced when dependencies are built.
