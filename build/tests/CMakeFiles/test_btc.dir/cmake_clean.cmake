file(REMOVE_RECURSE
  "CMakeFiles/test_btc.dir/test_btc.cpp.o"
  "CMakeFiles/test_btc.dir/test_btc.cpp.o.d"
  "test_btc"
  "test_btc.pdb"
  "test_btc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
