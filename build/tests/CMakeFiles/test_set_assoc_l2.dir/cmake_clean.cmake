file(REMOVE_RECURSE
  "CMakeFiles/test_set_assoc_l2.dir/test_set_assoc_l2.cpp.o"
  "CMakeFiles/test_set_assoc_l2.dir/test_set_assoc_l2.cpp.o.d"
  "test_set_assoc_l2"
  "test_set_assoc_l2.pdb"
  "test_set_assoc_l2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_assoc_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
