# Empty dependencies file for test_l2_golden_model.
# This may be replaced when dependencies are built.
