
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/test_trace_io.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/test_trace_io.dir/test_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mltc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mltc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mltc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mltc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/mltc_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/mltc_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/texture/CMakeFiles/mltc_texture.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mltc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mltc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mltc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
