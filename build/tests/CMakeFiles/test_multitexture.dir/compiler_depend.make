# Empty compiler generated dependencies file for test_multitexture.
# This may be replaced when dependencies are built.
