file(REMOVE_RECURSE
  "CMakeFiles/test_multitexture.dir/test_multitexture.cpp.o"
  "CMakeFiles/test_multitexture.dir/test_multitexture.cpp.o.d"
  "test_multitexture"
  "test_multitexture.pdb"
  "test_multitexture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multitexture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
