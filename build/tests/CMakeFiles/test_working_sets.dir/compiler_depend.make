# Empty compiler generated dependencies file for test_working_sets.
# This may be replaced when dependencies are built.
