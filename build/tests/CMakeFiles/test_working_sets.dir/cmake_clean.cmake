file(REMOVE_RECURSE
  "CMakeFiles/test_working_sets.dir/test_working_sets.cpp.o"
  "CMakeFiles/test_working_sets.dir/test_working_sets.cpp.o.d"
  "test_working_sets"
  "test_working_sets.pdb"
  "test_working_sets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_working_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
