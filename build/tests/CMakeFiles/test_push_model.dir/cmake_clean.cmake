file(REMOVE_RECURSE
  "CMakeFiles/test_push_model.dir/test_push_model.cpp.o"
  "CMakeFiles/test_push_model.dir/test_push_model.cpp.o.d"
  "test_push_model"
  "test_push_model.pdb"
  "test_push_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_push_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
