# Empty dependencies file for test_push_model.
# This may be replaced when dependencies are built.
