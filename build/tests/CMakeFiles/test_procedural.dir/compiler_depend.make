# Empty compiler generated dependencies file for test_procedural.
# This may be replaced when dependencies are built.
