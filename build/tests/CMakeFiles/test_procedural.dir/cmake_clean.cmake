file(REMOVE_RECURSE
  "CMakeFiles/test_procedural.dir/test_procedural.cpp.o"
  "CMakeFiles/test_procedural.dir/test_procedural.cpp.o.d"
  "test_procedural"
  "test_procedural.pdb"
  "test_procedural[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procedural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
