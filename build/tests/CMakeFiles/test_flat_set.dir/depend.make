# Empty dependencies file for test_flat_set.
# This may be replaced when dependencies are built.
