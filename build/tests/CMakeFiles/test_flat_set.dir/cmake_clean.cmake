file(REMOVE_RECURSE
  "CMakeFiles/test_flat_set.dir/test_flat_set.cpp.o"
  "CMakeFiles/test_flat_set.dir/test_flat_set.cpp.o.d"
  "test_flat_set"
  "test_flat_set.pdb"
  "test_flat_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
