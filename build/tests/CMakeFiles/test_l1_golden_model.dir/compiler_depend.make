# Empty compiler generated dependencies file for test_l1_golden_model.
# This may be replaced when dependencies are built.
