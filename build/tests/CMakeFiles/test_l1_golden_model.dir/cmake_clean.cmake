file(REMOVE_RECURSE
  "CMakeFiles/test_l1_golden_model.dir/test_l1_golden_model.cpp.o"
  "CMakeFiles/test_l1_golden_model.dir/test_l1_golden_model.cpp.o.d"
  "test_l1_golden_model"
  "test_l1_golden_model.pdb"
  "test_l1_golden_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1_golden_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
