file(REMOVE_RECURSE
  "CMakeFiles/test_texture_manager.dir/test_texture_manager.cpp.o"
  "CMakeFiles/test_texture_manager.dir/test_texture_manager.cpp.o.d"
  "test_texture_manager"
  "test_texture_manager.pdb"
  "test_texture_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_texture_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
