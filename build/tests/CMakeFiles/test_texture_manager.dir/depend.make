# Empty dependencies file for test_texture_manager.
# This may be replaced when dependencies are built.
