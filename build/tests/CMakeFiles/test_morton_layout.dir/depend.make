# Empty dependencies file for test_morton_layout.
# This may be replaced when dependencies are built.
