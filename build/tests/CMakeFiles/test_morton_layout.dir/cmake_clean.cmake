file(REMOVE_RECURSE
  "CMakeFiles/test_morton_layout.dir/test_morton_layout.cpp.o"
  "CMakeFiles/test_morton_layout.dir/test_morton_layout.cpp.o.d"
  "test_morton_layout"
  "test_morton_layout.pdb"
  "test_morton_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morton_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
