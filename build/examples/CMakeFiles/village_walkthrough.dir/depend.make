# Empty dependencies file for village_walkthrough.
# This may be replaced when dependencies are built.
