file(REMOVE_RECURSE
  "CMakeFiles/village_walkthrough.dir/village_walkthrough.cpp.o"
  "CMakeFiles/village_walkthrough.dir/village_walkthrough.cpp.o.d"
  "village_walkthrough"
  "village_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/village_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
