file(REMOVE_RECURSE
  "CMakeFiles/report.dir/report.cpp.o"
  "CMakeFiles/report.dir/report.cpp.o.d"
  "report"
  "report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
