file(REMOVE_RECURSE
  "CMakeFiles/city_flythrough.dir/city_flythrough.cpp.o"
  "CMakeFiles/city_flythrough.dir/city_flythrough.cpp.o.d"
  "city_flythrough"
  "city_flythrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_flythrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
