# Empty compiler generated dependencies file for city_flythrough.
# This may be replaced when dependencies are built.
