# Empty dependencies file for mltc_geom.
# This may be replaced when dependencies are built.
