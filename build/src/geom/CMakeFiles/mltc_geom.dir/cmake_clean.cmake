file(REMOVE_RECURSE
  "CMakeFiles/mltc_geom.dir/frustum.cpp.o"
  "CMakeFiles/mltc_geom.dir/frustum.cpp.o.d"
  "CMakeFiles/mltc_geom.dir/mat4.cpp.o"
  "CMakeFiles/mltc_geom.dir/mat4.cpp.o.d"
  "libmltc_geom.a"
  "libmltc_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
