file(REMOVE_RECURSE
  "libmltc_geom.a"
)
