
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/city.cpp" "src/workload/CMakeFiles/mltc_workload.dir/city.cpp.o" "gcc" "src/workload/CMakeFiles/mltc_workload.dir/city.cpp.o.d"
  "/root/repo/src/workload/registry.cpp" "src/workload/CMakeFiles/mltc_workload.dir/registry.cpp.o" "gcc" "src/workload/CMakeFiles/mltc_workload.dir/registry.cpp.o.d"
  "/root/repo/src/workload/terrain.cpp" "src/workload/CMakeFiles/mltc_workload.dir/terrain.cpp.o" "gcc" "src/workload/CMakeFiles/mltc_workload.dir/terrain.cpp.o.d"
  "/root/repo/src/workload/village.cpp" "src/workload/CMakeFiles/mltc_workload.dir/village.cpp.o" "gcc" "src/workload/CMakeFiles/mltc_workload.dir/village.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/mltc_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/mltc_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scene/CMakeFiles/mltc_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/texture/CMakeFiles/mltc_texture.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mltc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mltc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
