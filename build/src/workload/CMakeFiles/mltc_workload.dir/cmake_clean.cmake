file(REMOVE_RECURSE
  "CMakeFiles/mltc_workload.dir/city.cpp.o"
  "CMakeFiles/mltc_workload.dir/city.cpp.o.d"
  "CMakeFiles/mltc_workload.dir/registry.cpp.o"
  "CMakeFiles/mltc_workload.dir/registry.cpp.o.d"
  "CMakeFiles/mltc_workload.dir/terrain.cpp.o"
  "CMakeFiles/mltc_workload.dir/terrain.cpp.o.d"
  "CMakeFiles/mltc_workload.dir/village.cpp.o"
  "CMakeFiles/mltc_workload.dir/village.cpp.o.d"
  "CMakeFiles/mltc_workload.dir/workload.cpp.o"
  "CMakeFiles/mltc_workload.dir/workload.cpp.o.d"
  "libmltc_workload.a"
  "libmltc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
