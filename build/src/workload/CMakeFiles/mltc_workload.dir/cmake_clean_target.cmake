file(REMOVE_RECURSE
  "libmltc_workload.a"
)
