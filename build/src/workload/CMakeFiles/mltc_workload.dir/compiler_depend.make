# Empty compiler generated dependencies file for mltc_workload.
# This may be replaced when dependencies are built.
