# Empty compiler generated dependencies file for mltc_sim.
# This may be replaced when dependencies are built.
