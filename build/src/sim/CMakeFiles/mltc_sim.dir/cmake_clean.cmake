file(REMOVE_RECURSE
  "CMakeFiles/mltc_sim.dir/animation_driver.cpp.o"
  "CMakeFiles/mltc_sim.dir/animation_driver.cpp.o.d"
  "CMakeFiles/mltc_sim.dir/multi_config_runner.cpp.o"
  "CMakeFiles/mltc_sim.dir/multi_config_runner.cpp.o.d"
  "libmltc_sim.a"
  "libmltc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
