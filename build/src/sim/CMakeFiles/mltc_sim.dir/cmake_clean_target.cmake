file(REMOVE_RECURSE
  "libmltc_sim.a"
)
