
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/animation_driver.cpp" "src/sim/CMakeFiles/mltc_sim.dir/animation_driver.cpp.o" "gcc" "src/sim/CMakeFiles/mltc_sim.dir/animation_driver.cpp.o.d"
  "/root/repo/src/sim/multi_config_runner.cpp" "src/sim/CMakeFiles/mltc_sim.dir/multi_config_runner.cpp.o" "gcc" "src/sim/CMakeFiles/mltc_sim.dir/multi_config_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mltc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/mltc_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mltc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mltc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mltc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/mltc_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/texture/CMakeFiles/mltc_texture.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mltc_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
