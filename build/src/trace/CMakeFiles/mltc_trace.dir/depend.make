# Empty dependencies file for mltc_trace.
# This may be replaced when dependencies are built.
