file(REMOVE_RECURSE
  "libmltc_trace.a"
)
