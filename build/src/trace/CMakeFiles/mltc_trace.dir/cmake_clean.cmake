file(REMOVE_RECURSE
  "CMakeFiles/mltc_trace.dir/trace_io.cpp.o"
  "CMakeFiles/mltc_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/mltc_trace.dir/working_set_collector.cpp.o"
  "CMakeFiles/mltc_trace.dir/working_set_collector.cpp.o.d"
  "libmltc_trace.a"
  "libmltc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
