file(REMOVE_RECURSE
  "CMakeFiles/mltc_raster.dir/framebuffer.cpp.o"
  "CMakeFiles/mltc_raster.dir/framebuffer.cpp.o.d"
  "CMakeFiles/mltc_raster.dir/rasterizer.cpp.o"
  "CMakeFiles/mltc_raster.dir/rasterizer.cpp.o.d"
  "CMakeFiles/mltc_raster.dir/sampler.cpp.o"
  "CMakeFiles/mltc_raster.dir/sampler.cpp.o.d"
  "libmltc_raster.a"
  "libmltc_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
