# Empty dependencies file for mltc_raster.
# This may be replaced when dependencies are built.
