file(REMOVE_RECURSE
  "libmltc_raster.a"
)
