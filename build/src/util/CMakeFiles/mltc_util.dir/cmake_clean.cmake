file(REMOVE_RECURSE
  "CMakeFiles/mltc_util.dir/cli.cpp.o"
  "CMakeFiles/mltc_util.dir/cli.cpp.o.d"
  "CMakeFiles/mltc_util.dir/csv.cpp.o"
  "CMakeFiles/mltc_util.dir/csv.cpp.o.d"
  "CMakeFiles/mltc_util.dir/csv_reader.cpp.o"
  "CMakeFiles/mltc_util.dir/csv_reader.cpp.o.d"
  "CMakeFiles/mltc_util.dir/env.cpp.o"
  "CMakeFiles/mltc_util.dir/env.cpp.o.d"
  "CMakeFiles/mltc_util.dir/log.cpp.o"
  "CMakeFiles/mltc_util.dir/log.cpp.o.d"
  "CMakeFiles/mltc_util.dir/ppm.cpp.o"
  "CMakeFiles/mltc_util.dir/ppm.cpp.o.d"
  "CMakeFiles/mltc_util.dir/table.cpp.o"
  "CMakeFiles/mltc_util.dir/table.cpp.o.d"
  "libmltc_util.a"
  "libmltc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
