# Empty compiler generated dependencies file for mltc_util.
# This may be replaced when dependencies are built.
