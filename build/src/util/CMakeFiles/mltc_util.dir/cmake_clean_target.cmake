file(REMOVE_RECURSE
  "libmltc_util.a"
)
