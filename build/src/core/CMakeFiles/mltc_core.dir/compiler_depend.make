# Empty compiler generated dependencies file for mltc_core.
# This may be replaced when dependencies are built.
