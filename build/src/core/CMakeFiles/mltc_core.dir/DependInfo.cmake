
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_sim.cpp" "src/core/CMakeFiles/mltc_core.dir/cache_sim.cpp.o" "gcc" "src/core/CMakeFiles/mltc_core.dir/cache_sim.cpp.o.d"
  "/root/repo/src/core/l1_cache.cpp" "src/core/CMakeFiles/mltc_core.dir/l1_cache.cpp.o" "gcc" "src/core/CMakeFiles/mltc_core.dir/l1_cache.cpp.o.d"
  "/root/repo/src/core/l2_cache.cpp" "src/core/CMakeFiles/mltc_core.dir/l2_cache.cpp.o" "gcc" "src/core/CMakeFiles/mltc_core.dir/l2_cache.cpp.o.d"
  "/root/repo/src/core/push_model.cpp" "src/core/CMakeFiles/mltc_core.dir/push_model.cpp.o" "gcc" "src/core/CMakeFiles/mltc_core.dir/push_model.cpp.o.d"
  "/root/repo/src/core/replacement.cpp" "src/core/CMakeFiles/mltc_core.dir/replacement.cpp.o" "gcc" "src/core/CMakeFiles/mltc_core.dir/replacement.cpp.o.d"
  "/root/repo/src/core/set_assoc_l2.cpp" "src/core/CMakeFiles/mltc_core.dir/set_assoc_l2.cpp.o" "gcc" "src/core/CMakeFiles/mltc_core.dir/set_assoc_l2.cpp.o.d"
  "/root/repo/src/core/texture_tlb.cpp" "src/core/CMakeFiles/mltc_core.dir/texture_tlb.cpp.o" "gcc" "src/core/CMakeFiles/mltc_core.dir/texture_tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/texture/CMakeFiles/mltc_texture.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/mltc_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mltc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/mltc_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mltc_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
