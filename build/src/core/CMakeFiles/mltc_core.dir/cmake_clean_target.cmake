file(REMOVE_RECURSE
  "libmltc_core.a"
)
