file(REMOVE_RECURSE
  "CMakeFiles/mltc_core.dir/cache_sim.cpp.o"
  "CMakeFiles/mltc_core.dir/cache_sim.cpp.o.d"
  "CMakeFiles/mltc_core.dir/l1_cache.cpp.o"
  "CMakeFiles/mltc_core.dir/l1_cache.cpp.o.d"
  "CMakeFiles/mltc_core.dir/l2_cache.cpp.o"
  "CMakeFiles/mltc_core.dir/l2_cache.cpp.o.d"
  "CMakeFiles/mltc_core.dir/push_model.cpp.o"
  "CMakeFiles/mltc_core.dir/push_model.cpp.o.d"
  "CMakeFiles/mltc_core.dir/replacement.cpp.o"
  "CMakeFiles/mltc_core.dir/replacement.cpp.o.d"
  "CMakeFiles/mltc_core.dir/set_assoc_l2.cpp.o"
  "CMakeFiles/mltc_core.dir/set_assoc_l2.cpp.o.d"
  "CMakeFiles/mltc_core.dir/texture_tlb.cpp.o"
  "CMakeFiles/mltc_core.dir/texture_tlb.cpp.o.d"
  "libmltc_core.a"
  "libmltc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
