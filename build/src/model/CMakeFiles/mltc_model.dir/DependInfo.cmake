
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/performance_model.cpp" "src/model/CMakeFiles/mltc_model.dir/performance_model.cpp.o" "gcc" "src/model/CMakeFiles/mltc_model.dir/performance_model.cpp.o.d"
  "/root/repo/src/model/structure_size_model.cpp" "src/model/CMakeFiles/mltc_model.dir/structure_size_model.cpp.o" "gcc" "src/model/CMakeFiles/mltc_model.dir/structure_size_model.cpp.o.d"
  "/root/repo/src/model/timing_model.cpp" "src/model/CMakeFiles/mltc_model.dir/timing_model.cpp.o" "gcc" "src/model/CMakeFiles/mltc_model.dir/timing_model.cpp.o.d"
  "/root/repo/src/model/working_set_model.cpp" "src/model/CMakeFiles/mltc_model.dir/working_set_model.cpp.o" "gcc" "src/model/CMakeFiles/mltc_model.dir/working_set_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mltc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mltc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/mltc_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/mltc_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/texture/CMakeFiles/mltc_texture.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mltc_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
