# Empty compiler generated dependencies file for mltc_model.
# This may be replaced when dependencies are built.
