file(REMOVE_RECURSE
  "libmltc_model.a"
)
