file(REMOVE_RECURSE
  "CMakeFiles/mltc_model.dir/performance_model.cpp.o"
  "CMakeFiles/mltc_model.dir/performance_model.cpp.o.d"
  "CMakeFiles/mltc_model.dir/structure_size_model.cpp.o"
  "CMakeFiles/mltc_model.dir/structure_size_model.cpp.o.d"
  "CMakeFiles/mltc_model.dir/timing_model.cpp.o"
  "CMakeFiles/mltc_model.dir/timing_model.cpp.o.d"
  "CMakeFiles/mltc_model.dir/working_set_model.cpp.o"
  "CMakeFiles/mltc_model.dir/working_set_model.cpp.o.d"
  "libmltc_model.a"
  "libmltc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
