file(REMOVE_RECURSE
  "libmltc_texture.a"
)
