file(REMOVE_RECURSE
  "CMakeFiles/mltc_texture.dir/btc.cpp.o"
  "CMakeFiles/mltc_texture.dir/btc.cpp.o.d"
  "CMakeFiles/mltc_texture.dir/image.cpp.o"
  "CMakeFiles/mltc_texture.dir/image.cpp.o.d"
  "CMakeFiles/mltc_texture.dir/mip_pyramid.cpp.o"
  "CMakeFiles/mltc_texture.dir/mip_pyramid.cpp.o.d"
  "CMakeFiles/mltc_texture.dir/procedural.cpp.o"
  "CMakeFiles/mltc_texture.dir/procedural.cpp.o.d"
  "CMakeFiles/mltc_texture.dir/texture_manager.cpp.o"
  "CMakeFiles/mltc_texture.dir/texture_manager.cpp.o.d"
  "CMakeFiles/mltc_texture.dir/tiled_layout.cpp.o"
  "CMakeFiles/mltc_texture.dir/tiled_layout.cpp.o.d"
  "libmltc_texture.a"
  "libmltc_texture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
