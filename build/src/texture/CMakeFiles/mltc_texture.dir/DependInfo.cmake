
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/texture/btc.cpp" "src/texture/CMakeFiles/mltc_texture.dir/btc.cpp.o" "gcc" "src/texture/CMakeFiles/mltc_texture.dir/btc.cpp.o.d"
  "/root/repo/src/texture/image.cpp" "src/texture/CMakeFiles/mltc_texture.dir/image.cpp.o" "gcc" "src/texture/CMakeFiles/mltc_texture.dir/image.cpp.o.d"
  "/root/repo/src/texture/mip_pyramid.cpp" "src/texture/CMakeFiles/mltc_texture.dir/mip_pyramid.cpp.o" "gcc" "src/texture/CMakeFiles/mltc_texture.dir/mip_pyramid.cpp.o.d"
  "/root/repo/src/texture/procedural.cpp" "src/texture/CMakeFiles/mltc_texture.dir/procedural.cpp.o" "gcc" "src/texture/CMakeFiles/mltc_texture.dir/procedural.cpp.o.d"
  "/root/repo/src/texture/texture_manager.cpp" "src/texture/CMakeFiles/mltc_texture.dir/texture_manager.cpp.o" "gcc" "src/texture/CMakeFiles/mltc_texture.dir/texture_manager.cpp.o.d"
  "/root/repo/src/texture/tiled_layout.cpp" "src/texture/CMakeFiles/mltc_texture.dir/tiled_layout.cpp.o" "gcc" "src/texture/CMakeFiles/mltc_texture.dir/tiled_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mltc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mltc_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
