# Empty compiler generated dependencies file for mltc_texture.
# This may be replaced when dependencies are built.
