file(REMOVE_RECURSE
  "libmltc_scene.a"
)
