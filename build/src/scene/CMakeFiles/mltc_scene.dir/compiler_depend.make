# Empty compiler generated dependencies file for mltc_scene.
# This may be replaced when dependencies are built.
