file(REMOVE_RECURSE
  "CMakeFiles/mltc_scene.dir/camera.cpp.o"
  "CMakeFiles/mltc_scene.dir/camera.cpp.o.d"
  "CMakeFiles/mltc_scene.dir/camera_path.cpp.o"
  "CMakeFiles/mltc_scene.dir/camera_path.cpp.o.d"
  "CMakeFiles/mltc_scene.dir/mesh.cpp.o"
  "CMakeFiles/mltc_scene.dir/mesh.cpp.o.d"
  "CMakeFiles/mltc_scene.dir/scene.cpp.o"
  "CMakeFiles/mltc_scene.dir/scene.cpp.o.d"
  "libmltc_scene.a"
  "libmltc_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltc_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
