file(REMOVE_RECURSE
  "CMakeFiles/ext_timing_model.dir/ext_timing_model.cpp.o"
  "CMakeFiles/ext_timing_model.dir/ext_timing_model.cpp.o.d"
  "ext_timing_model"
  "ext_timing_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_timing_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
