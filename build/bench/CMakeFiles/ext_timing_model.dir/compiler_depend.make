# Empty compiler generated dependencies file for ext_timing_model.
# This may be replaced when dependencies are built.
