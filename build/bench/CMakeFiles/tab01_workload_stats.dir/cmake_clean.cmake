file(REMOVE_RECURSE
  "CMakeFiles/tab01_workload_stats.dir/tab01_workload_stats.cpp.o"
  "CMakeFiles/tab01_workload_stats.dir/tab01_workload_stats.cpp.o.d"
  "tab01_workload_stats"
  "tab01_workload_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
