file(REMOVE_RECURSE
  "CMakeFiles/abl_zbuffer_prepass.dir/abl_zbuffer_prepass.cpp.o"
  "CMakeFiles/abl_zbuffer_prepass.dir/abl_zbuffer_prepass.cpp.o.d"
  "abl_zbuffer_prepass"
  "abl_zbuffer_prepass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_zbuffer_prepass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
