# Empty dependencies file for abl_zbuffer_prepass.
# This may be replaced when dependencies are built.
