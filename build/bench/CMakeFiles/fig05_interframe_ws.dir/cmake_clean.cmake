file(REMOVE_RECURSE
  "CMakeFiles/fig05_interframe_ws.dir/fig05_interframe_ws.cpp.o"
  "CMakeFiles/fig05_interframe_ws.dir/fig05_interframe_ws.cpp.o.d"
  "fig05_interframe_ws"
  "fig05_interframe_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_interframe_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
