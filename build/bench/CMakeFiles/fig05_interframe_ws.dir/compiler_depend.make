# Empty compiler generated dependencies file for fig05_interframe_ws.
# This may be replaced when dependencies are built.
