file(REMOVE_RECURSE
  "CMakeFiles/abl_l2_tilesize.dir/abl_l2_tilesize.cpp.o"
  "CMakeFiles/abl_l2_tilesize.dir/abl_l2_tilesize.cpp.o.d"
  "abl_l2_tilesize"
  "abl_l2_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_l2_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
