# Empty compiler generated dependencies file for abl_l2_tilesize.
# This may be replaced when dependencies are built.
