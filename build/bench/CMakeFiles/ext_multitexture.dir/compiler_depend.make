# Empty compiler generated dependencies file for ext_multitexture.
# This may be replaced when dependencies are built.
