file(REMOVE_RECURSE
  "CMakeFiles/ext_multitexture.dir/ext_multitexture.cpp.o"
  "CMakeFiles/ext_multitexture.dir/ext_multitexture.cpp.o.d"
  "ext_multitexture"
  "ext_multitexture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multitexture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
