file(REMOVE_RECURSE
  "CMakeFiles/abl_l1_assoc.dir/abl_l1_assoc.cpp.o"
  "CMakeFiles/abl_l1_assoc.dir/abl_l1_assoc.cpp.o.d"
  "abl_l1_assoc"
  "abl_l1_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_l1_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
