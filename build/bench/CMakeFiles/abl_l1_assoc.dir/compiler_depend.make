# Empty compiler generated dependencies file for abl_l1_assoc.
# This may be replaced when dependencies are built.
