# Empty dependencies file for tab04_structure_sizes.
# This may be replaced when dependencies are built.
