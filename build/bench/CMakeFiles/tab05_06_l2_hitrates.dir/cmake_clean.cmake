file(REMOVE_RECURSE
  "CMakeFiles/tab05_06_l2_hitrates.dir/tab05_06_l2_hitrates.cpp.o"
  "CMakeFiles/tab05_06_l2_hitrates.dir/tab05_06_l2_hitrates.cpp.o.d"
  "tab05_06_l2_hitrates"
  "tab05_06_l2_hitrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_06_l2_hitrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
