# Empty compiler generated dependencies file for tab05_06_l2_hitrates.
# This may be replaced when dependencies are built.
