# Empty dependencies file for fig04_min_memory.
# This may be replaced when dependencies are built.
