file(REMOVE_RECURSE
  "CMakeFiles/fig04_min_memory.dir/fig04_min_memory.cpp.o"
  "CMakeFiles/fig04_min_memory.dir/fig04_min_memory.cpp.o.d"
  "fig04_min_memory"
  "fig04_min_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_min_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
