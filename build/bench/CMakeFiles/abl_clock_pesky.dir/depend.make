# Empty dependencies file for abl_clock_pesky.
# This may be replaced when dependencies are built.
