file(REMOVE_RECURSE
  "CMakeFiles/abl_clock_pesky.dir/abl_clock_pesky.cpp.o"
  "CMakeFiles/abl_clock_pesky.dir/abl_clock_pesky.cpp.o.d"
  "abl_clock_pesky"
  "abl_clock_pesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_clock_pesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
