# Empty dependencies file for fig06_min_bandwidth.
# This may be replaced when dependencies are built.
