# Empty dependencies file for fig09_tab02_l1.
# This may be replaced when dependencies are built.
