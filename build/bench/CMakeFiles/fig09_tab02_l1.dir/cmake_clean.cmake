file(REMOVE_RECURSE
  "CMakeFiles/fig09_tab02_l1.dir/fig09_tab02_l1.cpp.o"
  "CMakeFiles/fig09_tab02_l1.dir/fig09_tab02_l1.cpp.o.d"
  "fig09_tab02_l1"
  "fig09_tab02_l1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tab02_l1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
