file(REMOVE_RECURSE
  "CMakeFiles/fig11_tab08_tlb.dir/fig11_tab08_tlb.cpp.o"
  "CMakeFiles/fig11_tab08_tlb.dir/fig11_tab08_tlb.cpp.o.d"
  "fig11_tab08_tlb"
  "fig11_tab08_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tab08_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
