# Empty dependencies file for fig11_tab08_tlb.
# This may be replaced when dependencies are built.
