# Empty dependencies file for tab03_avg_bandwidth.
# This may be replaced when dependencies are built.
