file(REMOVE_RECURSE
  "CMakeFiles/tab03_avg_bandwidth.dir/tab03_avg_bandwidth.cpp.o"
  "CMakeFiles/tab03_avg_bandwidth.dir/tab03_avg_bandwidth.cpp.o.d"
  "tab03_avg_bandwidth"
  "tab03_avg_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_avg_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
