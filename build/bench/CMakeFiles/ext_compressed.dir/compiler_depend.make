# Empty compiler generated dependencies file for ext_compressed.
# This may be replaced when dependencies are built.
