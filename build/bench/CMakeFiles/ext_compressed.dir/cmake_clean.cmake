file(REMOVE_RECURSE
  "CMakeFiles/ext_compressed.dir/ext_compressed.cpp.o"
  "CMakeFiles/ext_compressed.dir/ext_compressed.cpp.o.d"
  "ext_compressed"
  "ext_compressed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_compressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
