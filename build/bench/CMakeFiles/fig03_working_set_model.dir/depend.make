# Empty dependencies file for fig03_working_set_model.
# This may be replaced when dependencies are built.
