file(REMOVE_RECURSE
  "CMakeFiles/fig03_working_set_model.dir/fig03_working_set_model.cpp.o"
  "CMakeFiles/fig03_working_set_model.dir/fig03_working_set_model.cpp.o.d"
  "fig03_working_set_model"
  "fig03_working_set_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_working_set_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
