file(REMOVE_RECURSE
  "CMakeFiles/tab07_fractional_advantage.dir/tab07_fractional_advantage.cpp.o"
  "CMakeFiles/tab07_fractional_advantage.dir/tab07_fractional_advantage.cpp.o.d"
  "tab07_fractional_advantage"
  "tab07_fractional_advantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_fractional_advantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
