# Empty dependencies file for tab07_fractional_advantage.
# This may be replaced when dependencies are built.
