# Empty dependencies file for abl_set_assoc_l2.
# This may be replaced when dependencies are built.
