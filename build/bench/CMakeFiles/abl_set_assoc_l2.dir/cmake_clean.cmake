file(REMOVE_RECURSE
  "CMakeFiles/abl_set_assoc_l2.dir/abl_set_assoc_l2.cpp.o"
  "CMakeFiles/abl_set_assoc_l2.dir/abl_set_assoc_l2.cpp.o.d"
  "abl_set_assoc_l2"
  "abl_set_assoc_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_set_assoc_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
