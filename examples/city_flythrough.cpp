/**
 * @file
 * City fly-through — the paper's second workload, focused on what makes
 * it different: every building has its *own* facade texture, so the L2
 * cache must absorb inter-texture working sets, and the texture page
 * table / TLB get exercised across many tids.
 *
 * Prints per-phase statistics (high approach, low pass between towers,
 * climb out) and a TLB sweep like the paper's §5.4.3.
 *
 * Usage: city_flythrough [--frames N] [--l2-mb M] [--snapshot out.ppm]
 */
#include <cstdio>

#include "sim/multi_config_runner.hpp"
#include "util/cli.hpp"
#include "util/ppm.hpp"
#include "util/table.hpp"
#include "workload/city.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    CommandLine cli(argc, argv);
    const int frames = static_cast<int>(cli.getInt("frames", 60));
    const uint64_t l2_mb =
        static_cast<uint64_t>(cli.getInt("l2-mb", 2));
    const std::string snapshot = cli.getString("snapshot", "");

    Workload wl = buildCity();
    size_t facades = 0;
    for (const auto &obj : wl.scene.objects())
        if (obj.name.rfind("building_", 0) == 0)
            ++facades;
    std::printf("City: %zu objects, %zu distinct facade textures, %s of "
                "texture\n",
                wl.scene.objects().size(), facades,
                formatBytes(static_cast<double>(
                                wl.textures->totalHostBytes()))
                    .c_str());

    DriverConfig cfg;
    cfg.filter = FilterMode::Trilinear;
    cfg.frames = frames;

    MultiConfigRunner runner(wl, cfg);
    // TLB sweep alongside the main configuration.
    const uint32_t tlb_sizes[] = {1, 4, 16};
    for (uint32_t entries : tlb_sizes) {
        CacheSimConfig sc =
            CacheSimConfig::twoLevel(2 * 1024, l2_mb << 20);
        sc.tlb_entries = entries;
        runner.addSim(sc, "tlb" + std::to_string(entries));
    }
    runner.addSim(CacheSimConfig::pull(2 * 1024), "pull");

    // Phase accounting: thirds of the animation.
    struct Phase
    {
        const char *name;
        uint64_t host = 0;
        uint64_t pull_host = 0;
        double d = 0;
        int count = 0;
    } phases[3] = {{"approach"}, {"low pass"}, {"climb out"}};

    runner.run([&](const FrameRow &row) {
        int p = std::min(row.frame * 3 / frames, 2);
        phases[p].host += row.sims[0].host_bytes;
        phases[p].pull_host += row.sims[3].host_bytes;
        phases[p].d += row.raster.depthComplexity(cfg.width, cfg.height);
        ++phases[p].count;
    });

    std::printf("\nper-phase behaviour (2KB L1 + %lluMB L2 vs pull):\n",
                static_cast<unsigned long long>(l2_mb));
    for (const auto &ph : phases) {
        double n = std::max(ph.count, 1);
        std::printf("  %-10s d=%.2f  L2 %6.2f MB/frame   pull %6.2f "
                    "MB/frame\n",
                    ph.name, ph.d / n,
                    static_cast<double>(ph.host) / n / (1 << 20),
                    static_cast<double>(ph.pull_host) / n / (1 << 20));
    }

    std::printf("\nTLB hit rates (page-table translations, §5.4.3):\n");
    for (size_t i = 0; i < 3; ++i)
        std::printf("  %2u entries: %s\n", tlb_sizes[i],
                    formatPercent(runner.sims()[i]->totals().tlbHitRate())
                        .c_str());

    if (!snapshot.empty()) {
        Rasterizer raster(1024, 768);
        raster.setFilter(FilterMode::Trilinear);
        Framebuffer fb(1024, 768);
        fb.clear(packRgba(120, 150, 200));
        raster.setFramebuffer(&fb);
        Camera cam = wl.cameraAtFrame(frames / 2, frames, 1024.0f / 768.0f);
        raster.renderFrame(wl.scene, cam, *wl.textures);
        if (writePpm(snapshot, 1024, 768, fb.colors()))
            std::printf("wrote %s\n", snapshot.c_str());
    }
    return 0;
}
