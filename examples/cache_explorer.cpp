/**
 * @file
 * Cache explorer: sweep any cache parameter over a workload from the
 * command line and print the bandwidth/hit-rate curve — a tool for the
 * kind of design-space exploration the paper does in §5.3, usable on
 * either workload without recompiling.
 *
 * Usage examples:
 *   cache_explorer --sweep l1 --workload village
 *   cache_explorer --sweep l2 --workload city --filter bilinear
 *   cache_explorer --sweep l2tile --frames 120
 *   cache_explorer --sweep tlb --jobs 8
 *   cache_explorer --sweep policy
 *   cache_explorer --sweep faults --fault-seed 7
 *   cache_explorer --sweep l2 --faults --fault-drop 0.1
 *   cache_explorer --sweep l2 --checkpoint /tmp/l2.snap --checkpoint-every 16
 *   cache_explorer --sweep l2 --checkpoint /tmp/l2.snap --resume
 *
 * Parallelism (docs/parallelism.md): every swept configuration is an
 * independent leg (its own workload, runner, fault RNG, metrics stream
 * and checkpoint) executed on a work-stealing pool:
 *   --jobs=N   worker threads (default: MLTC_JOBS env, else hardware
 *              concurrency; --jobs 1 = serial). Output bytes are
 *              invariant to N: tables, CSVs, merged metrics and
 *              snapshots are identical for --jobs 1 and --jobs 8.
 *
 * Any sweep accepts the --faults / --fault-* / --retry-* family (see
 * host/host_cli.hpp) to run it over the fault-injectable host backend;
 * `--sweep faults` sweeps the fault rate itself. Every leg runs under
 * watchdog supervision with the shared resilience flags
 * (sim/resilience.hpp): --checkpoint=PATH (per-leg PATH.legN files plus
 * a PATH.manifest sweep summary), --checkpoint-every=N, --resume,
 * --deadline-ms=D, --budget-ms=B, --audit=off|cheap|full. Ctrl-C
 * checkpoints every leg at its next frame boundary and exits cleanly;
 * rerun with --resume to finish.
 *
 * Observability (obs/observability.hpp, docs/observability.md):
 *   --metrics-out=PATH  per-frame metrics registry snapshots (JSONL;
 *                       per-leg streams merged in leg order)
 *   --trace-out=PATH    Chrome trace-event / Perfetto timeline (JSON;
 *                       one shared thread-safe writer, one tid per
 *                       worker)
 *   --miss-classes      3C (compulsory/capacity/conflict) classification
 *                       with per-texture attribution tables
 *   --top-textures=N    rows in the top-textures-by-miss-traffic table
 *   --mrc               single-pass reuse-distance profiling of the
 *                       first swept configuration: miss-ratio curves,
 *                       working-set spectra, spatial miss heatmaps
 *   --mrc-out=BASE      write BASE.csv / BASE.ws.csv / BASE.json
 *   --heatmap-out=BASE  write BASE.json + PGM miss-density maps
 *   --mrc-sample-rate=R SHARDS-style spatial sampling (default 1.0)
 */
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "host/host_cli.hpp"
#include "obs/observability.hpp"
#include "obs/reuse_profiler.hpp"
#include "sim/multi_config_runner.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/resilience.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workload/registry.hpp"

namespace {

using namespace mltc;

FilterMode
parseFilter(const std::string &name)
{
    if (name == "point")
        return FilterMode::Point;
    if (name == "bilinear")
        return FilterMode::Bilinear;
    return FilterMode::Trilinear;
}

/** One swept configuration. */
struct Candidate
{
    CacheSimConfig config;
    std::string label;
};

/** Everything one finished leg leaves behind for the report phase. */
struct LegState
{
    Workload wl;
    std::unique_ptr<MultiConfigRunner> runner;
    std::unique_ptr<Observability> obs;
    std::unique_ptr<ReuseProfiler> profiler;
    RunManifest manifest;
};

/** Per-leg resilience: PATH -> PATH.legN, resume only if it exists. */
ResilienceConfig
legResilience(const ResilienceConfig &base, size_t leg)
{
    ResilienceConfig rc = base;
    if (rc.checkpoint_path.empty())
        return rc;
    rc.checkpoint_path += ".leg" + std::to_string(leg);
    if (rc.resume) {
        struct stat st;
        if (stat(rc.checkpoint_path.c_str(), &st) != 0)
            rc.resume = false; // this leg never checkpointed; fresh start
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    const std::string sweep = cli.getString("sweep", "l1");
    const std::string workload = cli.getString("workload", "village");
    const int frames = static_cast<int>(cli.getInt("frames", 48));
    const ResilienceConfig resilience = resilienceFromCli(cli);
    const unsigned jobs = jobsFromCli(cli);
    installCancellationHandlers();

    DriverConfig cfg;
    cfg.filter = parseFilter(cli.getString("filter", "trilinear"));
    cfg.frames = frames;

    const ObsConfig obs_cfg = obsFromCli(cli);

    // The shared sinks: one thread-safe trace writer for every leg (a
    // tid per worker) installed process-globally; metrics stay per-leg
    // and are merged below.
    ObsConfig shared_cfg = obs_cfg;
    shared_cfg.metrics_path.clear();
    Observability obs(shared_cfg);

    // Optional fault scenario and miss classification applied to every
    // swept configuration.
    const HostPathConfig host = hostPathFromCli(cli);
    auto withHost = [&](CacheSimConfig sc) {
        sc.host = host;
        sc.classify_misses = obs_cfg.miss_classes;
        return sc;
    };

    std::vector<Candidate> candidates;
    if (sweep == "l1") {
        for (uint64_t kb : {1u, 2u, 4u, 8u, 16u, 32u, 64u})
            candidates.push_back({withHost(CacheSimConfig::pull(kb * 1024)),
                                  std::to_string(kb) + " KB L1 (pull)"});
    } else if (sweep == "l2") {
        for (uint64_t mb : {1u, 2u, 4u, 8u, 16u})
            candidates.push_back(
                {withHost(CacheSimConfig::twoLevel(2 * 1024, mb << 20)),
                 std::to_string(mb) + " MB L2"});
    } else if (sweep == "l2tile") {
        for (uint32_t tile : {8u, 16u, 32u})
            candidates.push_back(
                {withHost(
                     CacheSimConfig::twoLevel(2 * 1024, 2ull << 20, tile)),
                 std::to_string(tile) + "x" + std::to_string(tile) +
                     " L2 tiles"});
    } else if (sweep == "tlb") {
        for (uint32_t entries : {1u, 2u, 4u, 8u, 16u, 32u}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.tlb_entries = entries;
            candidates.push_back(
                {sc, std::to_string(entries) + "-entry TLB"});
        }
    } else if (sweep == "policy") {
        for (auto p : {ReplacementPolicy::Clock, ReplacementPolicy::Lru,
                       ReplacementPolicy::Fifo, ReplacementPolicy::Random}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.l2.policy = p;
            candidates.push_back({sc, replacementPolicyName(p)});
        }
    } else if (sweep == "faults") {
        for (double rate : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.host.fault_injection = true;
            sc.host.faults.drop_rate = rate;
            sc.host.faults.corrupt_rate = rate / 2.0;
            candidates.push_back({sc, formatPercent(rate, 0) + " fault rate"});
        }
    } else {
        std::printf(
            "unknown sweep '%s' (try l1|l2|l2tile|tlb|policy|faults)\n",
            sweep.c_str());
        return 1;
    }

    const ReuseProfilerConfig prof_cli = mrcFromCli(cli);

    std::printf("sweeping '%s' over %s (%d frames, %s filtering, "
                "%zu legs, %u jobs)...\n",
                sweep.c_str(), workload.c_str(), frames,
                filterModeName(cfg.filter), candidates.size(), jobs);

    // Each candidate is one leg: own workload (private TextureManager),
    // own runner + sim (private fault RNG stream), own metrics stream
    // and checkpoint. Results land in leg-indexed slots; every file and
    // table below is emitted in leg order, so output bytes cannot
    // depend on the pool's schedule.
    std::vector<std::unique_ptr<LegState>> legs(candidates.size());
    SweepExecutor executor(jobs);
    for (size_t i = 0; i < candidates.size(); ++i) {
        executor.addLeg(candidates[i].label, [&, i](LegContext &ctx) {
            auto leg = std::make_unique<LegState>();
            leg->wl = buildWorkload(workload);
            leg->runner = std::make_unique<MultiConfigRunner>(leg->wl, cfg);
            leg->runner->addSim(candidates[i].config, candidates[i].label);

            if (!obs_cfg.metrics_path.empty()) {
                ObsConfig leg_obs = obs_cfg;
                leg_obs.trace_path.clear();
                leg_obs.metrics_path += ".leg" + std::to_string(i);
                leg->obs = std::make_unique<Observability>(
                    leg_obs, /*install_process_hooks=*/false);
                leg->runner->setObservability(leg->obs.get());
            }

            // Reuse-distance profiler: attached to the first swept
            // configuration (every sweep sees the identical reference
            // stream, so one profiled sim predicts the whole capacity
            // axis). Must be attached before runSupervised so a
            // --resume checkpoint restores profiler state.
            if (i == 0 && prof_cli.enabled) {
                ReuseProfilerConfig pc = prof_cli;
                CacheSim &first = *leg->runner->sims().front();
                pc.screen_width = static_cast<uint32_t>(cfg.width);
                pc.screen_height = static_cast<uint32_t>(cfg.height);
                pc.l1_unit_bytes = first.config().l1.lineBytes();
                // L2 sectors transfer L1 lines: sector unit == line.
                pc.l2_unit_bytes = first.config().l1.lineBytes();
                leg->profiler = std::make_unique<ReuseProfiler>(pc);
                first.setReuseProfiler(leg->profiler.get());
            }

            leg->manifest =
                leg->runner->runSupervised(legResilience(resilience, i));
            if (leg->manifest.outcome != RunOutcome::Completed)
                ctx.printf("leg '%s' %s after %d frames%s\n",
                           candidates[i].label.c_str(),
                           runOutcomeName(leg->manifest.outcome),
                           leg->manifest.frames_completed,
                           leg->manifest.checkpoint.empty()
                               ? ""
                               : " (rerun with --resume to finish)");
            if (leg->obs)
                leg->obs->close();
            legs[i] = std::move(leg);
        });
    }
    const SweepManifest sweep_manifest = executor.run();
    if (!resilience.checkpoint_path.empty())
        sweep_manifest.writeCsv(resilience.checkpoint_path + ".manifest");

    // Merge per-leg metrics JSONL into the requested file, leg order.
    if (!obs_cfg.metrics_path.empty()) {
        std::ofstream merged(obs_cfg.metrics_path, std::ios::binary);
        for (size_t i = 0; i < legs.size(); ++i) {
            const std::string part =
                obs_cfg.metrics_path + ".leg" + std::to_string(i);
            std::ifstream in(part, std::ios::binary);
            // Skip empty parts (a leg cancelled before its first
            // frame): streaming an empty rdbuf would set failbit on
            // the merged stream.
            if (in.good() && in.peek() != std::ifstream::traits_type::eof())
                merged << in.rdbuf();
            in.close();
            std::remove(part.c_str());
        }
        if (!merged.good()) {
            std::fprintf(stderr, "metrics merge failed: %s\n",
                         obs_cfg.metrics_path.c_str());
            return 1;
        }
    }

    bool all_completed = true;
    for (size_t i = 0; i < legs.size(); ++i) {
        const LegResult &lr = sweep_manifest.legs[i];
        if (lr.outcome == LegOutcome::Failed)
            std::fprintf(stderr, "leg '%s' failed: %s\n", lr.name.c_str(),
                         lr.error.c_str());
        if (!legs[i] ||
            legs[i]->manifest.outcome != RunOutcome::Completed)
            all_completed = false;
    }

    TextTable table({"configuration", "L1 hit", "L2 full hit", "TLB hit",
                     "host MB/frame", "retries", "degraded"});
    for (size_t i = 0; i < legs.size(); ++i) {
        if (!legs[i])
            continue; // failed or cancelled before running
        const LegState &leg = *legs[i];
        const CacheSim &sim = *leg.runner->sims().front();
        const CacheFrameStats &t = sim.totals();
        const bool faulty = sim.hostPath() != nullptr;
        const bool dead = leg.manifest.sims[0].quarantined;
        table.addRow(
            {sim.label() + (dead ? " [quarantined]" : ""),
             formatPercent(t.l1HitRate(), 2),
             sim.l2() ? formatPercent(t.l2FullHitRate()) : "-",
             sim.tlb() ? formatPercent(t.tlbHitRate()) : "-",
             formatDouble(leg.runner->averageHostBytesPerFrame(0) /
                              (1 << 20),
                          3),
             faulty ? std::to_string(t.host_retries) : "-",
             faulty ? std::to_string(t.degraded_accesses) : "-"});
        if (dead)
            std::fprintf(stderr, "sim '%s' quarantined at frame %d: %s\n",
                         sim.label().c_str(),
                         leg.manifest.sims[0].quarantined_at_frame,
                         leg.manifest.sims[0].error.describe().c_str());
    }
    table.print();

    if (obs_cfg.miss_classes) {
        std::printf("\n3C miss classification (run totals):\n");
        TextTable cls({"configuration", "cache", "compulsory", "capacity",
                       "conflict"});
        for (const auto &legp : legs) {
            if (!legp)
                continue;
            const CacheSim &sim = *legp->runner->sims().front();
            const CacheFrameStats &t = sim.totals();
            cls.addRow({sim.label(), "L1", std::to_string(t.l1_compulsory),
                        std::to_string(t.l1_capacity),
                        std::to_string(t.l1_conflict)});
            if (sim.l2Classifier())
                cls.addRow({sim.label(), "L2",
                            std::to_string(t.l2_compulsory),
                            std::to_string(t.l2_capacity),
                            std::to_string(t.l2_conflict)});
        }
        cls.print();

        std::printf("\ntop %u textures by attributed miss traffic:\n",
                    obs_cfg.top_textures);
        TextTable top({"configuration", "tex", "misses", "compulsory",
                       "capacity", "conflict", "host MB"});
        for (const auto &legp : legs) {
            if (!legp)
                continue;
            const CacheSim &sim = *legp->runner->sims().front();
            const MissClassifier *mc = sim.l2Classifier()
                                           ? sim.l2Classifier()
                                           : sim.l1Classifier();
            if (!mc)
                continue;
            for (const MissAttributionRow &row :
                 mc->topTexturesByTraffic(obs_cfg.top_textures))
                top.addRow({sim.label(), std::to_string(row.tex),
                            std::to_string(row.counts.total()),
                            std::to_string(row.counts.compulsory),
                            std::to_string(row.counts.capacity),
                            std::to_string(row.counts.conflict),
                            formatDouble(static_cast<double>(row.bytes) /
                                             (1 << 20),
                                         3)});
        }
        top.print();
    }

    if (!legs.empty() && legs[0] && legs[0]->profiler) {
        const ReuseProfiler &profiler = *legs[0]->profiler;
        std::printf("\nreuse-distance profile of '%s':\n%s",
                    legs[0]->runner->sims().front()->label().c_str(),
                    profiler.asciiMrc().c_str());
        try {
            if (!prof_cli.mrc_out.empty()) {
                profiler.writeMrc(prof_cli.mrc_out);
                std::printf("[mrc] %s.csv %s.ws.csv %s.json\n",
                            prof_cli.mrc_out.c_str(),
                            prof_cli.mrc_out.c_str(),
                            prof_cli.mrc_out.c_str());
            }
            if (!prof_cli.heatmap_out.empty()) {
                profiler.writeHeatmaps(prof_cli.heatmap_out);
                std::printf("[heatmap] %s.json + PGM maps\n",
                            prof_cli.heatmap_out.c_str());
            }
        } catch (const Exception &e) {
            std::fprintf(stderr, "profiler output failed: %s\n",
                         e.error().describe().c_str());
            return 1;
        }
    }

    if (obs.trace()) {
        std::printf("\nstage self-times (%s):\n",
                    obs_cfg.trace_path.c_str());
        TextTable st({"stage", "count", "total ms", "self ms"});
        for (const StageStat &s : obs.trace()->stageStats())
            st.addRow({s.name, std::to_string(s.count),
                       formatDouble(static_cast<double>(s.total_us) / 1000.0,
                                    2),
                       formatDouble(static_cast<double>(s.self_us) / 1000.0,
                                    2)});
        st.print();
    }

    try {
        obs.close();
    } catch (const Exception &e) {
        std::fprintf(stderr, "observability output failed: %s\n",
                     e.error().describe().c_str());
        return 1;
    }
    return all_completed ? 0 : 2;
}
