/**
 * @file
 * Cache explorer: sweep any cache parameter over a workload from the
 * command line and print the bandwidth/hit-rate curve — a tool for the
 * kind of design-space exploration the paper does in §5.3, usable on
 * either workload without recompiling.
 *
 * Usage examples:
 *   cache_explorer --sweep l1 --workload village
 *   cache_explorer --sweep l2 --workload city --filter bilinear
 *   cache_explorer --sweep l2tile --frames 120
 *   cache_explorer --sweep tlb
 *   cache_explorer --sweep policy
 *   cache_explorer --sweep faults --fault-seed 7
 *   cache_explorer --sweep l2 --faults --fault-drop 0.1
 *   cache_explorer --sweep l2 --checkpoint /tmp/l2.snap --checkpoint-every 16
 *   cache_explorer --sweep l2 --checkpoint /tmp/l2.snap --resume
 *
 * Any sweep accepts the --faults / --fault-* / --retry-* family (see
 * host/host_cli.hpp) to run it over the fault-injectable host backend;
 * `--sweep faults` sweeps the fault rate itself. Every sweep also runs
 * under watchdog supervision with the shared resilience flags
 * (sim/resilience.hpp): --checkpoint=PATH, --checkpoint-every=N,
 * --resume, --deadline-ms=D, --budget-ms=B, --audit=off|cheap|full.
 * Ctrl-C checkpoints at the next frame boundary and exits cleanly;
 * rerun with --resume to finish.
 *
 * Observability (obs/observability.hpp, docs/observability.md):
 *   --metrics-out=PATH  per-frame metrics registry snapshots (JSONL)
 *   --trace-out=PATH    Chrome trace-event / Perfetto timeline (JSON)
 *   --miss-classes      3C (compulsory/capacity/conflict) classification
 *                       with per-texture attribution tables
 *   --top-textures=N    rows in the top-textures-by-miss-traffic table
 *   --mrc               single-pass reuse-distance profiling of the
 *                       first swept configuration: miss-ratio curves,
 *                       working-set spectra, spatial miss heatmaps
 *   --mrc-out=BASE      write BASE.csv / BASE.ws.csv / BASE.json
 *   --heatmap-out=BASE  write BASE.json + PGM miss-density maps
 *   --mrc-sample-rate=R SHARDS-style spatial sampling (default 1.0)
 */
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "host/host_cli.hpp"
#include "obs/observability.hpp"
#include "obs/reuse_profiler.hpp"
#include "sim/multi_config_runner.hpp"
#include "sim/resilience.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/registry.hpp"

namespace {

using namespace mltc;

FilterMode
parseFilter(const std::string &name)
{
    if (name == "point")
        return FilterMode::Point;
    if (name == "bilinear")
        return FilterMode::Bilinear;
    return FilterMode::Trilinear;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    const std::string sweep = cli.getString("sweep", "l1");
    const std::string workload = cli.getString("workload", "village");
    const int frames = static_cast<int>(cli.getInt("frames", 48));
    const ResilienceConfig resilience = resilienceFromCli(cli);
    installCancellationHandlers();

    Workload wl = buildWorkload(workload);
    DriverConfig cfg;
    cfg.filter = parseFilter(cli.getString("filter", "trilinear"));
    cfg.frames = frames;

    MultiConfigRunner runner(wl, cfg);

    const ObsConfig obs_cfg = obsFromCli(cli);
    Observability obs(obs_cfg);
    runner.setObservability(&obs);

    // Optional fault scenario and miss classification applied to every
    // swept configuration.
    const HostPathConfig host = hostPathFromCli(cli);
    auto withHost = [&](CacheSimConfig sc) {
        sc.host = host;
        sc.classify_misses = obs_cfg.miss_classes;
        return sc;
    };

    if (sweep == "l1") {
        for (uint64_t kb : {1u, 2u, 4u, 8u, 16u, 32u, 64u})
            runner.addSim(withHost(CacheSimConfig::pull(kb * 1024)),
                          std::to_string(kb) + " KB L1 (pull)");
    } else if (sweep == "l2") {
        for (uint64_t mb : {1u, 2u, 4u, 8u, 16u})
            runner.addSim(
                withHost(CacheSimConfig::twoLevel(2 * 1024, mb << 20)),
                std::to_string(mb) + " MB L2");
    } else if (sweep == "l2tile") {
        for (uint32_t tile : {8u, 16u, 32u})
            runner.addSim(
                withHost(
                    CacheSimConfig::twoLevel(2 * 1024, 2ull << 20, tile)),
                std::to_string(tile) + "x" + std::to_string(tile) +
                    " L2 tiles");
    } else if (sweep == "tlb") {
        for (uint32_t entries : {1u, 2u, 4u, 8u, 16u, 32u}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.tlb_entries = entries;
            runner.addSim(sc, std::to_string(entries) + "-entry TLB");
        }
    } else if (sweep == "policy") {
        for (auto p : {ReplacementPolicy::Clock, ReplacementPolicy::Lru,
                       ReplacementPolicy::Fifo, ReplacementPolicy::Random}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.l2.policy = p;
            runner.addSim(sc, replacementPolicyName(p));
        }
    } else if (sweep == "faults") {
        for (double rate : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.host.fault_injection = true;
            sc.host.faults.drop_rate = rate;
            sc.host.faults.corrupt_rate = rate / 2.0;
            runner.addSim(sc, formatPercent(rate, 0) + " fault rate");
        }
    } else {
        std::printf(
            "unknown sweep '%s' (try l1|l2|l2tile|tlb|policy|faults)\n",
            sweep.c_str());
        return 1;
    }

    // Reuse-distance profiler: attached to the first swept simulator
    // (every sweep sees the identical reference stream, so one profiled
    // sim predicts the whole capacity axis). Must be attached before
    // runSupervised so a --resume checkpoint restores profiler state.
    ReuseProfilerConfig prof_cfg = mrcFromCli(cli);
    std::unique_ptr<ReuseProfiler> profiler;
    if (prof_cfg.enabled && !runner.sims().empty()) {
        CacheSim &first = *runner.sims().front();
        prof_cfg.screen_width = static_cast<uint32_t>(cfg.width);
        prof_cfg.screen_height = static_cast<uint32_t>(cfg.height);
        prof_cfg.l1_unit_bytes = first.config().l1.lineBytes();
        // L2 sectors transfer L1 lines, so the sector unit is the line.
        prof_cfg.l2_unit_bytes = first.config().l1.lineBytes();
        profiler = std::make_unique<ReuseProfiler>(prof_cfg);
        first.setReuseProfiler(profiler.get());
    }

    std::printf("sweeping '%s' over %s (%d frames, %s filtering)...\n",
                sweep.c_str(), workload.c_str(), frames,
                filterModeName(cfg.filter));
    const RunManifest manifest = runner.runSupervised(resilience);
    if (manifest.outcome != RunOutcome::Completed)
        std::printf("run %s after %d frames%s\n",
                    runOutcomeName(manifest.outcome),
                    manifest.frames_completed,
                    manifest.checkpoint.empty()
                        ? ""
                        : " (rerun with --resume to finish)");

    TextTable table({"configuration", "L1 hit", "L2 full hit", "TLB hit",
                     "host MB/frame", "retries", "degraded"});
    for (size_t i = 0; i < runner.sims().size(); ++i) {
        const CacheSim &sim = *runner.sims()[i];
        const CacheFrameStats &t = sim.totals();
        const bool faulty = sim.hostPath() != nullptr;
        const bool dead = manifest.sims[i].quarantined;
        table.addRow(
            {sim.label() + (dead ? " [quarantined]" : ""),
             formatPercent(t.l1HitRate(), 2),
             sim.l2() ? formatPercent(t.l2FullHitRate()) : "-",
             sim.tlb() ? formatPercent(t.tlbHitRate()) : "-",
             formatDouble(runner.averageHostBytesPerFrame(i) / (1 << 20),
                          3),
             faulty ? std::to_string(t.host_retries) : "-",
             faulty ? std::to_string(t.degraded_accesses) : "-"});
        if (dead)
            std::fprintf(stderr, "sim '%s' quarantined at frame %d: %s\n",
                         sim.label().c_str(),
                         manifest.sims[i].quarantined_at_frame,
                         manifest.sims[i].error.describe().c_str());
    }
    table.print();

    if (obs_cfg.miss_classes) {
        std::printf("\n3C miss classification (run totals):\n");
        TextTable cls({"configuration", "cache", "compulsory", "capacity",
                       "conflict"});
        for (const auto &simp : runner.sims()) {
            const CacheFrameStats &t = simp->totals();
            cls.addRow({simp->label(), "L1",
                        std::to_string(t.l1_compulsory),
                        std::to_string(t.l1_capacity),
                        std::to_string(t.l1_conflict)});
            if (simp->l2Classifier())
                cls.addRow({simp->label(), "L2",
                            std::to_string(t.l2_compulsory),
                            std::to_string(t.l2_capacity),
                            std::to_string(t.l2_conflict)});
        }
        cls.print();

        std::printf("\ntop %u textures by attributed miss traffic:\n",
                    obs_cfg.top_textures);
        TextTable top({"configuration", "tex", "misses", "compulsory",
                       "capacity", "conflict", "host MB"});
        for (const auto &simp : runner.sims()) {
            const MissClassifier *mc = simp->l2Classifier()
                                           ? simp->l2Classifier()
                                           : simp->l1Classifier();
            if (!mc)
                continue;
            for (const MissAttributionRow &row :
                 mc->topTexturesByTraffic(obs_cfg.top_textures))
                top.addRow({simp->label(), std::to_string(row.tex),
                            std::to_string(row.counts.total()),
                            std::to_string(row.counts.compulsory),
                            std::to_string(row.counts.capacity),
                            std::to_string(row.counts.conflict),
                            formatDouble(static_cast<double>(row.bytes) /
                                             (1 << 20),
                                         3)});
        }
        top.print();
    }

    if (profiler) {
        std::printf("\nreuse-distance profile of '%s':\n%s",
                    runner.sims().front()->label().c_str(),
                    profiler->asciiMrc().c_str());
        try {
            if (!prof_cfg.mrc_out.empty()) {
                profiler->writeMrc(prof_cfg.mrc_out);
                std::printf("[mrc] %s.csv %s.ws.csv %s.json\n",
                            prof_cfg.mrc_out.c_str(),
                            prof_cfg.mrc_out.c_str(),
                            prof_cfg.mrc_out.c_str());
            }
            if (!prof_cfg.heatmap_out.empty()) {
                profiler->writeHeatmaps(prof_cfg.heatmap_out);
                std::printf("[heatmap] %s.json + PGM maps\n",
                            prof_cfg.heatmap_out.c_str());
            }
        } catch (const Exception &e) {
            std::fprintf(stderr, "profiler output failed: %s\n",
                         e.error().describe().c_str());
            return 1;
        }
    }

    if (obs.trace()) {
        std::printf("\nstage self-times (%s):\n",
                    obs_cfg.trace_path.c_str());
        TextTable st({"stage", "count", "total ms", "self ms"});
        for (const StageStat &s : obs.trace()->stageStats())
            st.addRow({s.name, std::to_string(s.count),
                       formatDouble(static_cast<double>(s.total_us) / 1000.0,
                                    2),
                       formatDouble(static_cast<double>(s.self_us) / 1000.0,
                                    2)});
        st.print();
    }

    try {
        obs.close();
    } catch (const Exception &e) {
        std::fprintf(stderr, "observability output failed: %s\n",
                     e.error().describe().c_str());
        return 1;
    }
    return manifest.outcome == RunOutcome::Completed ? 0 : 2;
}
