/**
 * @file
 * Cache explorer: sweep any cache parameter over a workload from the
 * command line and print the bandwidth/hit-rate curve — a tool for the
 * kind of design-space exploration the paper does in §5.3, usable on
 * either workload without recompiling.
 *
 * Usage examples:
 *   cache_explorer --sweep l1 --workload village
 *   cache_explorer --sweep l2 --workload city --filter bilinear
 *   cache_explorer --sweep l2tile --frames 120
 *   cache_explorer --sweep tlb --jobs 8
 *   cache_explorer --sweep policy
 *   cache_explorer --sweep faults --fault-seed 7
 *   cache_explorer --sweep l2 --faults --fault-drop 0.1
 *   cache_explorer --sweep l2 --checkpoint /tmp/l2.snap --checkpoint-every 16
 *   cache_explorer --sweep l2 --checkpoint /tmp/l2.snap --resume
 *
 * Multi-tenant serving mode (docs/multi_tenant.md): --streams K runs K
 * independent camera streams into one shared L2 instead of a sweep:
 *   --streams=K              tenant count (>= 1)
 *   --l2-policy=P            shared | static | utility
 *   --stream-budget-mb=B     per-stream host budget per round (0 = off;
 *                            overruns shed load via LOD bias)
 *   --stream-workloads=LIST  comma list of workload names per stream
 *                            ("village", "city", "thrasher"); a single
 *                            name applies to every stream; default
 *                            alternates village/city
 *   --rounds=N               rounds (one frame per stream; default
 *                            --frames)
 *   --repartition-every=N    utility-quota retarget interval
 *   --fail-stream=I --fail-at-round=R   quarantine-injection test hook
 *   --round-sleep-ms=T       test hook: sleep T ms per round so an
 *                            external scraper lands mid-run
 *   --csv-prefix=BASE        write BASE.streamI.csv per-round rows
 * plus the shared --jobs / --checkpoint / --resume / --audit /
 * --metrics-out / --trace-out families, which keep their meaning.
 *
 * Parallelism (docs/parallelism.md): every swept configuration is an
 * independent leg (its own workload, runner, fault RNG, metrics stream
 * and checkpoint) executed on a work-stealing pool:
 *   --jobs=N   worker threads (default: MLTC_JOBS env, else hardware
 *              concurrency; --jobs 1 = serial). Output bytes are
 *              invariant to N: tables, CSVs, merged metrics and
 *              snapshots are identical for --jobs 1 and --jobs 8.
 *
 * Any sweep accepts the --faults / --fault-* / --retry-* family (see
 * host/host_cli.hpp) to run it over the fault-injectable host backend;
 * `--sweep faults` sweeps the fault rate itself. Every leg runs under
 * watchdog supervision with the shared resilience flags
 * (sim/resilience.hpp): --checkpoint=PATH (per-leg PATH.legN files plus
 * a PATH.manifest sweep summary), --checkpoint-every=N, --resume,
 * --deadline-ms=D, --budget-ms=B, --audit=off|cheap|full. Ctrl-C
 * checkpoints every leg at its next frame boundary and exits cleanly;
 * rerun with --resume to finish.
 *
 * Observability (obs/observability.hpp, docs/observability.md):
 *   --metrics-out=PATH  per-frame metrics registry snapshots (JSONL;
 *                       per-leg streams merged in leg order)
 *   --trace-out=PATH    Chrome trace-event / Perfetto timeline (JSON;
 *                       one shared thread-safe writer, one tid per
 *                       worker)
 *   --miss-classes      3C (compulsory/capacity/conflict) classification
 *                       with per-texture attribution tables
 *   --top-textures=N    rows in the top-textures-by-miss-traffic table
 *   --mrc               single-pass reuse-distance profiling of the
 *                       first swept configuration: miss-ratio curves,
 *                       working-set spectra, spatial miss heatmaps
 *   --mrc-out=BASE      write BASE.csv / BASE.ws.csv / BASE.json
 *   --heatmap-out=BASE  write BASE.json + PGM miss-density maps
 *   --mrc-sample-rate=R SHARDS-style spatial sampling (default 1.0)
 *
 * Live telemetry plane (docs/observability.md):
 *   --telemetry-port=P / --telemetry-port-file=F   /metrics (Prometheus
 *                       text), /healthz and /runz on 127.0.0.1
 *   --slo=RULES / --slo-out=PATH   per-stream burn-rate SLO alerts
 *                       (multi-tenant mode), e.g.
 *                       --slo "stream.miss_rate.l2<0.15@30f"
 *   --flight-out=PREFIX always-on flight recorder; dumps
 *                       PREFIX.flight/ on quarantine/watchdog/audit/IO
 *
 * Continuous profiling (docs/profiling.md):
 *   --profile-out=PREFIX sampling stage profiler; writes PREFIX.folded
 *                       (collapsed stacks, flamegraph.pl/speedscope
 *                       compatible) and PREFIX.json (per-stage summary,
 *                       per-leg/per-stream roll-ups, hardware counters)
 *   --profile-hz=N      sampling rate (default 997)
 *   --profile-no-counters  skip perf_event_open hardware counters
 * The profiler observes and never steers: simulation outputs are
 * byte-identical with profiling on or off, and across --jobs counts.
 */
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "host/host_cli.hpp"
#include "obs/observability.hpp"
#include "raster/access_sink.hpp"
#include "obs/reuse_profiler.hpp"
#include "sim/multi_config_runner.hpp"
#include "sim/multi_stream_runner.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/resilience.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/table.hpp"
#include "workload/registry.hpp"

namespace {

using namespace mltc;

FilterMode
parseFilter(const std::string &name)
{
    if (name == "point")
        return FilterMode::Point;
    if (name == "bilinear")
        return FilterMode::Bilinear;
    return FilterMode::Trilinear;
}

/** One swept configuration. */
struct Candidate
{
    CacheSimConfig config;
    std::string label;
};

/** Everything one finished leg leaves behind for the report phase. */
struct LegState
{
    Workload wl;
    std::unique_ptr<MultiConfigRunner> runner;
    std::unique_ptr<Observability> obs;
    std::unique_ptr<ReuseProfiler> profiler;
    RunManifest manifest;
};

/** Per-leg resilience: PATH -> PATH.legN, resume only if it exists. */
ResilienceConfig
legResilience(const ResilienceConfig &base, size_t leg)
{
    ResilienceConfig rc = base;
    if (rc.checkpoint_path.empty())
        return rc;
    rc.checkpoint_path += ".leg" + std::to_string(leg);
    if (rc.resume) {
        struct stat st;
        if (stat(rc.checkpoint_path.c_str(), &st) != 0)
            rc.resume = false; // this leg never checkpointed; fresh start
    }
    return rc;
}

/**
 * Strictly parse the multi-tenant flags: every malformed value throws
 * mltc::Exception (BadArgument) naming the offending flag — the PR-2
 * rule that bad input dies loudly instead of being defaulted away.
 */
MultiStreamConfig
multiStreamFromCli(const CommandLine &cli)
{
    MultiStreamConfig ms;

    const unsigned long streams = cli.getUnsigned("streams", 1);
    if (streams == 0 || streams > 254)
        throw Exception(ErrorCode::BadArgument,
                        "--streams: expected a stream count in [1, 254], "
                        "got '" + cli.getString("streams", "") + "'");

    const std::string policy = cli.getString("l2-policy", "shared");
    try {
        ms.share = parseL2SharePolicy(policy.c_str());
    } catch (const std::invalid_argument &) {
        throw Exception(ErrorCode::BadArgument,
                        "--l2-policy: unknown policy '" + policy +
                            "' (expected shared|static|utility)");
    }

    const double budget_mb = cli.getDouble("stream-budget-mb", 0.0);
    if (budget_mb < 0.0)
        throw Exception(ErrorCode::BadArgument,
                        "--stream-budget-mb: budget must be >= 0, got '" +
                            cli.getString("stream-budget-mb", "") + "'");
    ms.stream_budget_bytes =
        static_cast<uint64_t>(budget_mb * (1 << 20));

    ms.rounds = static_cast<uint32_t>(
        cli.getUnsigned("rounds", cli.getUnsigned("frames", 16)));
    ms.width = static_cast<int>(cli.getInt("width", 320));
    ms.height = static_cast<int>(cli.getInt("height", 240));
    ms.l1_bytes = cli.getUnsigned("l1-kb", 16) << 10;
    ms.l2_bytes = cli.getUnsigned("l2-kb", 1024) << 10;
    ms.repartition_every = static_cast<uint32_t>(
        cli.getUnsigned("repartition-every", 8));
    ms.round_sleep_ms = static_cast<uint32_t>(
        cli.getUnsigned("round-sleep-ms", 0));
    ms.jobs = jobsFromCli(cli);

    // Stream composition: explicit comma list, a single name for all
    // streams, or the default alternating village/city mix.
    std::vector<std::string> names;
    const std::string list = cli.getString("stream-workloads", "");
    if (!list.empty()) {
        size_t start = 0;
        while (start <= list.size()) {
            const size_t comma = list.find(',', start);
            names.push_back(list.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        if (names.size() != 1 && names.size() != streams)
            throw Exception(
                ErrorCode::BadArgument,
                "--stream-workloads: expected 1 or " +
                    std::to_string(streams) + " names, got " +
                    std::to_string(names.size()));
    }

    const long fail_stream = cli.getInt("fail-stream", -1);
    const long fail_round = cli.getInt("fail-at-round", 0);
    if (fail_stream >= static_cast<long>(streams))
        throw Exception(ErrorCode::BadArgument,
                        "--fail-stream: stream index out of range");

    for (unsigned long i = 0; i < streams; ++i) {
        StreamSpec spec;
        if (names.empty())
            spec.workload = (i % 2 == 0) ? "village" : "city";
        else
            spec.workload = names.size() == 1 ? names[0] : names[i];
        spec.filter = (i % 2 == 0) ? FilterMode::Bilinear
                                   : FilterMode::Trilinear;
        if (cli.has("filter"))
            spec.filter = parseFilter(cli.getString("filter", "bilinear"));
        spec.phase = static_cast<uint32_t>(i * 7);
        spec.seed = i;
        if (fail_stream >= 0 && static_cast<unsigned long>(fail_stream) == i)
            spec.fail_at_round = static_cast<int>(fail_round);
        ms.streams.push_back(std::move(spec));
    }
    return ms;
}

int
runMultiStream(const CommandLine &cli)
{
    const MultiStreamConfig ms = multiStreamFromCli(cli);
    const ResilienceConfig resilience = resilienceFromCli(cli);
    const ObsConfig obs_cfg = obsFromCli(cli);
    installCancellationHandlers();

    Observability obs(obs_cfg);
    MultiStreamRunner runner(ms);
    if (obs_cfg.anyEnabled())
        runner.setObservability(&obs);

    std::printf("serving %u streams into one %s-policy L2 "
                "(%u rounds, %u jobs)...\n",
                runner.streamCount(), l2SharePolicyName(ms.share),
                ms.rounds, ms.jobs);

    const MultiStreamManifest manifest = runner.run(resilience);

    const std::string csv_prefix = cli.getString("csv-prefix", "");
    if (!csv_prefix.empty())
        for (uint32_t i = 0; i < runner.streamCount(); ++i)
            runner.writeStreamCsv(i, csv_prefix + ".stream" +
                                         std::to_string(i) + ".csv");

    TextTable table({"stream", "L1 hit", "L2 stream miss", "host MB",
                     "quota", "alloc", "bias", "status"});
    for (uint32_t i = 0; i < runner.streamCount(); ++i) {
        const CacheSim &sim = runner.sim(i);
        const CacheFrameStats &t = sim.totals();
        const L2StreamStats &ls = runner.l2().streamStats(i);
        const StreamManifestEntry &e = manifest.streams[i];
        table.addRow(
            {runner.streamName(i), formatPercent(t.l1HitRate(), 2),
             formatPercent(ls.missRate(), 2),
             formatDouble(static_cast<double>(t.host_bytes) / (1 << 20), 3),
             std::to_string(runner.l2().quotas()[i]),
             std::to_string(runner.l2().streamAllocated(i)),
             std::to_string(sim.l2Stream() == i
                                ? static_cast<unsigned long>(
                                      runner.rows(i).empty()
                                          ? 0
                                          : runner.rows(i).back().lod_bias)
                                : 0ul),
             e.quarantined ? "quarantined@" + std::to_string(e.at_round)
                           : "ok"});
        if (e.quarantined)
            std::fprintf(stderr, "stream '%s' quarantined at round %u: %s\n",
                         e.name.c_str(), e.at_round,
                         e.error.describe().c_str());
    }
    table.print();

    if (manifest.outcome != RunOutcome::Completed)
        std::printf("run %s after %u rounds%s\n",
                    runOutcomeName(manifest.outcome),
                    manifest.rounds_completed,
                    manifest.checkpoint.empty()
                        ? ""
                        : " (rerun with --resume to finish)");

    try {
        obs.close();
    } catch (const Exception &e) {
        std::fprintf(stderr, "observability output failed: %s\n",
                     e.error().describe().c_str());
        return 1;
    }
    if (!obs_cfg.profile_out.empty())
        std::printf("[profile] %s.folded %s.json\n",
                    obs_cfg.profile_out.c_str(),
                    obs_cfg.profile_out.c_str());
    return manifest.outcome == RunOutcome::Completed ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    try {
        installIoFaultsFromCli(cli); // --io-faults=eio=R,...,seed=S
    } catch (const Exception &e) {
        std::fprintf(stderr, "%s\n", e.error().describe().c_str());
        return 1;
    }

    // --batch / --no-batch override the MLTC_BATCH process default
    // (docs/batched_access.md); outputs are identical either way.
    if (cli.has("no-batch"))
        setBatchedAccess(false);
    else if (cli.has("batch"))
        setBatchedAccess(cli.getFlag("batch"));

    if (cli.has("streams")) {
        try {
            return runMultiStream(cli);
        } catch (const Exception &e) {
            std::fprintf(stderr, "%s\n", e.error().describe().c_str());
            return 1;
        }
    }

    const std::string sweep = cli.getString("sweep", "l1");
    const std::string workload = cli.getString("workload", "village");
    const int frames = static_cast<int>(cli.getInt("frames", 48));
    const ResilienceConfig resilience = resilienceFromCli(cli);
    const unsigned jobs = jobsFromCli(cli);
    installCancellationHandlers();

    DriverConfig cfg;
    cfg.filter = parseFilter(cli.getString("filter", "trilinear"));
    cfg.frames = frames;

    const ObsConfig obs_cfg = obsFromCli(cli);

    // The shared sinks: one thread-safe trace writer for every leg (a
    // tid per worker) installed process-globally; metrics stay per-leg
    // and are merged below.
    ObsConfig shared_cfg = obs_cfg;
    shared_cfg.metrics_path.clear();
    Observability obs(shared_cfg);

    // Optional fault scenario and miss classification applied to every
    // swept configuration.
    const HostPathConfig host = hostPathFromCli(cli);
    auto withHost = [&](CacheSimConfig sc) {
        sc.host = host;
        sc.classify_misses = obs_cfg.miss_classes;
        return sc;
    };

    std::vector<Candidate> candidates;
    if (sweep == "l1") {
        for (uint64_t kb : {1u, 2u, 4u, 8u, 16u, 32u, 64u})
            candidates.push_back({withHost(CacheSimConfig::pull(kb * 1024)),
                                  std::to_string(kb) + " KB L1 (pull)"});
    } else if (sweep == "l2") {
        for (uint64_t mb : {1u, 2u, 4u, 8u, 16u})
            candidates.push_back(
                {withHost(CacheSimConfig::twoLevel(2 * 1024, mb << 20)),
                 std::to_string(mb) + " MB L2"});
    } else if (sweep == "l2tile") {
        for (uint32_t tile : {8u, 16u, 32u})
            candidates.push_back(
                {withHost(
                     CacheSimConfig::twoLevel(2 * 1024, 2ull << 20, tile)),
                 std::to_string(tile) + "x" + std::to_string(tile) +
                     " L2 tiles"});
    } else if (sweep == "tlb") {
        for (uint32_t entries : {1u, 2u, 4u, 8u, 16u, 32u}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.tlb_entries = entries;
            candidates.push_back(
                {sc, std::to_string(entries) + "-entry TLB"});
        }
    } else if (sweep == "policy") {
        for (auto p : {ReplacementPolicy::Clock, ReplacementPolicy::Lru,
                       ReplacementPolicy::Fifo, ReplacementPolicy::Random}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.l2.policy = p;
            candidates.push_back({sc, replacementPolicyName(p)});
        }
    } else if (sweep == "faults") {
        for (double rate : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
            CacheSimConfig sc =
                withHost(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
            sc.host.fault_injection = true;
            sc.host.faults.drop_rate = rate;
            sc.host.faults.corrupt_rate = rate / 2.0;
            candidates.push_back({sc, formatPercent(rate, 0) + " fault rate"});
        }
    } else {
        std::printf(
            "unknown sweep '%s' (try l1|l2|l2tile|tlb|policy|faults)\n",
            sweep.c_str());
        return 1;
    }

    const ReuseProfilerConfig prof_cli = mrcFromCli(cli);

    std::printf("sweeping '%s' over %s (%d frames, %s filtering, "
                "%zu legs, %u jobs)...\n",
                sweep.c_str(), workload.c_str(), frames,
                filterModeName(cfg.filter), candidates.size(), jobs);

    // Each candidate is one leg: own workload (private TextureManager),
    // own runner + sim (private fault RNG stream), own metrics stream
    // and checkpoint. Results land in leg-indexed slots; every file and
    // table below is emitted in leg order, so output bytes cannot
    // depend on the pool's schedule.
    std::vector<std::unique_ptr<LegState>> legs(candidates.size());
    SweepExecutor executor(jobs);
    if (obs.telemetry()) {
        obs.telemetry()->publishHealth("{\"status\":\"serving\"}");
        executor.setTelemetry(obs.telemetry());
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
        executor.addLeg(candidates[i].label, [&, i](LegContext &ctx) {
            auto leg = std::make_unique<LegState>();
            leg->wl = buildWorkload(workload);
            leg->runner = std::make_unique<MultiConfigRunner>(leg->wl, cfg);
            leg->runner->addSim(candidates[i].config, candidates[i].label);

            if (!obs_cfg.metrics_path.empty()) {
                ObsConfig leg_obs = obs_cfg;
                leg_obs.trace_path.clear();
                // The telemetry plane is process-wide: the shared obs
                // owns the HTTP server and the flight recorder; a leg
                // must not bind a second port or steal the hooks.
                leg_obs.telemetry = false;
                leg_obs.telemetry_port_file.clear();
                leg_obs.slo_spec.clear();
                leg_obs.slo_out.clear();
                leg_obs.flight_out.clear();
                leg_obs.profile_out.clear();
                leg_obs.metrics_path += ".leg" + std::to_string(i);
                leg->obs = std::make_unique<Observability>(
                    leg_obs, /*install_process_hooks=*/false);
                leg->runner->setObservability(leg->obs.get());
            }

            // Reuse-distance profiler: attached to the first swept
            // configuration (every sweep sees the identical reference
            // stream, so one profiled sim predicts the whole capacity
            // axis). Must be attached before runSupervised so a
            // --resume checkpoint restores profiler state.
            if (i == 0 && prof_cli.enabled) {
                ReuseProfilerConfig pc = prof_cli;
                CacheSim &first = *leg->runner->sims().front();
                pc.screen_width = static_cast<uint32_t>(cfg.width);
                pc.screen_height = static_cast<uint32_t>(cfg.height);
                pc.l1_unit_bytes = first.config().l1.lineBytes();
                // L2 sectors transfer L1 lines: sector unit == line.
                pc.l2_unit_bytes = first.config().l1.lineBytes();
                leg->profiler = std::make_unique<ReuseProfiler>(pc);
                first.setReuseProfiler(leg->profiler.get());
            }

            leg->manifest =
                leg->runner->runSupervised(legResilience(resilience, i));
            if (leg->manifest.outcome != RunOutcome::Completed)
                ctx.printf("leg '%s' %s after %d frames%s\n",
                           candidates[i].label.c_str(),
                           runOutcomeName(leg->manifest.outcome),
                           leg->manifest.frames_completed,
                           leg->manifest.checkpoint.empty()
                               ? ""
                               : " (rerun with --resume to finish)");
            if (leg->obs)
                leg->obs->close();
            legs[i] = std::move(leg);
        });
    }
    const SweepManifest sweep_manifest = executor.run();
    if (obs.telemetry())
        obs.telemetry()->publishHealth(
            sweep_manifest.allCompleted()
                ? "{\"status\":\"completed\"}"
                : "{\"status\":\"degraded\"}");
    if (!resilience.checkpoint_path.empty())
        sweep_manifest.writeCsv(resilience.checkpoint_path + ".manifest");

    // Merge per-leg metrics JSONL into the requested file, leg order.
    if (!obs_cfg.metrics_path.empty()) {
        std::ofstream merged(obs_cfg.metrics_path, std::ios::binary);
        for (size_t i = 0; i < legs.size(); ++i) {
            const std::string part =
                obs_cfg.metrics_path + ".leg" + std::to_string(i);
            std::ifstream in(part, std::ios::binary);
            // Skip empty parts (a leg cancelled before its first
            // frame): streaming an empty rdbuf would set failbit on
            // the merged stream.
            if (in.good() && in.peek() != std::ifstream::traits_type::eof())
                merged << in.rdbuf();
            in.close();
            std::remove(part.c_str());
        }
        if (!merged.good()) {
            std::fprintf(stderr, "metrics merge failed: %s\n",
                         obs_cfg.metrics_path.c_str());
            return 1;
        }
    }

    bool all_completed = true;
    for (size_t i = 0; i < legs.size(); ++i) {
        const LegResult &lr = sweep_manifest.legs[i];
        if (lr.outcome == LegOutcome::Failed)
            std::fprintf(stderr, "leg '%s' failed: %s\n", lr.name.c_str(),
                         lr.error.c_str());
        if (!legs[i] ||
            legs[i]->manifest.outcome != RunOutcome::Completed)
            all_completed = false;
    }

    TextTable table({"configuration", "L1 hit", "L2 full hit", "TLB hit",
                     "host MB/frame", "retries", "degraded"});
    for (size_t i = 0; i < legs.size(); ++i) {
        if (!legs[i])
            continue; // failed or cancelled before running
        const LegState &leg = *legs[i];
        const CacheSim &sim = *leg.runner->sims().front();
        const CacheFrameStats &t = sim.totals();
        const bool faulty = sim.hostPath() != nullptr;
        const bool dead = leg.manifest.sims[0].quarantined;
        table.addRow(
            {sim.label() + (dead ? " [quarantined]" : ""),
             formatPercent(t.l1HitRate(), 2),
             sim.l2() ? formatPercent(t.l2FullHitRate()) : "-",
             sim.tlb() ? formatPercent(t.tlbHitRate()) : "-",
             formatDouble(leg.runner->averageHostBytesPerFrame(0) /
                              (1 << 20),
                          3),
             faulty ? std::to_string(t.host_retries) : "-",
             faulty ? std::to_string(t.degraded_accesses) : "-"});
        if (dead)
            std::fprintf(stderr, "sim '%s' quarantined at frame %d: %s\n",
                         sim.label().c_str(),
                         leg.manifest.sims[0].quarantined_at_frame,
                         leg.manifest.sims[0].error.describe().c_str());
    }
    table.print();

    if (obs_cfg.miss_classes) {
        std::printf("\n3C miss classification (run totals):\n");
        TextTable cls({"configuration", "cache", "compulsory", "capacity",
                       "conflict"});
        for (const auto &legp : legs) {
            if (!legp)
                continue;
            const CacheSim &sim = *legp->runner->sims().front();
            const CacheFrameStats &t = sim.totals();
            cls.addRow({sim.label(), "L1", std::to_string(t.l1_compulsory),
                        std::to_string(t.l1_capacity),
                        std::to_string(t.l1_conflict)});
            if (sim.l2Classifier())
                cls.addRow({sim.label(), "L2",
                            std::to_string(t.l2_compulsory),
                            std::to_string(t.l2_capacity),
                            std::to_string(t.l2_conflict)});
        }
        cls.print();

        std::printf("\ntop %u textures by attributed miss traffic:\n",
                    obs_cfg.top_textures);
        TextTable top({"configuration", "tex", "misses", "compulsory",
                       "capacity", "conflict", "host MB"});
        for (const auto &legp : legs) {
            if (!legp)
                continue;
            const CacheSim &sim = *legp->runner->sims().front();
            const MissClassifier *mc = sim.l2Classifier()
                                           ? sim.l2Classifier()
                                           : sim.l1Classifier();
            if (!mc)
                continue;
            for (const MissAttributionRow &row :
                 mc->topTexturesByTraffic(obs_cfg.top_textures))
                top.addRow({sim.label(), std::to_string(row.tex),
                            std::to_string(row.counts.total()),
                            std::to_string(row.counts.compulsory),
                            std::to_string(row.counts.capacity),
                            std::to_string(row.counts.conflict),
                            formatDouble(static_cast<double>(row.bytes) /
                                             (1 << 20),
                                         3)});
        }
        top.print();
    }

    if (!legs.empty() && legs[0] && legs[0]->profiler) {
        const ReuseProfiler &profiler = *legs[0]->profiler;
        std::printf("\nreuse-distance profile of '%s':\n%s",
                    legs[0]->runner->sims().front()->label().c_str(),
                    profiler.asciiMrc().c_str());
        try {
            if (!prof_cli.mrc_out.empty()) {
                profiler.writeMrc(prof_cli.mrc_out);
                std::printf("[mrc] %s.csv %s.ws.csv %s.json\n",
                            prof_cli.mrc_out.c_str(),
                            prof_cli.mrc_out.c_str(),
                            prof_cli.mrc_out.c_str());
            }
            if (!prof_cli.heatmap_out.empty()) {
                profiler.writeHeatmaps(prof_cli.heatmap_out);
                std::printf("[heatmap] %s.json + PGM maps\n",
                            prof_cli.heatmap_out.c_str());
            }
        } catch (const Exception &e) {
            std::fprintf(stderr, "profiler output failed: %s\n",
                         e.error().describe().c_str());
            return 1;
        }
    }

    if (obs.trace()) {
        std::printf("\nstage self-times (%s):\n",
                    obs_cfg.trace_path.c_str());
        TextTable st({"stage", "count", "total ms", "self ms"});
        for (const StageStat &s : obs.trace()->stageStats())
            st.addRow({s.name, std::to_string(s.count),
                       formatDouble(static_cast<double>(s.total_us) / 1000.0,
                                    2),
                       formatDouble(static_cast<double>(s.self_us) / 1000.0,
                                    2)});
        st.print();
    }

    try {
        obs.close();
    } catch (const Exception &e) {
        std::fprintf(stderr, "observability output failed: %s\n",
                     e.error().describe().c_str());
        return 1;
    }
    if (!obs_cfg.profile_out.empty())
        std::printf("[profile] %s.folded %s.json\n",
                    obs_cfg.profile_out.c_str(),
                    obs_cfg.profile_out.c_str());
    return all_completed ? 0 : 2;
}
