/**
 * @file
 * Chrome trace-event schema validator: asserts a file written with
 * --trace-out is a well-formed JSON object trace that Perfetto /
 * chrome://tracing will load. Checked invariants:
 *
 *  - the document is an object with a `traceEvents` array;
 *  - every event has a string `ph` and numeric `pid`/`tid`, and every
 *    non-metadata event a numeric `ts`;
 *  - duration events nest: every E matches the innermost open B on its
 *    (pid, tid), none are left open, and no E closes an empty stack;
 *  - timestamps are monotonically non-decreasing per thread;
 *  - counter (C) and instant (i) events carry their required fields;
 *  - telemetry instants are well-formed: `flight.dumped` names its
 *    trigger in args.reason, and `slo.*` transitions carry either the
 *    live-tracer rule/stream strings or the flight-ring numeric seq.
 *
 * Exits 0 and prints event counts when the trace is valid; exits 1
 * naming the first violated invariant otherwise. Used by the
 * trace-schema ctest (scripts/validate_trace.sh).
 */
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    if (argc != 2) {
        std::printf("usage: trace_validate <trace.json>\n");
        return 1;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::printf("FAIL: cannot open '%s'\n", argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    JsonValue doc;
    try {
        doc = parseJson(buf.str());
    } catch (const Exception &e) {
        std::printf("FAIL: not valid JSON: %s\n",
                    e.error().message.c_str());
        return 1;
    }
    if (!doc.isObject() || !doc.find("traceEvents") ||
        !doc.at("traceEvents").isArray()) {
        std::printf("FAIL: no traceEvents array at the top level\n");
        return 1;
    }

    // Per-(pid, tid) open B/E stack and last timestamp.
    std::map<std::pair<double, double>, std::vector<std::string>> open;
    std::map<std::pair<double, double>, double> last_ts;
    size_t durations = 0, counters = 0, instants = 0, metadata = 0;

    const auto &events = doc.at("traceEvents").asArray();
    for (size_t i = 0; i < events.size(); ++i) {
        const JsonValue &ev = events[i];
        auto fail = [&](const std::string &why) {
            std::printf("FAIL: event %zu: %s\n", i, why.c_str());
            return 1;
        };
        if (!ev.isObject())
            return fail("not an object");
        const JsonValue *ph = ev.find("ph");
        if (!ph || !ph->isString())
            return fail("missing string 'ph'");
        const JsonValue *pid = ev.find("pid");
        const JsonValue *tid = ev.find("tid");
        if (!pid || !pid->isNumber() || !tid || !tid->isNumber())
            return fail("missing numeric 'pid'/'tid'");
        const std::string &phase = ph->asString();

        if (phase == "M") {
            ++metadata;
            continue; // metadata carries no timestamp
        }
        const JsonValue *ts = ev.find("ts");
        if (!ts || !ts->isNumber())
            return fail("missing numeric 'ts'");
        const auto thread =
            std::make_pair(pid->asNumber(), tid->asNumber());
        const auto it = last_ts.find(thread);
        if (it != last_ts.end() && ts->asNumber() < it->second)
            return fail("timestamp decreases on its thread");
        last_ts[thread] = ts->asNumber();

        const JsonValue *name = ev.find("name");
        if (phase == "B") {
            if (!name || !name->isString())
                return fail("B event without a string 'name'");
            open[thread].push_back(name->asString());
            ++durations;
        } else if (phase == "E") {
            auto &stack = open[thread];
            if (stack.empty())
                return fail("E event with no open B on its thread");
            stack.pop_back();
        } else if (phase == "C") {
            const JsonValue *args = ev.find("args");
            if (!name || !name->isString())
                return fail("C event without a string 'name'");
            if (!args || !args->isObject() || args->asObject().empty())
                return fail("C event without a non-empty args object");
            for (const auto &[series, v] : args->asObject())
                if (!v.isNumber())
                    return fail("C series '" + series + "' not numeric");
            ++counters;
        } else if (phase == "i") {
            if (!name || !name->isString())
                return fail("i event without a string 'name'");
            const std::string &n = name->asString();
            const JsonValue *args = ev.find("args");
            const auto string_arg = [&args](const char *key) {
                const JsonValue *v = args ? args->find(key) : nullptr;
                return v != nullptr && v->isString();
            };
            if (n == "flight.dumped") {
                // Flight-bundle commit record: must say why it dumped.
                if (!args || !args->isObject() || !string_arg("reason"))
                    return fail("flight.dumped without string args.reason");
            } else if (n.rfind("slo.", 0) == 0) {
                // SLO transitions come in two shapes: live-tracer
                // instants carry the rule spec and entity as strings;
                // flight-ring replays carry the numeric value + ring
                // sequence instead (recognisable by args.seq).
                if (!args || !args->isObject())
                    return fail("slo.* instant without an args object");
                const JsonValue *seq = args->find("seq");
                if (seq) {
                    if (!seq->isNumber())
                        return fail("slo.* flight instant with "
                                    "non-numeric args.seq");
                } else if (!string_arg("rule") || !string_arg("stream")) {
                    return fail("slo.* instant without string args.rule "
                                "and args.stream");
                }
            }
            ++instants;
        } else {
            return fail("unknown phase '" + phase + "'");
        }
    }

    for (const auto &[thread, stack] : open)
        if (!stack.empty()) {
            std::printf("FAIL: scope '%s' left open at end of trace\n",
                        stack.back().c_str());
            return 1;
        }

    std::printf("OK: %zu events (%zu B/E pairs, %zu counters, "
                "%zu instants, %zu metadata)\n",
                events.size(), durations, counters, instants, metadata);
    return 0;
}
