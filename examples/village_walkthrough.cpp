/**
 * @file
 * Village walk-through — the paper's primary workload, end to end.
 *
 * Renders the scripted Village animation while simultaneously simulating
 * the three architectures the paper compares:
 *   - pull  : 2 KB L1 only, every miss downloads over AGP
 *   - L2    : 2 KB L1 + 2 MB L2 (16x16 tiles, clock replacement)
 *   - push  : oracle whole-texture residency (memory floor)
 * and prints a per-frame dashboard plus the run summary with the paper's
 * headline ratios (memory saving vs push, bandwidth saving vs pull).
 *
 * Usage: village_walkthrough [--frames N] [--filter point|bilinear|
 *        trilinear] [--snapshots DIR]
 */
#include <cstdio>
#include <string>

#include "sim/multi_config_runner.hpp"
#include "util/cli.hpp"
#include "util/ppm.hpp"
#include "util/table.hpp"
#include "workload/village.hpp"

namespace {

mltc::FilterMode
parseFilter(const std::string &name)
{
    if (name == "point")
        return mltc::FilterMode::Point;
    if (name == "bilinear")
        return mltc::FilterMode::Bilinear;
    return mltc::FilterMode::Trilinear;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mltc;
    CommandLine cli(argc, argv);
    const int frames = static_cast<int>(cli.getInt("frames", 60));
    const std::string snapshots = cli.getString("snapshots", "");

    Workload wl = buildVillage();
    std::printf("Village: %zu objects, %llu triangles, %s textures\n",
                wl.scene.objects().size(),
                static_cast<unsigned long long>(wl.scene.triangleCount()),
                formatBytes(static_cast<double>(
                                wl.textures->totalHostBytes()))
                    .c_str());

    DriverConfig cfg;
    cfg.filter = parseFilter(cli.getString("filter", "trilinear"));
    cfg.frames = frames;

    MultiConfigRunner runner(wl, cfg);
    runner.addSim(CacheSimConfig::pull(2 * 1024), "pull");
    CacheSimConfig l2cfg = CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
    l2cfg.tlb_entries = 8;
    runner.addSim(l2cfg, "L2");
    runner.addWorkingSets({16}, {4});
    runner.addPushModel();

    uint64_t push_total = 0, l2_ws_total = 0;
    runner.run([&](const FrameRow &row) {
        push_total += row.push_bytes;
        l2_ws_total += row.working_sets->l2[0].bytesTouched();
        if (row.frame % 10 == 0) {
            std::printf("frame %3d: d=%.2f  pull=%7.2f MB  L2=%6.2f MB  "
                        "tlb=%s\n",
                        row.frame,
                        row.raster.depthComplexity(cfg.width, cfg.height),
                        static_cast<double>(row.sims[0].host_bytes) /
                            (1 << 20),
                        static_cast<double>(row.sims[1].host_bytes) /
                            (1 << 20),
                        formatPercent(row.sims[1].tlbHitRate()).c_str());
        }
    });

    const double n = static_cast<double>(runner.rows().size());
    const CacheFrameStats &pull = runner.sims()[0]->totals();
    const CacheFrameStats &l2 = runner.sims()[1]->totals();

    double pull_mb = static_cast<double>(pull.host_bytes) / n / (1 << 20);
    double l2_mb = static_cast<double>(l2.host_bytes) / n / (1 << 20);
    double push_avg_mb = static_cast<double>(push_total) / n / (1 << 20);
    double ws_avg_mb = static_cast<double>(l2_ws_total) / n / (1 << 20);

    std::printf("\n=== summary over %.0f frames (%s filtering) ===\n", n,
                filterModeName(cfg.filter));
    std::printf("L1 hit rate            %s\n",
                formatPercent(l2.l1HitRate(), 2).c_str());
    std::printf("L2 full/partial hits   %s / %s of L1 misses\n",
                formatPercent(l2.l2FullHitRate()).c_str(),
                formatPercent(l2.l2PartialHitRate()).c_str());
    std::printf("pull bandwidth         %.2f MB/frame (%.0f MB/s @30Hz)\n",
                pull_mb, pull_mb * 30);
    std::printf("L2 bandwidth           %.2f MB/frame (%.0f MB/s @30Hz)\n",
                l2_mb, l2_mb * 30);
    std::printf("bandwidth saving       %.1fx (paper: 5x-18x for 2MB L2)\n",
                pull_mb / l2_mb);
    std::printf("push memory (oracle)   %.2f MB/frame\n", push_avg_mb);
    std::printf("L2 working set         %.2f MB/frame -> %.1fx less local "
                "memory (paper: 3x-5x)\n",
                ws_avg_mb, push_avg_mb / ws_avg_mb);

    if (!snapshots.empty()) {
        // Re-render a few frames with shading for Figure-12 style stills.
        Rasterizer raster(1024, 768);
        raster.setFilter(cfg.filter);
        Framebuffer fb(1024, 768);
        raster.setFramebuffer(&fb);
        for (int i = 0; i < 4; ++i) {
            int f = i * (frames - 1) / 3;
            fb.clear(packRgba(40, 60, 90));
            Camera cam = wl.cameraAtFrame(f, frames, 1024.0f / 768.0f);
            raster.renderFrame(wl.scene, cam, *wl.textures);
            std::string path = snapshots + "/village_" +
                               std::to_string(f) + ".ppm";
            if (writePpm(path, 1024, 768, fb.colors()))
                std::printf("wrote %s\n", path.c_str());
        }
    }
    return 0;
}
