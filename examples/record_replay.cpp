/**
 * @file
 * Trace-driven simulation: record a short clip's texel access stream to
 * disk, then replay it into several cache configurations without
 * re-rasterizing — the methodology of classic trace-driven cache
 * studies (and of the paper itself, §3.3).
 *
 * Usage: record_replay [--workload village|city|terrain] [--frames N]
 *        [--trace path.bin] [--keep] [--jobs N]
 *        [--faults | --fault-drop R --fault-corrupt R ... --retry-max N]
 *        [--audit off|cheap|full] [--checkpoint base [--resume]]
 *        [--mrc [--mrc-out BASE] [--heatmap-out BASE]
 *         [--mrc-sample-rate R]]
 *        [--telemetry-port P [--telemetry-port-file F]]
 *        [--trace-out T.json] [--flight-out PREFIX]
 *        [--profile-out PREFIX [--profile-hz N] [--profile-no-counters]]
 *
 * With --profile-out the sampling stage profiler (docs/profiling.md)
 * covers both phases: record-time raster/sampler stages and replay-time
 * per-leg "leg:<config>" roots land in PREFIX.folded / PREFIX.json.
 *
 * With --telemetry-port the whole record+replay pipeline serves live
 * /metrics, /healthz and /runz (per-leg sweep status) on 127.0.0.1 —
 * scraping never perturbs the recorded or replayed bytes.
 *
 * Recording is a single pass; the replays are independent legs run on
 * the work-stealing pool (--jobs, default MLTC_JOBS env or hardware
 * concurrency — see docs/parallelism.md). Each leg opens its own
 * TraceReader over the recorded clip and replays into its own workload
 * and simulator, so output is byte-identical for any worker count.
 *
 * With --mrc every replayed configuration carries a reuse-distance
 * profiler; per-candidate outputs are written to `BASE.<config>` bases.
 * Replayed traces carry no pixel positions, so the screen-space heatmap
 * is absent here (texture-space maps and MRCs are unaffected).
 *
 * With a fault scenario enabled (see host/host_cli.hpp) the replayed
 * configurations run over the fault-injectable host backend and report
 * retries and MIP-degraded accesses per configuration.
 *
 * Every replayed simulator is audited at frame boundaries (--audit,
 * default cheap). With --checkpoint=BASE each configuration's full
 * simulator state is snapshot to `BASE.<config>.snap` after the replay;
 * with --resume it is restored from there first, so a clip can be
 * replayed in warm-cache sessions across process restarts — the direct
 * CacheSim save/load path under the runner-level machinery.
 */
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_sim.hpp"
#include "host/host_cli.hpp"
#include "obs/observability.hpp"
#include "obs/reuse_profiler.hpp"
#include "sim/animation_driver.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/resilience.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/serializer.hpp"
#include "util/table.hpp"
#include "workload/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    CommandLine cli(argc, argv);
    try {
        installIoFaultsFromCli(cli); // --io-faults=eio=R,...,seed=S
    } catch (const Exception &e) {
        std::fprintf(stderr, "%s\n", e.error().describe().c_str());
        return 1;
    }
    // --batch / --no-batch override the MLTC_BATCH process default
    // (docs/batched_access.md); outputs are identical either way.
    if (cli.has("no-batch"))
        setBatchedAccess(false);
    else if (cli.has("batch"))
        setBatchedAccess(cli.getFlag("batch"));
    const std::string name = cli.getString("workload", "village");
    const int frames = static_cast<int>(cli.getInt("frames", 8));
    const std::string path = cli.getString("trace", "/tmp/mltc_clip.bin");
    const ResilienceConfig resilience = resilienceFromCli(cli);
    const unsigned jobs = jobsFromCli(cli);

    // Telemetry plane: one process-wide bundle (HTTP server, shared
    // tracer, flight recorder). Per-leg metrics JSONL is not merged
    // here, so keep the registry driven by the sweep status only.
    ObsConfig obs_cfg;
    std::unique_ptr<Observability> obs;
    try {
        obs_cfg = obsFromCli(cli);
        obs_cfg.metrics_path.clear();
        if (obs_cfg.anyEnabled())
            obs = std::make_unique<Observability>(obs_cfg);
    } catch (const Exception &e) {
        std::fprintf(stderr, "%s\n", e.error().describe().c_str());
        return 1;
    }

    // --- Record ---------------------------------------------------------
    {
        if (obs && obs->telemetry())
            obs->telemetry()->publishHealth(
                "{\"status\":\"recording\"}");
        Workload wl = buildWorkload(name);
        std::printf("recording %d frames of '%s' to %s...\n", frames,
                    name.c_str(), path.c_str());
        TraceWriter writer(path);
        DriverConfig cfg;
        cfg.filter = FilterMode::Bilinear;
        cfg.frames = frames;
        runAnimation(wl, cfg, &writer,
                     [&](int, const FrameStats &) { writer.endFrame(); });
        writer.close(); // fails loudly on a truncated trace
    }

    // --- Replay into several configurations ------------------------------
    struct Candidate
    {
        const char *label;
        const char *slug; ///< checkpoint-file suffix
        CacheSimConfig config;
    } candidates[] = {
        {"pull 2KB", "pull2", CacheSimConfig::pull(2 * 1024)},
        {"pull 16KB", "pull16", CacheSimConfig::pull(16 * 1024)},
        {"2KB + 1MB L2", "l2_1mb",
         CacheSimConfig::twoLevel(2 * 1024, 1ull << 20)},
        {"2KB + 4MB L2", "l2_4mb",
         CacheSimConfig::twoLevel(2 * 1024, 4ull << 20)},
    };
    const size_t n = sizeof candidates / sizeof candidates[0];

    const ReuseProfilerConfig prof_base = mrcFromCli(cli);
    const HostPathConfig host = hostPathFromCli(cli);
    if (host.fault_injection)
        std::printf("replaying over a faulty host channel (seed %llu, "
                    "drop %.3f, corrupt %.3f)\n",
                    static_cast<unsigned long long>(host.faults.seed),
                    host.faults.drop_rate, host.faults.corrupt_rate);

    // One replay per leg: each opens its own TraceReader over the
    // recorded clip and replays into a private workload + simulator, so
    // the table below is byte-identical regardless of --jobs. Buffered
    // per-leg stdout (snapshot notes, MRC ascii) flushes in leg order.
    std::vector<std::vector<std::string>> rows(n);
    SweepExecutor sweep(jobs);
    if (obs && obs->telemetry()) {
        obs->telemetry()->publishHealth("{\"status\":\"replaying\"}");
        sweep.setTelemetry(obs->telemetry());
    }
    for (size_t i = 0; i < n; ++i) {
        const Candidate &cand = candidates[i];
        sweep.addLeg(cand.label, [&, i, cand](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            CacheSimConfig sc = cand.config;
            sc.host = host;
            CacheSim sim(*wl.textures, sc, cand.label);
            // Per-candidate profiler; attached before load() so a
            // resumed snapshot restores the profiler state it was
            // saved with.
            std::unique_ptr<ReuseProfiler> profiler;
            if (prof_base.enabled) {
                ReuseProfilerConfig pc = prof_base;
                pc.l1_unit_bytes = sc.l1.lineBytes();
                pc.l2_unit_bytes = sc.l1.lineBytes();
                profiler = std::make_unique<ReuseProfiler>(pc);
                sim.setReuseProfiler(profiler.get());
            }
            const std::string snap =
                resilience.checkpoint_path.empty()
                    ? std::string()
                    : resilience.checkpoint_path + "." + cand.slug +
                          ".snap";
            if (resilience.resume && !snap.empty()) {
                SnapshotReader r = openSnapshotGeneration(snap);
                sim.load(r);
                r.expectEnd();
            }
            TraceReader reader(path);
            uint64_t replayed = 0;
            while (reader.replayFrame(sim)) {
                sim.endFrame();
                sim.audit(resilience.audit);
                ++replayed;
            }
            if (!snap.empty()) {
                SnapshotWriter w(snap);
                w.keepPrevious(true);
                sim.save(w);
                w.finish();
                ctx.printf("[snapshot] %s\n", snap.c_str());
            }
            (void)replayed;
            if (profiler) {
                ctx.printf("\nreuse-distance profile of '%s':\n%s",
                           cand.label, profiler->asciiMrc().c_str());
                const std::string suffix = std::string(".") + cand.slug;
                if (!prof_base.mrc_out.empty())
                    profiler->writeMrc(prof_base.mrc_out + suffix);
                if (!prof_base.heatmap_out.empty())
                    profiler->writeHeatmaps(prof_base.heatmap_out + suffix);
            }
            const CacheFrameStats &t = sim.totals();
            // totals() and frames() span resumed sessions consistently.
            rows[i] = {cand.label, formatPercent(t.l1HitRate(), 2),
                       formatDouble(static_cast<double>(t.host_bytes) /
                                        static_cast<double>(sim.frames()) /
                                        (1 << 20),
                                    3),
                       host.fault_injection
                           ? std::to_string(t.host_retries)
                           : "-",
                       host.fault_injection
                           ? std::to_string(t.degraded_accesses)
                           : "-"};
        });
    }
    const SweepManifest manifest = sweep.run();

    TextTable table({"configuration", "L1 hit", "host MB/frame", "retries",
                     "degraded"});
    bool ok = true;
    for (size_t i = 0; i < n; ++i) {
        const LegResult &lr = manifest.legs[i];
        if (lr.outcome != LegOutcome::Completed) {
            std::fprintf(stderr, "replay '%s' %s%s%s\n", lr.name.c_str(),
                         legOutcomeName(lr.outcome),
                         lr.error.empty() ? "" : ": ",
                         lr.error.c_str());
            ok = false;
            continue;
        }
        table.addRow(rows[i]);
    }
    table.print();

    if (!cli.getFlag("keep")) {
        std::remove(path.c_str());
        std::printf("(trace deleted; pass --keep to keep it)\n");
    }
    if (obs) {
        if (obs->telemetry())
            obs->telemetry()->publishHealth(
                ok ? "{\"status\":\"completed\"}"
                   : "{\"status\":\"degraded\"}");
        try {
            obs->close();
        } catch (const Exception &e) {
            std::fprintf(stderr, "observability output failed: %s\n",
                         e.error().describe().c_str());
            return 1;
        }
        if (!obs_cfg.profile_out.empty())
            std::printf("[profile] %s.folded %s.json\n",
                        obs_cfg.profile_out.c_str(),
                        obs_cfg.profile_out.c_str());
    }
    return ok ? 0 : 1;
}
