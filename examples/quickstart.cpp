/**
 * @file
 * Quickstart: build a workload, render a few frames through the
 * two-level texture cache, and print what happened.
 *
 * This walks the whole public API surface in ~60 lines:
 *   1. build a procedural workload (scene + textures + camera script)
 *   2. attach a CacheSim (16 KB L1 + 4 MB L2, the paper's architecture)
 *   3. rasterize frames; the access stream drives the cache simulator
 *   4. read the per-frame and cumulative statistics
 *
 * Usage: quickstart [--workload village|city] [--frames N]
 *                   [--snapshot out.ppm]
 */
#include <cstdio>

#include "core/cache_sim.hpp"
#include "raster/framebuffer.hpp"
#include "raster/rasterizer.hpp"
#include "util/cli.hpp"
#include "util/ppm.hpp"
#include "util/table.hpp"
#include "workload/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    CommandLine cli(argc, argv);
    const std::string name = cli.getString("workload", "village");
    const int frames = static_cast<int>(cli.getInt("frames", 16));
    const std::string snapshot = cli.getString("snapshot", "");

    Workload wl = buildWorkload(name);
    std::printf("workload '%s': %zu objects, %llu triangles, %zu textures "
                "(%s in host memory)\n",
                wl.name.c_str(), wl.scene.objects().size(),
                static_cast<unsigned long long>(wl.scene.triangleCount()),
                wl.textures->textureCount(),
                formatBytes(static_cast<double>(
                                wl.textures->totalHostBytes()))
                    .c_str());

    // The paper's proposed architecture: small on-chip L1 backed by an
    // L2 in local DRAM, textures pulled from host memory by sector.
    CacheSim sim(*wl.textures,
                 CacheSimConfig::twoLevel(16 * 1024, 4ull << 20), "L2-arch");

    Rasterizer raster(1024, 768);
    raster.setFilter(FilterMode::Trilinear);
    raster.setSink(&sim);

    Framebuffer fb(1024, 768);
    for (int f = 0; f < frames; ++f) {
        // Attach the framebuffer only for the frame we snapshot; shading
        // costs time and the simulator does not need it.
        bool shade = !snapshot.empty() && f == frames - 1;
        raster.setFramebuffer(shade ? &fb : nullptr);
        if (shade)
            fb.clear(packRgba(40, 60, 90));

        Camera cam = wl.cameraAtFrame(f, frames, 1024.0f / 768.0f);
        FrameStats fs = raster.renderFrame(wl.scene, cam, *wl.textures);
        CacheFrameStats cs = sim.endFrame();

        std::printf("frame %3d: d=%.2f  accesses=%llu  L1 hit=%s  "
                    "host download=%s\n",
                    f, fs.depthComplexity(1024, 768),
                    static_cast<unsigned long long>(cs.accesses),
                    formatPercent(cs.l1HitRate()).c_str(),
                    formatBytes(static_cast<double>(cs.host_bytes)).c_str());
    }

    const CacheFrameStats &t = sim.totals();
    std::printf("\ntotals over %u frames:\n", sim.frames());
    std::printf("  L1 hit rate        %s\n",
                formatPercent(t.l1HitRate()).c_str());
    std::printf("  L2 full-hit rate   %s (of L1 misses)\n",
                formatPercent(t.l2FullHitRate()).c_str());
    std::printf("  L2 partial rate    %s (of L1 misses)\n",
                formatPercent(t.l2PartialHitRate()).c_str());
    std::printf("  host bandwidth     %s/frame\n",
                formatBytes(static_cast<double>(t.host_bytes) /
                            sim.frames())
                    .c_str());
    std::printf("  L2 local reads     %s/frame\n",
                formatBytes(static_cast<double>(t.l2_read_bytes) /
                            sim.frames())
                    .c_str());

    if (!snapshot.empty()) {
        if (writePpm(snapshot, 1024, 768, fb.colors()))
            std::printf("wrote %s\n", snapshot.c_str());
        else
            std::printf("failed to write %s\n", snapshot.c_str());
    }
    return 0;
}
