/**
 * @file
 * Summarise experiment CSVs without leaving the toolchain: per-column
 * min/mean/max over any CSV the benches emitted, or a quick comparison
 * of two columns (e.g. total vs new bandwidth). Also summarises the
 * metrics JSONL stream cache_explorer --metrics-out writes, renders
 * ASCII miss-ratio curves from --mrc-out CSVs, and lists the hottest
 * texture blocks from --heatmap-out JSONs.
 *
 * Usage:
 *   report series.csv                   # summarise every numeric column
 *   report series.csv --ratio a b      # mean(a)/mean(b) and per-row max
 *   report --metrics run.jsonl         # counter totals / gauge summary
 *   report --streams run.jsonl         # per-stream multi-tenant table
 *   report --mrc run_mrc.csv           # ASCII miss-ratio curve plot
 *   report --heatmap hm.json [--top-blocks N]   # hottest L2 blocks
 *   report compare A.jsonl B.jsonl [--threshold R]
 *       # differential summary of two metrics files; exits 3 when any
 *       # series' relative delta exceeds R (CI regression gate)
 *   report profile A.folded B.folded [--threshold R] [--min-share S]
 *       # differential stage profile of two collapsed-stack files
 *       # (--profile-out); same exit contract as compare: 3 when any
 *       # stage's symmetric relative self-share delta exceeds R
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics_summary.hpp"
#include "obs/profiler.hpp"
#include "util/cli.hpp"
#include "util/csv_reader.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

/** `report --metrics`: delegate to the obs library and print. */
int
summarizeMetrics(const std::string &path)
{
    using namespace mltc;
    try {
        const MetricsSummary s = summarizeMetricsFile(path);
        std::printf("%s: %s", path.c_str(),
                    renderMetricsSummary(s).c_str());
    } catch (const Exception &e) {
        std::printf("error: %s\n", e.error().describe().c_str());
        return 1;
    }
    return 0;
}

/**
 * `report --streams`: fold a multi-tenant run's merged metrics JSONL
 * (cache_explorer --streams K --metrics-out) into one row per tenant
 * stream. Counters are cumulative so the folded totals are the run
 * totals; the bias and noisy flags are reported as their per-round
 * peaks so a transient overload round is still visible.
 */
int
summarizeStreams(const std::string &path)
{
    using namespace mltc;
    MetricsSummary s;
    try {
        s = summarizeMetricsFile(path);
    } catch (const Exception &e) {
        std::printf("error: %s\n", e.error().describe().c_str());
        return 1;
    }

    // Metric keys carry the tenant as a label ("l1.miss{stream=3}");
    // SLO attribution counters carry two ("slo.violation_rounds
    // {cause=thrash,stream=3}", labels in sorted order).
    const auto splitLabels =
        [](const std::string &key, std::string &base,
           std::map<std::string, std::string> &labels) {
            const size_t brace = key.find('{');
            if (brace == std::string::npos || key.back() != '}')
                return false;
            base = key.substr(0, brace);
            labels.clear();
            const std::string body =
                key.substr(brace + 1, key.size() - brace - 2);
            size_t start = 0;
            while (start < body.size()) {
                size_t comma = body.find(',', start);
                if (comma == std::string::npos)
                    comma = body.size();
                const std::string pair = body.substr(start, comma - start);
                const size_t eq = pair.find('=');
                if (eq == std::string::npos || eq == 0)
                    return false;
                labels[pair.substr(0, eq)] = pair.substr(eq + 1);
                start = comma + 1;
            }
            return !labels.empty();
        };
    const auto streamId = [](const std::map<std::string, std::string> &l,
                             int &stream) {
        const auto it = l.find("stream");
        if (it == l.end() || it->second.empty() ||
            it->second.find_first_not_of("0123456789") != std::string::npos)
            return false;
        stream = std::stoi(it->second);
        return true;
    };

    std::map<int, std::map<std::string, double>> per_stream;
    std::map<int, std::map<std::string, double>> violations;
    for (const auto &[key, value] : s.final_counters) {
        std::string base;
        std::map<std::string, std::string> labels;
        int stream = 0;
        if (!splitLabels(key, base, labels) || !streamId(labels, stream))
            continue;
        if (base == "slo.violation_rounds" && labels.count("cause"))
            violations[stream][labels.at("cause")] += value;
        else if (labels.size() == 1)
            per_stream[stream][base] = value;
    }
    for (const auto &[key, series] : s.gauges) {
        std::string base;
        std::map<std::string, std::string> labels;
        int stream = 0;
        if (splitLabels(key, base, labels) && streamId(labels, stream) &&
            labels.size() == 1)
            per_stream[stream]["max:" + base] = series.max;
    }
    if (per_stream.empty()) {
        std::printf("error: %s has no {stream=N}-labelled metrics — "
                    "was it written by a --streams run?\n", path.c_str());
        return 1;
    }

    std::printf("%s: %zu tenant stream(s) over %zu frame rows\n",
                path.c_str(), per_stream.size(), s.frame_rows);
    TextTable out({"stream", "accesses", "L1 miss", "L2 miss", "host MB",
                   "peak bias", "noisy", "quarantined", "SLO rounds",
                   "SLO cause"});
    for (const auto &[stream, m] : per_stream) {
        const auto get = [&m](const char *key) {
            const auto it = m.find(key);
            return it == m.end() ? 0.0 : it->second;
        };
        const double accesses = get("accesses");
        const double l1_miss = get("l1.miss");
        const double l2_lookups = get("l2.full_hit") +
                                  get("l2.partial_hit") +
                                  get("l2.full_miss");
        // SLO attribution: total alerting rounds and the dominant cause
        // (thrash = a noisy neighbour, overload = governor bias, other).
        double slo_rounds = 0.0;
        std::string cause = "-";
        double cause_rounds = 0.0;
        const auto vit = violations.find(stream);
        if (vit != violations.end()) {
            for (const auto &[name, rounds] : vit->second) {
                slo_rounds += rounds;
                if (rounds > cause_rounds) {
                    cause_rounds = rounds;
                    cause = name;
                }
            }
        }
        out.addRow({std::to_string(stream),
                    formatDouble(accesses, 0),
                    accesses == 0.0 ? "-"
                                    : formatPercent(l1_miss / accesses, 2),
                    l2_lookups == 0.0
                        ? "-"
                        : formatPercent(get("l2.full_miss") / l2_lookups, 2),
                    formatDouble(get("host.bytes") / (1024.0 * 1024.0), 2),
                    formatDouble(get("max:lod_bias"), 0),
                    get("max:noisy") > 0.0 ? "yes" : "no",
                    get("quarantined") > 0.0 ? "yes" : "no",
                    slo_rounds == 0.0 ? "-" : formatDouble(slo_rounds, 0),
                    cause});
    }
    out.print();
    return 0;
}

/**
 * `report compare A B`: differential summary of two metrics JSONL
 * files (counter totals and gauge means). With --threshold R, exits 3
 * when any series' symmetric relative delta exceeds R — the scriptable
 * form of "did this change move the numbers?".
 */
int
compareMetrics(const std::string &path_a, const std::string &path_b,
               double threshold)
{
    using namespace mltc;
    MetricsSummary a, b;
    try {
        a = summarizeMetricsFile(path_a);
        b = summarizeMetricsFile(path_b);
    } catch (const Exception &e) {
        std::printf("error: %s\n", e.error().describe().c_str());
        return 1;
    }
    const MetricsDiff d = diffMetricsSummaries(a, b);
    std::printf("A = %s (%zu frame rows), B = %s (%zu frame rows)\n%s",
                path_a.c_str(), a.frame_rows, path_b.c_str(), b.frame_rows,
                renderMetricsDiff(d).c_str());
    if (threshold >= 0.0 && d.max_rel > threshold) {
        std::printf("FAIL: max relative delta %s exceeds threshold %s\n",
                    formatPercent(d.max_rel, 2).c_str(),
                    formatPercent(threshold, 2).c_str());
        return 3;
    }
    return 0;
}

/**
 * `report profile A B`: differential stage profile of two .folded
 * files. Shares are self-sample fractions, so the comparison is
 * duration-independent: two runs of the same configuration agree even
 * when one sampled longer. With --threshold R, exits 3 when any
 * stage's symmetric relative delta exceeds R — the profiling twin of
 * `report compare`. --min-share S (default 0.005) keeps rarely-sampled
 * stages from tripping the gate on sampling noise.
 */
int
compareProfiles(const std::string &path_a, const std::string &path_b,
                double threshold, double min_share)
{
    using namespace mltc;
    FoldedProfile a, b;
    try {
        a = loadFolded(path_a);
        b = loadFolded(path_b);
    } catch (const Exception &e) {
        std::printf("error: %s\n", e.error().describe().c_str());
        return 1;
    }
    const ProfileDiff d = diffFoldedProfiles(a, b, min_share);
    std::printf("A = %s (%llu samples), B = %s (%llu samples)\n",
                path_a.c_str(),
                static_cast<unsigned long long>(a.total_samples),
                path_b.c_str(),
                static_cast<unsigned long long>(b.total_samples));
    TextTable out({"stage", "self A", "self B", "rel delta"});
    for (const ProfileDiffRow &row : d.rows)
        out.addRow({row.name, formatPercent(row.share_a, 2),
                    formatPercent(row.share_b, 2),
                    formatPercent(row.rel_delta, 2)});
    out.print();
    if (threshold >= 0.0 && d.max_rel > threshold) {
        std::printf("FAIL: max relative delta %s exceeds threshold %s\n",
                    formatPercent(d.max_rel, 2).c_str(),
                    formatPercent(threshold, 2).c_str());
        return 3;
    }
    return 0;
}

/**
 * `report --mrc`: render the miss-ratio curve CSV a profiled run wrote
 * (columns level,capacity_units,capacity_bytes,miss_ratio) as ASCII bar
 * plots, one per cache level.
 */
int
plotMrc(const std::string &path)
{
    using namespace mltc;
    CsvTable table;
    std::vector<double> bytes, ratios;
    int level_col = -1;
    try {
        table = CsvTable::load(path);
        level_col = table.columnIndex("level");
        bytes = table.numericColumn("capacity_bytes");
        ratios = table.numericColumn("miss_ratio");
    } catch (const Exception &e) {
        std::printf("error: %s\n", e.error().describe().c_str());
        return 1;
    } catch (const std::exception &e) {
        std::printf("error: %s\n", e.what());
        return 1;
    }
    if (level_col < 0 || ratios.empty()) {
        std::printf("error: %s is not an MRC CSV (need level,"
                    "capacity_units,capacity_bytes,miss_ratio)\n",
                    path.c_str());
        return 1;
    }
    constexpr int kBarWidth = 48;
    std::string cur_level;
    for (size_t i = 0; i < ratios.size(); ++i) {
        const std::string &level =
            table.cell(i, static_cast<size_t>(level_col));
        if (level != cur_level) {
            cur_level = level;
            std::printf("%s%s miss-ratio curve:\n", i == 0 ? "" : "\n",
                        level.c_str());
        }
        const int bar = static_cast<int>(
            std::lround(ratios[i] * kBarWidth));
        std::printf("  %10s |%-*s| %6.2f%%\n",
                    formatBytes(bytes[i]).c_str(), kBarWidth,
                    std::string(static_cast<size_t>(bar), '#').c_str(),
                    ratios[i] * 100.0);
    }
    return 0;
}

/**
 * `report --heatmap`: list the hottest texture blocks from the heatmap
 * JSON a profiled run wrote (textures[].blocks, hottest first).
 */
int
topHeatmapBlocks(const std::string &path, size_t top_n)
{
    using namespace mltc;
    JsonValue root;
    try {
        std::ifstream in(path);
        if (!in) {
            std::printf("error: cannot open '%s'\n", path.c_str());
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        root = parseJson(text.str());
    } catch (const Exception &e) {
        std::printf("error: %s\n", e.error().describe().c_str());
        return 1;
    }
    const JsonValue *textures = root.find("textures");
    if (!textures) {
        std::printf("error: %s has no \"textures\" array\n", path.c_str());
        return 1;
    }
    struct Block
    {
        uint64_t tex, x, y, accesses, misses;
    };
    std::vector<Block> blocks;
    uint64_t granule = 0;
    if (const JsonValue *g = root.find("granule"))
        granule = static_cast<uint64_t>(g->asNumber());
    const auto num = [](const JsonValue &obj, const char *key) -> uint64_t {
        const JsonValue *v = obj.find(key);
        return v ? static_cast<uint64_t>(v->asNumber()) : 0;
    };
    for (const JsonValue &tex : textures->asArray()) {
        const uint64_t tid = num(tex, "tid");
        const JsonValue *rows = tex.find("blocks");
        if (!rows)
            continue;
        for (const JsonValue &row : rows->asArray()) {
            Block b;
            b.tex = tid;
            b.x = num(row, "gx");
            b.y = num(row, "gy");
            b.accesses = num(row, "accesses");
            b.misses = num(row, "misses");
            blocks.push_back(b);
        }
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const Block &a, const Block &b) {
                  if (a.misses != b.misses)
                      return a.misses > b.misses;
                  if (a.accesses != b.accesses)
                      return a.accesses > b.accesses;
                  return std::make_tuple(a.tex, a.y, a.x) <
                         std::make_tuple(b.tex, b.y, b.x);
              });
    if (blocks.size() > top_n)
        blocks.resize(top_n);
    std::printf("%s: top %zu texture blocks by miss density "
                "(%llux%llu-texel granule):\n",
                path.c_str(), blocks.size(),
                static_cast<unsigned long long>(granule),
                static_cast<unsigned long long>(granule));
    TextTable out({"tex", "block x", "block y", "accesses", "misses",
                   "miss %"});
    for (const Block &b : blocks)
        out.addRow({std::to_string(b.tex), std::to_string(b.x),
                    std::to_string(b.y), std::to_string(b.accesses),
                    std::to_string(b.misses),
                    b.accesses == 0
                        ? "-"
                        : formatPercent(static_cast<double>(b.misses) /
                                            static_cast<double>(b.accesses),
                                        2)});
    out.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mltc;
    CommandLine cli(argc, argv);
    if (!cli.positional().empty() && cli.positional()[0] == "compare") {
        if (cli.positional().size() < 3) {
            std::printf("usage: report compare A.jsonl B.jsonl "
                        "[--threshold R]\n");
            return 1;
        }
        return compareMetrics(cli.positional()[1], cli.positional()[2],
                              cli.getDouble("threshold", -1.0));
    }
    if (!cli.positional().empty() && cli.positional()[0] == "profile") {
        if (cli.positional().size() < 3) {
            std::printf("usage: report profile A.folded B.folded "
                        "[--threshold R] [--min-share S]\n");
            return 1;
        }
        return compareProfiles(cli.positional()[1], cli.positional()[2],
                               cli.getDouble("threshold", -1.0),
                               cli.getDouble("min-share", 0.005));
    }
    if (cli.has("metrics"))
        return summarizeMetrics(cli.getString("metrics", ""));
    if (cli.has("streams"))
        return summarizeStreams(cli.getString("streams", ""));
    if (cli.has("mrc"))
        return plotMrc(cli.getString("mrc", ""));
    if (cli.has("heatmap"))
        return topHeatmapBlocks(
            cli.getString("heatmap", ""),
            static_cast<size_t>(cli.getUnsigned("top-blocks", 10)));
    if (cli.positional().empty()) {
        std::printf("usage: report <file.csv> [--ratio colA colB] | "
                    "report --metrics <run.jsonl> | "
                    "report --streams <run.jsonl> | "
                    "report --mrc <mrc.csv> | "
                    "report --heatmap <hm.json> [--top-blocks N] | "
                    "report compare <A.jsonl> <B.jsonl> [--threshold R] | "
                    "report profile <A.folded> <B.folded> "
                    "[--threshold R]\n");
        return 1;
    }

    CsvTable table;
    try {
        table = CsvTable::load(cli.positional()[0]);
    } catch (const Exception &e) {
        // Typed: "[truncated] ..." / "[corrupt] ..." so scripts can
        // distinguish a damaged artefact from a missing one.
        std::printf("error: %s\n", e.error().describe().c_str());
        return 1;
    } catch (const std::exception &e) {
        std::printf("error: %s\n", e.what());
        return 1;
    }

    std::printf("%s: %zu rows, %zu columns\n", cli.positional()[0].c_str(),
                table.rowCount(), table.columnCount());

    if (cli.has("ratio")) {
        // --ratio a b: the first value is bound to "ratio", the second
        // is the first positional after the file.
        std::string col_a = cli.getString("ratio", "");
        if (cli.positional().size() < 2) {
            std::printf("--ratio needs two column names\n");
            return 1;
        }
        std::string col_b = cli.positional()[1];
        auto a = summarize(table.numericColumn(col_a));
        auto b = summarize(table.numericColumn(col_b));
        if (b.mean == 0.0) {
            std::printf("mean(%s) is zero\n", col_b.c_str());
            return 1;
        }
        std::printf("mean(%s) / mean(%s) = %.3f\n", col_a.c_str(),
                    col_b.c_str(), a.mean / b.mean);
        return 0;
    }

    TextTable out({"column", "count", "min", "mean", "max", "total"});
    for (const std::string &name : table.header()) {
        auto values = table.numericColumn(name);
        SeriesSummary s = summarize(values);
        if (s.count == 0)
            continue; // non-numeric column
        out.addRow({name, std::to_string(s.count), formatDouble(s.min, 3),
                    formatDouble(s.mean, 3), formatDouble(s.max, 3),
                    formatDouble(s.total, 2)});
    }
    out.print();
    return 0;
}
