/**
 * @file
 * Summarise experiment CSVs without leaving the toolchain: per-column
 * min/mean/max over any CSV the benches emitted, or a quick comparison
 * of two columns (e.g. total vs new bandwidth).
 *
 * Usage:
 *   report series.csv                   # summarise every numeric column
 *   report series.csv --ratio a b      # mean(a)/mean(b) and per-row max
 */
#include <cmath>
#include <cstdio>

#include "util/cli.hpp"
#include "util/csv_reader.hpp"
#include "util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    CommandLine cli(argc, argv);
    if (cli.positional().empty()) {
        std::printf("usage: report <file.csv> [--ratio colA colB]\n");
        return 1;
    }

    CsvTable table;
    try {
        table = CsvTable::load(cli.positional()[0]);
    } catch (const std::exception &e) {
        std::printf("error: %s\n", e.what());
        return 1;
    }

    std::printf("%s: %zu rows, %zu columns\n", cli.positional()[0].c_str(),
                table.rowCount(), table.columnCount());

    if (cli.has("ratio")) {
        // --ratio a b: the first value is bound to "ratio", the second
        // is the first positional after the file.
        std::string col_a = cli.getString("ratio", "");
        if (cli.positional().size() < 2) {
            std::printf("--ratio needs two column names\n");
            return 1;
        }
        std::string col_b = cli.positional()[1];
        auto a = summarize(table.numericColumn(col_a));
        auto b = summarize(table.numericColumn(col_b));
        if (b.mean == 0.0) {
            std::printf("mean(%s) is zero\n", col_b.c_str());
            return 1;
        }
        std::printf("mean(%s) / mean(%s) = %.3f\n", col_a.c_str(),
                    col_b.c_str(), a.mean / b.mean);
        return 0;
    }

    TextTable out({"column", "count", "min", "mean", "max", "total"});
    for (const std::string &name : table.header()) {
        auto values = table.numericColumn(name);
        SeriesSummary s = summarize(values);
        if (s.count == 0)
            continue; // non-numeric column
        out.addRow({name, std::to_string(s.count), formatDouble(s.min, 3),
                    formatDouble(s.mean, 3), formatDouble(s.max, 3),
                    formatDouble(s.total, 2)});
    }
    out.print();
    return 0;
}
