/**
 * @file
 * Summarise experiment CSVs without leaving the toolchain: per-column
 * min/mean/max over any CSV the benches emitted, or a quick comparison
 * of two columns (e.g. total vs new bandwidth). Also summarises the
 * metrics JSONL stream cache_explorer --metrics-out writes.
 *
 * Usage:
 *   report series.csv                   # summarise every numeric column
 *   report series.csv --ratio a b      # mean(a)/mean(b) and per-row max
 *   report --metrics run.jsonl         # counter totals / gauge summary
 */
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/csv_reader.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

/**
 * Summarise a metrics JSONL file: counters are cumulative, so the last
 * frame row carries the run totals; gauges are summarised min/mean/max
 * over the frames. Rows without a "frame" key (mirrored log lines) are
 * skipped.
 */
int
summarizeMetrics(const std::string &path)
{
    using namespace mltc;
    std::ifstream in(path);
    if (!in) {
        std::printf("error: cannot open '%s'\n", path.c_str());
        return 1;
    }

    size_t frames = 0;
    std::map<std::string, double> last_counters;
    std::map<std::string, std::vector<double>> gauge_values;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JsonValue row;
        try {
            row = parseJson(line);
        } catch (const Exception &e) {
            std::printf("error: %s line %zu: %s\n", path.c_str(), line_no,
                        e.error().message.c_str());
            return 1;
        }
        if (!row.find("frame"))
            continue; // structured log row sharing the stream
        ++frames;
        if (const JsonValue *counters = row.find("counters")) {
            last_counters.clear();
            for (const auto &[key, v] : counters->asObject())
                last_counters[key] = v.asNumber();
        }
        if (const JsonValue *gauges = row.find("gauges")) {
            for (const auto &[key, v] : gauges->asObject())
                gauge_values[key].push_back(v.asNumber());
        }
    }
    std::printf("%s: %zu frame rows\n", path.c_str(), frames);

    TextTable counters_out({"counter", "final (cumulative)"});
    for (const auto &[key, v] : last_counters)
        counters_out.addRow({key, formatDouble(v, 0)});
    counters_out.print();

    if (!gauge_values.empty()) {
        std::printf("\n");
        TextTable gauges_out({"gauge", "min", "mean", "max"});
        for (const auto &[key, values] : gauge_values) {
            const SeriesSummary s = summarize(values);
            gauges_out.addRow({key, formatDouble(s.min, 4),
                               formatDouble(s.mean, 4),
                               formatDouble(s.max, 4)});
        }
        gauges_out.print();
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mltc;
    CommandLine cli(argc, argv);
    if (cli.has("metrics"))
        return summarizeMetrics(cli.getString("metrics", ""));
    if (cli.positional().empty()) {
        std::printf("usage: report <file.csv> [--ratio colA colB] | "
                    "report --metrics <run.jsonl>\n");
        return 1;
    }

    CsvTable table;
    try {
        table = CsvTable::load(cli.positional()[0]);
    } catch (const std::exception &e) {
        std::printf("error: %s\n", e.what());
        return 1;
    }

    std::printf("%s: %zu rows, %zu columns\n", cli.positional()[0].c_str(),
                table.rowCount(), table.columnCount());

    if (cli.has("ratio")) {
        // --ratio a b: the first value is bound to "ratio", the second
        // is the first positional after the file.
        std::string col_a = cli.getString("ratio", "");
        if (cli.positional().size() < 2) {
            std::printf("--ratio needs two column names\n");
            return 1;
        }
        std::string col_b = cli.positional()[1];
        auto a = summarize(table.numericColumn(col_a));
        auto b = summarize(table.numericColumn(col_b));
        if (b.mean == 0.0) {
            std::printf("mean(%s) is zero\n", col_b.c_str());
            return 1;
        }
        std::printf("mean(%s) / mean(%s) = %.3f\n", col_a.c_str(),
                    col_b.c_str(), a.mean / b.mean);
        return 0;
    }

    TextTable out({"column", "count", "min", "mean", "max", "total"});
    for (const std::string &name : table.header()) {
        auto values = table.numericColumn(name);
        SeriesSummary s = summarize(values);
        if (s.count == 0)
            continue; // non-numeric column
        out.addRow({name, std::to_string(s.count), formatDouble(s.min, 3),
                    formatDouble(s.mean, 3), formatDouble(s.max, 3),
                    formatDouble(s.total, 2)});
    }
    out.print();
    return 0;
}
