#!/usr/bin/env sh
# Interrupt-flush end-to-end proof: SIGINT a parallel cache_explorer
# sweep mid-run and require a graceful landing — the process must exit
# with the cancelled-sweep status (2, not a signal death), every leg
# must stop at its next frame boundary, and the partial trace and
# merged metrics must still be schema-valid (the async-signal-safe
# handler only sets a flag; all flushing happens on the normal exit
# path, docs/parallelism.md).
#
# Usage: scripts/interrupt_flush.sh [cache_explorer] [trace_validate] [report]
# Registered as the ctest case `interrupt_flush_script`.
set -eu

EXPLORER="${1:-$(dirname "$0")/../build/examples/cache_explorer}"
VALIDATE="${2:-$(dirname "$0")/../build/examples/trace_validate}"
REPORT="${3:-$(dirname "$0")/../build/examples/report}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_interrupt.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT INT TERM

# Enough frames that the sweep is still mid-flight when the signal
# lands, on fast and slow machines alike.
"$EXPLORER" --sweep l2 --workload village --frames 200 --jobs 4 \
    --trace-out "$WORK/t.json" --metrics-out "$WORK/m.jsonl" \
    --profile-out "$WORK/prof" --profile-hz 97 \
    --mrc-out "$WORK/mrc" --mrc-interval 2 \
    > "$WORK/stdout.txt" 2> "$WORK/stderr.txt" &
pid=$!

# Interrupt only once the sweep is demonstrably mid-flight: the workers
# append per-leg metrics rows (m.jsonl.legN) as frames complete, so a
# non-empty leg file proves at least one frame has run. A fixed sleep
# here flaked both ways — too short on loaded CI (nothing started yet),
# needlessly slow on fast machines.
i=0
while [ "$i" -lt 300 ]; do
    for leg in "$WORK"/m.jsonl.leg*; do
        [ -s "$leg" ] && break 2
    done
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: sweep exited before it could be interrupted" >&2
        cat "$WORK/stderr.txt" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
# Let a few more frames land so the interrupt arrives mid-sweep rather
# than on the very first frame boundary.
sleep 0.5
kill -INT "$pid"

status=0
wait "$pid" || status=$?
if [ "$status" -ne 2 ]; then
    echo "FAIL: interrupted sweep exited $status (want 2 = cancelled)" >&2
    cat "$WORK/stderr.txt" >&2
    exit 1
fi
echo "   interrupted sweep exited 2 (cancelled), as expected"

if ! grep -q "cancelled after" "$WORK/stdout.txt"; then
    echo "FAIL: no leg reported cancellation:" >&2
    cat "$WORK/stdout.txt" >&2
    exit 1
fi
echo "   legs reported cooperative cancellation"

# The flushed artifacts must be whole: a schema-valid Chrome trace, a
# well-formed merged metrics stream, and a renderable partial MRC.
"$VALIDATE" "$WORK/t.json"
"$REPORT" --metrics "$WORK/m.jsonl" > /dev/null
"$REPORT" --mrc "$WORK/mrc.csv" > /dev/null
echo "   partial trace, merged metrics and MRC are schema-valid"

# The profiler buffers must land too: the cooperative-exit path writes
# the profile-so-far, and its folded file diffs cleanly against itself.
for f in "$WORK/prof.folded" "$WORK/prof.json"; do
    if [ ! -s "$f" ]; then
        echo "FAIL: interrupted run never flushed $f" >&2
        exit 1
    fi
done
"$REPORT" profile "$WORK/prof.folded" "$WORK/prof.folded" \
    --threshold 0.0 > /dev/null
echo "   partial stage profile flushed and self-consistent"

echo "interrupt_flush: PASS"
