#!/usr/bin/env sh
# Interrupt-flush end-to-end proof: SIGINT a parallel cache_explorer
# sweep mid-run and require a graceful landing — the process must exit
# with the cancelled-sweep status (2, not a signal death), every leg
# must stop at its next frame boundary, and the partial trace and
# merged metrics must still be schema-valid (the async-signal-safe
# handler only sets a flag; all flushing happens on the normal exit
# path, docs/parallelism.md).
#
# Usage: scripts/interrupt_flush.sh [cache_explorer] [trace_validate] [report]
# Registered as the ctest case `interrupt_flush_script`.
set -eu

EXPLORER="${1:-$(dirname "$0")/../build/examples/cache_explorer}"
VALIDATE="${2:-$(dirname "$0")/../build/examples/trace_validate}"
REPORT="${3:-$(dirname "$0")/../build/examples/report}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_interrupt.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT INT TERM

# Enough frames that the sweep is still mid-flight when the signal
# lands, on fast and slow machines alike.
"$EXPLORER" --sweep l2 --workload village --frames 200 --jobs 4 \
    --trace-out "$WORK/t.json" --metrics-out "$WORK/m.jsonl" \
    --mrc-out "$WORK/mrc" --mrc-interval 2 \
    > "$WORK/stdout.txt" 2> "$WORK/stderr.txt" &
pid=$!

# Give the workers time to start their first frames, then interrupt.
sleep 3
kill -INT "$pid"

status=0
wait "$pid" || status=$?
if [ "$status" -ne 2 ]; then
    echo "FAIL: interrupted sweep exited $status (want 2 = cancelled)" >&2
    cat "$WORK/stderr.txt" >&2
    exit 1
fi
echo "   interrupted sweep exited 2 (cancelled), as expected"

if ! grep -q "cancelled after" "$WORK/stdout.txt"; then
    echo "FAIL: no leg reported cancellation:" >&2
    cat "$WORK/stdout.txt" >&2
    exit 1
fi
echo "   legs reported cooperative cancellation"

# The flushed artifacts must be whole: a schema-valid Chrome trace, a
# well-formed merged metrics stream, and a renderable partial MRC.
"$VALIDATE" "$WORK/t.json"
"$REPORT" --metrics "$WORK/m.jsonl" > /dev/null
"$REPORT" --mrc "$WORK/mrc.csv" > /dev/null
echo "   partial trace, merged metrics and MRC are schema-valid"

echo "interrupt_flush: PASS"
