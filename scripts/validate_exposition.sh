#!/usr/bin/env sh
# End-to-end telemetry-plane proof, in four stages:
#
#  1. Perturbation freedom: a 4-stream / 8-job cache_explorer run with
#     --telemetry-port enabled and live mid-run scrapes of /metrics,
#     /healthz and /runz must leave stdout, every per-stream CSV and
#     the merged metrics JSONL byte-identical to the same run with the
#     telemetry plane disabled.
#  2. Exposition grammar: the scraped /metrics body must parse as
#     Prometheus text format 0.0.4 — '# TYPE mltc_*' headers and
#     name{labels} value sample lines only, with per-stream labels.
#  3. SLO smoke: an impossible objective (miss rate below zero) must
#     fire a burn-rate alert into --slo-out as a 'fired' JSONL row
#     naming the rule, and surface slo.* series in the metrics stream.
#  4. Flight recorder: a seeded stream quarantine inside the ext_chaos
#     harness (I/O storm + SIGKILL epochs) must dump a flight bundle
#     whose trace passes the Chrome trace-event schema check and whose
#     metrics snapshot is summarisable by report --metrics.
#
# Usage: scripts/validate_exposition.sh <cache_explorer> <ext_chaos> \
#            <trace_validate> <report>
# Registered as the ctest case `telemetry_exposition_script`.
set -eu

# The chaos stage below changes directory (ext_chaos drops its CSVs
# and checkpoints in the cwd), so anchor relative binary paths first.
abspath() {
    case "$1" in
    /*) printf '%s\n' "$1" ;;
    *) printf '%s/%s\n' "$PWD" "$1" ;;
    esac
}
EXPLORER="$(abspath "$1")"
CHAOS="$(abspath "$2")"
VALIDATE="$(abspath "$3")"
REPORT="$(abspath "$4")"
FRAMES="${MLTC_FRAMES:-4}"
ROUNDS=$((FRAMES * 3))
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_expo.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT INT TERM

# Fetch one HTTP path from the embedded server into a file. curl when
# the host has it, python3 otherwise; both fail hard on a non-200.
scrape() {
    port="$1"; target="$2"; out="$3"
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 10 "http://127.0.0.1:$port$target" -o "$out"
    else
        python3 - "$port" "$target" "$out" <<'EOF'
import sys, urllib.request
port, target, out = sys.argv[1], sys.argv[2], sys.argv[3]
with urllib.request.urlopen(
        "http://127.0.0.1:%s%s" % (port, target), timeout=10) as r:
    open(out, "wb").write(r.read())
EOF
    fi
}

SLO='stream.miss_rate.l2<0.95@2f'

echo "== reference run (telemetry plane off) =="
"$EXPLORER" --streams 4 --jobs 8 --rounds "$ROUNDS" --slo "$SLO" \
    --csv-prefix "$WORK/ref" --metrics-out "$WORK/ref.jsonl" \
    >"$WORK/ref.stdout"

echo "== live run (telemetry plane on, scraped mid-run) =="
# --round-sleep-ms holds each round open so the scrape provably lands
# while streams are still being served, not after the run drained.
"$EXPLORER" --streams 4 --jobs 8 --rounds "$ROUNDS" --slo "$SLO" \
    --csv-prefix "$WORK/live" --metrics-out "$WORK/live.jsonl" \
    --round-sleep-ms 250 \
    --telemetry-port 0 --telemetry-port-file "$WORK/port" \
    >"$WORK/live.stdout" &
RUN_PID=$!

PORT=""
tries=0
while [ "$tries" -lt 100 ]; do
    if [ -s "$WORK/port" ]; then
        PORT="$(cat "$WORK/port")"
        break
    fi
    if ! kill -0 "$RUN_PID" 2>/dev/null; then
        break
    fi
    sleep 0.1
    tries=$((tries + 1))
done
if [ -z "$PORT" ]; then
    wait "$RUN_PID" || true
    echo "FAIL: telemetry port file never appeared"
    exit 1
fi

# The registry publishes at round boundaries, so the very first scrape
# can race an empty exposition; keep scraping until families appear.
tries=0
while :; do
    scrape "$PORT" /metrics "$WORK/metrics.scrape"
    if grep -q '^# TYPE mltc_' "$WORK/metrics.scrape"; then
        break
    fi
    if [ "$tries" -ge 100 ] || ! kill -0 "$RUN_PID" 2>/dev/null; then
        wait "$RUN_PID" || true
        echo "FAIL: /metrics never exposed a metric family mid-run"
        exit 1
    fi
    sleep 0.1
    tries=$((tries + 1))
done
scrape "$PORT" /healthz "$WORK/healthz.scrape"
scrape "$PORT" /runz "$WORK/runz.scrape"

wait "$RUN_PID"

echo "== output bytes are telemetry-invariant =="
cmp "$WORK/ref.stdout" "$WORK/live.stdout"
cmp "$WORK/ref.jsonl" "$WORK/live.jsonl"
for i in 0 1 2 3; do
    cmp "$WORK/ref.stream$i.csv" "$WORK/live.stream$i.csv"
done

echo "== exposition grammar =="
if ! grep -q '^# TYPE mltc_' "$WORK/metrics.scrape"; then
    echo "FAIL: scrape carries no '# TYPE mltc_*' family headers"
    exit 1
fi
if ! grep -q 'stream="0"' "$WORK/metrics.scrape"; then
    echo "FAIL: scrape carries no per-stream labelled series"
    exit 1
fi
if grep -v '^#' "$WORK/metrics.scrape" |
        grep -vE '^mltc_[A-Za-z0-9_:]+(\{[^}]*\})? [-+0-9.eEInfaN]+$' |
        grep -q .; then
    echo "FAIL: scrape lines outside the text exposition grammar:"
    grep -v '^#' "$WORK/metrics.scrape" |
        grep -vE '^mltc_[A-Za-z0-9_:]+(\{[^}]*\})? [-+0-9.eEInfaN]+$'
    exit 1
fi
grep -q '"status"' "$WORK/healthz.scrape" || {
    echo "FAIL: /healthz body carries no status"; exit 1; }
grep -q '"streams"' "$WORK/runz.scrape" || {
    echo "FAIL: /runz body carries no streams"; exit 1; }

echo "== SLO burn-rate alert fires and is attributed =="
"$EXPLORER" --streams 2 --rounds "$ROUNDS" \
    --slo 'stream.miss_rate.l1<0@2f' --slo-out "$WORK/slo.jsonl" \
    --metrics-out "$WORK/slo_metrics.jsonl" >/dev/null
grep -q '"event":"fired"' "$WORK/slo.jsonl" || {
    echo "FAIL: impossible SLO never fired"; exit 1; }
grep -q '"rule":"stream.miss_rate.l1<0@2f"' "$WORK/slo.jsonl" || {
    echo "FAIL: fired row does not name its rule"; exit 1; }
grep -q '"slo.violation_rounds{cause=' "$WORK/slo_metrics.jsonl" || {
    echo "FAIL: metrics stream carries no attributed violation rounds"
    exit 1; }
"$REPORT" --metrics "$WORK/slo_metrics.jsonl" >/dev/null
"$REPORT" --streams "$WORK/slo_metrics.jsonl" >"$WORK/streams.txt"
grep -q 'SLO rounds' "$WORK/streams.txt" || {
    echo "FAIL: per-stream table lost its SLO columns"; exit 1; }

echo "== flight bundle from a seeded quarantine under chaos =="
(cd "$WORK" && "$CHAOS" --streams=4 --seed=7 --fail-at-round=1 \
    --flight-out "$WORK/chaos" >/dev/null)
BUNDLE="$WORK/chaos.flight"
"$VALIDATE" "$BUNDLE/trace.json"
grep -q '"flight.dumped"' "$BUNDLE/trace.json" || {
    echo "FAIL: flight trace has no flight.dumped marker"; exit 1; }
"$REPORT" --metrics "$BUNDLE/metrics.jsonl" >/dev/null

echo "OK"
