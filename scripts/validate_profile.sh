#!/usr/bin/env sh
# End-to-end continuous-profiling proof, in four stages:
#
#  1. Profile validity: a profiled sweep (997 Hz) must emit a .folded
#     file in collapsed-stack grammar ("frames... N" lines, counts
#     last) whose stage set exactly matches the profile JSON's stages[]
#     array, with every non-annotation stage drawn from the known
#     instrumented trace-stage set and per-leg roll-ups present; and
#     `report profile` of the profile against itself must exit 0.
#  2. Perturbation freedom: a 4-stream / 8-job serve with the profiler
#     sampling at 97 Hz must leave every per-stream CSV byte-identical
#     to the same run unprofiled, and its stdout + CSVs byte-identical
#     to the profiled run at --jobs 1.
#  3. Differential gate: `report profile` on a synthetic pair whose
#     self-share shift exceeds --threshold must exit 3 (the same
#     contract as `report compare`).
#  4. Counter fallback: with MLTC_PROFILE_FORCE_FALLBACK=1 (the denied
#     perf_event_open path, forced so the proof holds on machines where
#     the syscall is allowed) the run must still profile and declare
#     counters.available=false in the JSON.
#
# Usage: scripts/validate_profile.sh <cache_explorer> <report>
# Registered as the ctest case `profile_schema_script`.
set -eu

abspath() {
    case "$1" in
    /*) printf '%s\n' "$1" ;;
    *) printf '%s/%s\n' "$PWD" "$1" ;;
    esac
}
EXPLORER="$(abspath "$1")"
REPORT="$(abspath "$2")"
FRAMES="${MLTC_FRAMES:-4}"
ROUNDS=$((FRAMES * 3))
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_prof.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT INT TERM

# Folded grammar: every line is "stack count" with the count after the
# last space. (An empty file is grammatical; stage presence is gated
# separately.)
check_folded_grammar() {
    if grep -vE '^.+ [0-9]+$' "$1" | grep -q .; then
        echo "FAIL: $1 has lines outside the folded grammar:"
        grep -vE '^.+ [0-9]+$' "$1"
        exit 1
    fi
}

# Schema + cross-consistency of one .folded/.json pair.
check_profile_pair() {
    python3 - "$1" "$2" <<'EOF'
import json, sys

folded_path, json_path = sys.argv[1], sys.argv[2]
doc = json.load(open(json_path))
for key in ("build", "profile", "stages", "legs", "streams", "counters"):
    assert key in doc, f"profile JSON lacks '{key}'"
for key in ("git_sha", "compiler", "cpu_model", "cores"):
    assert key in doc["build"], f"build provenance lacks '{key}'"
assert doc["profile"]["hz"] > 0

def frames_of(stack):
    out, cur, i = [], "", 0
    while i < len(stack):
        c = stack[i]
        if c == "\\" and i + 1 < len(stack):
            cur += stack[i + 1]
            i += 2
        elif c == ";":
            out.append(cur)
            cur = ""
            i += 1
        else:
            cur += c
            i += 1
    out.append(cur)
    return out

folded_stages, folded_total = set(), 0
for line in open(folded_path):
    line = line.rstrip("\n")
    if not line:
        continue
    stack, count = line.rsplit(" ", 1)
    folded_stages.update(frames_of(stack))
    folded_total += int(count)

json_stages = {s["stage"] for s in doc["stages"]}
assert json_stages == folded_stages, (
    f"stage sets disagree: json-only={json_stages - folded_stages}, "
    f"folded-only={folded_stages - json_stages}")

KNOWN = {"frame", "cachesim.access", "sampler.sample",
         "raster.depth_prepass", "raster.texture_pass"}
for stage in json_stages:
    assert stage.startswith(("leg:", "stream:")) or stage in KNOWN, (
        f"unknown stage '{stage}' outside the instrumented trace set")

# A pure-parent stage (e.g. "frame") may have self == 0 when every
# sample landed in one of its children; total must still be positive.
for s in doc["stages"]:
    assert 0 <= s["self"] <= s["total"] and s["total"] > 0, (
        f"bad self/total in {s}")
# Folded stacks are a subset of all samples (empty-stack ticks are
# sampled but not folded).
assert folded_total <= doc["profile"]["samples"], (
    f"folded {folded_total} > sampled {doc['profile']['samples']}")
assert isinstance(doc["counters"]["available"], bool)
print(f"profile ok: {len(json_stages)} stages, "
      f"{folded_total} folded samples")
EOF
}

echo "== 1. profiled sweep emits a valid folded/JSON pair =="
"$EXPLORER" --sweep l2 --frames "$FRAMES" --jobs 2 \
    --profile-out "$WORK/sweep" --profile-hz 997 >"$WORK/sweep.stdout"
grep -q '^\[profile\] ' "$WORK/sweep.stdout" || {
    echo "FAIL: run never announced its profile outputs"; exit 1; }
test -s "$WORK/sweep.folded" || {
    echo "FAIL: sweep.folded is missing or empty"; exit 1; }
check_folded_grammar "$WORK/sweep.folded"
check_profile_pair "$WORK/sweep.folded" "$WORK/sweep.json"
grep -q '^leg:' "$WORK/sweep.folded" || {
    echo "FAIL: no leg:-rooted stacks in a sweep profile"; exit 1; }
"$REPORT" profile "$WORK/sweep.folded" "$WORK/sweep.folded" \
    --threshold 0.0 >/dev/null || {
    echo "FAIL: self-comparison must exit 0"; exit 1; }

echo "== 2. profiling never perturbs simulation output bytes =="
mkdir "$WORK/off" "$WORK/j8" "$WORK/j1"
(cd "$WORK/off" && "$EXPLORER" --streams 4 --jobs 8 --rounds "$ROUNDS" \
    --csv-prefix s >stdout)
(cd "$WORK/j8" && "$EXPLORER" --streams 4 --jobs 8 --rounds "$ROUNDS" \
    --csv-prefix s --profile-out prof --profile-hz 97 >stdout)
(cd "$WORK/j1" && "$EXPLORER" --streams 4 --jobs 1 --rounds "$ROUNDS" \
    --csv-prefix s --profile-out prof --profile-hz 97 >stdout)
for i in 0 1 2 3; do
    cmp "$WORK/off/s.stream$i.csv" "$WORK/j8/s.stream$i.csv"
    cmp "$WORK/j8/s.stream$i.csv" "$WORK/j1/s.stream$i.csv"
done
# The serve banner legitimately prints its own jobs count; normalize it
# (as check_parallel_invariance.sh does) before demanding byte identity.
sed 's/[0-9][0-9]* jobs/N jobs/' "$WORK/j8/stdout" >"$WORK/j8.norm"
sed 's/[0-9][0-9]* jobs/N jobs/' "$WORK/j1/stdout" >"$WORK/j1.norm"
cmp "$WORK/j8.norm" "$WORK/j1.norm"
grep -v '^\[profile\] ' "$WORK/j8/stdout" | cmp - "$WORK/off/stdout"
check_folded_grammar "$WORK/j8/prof.folded"
check_profile_pair "$WORK/j8/prof.folded" "$WORK/j8/prof.json"

echo "== 3. differential gate trips on a real shift =="
printf 'x 90\ny 10\n' >"$WORK/a.folded"
printf 'x 50\ny 50\n' >"$WORK/b.folded"
status=0
"$REPORT" profile "$WORK/a.folded" "$WORK/b.folded" --threshold 0.5 \
    >"$WORK/diff.txt" || status=$?
if [ "$status" -ne 3 ]; then
    echo "FAIL: threshold-violating pair exited $status, want 3"
    cat "$WORK/diff.txt"
    exit 1
fi
grep -q 'FAIL: max relative delta' "$WORK/diff.txt" || {
    echo "FAIL: gate verdict line missing"; exit 1; }

echo "== 4. denied perf_event_open degrades gracefully =="
MLTC_PROFILE_FORCE_FALLBACK=1 "$EXPLORER" --sweep l1 --frames "$FRAMES" \
    --jobs 2 --profile-out "$WORK/fb" --profile-hz 997 >/dev/null
python3 - "$WORK/fb.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["counters"]["available"] is False, "fallback not declared"
assert doc["counters"]["stages"] == [], "phantom counter rows"
assert doc["profile"]["samples"] > 0, "fallback run stopped sampling"
print("fallback ok")
EOF

echo "OK"
