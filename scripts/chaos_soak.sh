#!/usr/bin/env sh
# Chaos soak: drive the whole robustness ladder end to end and require
# bit-for-bit output stability.
#
#  1. bench/ext_chaos (in-process harness): a supervised single sweep
#     and a 4-tenant shared-L2 run under combined host faults, an I/O
#     fault storm (EIO/ENOSPC/short writes/fsync failures/torn renames)
#     and seeded mid-run SIGKILLs; final CSVs must be byte-identical to
#     a clean-disk, never-killed reference.
#  2. An external SIGKILL storm on `cache_explorer --streams 4` with
#     --io-faults: the process is killed from outside at arbitrary
#     wall-clock points and resumed until it completes; the per-stream
#     CSVs must match a fault-free reference byte for byte.
#  3. A truncated-artefact probe: `report` must exit non-zero with a
#     typed [truncated] error on a CSV whose final newline was lost.
#
# Only result CSVs are compared. Run manifests are deliberately NOT:
# they record checkpoint_write_failures, which legitimately differs
# under an I/O storm.
#
# Usage: scripts/chaos_soak.sh [ext_chaos] [cache_explorer] [report]
# Env:   CHAOS_SEED      storm + kill-schedule seed (default 7)
#        CHAOS_WORK_DIR  keep artifacts here (CI uploads on failure);
#                        default: private mktemp dir, removed on exit
#        MLTC_FRAMES     frames/rounds per run (default 4)
# Registered as the ctest-adjacent CI job `chaos` (.github/workflows).
set -eu

CHAOS="${1:-$(dirname "$0")/../build/bench/ext_chaos}"
EXPLORER="${2:-$(dirname "$0")/../build/examples/cache_explorer}"
REPORT="${3:-$(dirname "$0")/../build/examples/report}"
SEED="${CHAOS_SEED:-7}"
FRAMES="${MLTC_FRAMES:-4}"

if [ -n "${CHAOS_WORK_DIR:-}" ]; then
    WORK="$CHAOS_WORK_DIR"
    mkdir -p "$WORK"
else
    WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_chaos.XXXXXX")"
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

fail() {
    echo "chaos_soak: FAIL: $1" >&2
    echo "chaos_soak: artifacts left in $WORK" >&2
    exit 1
}

# --- 1. In-process chaos harness -------------------------------------------
mkdir -p "$WORK/single" "$WORK/streams"

echo "== chaos_soak: ext_chaos single sweep (seed $SEED) =="
MLTC_FRAMES="$FRAMES" MLTC_OUT_DIR="$WORK/single" \
    "$CHAOS" --seed="$SEED" || fail "ext_chaos single sweep diverged"

echo "== chaos_soak: ext_chaos 4-stream serving (seed $SEED) =="
MLTC_FRAMES="$FRAMES" MLTC_OUT_DIR="$WORK/streams" \
    "$CHAOS" --streams=4 --seed="$SEED" \
    || fail "ext_chaos 4-stream run diverged"

# --- 2. External SIGKILL storm on cache_explorer --streams 4 ---------------
echo "== chaos_soak: external SIGKILL storm on cache_explorer =="
mkdir -p "$WORK/ext"
ROUNDS=$((FRAMES + 2))
IOSPEC="eio=0.05,enospc=0.03,short=0.05,fsync=0.1,torn=0.05,seed=$SEED"

"$EXPLORER" --streams 4 --rounds "$ROUNDS" --jobs 2 \
    --csv-prefix "$WORK/ext/ref" > /dev/null \
    || fail "fault-free reference run failed"

k=0
while [ "$k" -lt 12 ]; do
    # Resume only once some epoch actually committed a checkpoint;
    # earlier kills just restart the run from scratch.
    RESUME=""
    [ -e "$WORK/ext/ckpt.snap" ] && RESUME="--resume"
    # Seed-staggered kill offsets that grow with the epoch: the first
    # few land before the first checkpoint commits (~1.2 s in, fresh
    # restart), the middle ones land mid-run, the late ones after
    # completion (exit 0 ends the storm).
    DELAY="$((k / 3)).$(( (SEED + k * 3) % 9 + 1 ))"
    status=0
    # Subshell with stderr dropped so the shell's own job-kill
    # diagnostics ("Killed") stay out of the log.
    # shellcheck disable=SC2086  # $RESUME is deliberately word-split
    ( "$EXPLORER" --streams 4 --rounds "$ROUNDS" --jobs 2 \
          --csv-prefix "$WORK/ext/chaos" \
          --checkpoint "$WORK/ext/ckpt.snap" --checkpoint-every 1 \
          --io-faults "$IOSPEC" $RESUME > /dev/null 2>&1 &
      pid=$!
      sleep "$DELAY"
      kill -9 "$pid" 2>/dev/null
      wait "$pid"
    ) 2>/dev/null || status=$?
    if [ "$status" -eq 0 ]; then
        echo "   storm epoch $k completed before its ${DELAY}s kill"
        break
    fi
    echo "   storm epoch $k killed at ${DELAY}s (status $status)"
    k=$((k + 1))
done

# Final uninterrupted run (resuming if a checkpoint survived):
# guarantees completion and final CSVs.
RESUME=""
[ -e "$WORK/ext/ckpt.snap" ] && RESUME="--resume"
# shellcheck disable=SC2086
"$EXPLORER" --streams 4 --rounds "$ROUNDS" --jobs 2 \
    --csv-prefix "$WORK/ext/chaos" \
    --checkpoint "$WORK/ext/ckpt.snap" --checkpoint-every 1 \
    --io-faults "$IOSPEC" $RESUME > /dev/null \
    || fail "storm run could not be resumed to completion"

i=0
while [ "$i" -lt 4 ]; do
    if ! cmp -s "$WORK/ext/ref.stream$i.csv" \
                "$WORK/ext/chaos.stream$i.csv"; then
        diff "$WORK/ext/ref.stream$i.csv" \
             "$WORK/ext/chaos.stream$i.csv" \
             > "$WORK/ext/stream$i.diff" 2>&1 || true
        fail "stream $i CSV diverged under the storm (see stream$i.diff)"
    fi
    i=$((i + 1))
done
echo "   all 4 stream CSVs byte-identical to the fault-free reference"

# --- 3. Truncated artefacts are typed, loud failures -----------------------
echo "== chaos_soak: truncated-CSV probe =="
printf '%s' "$(cat "$WORK/ext/ref.stream0.csv")" > "$WORK/ext/torn.csv"
if "$REPORT" "$WORK/ext/torn.csv" > "$WORK/ext/report.out" 2>&1; then
    fail "report accepted a truncated CSV"
fi
grep -q "truncated" "$WORK/ext/report.out" \
    || fail "report's truncated-CSV error is not typed"
echo "   report refused the truncated CSV with a typed error"

echo "chaos_soak: PASS"
