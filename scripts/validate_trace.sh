#!/usr/bin/env sh
# End-to-end observability proof: run a short cache_explorer sweep with
# every observability output enabled, then require
#
#  - the Chrome trace to pass the full trace_validate schema check
#    (balanced B/E pairs, per-thread monotonic timestamps, typed
#    counter/instant events);
#  - the metrics JSONL to contain one parseable frame row per frame of
#    every sweep leg (legs x frames total), carrying the per-frame
#    L1/L2/TLB counters and the 3C miss-class breakdown;
#  - report --metrics to summarise that stream successfully.
#
# Usage: scripts/validate_trace.sh <cache_explorer> <trace_validate> <report>
# Registered as the ctest case `trace_schema_script`.
set -eu

EXPLORER="$1"
VALIDATE="$2"
REPORT="$3"
FRAMES="${MLTC_FRAMES:-4}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_trace.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT INT TERM

# The l2 sweep runs 5 legs (1..16 MB); --jobs 2 exercises the parallel
# path — the merged metrics stream carries one frame row per leg-frame
# and the shared trace writer must stay schema-valid with worker tids.
LEGS=5
echo "== sweep with observability enabled =="
"$EXPLORER" --sweep l2 --workload village --frames "$FRAMES" --jobs 2 \
    --trace-out "$WORK/run.json" --metrics-out "$WORK/run.jsonl" \
    --miss-classes >/dev/null

echo "== trace schema =="
"$VALIDATE" "$WORK/run.json"

echo "== metrics JSONL =="
rows="$(grep -c '"frame":' "$WORK/run.jsonl")"
want=$((LEGS * FRAMES))
if [ "$rows" -ne "$want" ]; then
    echo "FAIL: expected $want frame rows ($LEGS legs x $FRAMES frames), found $rows"
    exit 1
fi
for key in '"l1.miss{sim=' '"l2.full_miss{sim=' '"tlb.probe{sim=' \
           '"l1.miss.class{class=compulsory' \
           '"l2.miss.class{class=conflict'; do
    if ! grep -q "$key" "$WORK/run.jsonl"; then
        echo "FAIL: metrics rows missing $key"
        exit 1
    fi
done

echo "== report --metrics =="
"$REPORT" --metrics "$WORK/run.jsonl" >/dev/null

echo "OK"
