#!/usr/bin/env sh
# Acceptance check for the parallel sweep executor: every observable
# output of a parallel run must be byte-identical to the serial run.
#
# Runs cache_explorer (stdout, merged metrics JSONL, MRC/working-set
# CSVs, heatmap JSON, per-leg snapshots, sweep manifest) and three
# representative bench drivers (stdout + CSVs) at --jobs 1 and --jobs 8
# and byte-compares everything. The only permitted differences are the
# worker count echoed in the banner and absolute paths, which are
# normalized before the diff. See docs/parallelism.md.
#
# Usage: scripts/check_parallel_invariance.sh [build-dir]
set -eu
cd "$(dirname "$0")/.."
BUILD=${1:-build}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
fail=0

# Strip run-local details a human reader would also ignore: the jobs
# count in the banner and the temp directory in artifact paths.
normalize() { # file jobsdir
    sed -e 's/[0-9][0-9]* jobs/N jobs/' -e "s#$2#OUT#g" "$1"
}

explorer() { # jobs outdir
    mkdir -p "$2"
    "$BUILD/examples/cache_explorer" --sweep l2 --workload village \
        --frames 2 --jobs "$1" \
        --metrics-out "$2/run.jsonl" \
        --mrc-out "$2/mrc" --heatmap-out "$2/heat" --mrc-interval 2 \
        --checkpoint "$2/ckpt.snap" --checkpoint-every 1 \
        > "$2/stdout.txt"
}

echo "== cache_explorer --sweep l2 (jobs 1 vs 8) =="
explorer 1 "$WORK/e1"
explorer 8 "$WORK/e8"
for f in stdout.txt run.jsonl mrc.csv mrc.ws.csv mrc.json heat.json \
         ckpt.snap.manifest; do
    if ! normalize "$WORK/e1/$f" "$WORK/e1" > "$WORK/a" || \
       ! normalize "$WORK/e8/$f" "$WORK/e8" > "$WORK/b"; then
        echo "FAIL: missing artifact $f"; fail=1; continue
    fi
    if ! diff -u "$WORK/a" "$WORK/b" > /dev/null; then
        echo "FAIL: $f differs between jobs=1 and jobs=8"
        diff -u "$WORK/a" "$WORK/b" | head -20
        fail=1
    fi
done
for snap in "$WORK"/e1/ckpt.snap.leg*; do
    if ! cmp -s "$snap" "$WORK/e8/$(basename "$snap")"; then
        echo "FAIL: snapshot $(basename "$snap") differs"; fail=1
    fi
done

# Cross-mode leg: the batched access path (docs/batched_access.md) at
# jobs=8 against the scalar path at jobs=1 — one diff proving batch
# equivalence and thread invariance compose. Subshells keep the
# MLTC_BATCH override out of the other legs.
echo "== cache_explorer --sweep l2 (batched jobs 8 vs scalar jobs 1) =="
( export MLTC_BATCH=0; explorer 1 "$WORK/s1" )
( export MLTC_BATCH=1; explorer 8 "$WORK/s8" )
for f in stdout.txt run.jsonl mrc.csv mrc.ws.csv mrc.json heat.json \
         ckpt.snap.manifest; do
    if ! normalize "$WORK/s1/$f" "$WORK/s1" > "$WORK/a" || \
       ! normalize "$WORK/s8/$f" "$WORK/s8" > "$WORK/b"; then
        echo "FAIL: missing artifact $f"; fail=1; continue
    fi
    if ! diff -u "$WORK/a" "$WORK/b" > /dev/null; then
        echo "FAIL: $f differs between scalar jobs=1 and batched jobs=8"
        diff -u "$WORK/a" "$WORK/b" | head -20
        fail=1
    fi
done
for snap in "$WORK"/s1/ckpt.snap.leg*; do
    if ! cmp -s "$snap" "$WORK/s8/$(basename "$snap")"; then
        echo "FAIL: cross-mode snapshot $(basename "$snap") differs"
        fail=1
    fi
done

multistream() { # jobs outdir
    mkdir -p "$2"
    "$BUILD/examples/cache_explorer" --streams 4 --rounds 3 \
        --l2-policy utility --stream-workloads village,city,thrasher,city \
        --jobs "$1" --metrics-out "$2/run.jsonl" \
        --checkpoint "$2/ms.snap" --checkpoint-every 2 \
        --csv-prefix "$2/ms" > "$2/stdout.txt"
}

echo "== cache_explorer --streams 4 (jobs 1 vs 8) =="
multistream 1 "$WORK/m1"
multistream 8 "$WORK/m8"
if ! cmp -s "$WORK/m1/ms.snap" "$WORK/m8/ms.snap"; then
    echo "FAIL: multi-stream checkpoint differs between jobs=1 and jobs=8"
    fail=1
fi
for f in stdout.txt run.jsonl ms.stream0.csv ms.stream1.csv \
         ms.stream2.csv ms.stream3.csv; do
    if ! normalize "$WORK/m1/$f" "$WORK/m1" > "$WORK/a" || \
       ! normalize "$WORK/m8/$f" "$WORK/m8" > "$WORK/b"; then
        echo "FAIL: missing artifact $f"; fail=1; continue
    fi
    if ! diff -u "$WORK/a" "$WORK/b" > /dev/null; then
        echo "FAIL: multi-stream $f differs between jobs=1 and jobs=8"
        fail=1
    fi
done

echo "== cache_explorer --streams 4 (batched vs scalar) =="
( export MLTC_BATCH=0; multistream 1 "$WORK/t1" )
( export MLTC_BATCH=1; multistream 8 "$WORK/t8" )
if ! cmp -s "$WORK/t1/ms.snap" "$WORK/t8/ms.snap"; then
    echo "FAIL: multi-stream checkpoint differs between scalar and batched"
    fail=1
fi
for f in stdout.txt run.jsonl ms.stream0.csv ms.stream1.csv \
         ms.stream2.csv ms.stream3.csv; do
    if ! normalize "$WORK/t1/$f" "$WORK/t1" > "$WORK/a" || \
       ! normalize "$WORK/t8/$f" "$WORK/t8" > "$WORK/b"; then
        echo "FAIL: missing artifact $f"; fail=1; continue
    fi
    if ! diff -u "$WORK/a" "$WORK/b" > /dev/null; then
        echo "FAIL: multi-stream $f differs between scalar and batched"
        fail=1
    fi
done

for bench in tab03_avg_bandwidth tab05_06_l2_hitrates fig09_tab02_l1; do
    echo "== $bench (MLTC_JOBS 1 vs 8) =="
    mkdir -p "$WORK/b1" "$WORK/b8"
    MLTC_FRAMES=2 MLTC_OUT_DIR="$WORK/b1" MLTC_JOBS=1 \
        "$BUILD/bench/$bench" > "$WORK/b1/$bench.txt"
    MLTC_FRAMES=2 MLTC_OUT_DIR="$WORK/b8" MLTC_JOBS=8 \
        "$BUILD/bench/$bench" > "$WORK/b8/$bench.txt"
    normalize "$WORK/b1/$bench.txt" "$WORK/b1" > "$WORK/a"
    normalize "$WORK/b8/$bench.txt" "$WORK/b8" > "$WORK/b"
    if ! diff -u "$WORK/a" "$WORK/b" > /dev/null; then
        echo "FAIL: $bench stdout differs"; fail=1
    fi
    for csv in "$WORK"/b1/*.csv; do
        if ! cmp -s "$csv" "$WORK/b8/$(basename "$csv")"; then
            echo "FAIL: $(basename "$csv") differs"; fail=1
        fi
    done
    rm -rf "$WORK/b1" "$WORK/b8"
done

if [ "$fail" -ne 0 ]; then
    echo "FAIL: parallel run is not byte-identical to serial"
    exit 1
fi
echo "OK: jobs=8 outputs byte-identical to jobs=1"
