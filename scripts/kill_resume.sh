#!/usr/bin/env sh
# Crash-safety end-to-end proof: run a bench to completion for a
# reference CSV, run it again with periodic checkpoints and a
# deterministic SIGKILL mid-run (--die-after-checkpoint), resume the
# killed run from its checkpoints in a fresh process, and require the
# final CSV to be byte-identical to the reference. Repeats the whole
# exercise over the fault-injectable host backend so the fault RNG
# streams are proven to round-trip through the snapshot too.
#
# Usage: scripts/kill_resume.sh [path-to-tab03_avg_bandwidth]
# (defaults to build/bench/tab03_avg_bandwidth; MLTC_FRAMES overrides
# the frame count). Registered as the ctest case `kill_resume_script`.
set -eu

BENCH="${1:-$(dirname "$0")/../build/bench/tab03_avg_bandwidth}"
FRAMES="${MLTC_FRAMES:-4}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_kill_resume.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT INT TERM

run_leg() {
    # $1 = leg name, $2... = extra bench flags. REF_BATCH / RUN_BATCH
    # set MLTC_BATCH for the reference and the crash/resume runs
    # respectively (empty = the binary's default, batched).
    leg="$1"; shift
    mkdir -p "$WORK/$leg"

    echo "== [$leg] reference run =="
    MLTC_BATCH="${REF_BATCH:-}" \
    MLTC_FRAMES="$FRAMES" MLTC_OUT_DIR="$WORK/$leg" \
        "$BENCH" "$@" >/dev/null
    cp "$WORK/$leg/tab03_avg_bandwidth.csv" "$WORK/$leg/reference.csv"

    echo "== [$leg] crash run (SIGKILL after 2nd checkpoint) =="
    status=0
    MLTC_BATCH="${RUN_BATCH:-}" \
    MLTC_FRAMES="$FRAMES" MLTC_OUT_DIR="$WORK/$leg" \
        "$BENCH" "$@" \
        --checkpoint="$WORK/$leg/ckpt" --checkpoint-every=1 \
        --die-after-checkpoint=2 >/dev/null 2>&1 || status=$?
    # 137 = 128 + SIGKILL; a shell may also report 265 or plain kill text.
    if [ "$status" -eq 0 ]; then
        echo "FAIL: crash run was expected to die but exited 0" >&2
        exit 1
    fi
    echo "   crash run died with status $status (expected: killed)"
    if ! ls "$WORK/$leg"/ckpt.*.snap >/dev/null 2>&1; then
        echo "FAIL: crash run left no checkpoint" >&2
        exit 1
    fi

    echo "== [$leg] resume run =="
    MLTC_BATCH="${RUN_BATCH:-}" \
    MLTC_FRAMES="$FRAMES" MLTC_OUT_DIR="$WORK/$leg" \
        "$BENCH" "$@" \
        --checkpoint="$WORK/$leg/ckpt" --checkpoint-every=1 \
        --resume >/dev/null

    if cmp -s "$WORK/$leg/reference.csv" \
              "$WORK/$leg/tab03_avg_bandwidth.csv"; then
        echo "   OK: resumed CSV is byte-identical to the reference"
    else
        echo "FAIL: resumed CSV differs from the reference:" >&2
        diff "$WORK/$leg/reference.csv" \
             "$WORK/$leg/tab03_avg_bandwidth.csv" >&2 || true
        exit 1
    fi
}

run_leg fault_free
run_leg faulty --faults --fault-drop=0.1 --fault-corrupt=0.05
# Cross-mode leg: scalar-mode reference against a batched-mode crash +
# resume. The batched fast path (docs/batched_access.md) must reproduce
# the scalar CSV byte-for-byte even across a SIGKILL/resume boundary —
# spans are delivered whole between checkpoints, so no in-flight batch
# state ever needs to round-trip through a snapshot.
REF_BATCH=0 RUN_BATCH=1 run_leg cross_mode

echo "kill_resume: PASS"
