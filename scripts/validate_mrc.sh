#!/usr/bin/env sh
# End-to-end reuse-distance profiler proof: run a short cache_explorer
# sweep with the MRC profiler and heatmap exports enabled, then require
#
#  - mrc.csv to carry the documented header and, per cache level, a
#    miss-ratio column that never increases with capacity (the Mattson
#    stack inclusion property -- a violation means the distance
#    histogram is corrupt);
#  - the working-set spectrum CSV to contain at least one interval row;
#  - the heatmap JSON plus P5 PGM images to exist and be non-empty;
#  - report --mrc and report --heatmap to render both artifacts.
#
# Usage: scripts/validate_mrc.sh <cache_explorer> <report>
# Registered as the ctest case `mrc_schema_script`.
set -eu

EXPLORER="$1"
REPORT="$2"
FRAMES="${MLTC_FRAMES:-4}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/mltc_mrc.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT INT TERM

echo "== sweep with the reuse-distance profiler enabled =="
"$EXPLORER" --sweep l2 --workload village --frames "$FRAMES" \
    --mrc-out "$WORK/mrc" --heatmap-out "$WORK/heat" \
    --mrc-interval 2 >/dev/null

echo "== artifacts =="
for f in mrc.csv mrc.ws.csv mrc.json heat.json heat.screen.pgm; do
    if [ ! -s "$WORK/$f" ]; then
        echo "FAIL: missing or empty artifact $f"
        exit 1
    fi
done
if ! ls "$WORK"/heat.tex*.pgm >/dev/null 2>&1; then
    echo "FAIL: no per-texture heatmap images"
    exit 1
fi
magic="$(head -c 2 "$WORK/heat.screen.pgm")"
if [ "$magic" != "P5" ]; then
    echo "FAIL: heat.screen.pgm is not a P5 PGM"
    exit 1
fi

echo "== mrc.csv schema + monotonicity =="
header="$(head -n 1 "$WORK/mrc.csv")"
if [ "$header" != "level,capacity_units,capacity_bytes,miss_ratio" ]; then
    echo "FAIL: unexpected mrc.csv header: $header"
    exit 1
fi
awk -F, 'NR > 1 {
    if ($1 == prev_level && $4 > prev_ratio + 1e-9) {
        printf "FAIL: %s miss ratio rises at capacity %s (%s > %s)\n",
               $1, $3, $4, prev_ratio
        exit 1
    }
    prev_level = $1
    prev_ratio = $4
}' "$WORK/mrc.csv"

rows="$(wc -l < "$WORK/mrc.ws.csv")"
if [ "$rows" -lt 2 ]; then
    echo "FAIL: working-set spectrum has no interval rows"
    exit 1
fi

echo "== report --mrc / --heatmap =="
"$REPORT" --mrc "$WORK/mrc.csv" >/dev/null
"$REPORT" --heatmap "$WORK/heat.json" --top-blocks 5 >/dev/null

echo "OK"
