#!/usr/bin/env sh
# Run the tier-1 test suite under a sanitizer (the MLTC_SANITIZE build).
#
# Usage: scripts/sanitize.sh [address|thread] [extra cmake args...]
#   address (default) - ASan + UBSan, build tree build-asan/
#   thread            - TSan, build tree build-tsan/; this is the mode
#                       that checks the parallel sweep executor
#                       (docs/parallelism.md) for data races
#
# Each mode keeps its own build tree so neither disturbs the regular
# build/ directory. See docs/fault_model.md.
set -eu
cd "$(dirname "$0")/.."

mode=address
case "${1-}" in
    address|thread)
        mode=$1
        shift
        ;;
esac
# Tree names match the CI jobs: build-asan/ (historic) and build-tsan/.
tree=build-asan
[ "$mode" = thread ] && tree=build-tsan

# Suppress false races through uninstrumented libstdc++ internals
# (see scripts/tsan.supp); halt_on_error turns any real race into a
# test failure instead of a log line.
if [ "$mode" = thread ]; then
    TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp halt_on_error=1 ${TSAN_OPTIONS-}"
    export TSAN_OPTIONS
fi

cmake -B "$tree" -S . -DMLTC_SANITIZE="$mode" "$@"
cmake --build "$tree" -j"$(nproc)"
ctest --test-dir "$tree" --output-on-failure -j"$(nproc)"
