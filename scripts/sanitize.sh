#!/usr/bin/env sh
# Run the tier-1 test suite under ASan + UBSan (the MLTC_SANITIZE build).
#
# Usage: scripts/sanitize.sh [extra cmake args...]
# The sanitized tree lives in build-asan/ so it never disturbs the
# regular build/ directory. See docs/fault_model.md.
set -eu
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DMLTC_SANITIZE=ON "$@"
cmake --build build-asan -j"$(nproc)"
ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
