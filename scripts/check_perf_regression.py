#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh perf_microbench run against the
committed BENCH_perf.json baseline.

Raw ns/op is machine-dependent, so per-benchmark ratios
(candidate / baseline) are first normalized by the median ratio across
all shared benchmarks — the median absorbs the overall speed difference
between the baseline machine and the current one, leaving only relative
movement per benchmark. Any benchmark whose normalized ratio exceeds
1 + threshold fails the gate.

Wall-clock rows from ext_parallel_scaling (BM_ParallelSweep/jobs:N)
are excluded: they measure thread-scaling on whatever core count the
machine happens to have, not single-thread code quality. The
single-thread hot-path benchmarks (BM_CacheSimAccess*,
BM_MultiStreamInterference) are mandatory —
a candidate that lacks them is unusable, not merely incomplete, since
they are the benchmarks this gate exists to protect.

Two machine-independent gates run inside the candidate file alone:

* BM_CacheSimAccessTelemetry (hot path with a live registry and a
  10 Hz exposition scraper) must stay within --telemetry-threshold
  (default 5%) of BM_CacheSimAccess measured in the same run — the
  telemetry plane is contractually almost-free on the hot path.
* BM_CacheSimAccessProfiled (hot path with the continuous profiler
  installed and sampling at 997 Hz, i.e. the *enabled* mode) must stay
  within --profile-threshold (default 60%) of BM_CacheSimAccess. The
  disabled-mode hook cost is covered by the plain BM_CacheSimAccess row
  under the normalized baseline gate above.
* BM_CacheSimAccessBatch (the batched access path, ns per texel) must
  be at least --batch-speedup (default 2.0) times faster than
  BM_CacheSimAccessScan — the scalar row driving the same serpentine
  all-hit pattern through the sink interface — in the same run: the
  speedup the batched path exists to deliver (docs/batched_access.md).
* BM_CacheSimAccessBatchProduce (batched path paying for its own span
  construction) must beat BM_CacheSimAccessScan by --batch-produce-
  speedup (default 1.5): batching wins end to end, not just at the
  consumer.
* BM_CacheSimAccessBatchClassified (batched path forced onto the
  faithful per-texel replay branch by the hit-observing 3C shadow
  models) must be no slower than --batch-classified-speedup (default
  0.95) times BM_CacheSimAccessScanClassified — batching must never
  cost observed runs anything.

With --json-out PATH a machine-readable verdict (per-benchmark ratios,
in-run overheads, pass/fail) is written alongside the human table — the
file CI folds into the step summary.

Usage: check_perf_regression.py BASELINE.json CANDIDATE.json [--threshold 0.15]
Exit status: 0 = within budget, 1 = regression, 2 = unusable input.
"""

import argparse
import json
import sys

# Machine-dependent rows the gate must never score.
IGNORED_PREFIXES = ("BM_ParallelSweep",)

# Rows the candidate must contain for the gate to mean anything.
REQUIRED_PREFIXES = ("BM_CacheSimAccess", "BM_MultiStreamInterference")


def load_ns_per_op(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name")
        ns = row.get("ns_per_op")
        if isinstance(name, str) and isinstance(ns, (int, float)) and ns > 0:
            if name.startswith(IGNORED_PREFIXES):
                continue
            rows[name] = float(ns)
    if not rows:
        print(f"error: no usable benchmark rows in {path}", file=sys.stderr)
        sys.exit(2)
    return rows


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def write_json_out(path, verdict):
    if not path:
        return
    try:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(verdict, f, indent=2, sort_keys=True)
            f.write("\n")
    except OSError as e:
        print(f"error: cannot write {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed normalized slowdown (default 0.15 = 15%%)")
    ap.add_argument("--telemetry-threshold", type=float, default=0.05,
                    help="allowed hot-path overhead of the live telemetry "
                         "plane, measured within the candidate run "
                         "(default 0.05 = 5%%)")
    ap.add_argument("--profile-threshold", type=float, default=0.60,
                    help="allowed hot-path overhead of the continuous "
                         "profiler in its *enabled* (sampling) mode, "
                         "measured within the candidate run; ~30-45%% "
                         "observed (default 0.60 = 60%%)")
    ap.add_argument("--batch-speedup", type=float, default=2.0,
                    help="required in-run speedup of BM_CacheSimAccessBatch "
                         "over BM_CacheSimAccessScan (default 2.0 = 2x)")
    ap.add_argument("--batch-produce-speedup", type=float, default=1.5,
                    help="required in-run speedup of "
                         "BM_CacheSimAccessBatchProduce (span construction "
                         "included) over BM_CacheSimAccessScan "
                         "(default 1.5)")
    ap.add_argument("--batch-classified-speedup", type=float, default=0.95,
                    help="required in-run speedup of "
                         "BM_CacheSimAccessBatchClassified over "
                         "BM_CacheSimAccessScanClassified (default 0.95: "
                         "batching must not slow observed runs)")
    ap.add_argument("--json-out", default="",
                    help="write a machine-readable verdict JSON here")
    args = ap.parse_args()

    base = load_ns_per_op(args.baseline)
    cand = load_ns_per_op(args.candidate)
    required = sorted(n for n in base if n.startswith(REQUIRED_PREFIXES))
    lost = [n for n in required if n not in cand]
    if lost:
        print(f"error: candidate is missing required benchmark(s): "
              f"{', '.join(lost)}", file=sys.stderr)
        sys.exit(2)
    shared = sorted(set(base) & set(cand))
    if not shared:
        print("error: baseline and candidate share no benchmarks",
              file=sys.stderr)
        sys.exit(2)
    missing = sorted(set(base) - set(cand))
    if missing:
        print(f"warning: candidate is missing {', '.join(missing)}",
              file=sys.stderr)

    ratios = {name: cand[name] / base[name] for name in shared}
    scale = median(ratios.values())
    print(f"machine-speed scale (median ratio): {scale:.3f}")
    print(f"{'benchmark':<32} {'base ns':>10} {'cand ns':>10} "
          f"{'normalized':>10}")
    failures = []
    bench_rows = []
    for name in shared:
        norm = ratios[name] / scale
        passed = norm <= 1.0 + args.threshold
        if not passed:
            failures.append((name, norm))
        flag = "" if passed else "  REGRESSION"
        print(f"{name:<32} {base[name]:>10.2f} {cand[name]:>10.2f} "
              f"{norm:>9.3f}x{flag}")
        bench_rows.append({
            "name": name,
            "baseline_ns_per_op": base[name],
            "candidate_ns_per_op": cand[name],
            "ratio": ratios[name],
            "normalized_ratio": norm,
            "pass": passed,
        })

    verdict = {
        "threshold": args.threshold,
        "scale": scale,
        "benchmarks": bench_rows,
        "missing": missing,
        "overheads": {},
    }

    # In-run overhead gates: same machine, same run, no normalization
    # needed. Only meaningful once the candidate carries both rows.
    overhead_failures = []
    plain = cand.get("BM_CacheSimAccess")
    for label, row, budget in (
        ("telemetry", "BM_CacheSimAccessTelemetry",
         args.telemetry_threshold),
        ("profile", "BM_CacheSimAccessProfiled", args.profile_threshold),
    ):
        live = cand.get(row)
        if plain and live:
            overhead = live / plain - 1.0
            passed = overhead <= budget
            print(f"{label}-plane hot-path overhead: {overhead:+.1%} "
                  f"(budget {budget:.0%})")
            verdict["overheads"][label] = {
                "benchmark": row,
                "overhead": overhead,
                "budget": budget,
                "pass": passed,
            }
            if not passed:
                overhead_failures.append((label, row, overhead))
                print(f"FAIL: {label} plane costs {overhead:.1%} on the "
                      f"hot path ({row} vs BM_CacheSimAccess)",
                      file=sys.stderr)
        elif live is None and plain:
            print(f"warning: candidate lacks {row}; {label}-overhead "
                  f"gate skipped", file=sys.stderr)

    # Batch-speedup gates: the batched path's contract is a minimum
    # speedup over its scalar twin measured in the same run. Expressed
    # as speedup = scalar_ns / batch_ns, required >= the floor.
    verdict["speedups"] = {}
    for label, scalar_row, batch_row, floor in (
        ("batch", "BM_CacheSimAccessScan", "BM_CacheSimAccessBatch",
         args.batch_speedup),
        ("batch_produce", "BM_CacheSimAccessScan",
         "BM_CacheSimAccessBatchProduce", args.batch_produce_speedup),
        ("batch_classified", "BM_CacheSimAccessScanClassified",
         "BM_CacheSimAccessBatchClassified",
         args.batch_classified_speedup),
    ):
        scalar_ns = cand.get(scalar_row)
        batch_ns = cand.get(batch_row)
        if scalar_ns and batch_ns:
            speedup = scalar_ns / batch_ns
            passed = speedup >= floor
            print(f"{label} speedup: {speedup:.2f}x "
                  f"({batch_row} vs {scalar_row}, floor {floor:.2f}x)")
            verdict["speedups"][label] = {
                "scalar": scalar_row,
                "batch": batch_row,
                "speedup": speedup,
                "floor": floor,
                "pass": passed,
            }
            if not passed:
                overhead_failures.append((label, batch_row, speedup))
                print(f"FAIL: {batch_row} is only {speedup:.2f}x "
                      f"{scalar_row} (floor {floor:.2f}x)",
                      file=sys.stderr)
        elif batch_ns is None and scalar_ns:
            print(f"warning: candidate lacks {batch_row}; {label} "
                  f"speedup gate skipped", file=sys.stderr)

    verdict["pass"] = not failures and not overhead_failures
    write_json_out(args.json_out, verdict)

    if overhead_failures:
        sys.exit(1)
    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(f"FAIL: {len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%} (worst: {worst[0]} at {worst[1]:.3f}x)",
              file=sys.stderr)
        sys.exit(1)
    print(f"OK: all {len(shared)} shared benchmarks within "
          f"{args.threshold:.0%} of the baseline")


if __name__ == "__main__":
    main()
