/**
 * @file
 * Extension: host-path fault tolerance sweep.
 *
 * The paper assumes the AGP/host channel never fails; a production
 * system must survive drops, latency spikes and corrupted sectors.
 * This bench drives the Village and City workloads against the
 * fault-injectable host backend over a range of fault rates and plots
 * degraded-quality vs fault-rate: retries, failed fetches, accesses
 * served from a coarser resident MIP level, and the mean MIP bias those
 * degraded accesses suffered. The scenario is seeded: two runs with the
 * same seed produce identical CSVs.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    using namespace mltc::bench;

    CommandLine cli(argc, argv);
    const ResilienceConfig resilience = resilienceFromCli(cli);
    installCancellationHandlers();

    banner("Extension: host-path fault tolerance",
           "Seeded fault sweep: degraded quality vs host fault rate "
           "(2KB L1 + 2MB L2, trilinear, retry/backoff + MIP fallback)");

    const int n_frames = frames(12);
    const double rates[] = {0.0, 0.01, 0.05, 0.1, 0.2, 0.4};
    const uint64_t seed = 42;

    // One leg per workload on the work-stealing pool (MLTC_JOBS): each
    // leg keeps its six-fault-rate sim fanout (one rasterization pass),
    // prints its table through the ordered leg buffer and stores CSV
    // rows in a leg-indexed slot — byte-identical for any worker count.
    const std::vector<std::string> names = {"village", "city"};
    std::vector<std::vector<std::vector<std::string>>> csv_rows(
        names.size());
    std::vector<RunManifest> manifests(names.size());
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string name = names[w];
        sweep.addLeg(name, [&, w, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Trilinear;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            for (double rate : rates) {
                CacheSimConfig sc =
                    CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
                sc.host.fault_injection = true;
                sc.host.faults.seed = seed;
                sc.host.faults.drop_rate = rate;
                sc.host.faults.corrupt_rate = rate / 2.0;
                sc.host.faults.spike_rate = rate / 2.0;
                runner.addSim(sc, formatPercent(rate, 0) + " faults");
            }
            manifests[w] =
                runner.runSupervised(legResilience(resilience, name));
            if (manifests[w].outcome != RunOutcome::Completed)
                return;

            TextTable table({name + " fault rate", "retries",
                             "retry-exhausted", "failures", "degraded",
                             "hard", "mip bias", "MB/frame"});
            for (size_t i = 0; i < runner.sims().size(); ++i) {
                const CacheSim &sim = *runner.sims()[i];
                const CacheFrameStats &t = sim.totals();
                const uint64_t hard =
                    t.host_failures - t.degraded_accesses;
                // The host path's own request ledger, not the frame
                // counters: requests whose whole retry/backoff budget
                // was consumed.
                const uint64_t exhausted =
                    sim.hostPath() ? sim.hostPath()->stats().failures : 0;
                const double mbpf = runner.averageHostBytesPerFrame(i) /
                                    (1024.0 * 1024.0);
                table.addRow({sim.label(), std::to_string(t.host_retries),
                              std::to_string(exhausted),
                              std::to_string(t.host_failures),
                              std::to_string(t.degraded_accesses),
                              std::to_string(hard),
                              formatDouble(t.meanDegradedMipBias(), 3),
                              formatDouble(mbpf, 3)});
                csv_rows[w].push_back(
                    {name, formatDouble(rates[i], 4),
                     std::to_string(t.host_retries),
                     std::to_string(exhausted),
                     std::to_string(t.host_failures),
                     std::to_string(t.degraded_accesses),
                     std::to_string(hard),
                     formatDouble(t.meanDegradedMipBias(), 4),
                     formatDouble(mbpf, 4)});
            }
            ctx.write(table.render());
            ctx.printf("\n");
        });
    }
    bool ok = runLegs(sweep);
    for (size_t w = 0; w < names.size(); ++w) {
        reportManifest(names[w], manifests[w]);
        if (manifests[w].outcome != RunOutcome::Completed)
            ok = false;
    }
    if (!ok)
        return 1;

    CsvWriter csv(csvPath("ext_fault_tolerance.csv"),
                  {"workload", "fault_rate", "host_retries",
                   "retry_exhausted", "host_failures", "degraded_accesses",
                   "hard_failures", "mean_mip_bias", "host_mb_per_frame"});
    for (const auto &leg_rows : csv_rows)
        for (const auto &row : leg_rows)
            csv.rowStrings(row);
    std::printf("(degradation = access served from a coarser resident MIP "
                "after retry exhaustion; hard = nothing coarser was "
                "resident either. Same seed => identical CSV.)\n");
    wroteCsv(csv);
    return 0;
}
