/**
 * @file
 * Extension (paper §6 future work #3): a "workload of the future".
 *
 * The Terrain workload drapes one uniquely-mapped 2048^2 texture over a
 * landscape (no repetition -> utilisation < 1, large working set) and
 * flies low across it. This bench measures where L2 capacity starts to
 * matter: bandwidth and full-hit rate for 2/8/32 MB L2 caches, plus the
 * workload statistics in Table-1 form.
 */
#include "bench_common.hpp"
#include "model/working_set_model.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/terrain.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Extension: future workload (Terrain)",
           "Uniquely-textured terrain fly-over: L2 capacity sensitivity "
           "(2KB L1, trilinear)");

    const int n_frames = frames(36);
    Workload wl = buildTerrain();
    std::printf("terrain: %zu objects, %s of texture (one unique 2048^2 "
                "satellite map)\n",
                wl.scene.objects().size(),
                formatBytes(static_cast<double>(
                                wl.textures->totalHostBytes()))
                    .c_str());

    DriverConfig cfg;
    cfg.filter = FilterMode::Trilinear;
    cfg.frames = n_frames;

    MultiConfigRunner runner(wl, cfg);
    for (uint64_t mb : {2ull, 8ull, 32ull})
        runner.addSim(CacheSimConfig::twoLevel(2 * 1024, mb << 20),
                      std::to_string(mb) + "MB");
    runner.addSim(CacheSimConfig::pull(2 * 1024), "pull");
    runner.addWorkingSets({16}, {});
    runner.run();

    // Table-1 style statistics.
    double d_sum = 0, util_sum = 0, ws_sum = 0;
    for (const auto &row : runner.rows()) {
        d_sum += row.raster.depthComplexity(cfg.width, cfg.height);
        util_sum += row.working_sets->utilization(0);
        ws_sum += mb(row.working_sets->l2[0].bytesTouched());
    }
    double n = static_cast<double>(runner.rows().size());
    std::printf("depth complexity d = %.2f, utilization = %.2f "
                " , working set = %.1f MB/frame\n\n",
                d_sum / n, util_sum / n, ws_sum / n);

    CsvWriter csv(csvPath("ext_future_workload.csv"),
                  {"config", "mb_per_frame", "h2full"});
    TextTable table({"config", "host MB/frame", "h2full", "note"});
    double pull_avg = runner.averageHostBytesPerFrame(3) / (1 << 20);
    for (size_t i = 0; i < 3; ++i) {
        const CacheSim &sim = *runner.sims()[i];
        double avg = runner.averageHostBytesPerFrame(i) / (1 << 20);
        table.addRow({sim.label() + " L2", formatDouble(avg, 2),
                      formatPercent(sim.totals().l2FullHitRate()),
                      "saving " + formatDouble(pull_avg / avg, 1) + "x"});
        csv.rowStrings({sim.label(), formatDouble(avg, 4),
                        formatDouble(sim.totals().l2FullHitRate(), 4)});
    }
    table.addRow({"pull", formatDouble(pull_avg, 2), "-", "baseline"});
    csv.rowStrings({"pull", formatDouble(pull_avg, 4), "0"});
    table.print();
    std::printf("(unlike Village/City, a small L2 no longer holds the "
                "working set: capacity scaling shows through)\n\n");
    wroteCsv(csv.path());
    return 0;
}
