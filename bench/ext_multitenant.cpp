/**
 * @file
 * Extension: multi-tenant shared-L2 interference sweep.
 *
 * The paper studies one rendering stream per accelerator; a serving
 * deployment runs many camera streams against one texture memory. This
 * bench quantifies the noisy-neighbor problem and the isolation the
 * share policies buy: a well-behaved victim stream (Village, bilinear)
 * is paired with a synthetic thrasher that streams through twice the
 * L2 capacity every round, under each L2 share policy, and the
 * victim's L2 miss rate is compared against its solo run.
 *
 *  - shared:  no enforcement — the thrasher evicts the victim's
 *             working set at will (unbounded inflation);
 *  - static:  hard partitions — the victim behaves exactly like a solo
 *             cache of half the capacity;
 *  - utility: online quota repartitioning from per-stream reuse-
 *             distance curves — the thrasher's flat MRC earns it
 *             nothing, so the victim converges to (nearly) the whole
 *             pool and its miss rate lands within 10% of solo.
 *
 * Output: ext_multitenant.csv, one row per policy. Deterministic for
 * any MLTC_JOBS value (record-parallel, replay-serial runner).
 */
#include "bench_common.hpp"
#include "sim/multi_stream_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    using namespace mltc::bench;

    CommandLine cli(argc, argv);
    installCancellationHandlers();

    banner("Extension: multi-tenant shared-L2 interference",
           "Victim (Village) vs L2-thrashing aggressor under each share "
           "policy (16KB L1 each, 1MB shared L2)");

    const uint32_t rounds = static_cast<uint32_t>(frames(12));

    auto baseConfig = [&](L2SharePolicy share) {
        MultiStreamConfig ms;
        ms.width = 320;
        ms.height = 240;
        ms.rounds = rounds;
        ms.l1_bytes = 16ull << 10;
        ms.l2_bytes = 1ull << 20;
        ms.share = share;
        ms.repartition_every = 2;
        ms.jobs = benchJobs();
        return ms;
    };
    auto victimSpec = [] {
        StreamSpec s;
        s.workload = "village";
        s.filter = FilterMode::Bilinear;
        return s;
    };
    auto thrasherSpec = [] {
        StreamSpec s;
        s.workload = kThrasherWorkload;
        s.filter = FilterMode::Bilinear;
        return s;
    };

    // Solo baseline: the victim alone owns the whole L2.
    MultiStreamConfig solo_cfg = baseConfig(L2SharePolicy::Shared);
    solo_cfg.streams.push_back(victimSpec());
    MultiStreamRunner solo(solo_cfg);
    solo.run({});
    const double solo_miss = solo.l2().streamStats(0).missRate();

    CsvWriter csv(csvPath("ext_multitenant.csv"),
                  {"policy", "victim_l2_miss_rate", "solo_l2_miss_rate",
                   "inflation", "victim_quota_blocks",
                   "victim_alloc_blocks", "victim_evictions_suffered",
                   "thrasher_cross_evictions", "victim_host_mb"});

    TextTable table({"policy", "victim L2 miss", "vs solo",
                     "victim quota", "stolen from victim"});

    double shared_miss = 0.0, utility_miss = 0.0;
    for (L2SharePolicy share :
         {L2SharePolicy::Shared, L2SharePolicy::Static,
          L2SharePolicy::Utility}) {
        MultiStreamConfig ms = baseConfig(share);
        ms.streams.push_back(victimSpec());
        ms.streams.push_back(thrasherSpec());
        MultiStreamRunner runner(ms);
        runner.run({});

        const L2StreamStats &victim = runner.l2().streamStats(0);
        const L2StreamStats &aggressor = runner.l2().streamStats(1);
        const double miss = victim.missRate();
        const double inflation = solo_miss > 0.0 ? miss / solo_miss : 0.0;
        if (share == L2SharePolicy::Shared)
            shared_miss = miss;
        if (share == L2SharePolicy::Utility)
            utility_miss = miss;

        table.addRow({l2SharePolicyName(share), formatPercent(miss, 2),
                      formatDouble(inflation, 2) + "x",
                      std::to_string(runner.l2().quotas()[0]),
                      std::to_string(aggressor.cross_evictions)});
        csv.rowStrings(
            {l2SharePolicyName(share), formatDouble(miss, 6),
             formatDouble(solo_miss, 6), formatDouble(inflation, 4),
             std::to_string(runner.l2().quotas()[0]),
             std::to_string(runner.l2().streamAllocated(0)),
             std::to_string(victim.evictions_suffered),
             std::to_string(aggressor.cross_evictions),
             formatDouble(mb(runner.sim(0).totals().host_bytes), 4)});
    }

    std::printf("solo victim L2 miss rate: %s\n",
                formatPercent(solo_miss, 2).c_str());
    table.print();

    const bool isolated = utility_miss <= solo_miss * 1.10;
    std::printf("isolation verdict: utility policy %s (%.4f vs solo "
                "%.4f, shared inflates to %.4f)\n",
                isolated ? "CONTAINS the thrasher" : "FAILS to contain",
                utility_miss, solo_miss, shared_miss);
    wroteCsv(csv);
    return isolated ? 0 : 1;
}
