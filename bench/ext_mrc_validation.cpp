/**
 * @file
 * Extension: single-pass MRC validation.
 *
 * The reuse-distance profiler claims one profiled run predicts the
 * miss ratio of a fully-associative LRU cache at *every* capacity.
 * This bench checks that claim exhaustively: record a short Village
 * and City clip, replay it once through a profiled simulator (sample
 * rate 1.0), then replay the identical trace into real
 * fully-associative LRU CacheSims at each swept capacity and compare
 * the measured miss ratio with the one-pass prediction. The bench
 * fails (exit 1) if any capacity deviates by more than 0.5% absolute.
 *
 * A second profiled pass at SHARDS sample rate 1/16 is reported for
 * context (sampling error is workload-dependent; not asserted).
 */
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cache_sim.hpp"
#include "obs/reuse_profiler.hpp"
#include "sim/animation_driver.hpp"
#include "trace/trace_io.hpp"
#include "workload/registry.hpp"

namespace {

using namespace mltc;
using namespace mltc::bench;

/** Capacities (in 64-byte L1 lines) swept exhaustively. */
constexpr uint64_t kSweptLines[] = {4, 16, 64, 256, 1024};

constexpr double kTolerance = 0.005; ///< 0.5% absolute, per ISSUE spec

/** Replay the whole trace at @p path into @p sim, frame by frame. */
void
replayInto(const std::string &path, CacheSim &sim)
{
    TraceReader reader(path);
    while (reader.replayFrame(sim))
        sim.endFrame();
}

/** One profiled replay; returns the profiler for inspection. */
std::unique_ptr<ReuseProfiler>
profiledReplay(const std::string &path, Workload &wl, double rate)
{
    CacheSimConfig sc = CacheSimConfig::pull(4 * 1024);
    CacheSim sim(*wl.textures, sc, "profiled");
    ReuseProfilerConfig pc;
    pc.enabled = true;
    pc.sample_rate = rate;
    pc.l1_unit_bytes = sc.l1.lineBytes();
    pc.l2_unit_bytes = sc.l1.lineBytes();
    auto profiler = std::make_unique<ReuseProfiler>(pc);
    sim.setReuseProfiler(profiler.get());
    replayInto(path, sim);
    return profiler;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mltc;
    using namespace mltc::bench;
    (void)argc;
    (void)argv;

    banner("Extension: single-pass MRC validation",
           "One-pass reuse-distance MRC vs exhaustive fully-associative "
           "LRU sweeps (tolerance 0.5% absolute)");

    const int n_frames = frames(2);

    // One leg per workload on the work-stealing pool (MLTC_JOBS); each
    // leg records and replays its own private trace clip, so legs stay
    // fully independent. CSV rows land in leg-indexed slots and tables
    // stream through the ordered leg buffers — byte-identical for any
    // worker count.
    const std::vector<std::string> names = {"village", "city"};
    std::vector<std::vector<std::vector<std::string>>> csv_rows(
        names.size());
    std::vector<int> fail_counts(names.size(), 0);
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string name = names[w];
        sweep.addLeg(name, [&, w, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            // Half-resolution keeps the trace small; the reference
            // stream's locality structure is what matters, not the
            // pixel count.
            DriverConfig cfg;
            cfg.width = 512;
            cfg.height = 384;
            cfg.filter = FilterMode::Bilinear;
            cfg.frames = n_frames;

            const std::string trace_path =
                csvPath("ext_mrc_validation." + name + ".trace.bin");
            {
                TraceWriter writer(trace_path);
                runAnimation(wl, cfg, &writer, [&](int, const FrameStats &) {
                    writer.endFrame();
                });
                writer.close();
            }

            const auto exact = profiledReplay(trace_path, wl, 1.0);
            const auto sampled = profiledReplay(trace_path, wl, 1.0 / 16.0);
            const uint64_t line_bytes = exact->config().l1_unit_bytes;

            TextTable table({"capacity", "predicted", "measured", "abs err",
                             "sampled (1/16)"});
            for (uint64_t lines : kSweptLines) {
                CacheSimConfig sc = CacheSimConfig::pull(lines * line_bytes);
                sc.l1.assoc = 0; // fully associative, true-LRU stamps
                CacheSim sim(*wl.textures, sc, "swept");
                replayInto(trace_path, sim);
                const CacheFrameStats &t = sim.totals();
                const double measured =
                    static_cast<double>(t.l1_misses) /
                    static_cast<double>(t.accesses);
                const double predicted = exact->l1().missRatio(lines);
                const double sampled_ratio = sampled->l1().missRatio(lines);
                const double err = std::fabs(predicted - measured);
                if (err > kTolerance)
                    ++fail_counts[w];
                table.addRow({formatBytes(static_cast<double>(
                                  lines * line_bytes)),
                              formatPercent(predicted, 3),
                              formatPercent(measured, 3),
                              formatPercent(err, 4) +
                                  (err > kTolerance ? " FAIL" : ""),
                              formatPercent(sampled_ratio, 3)});
                csv_rows[w].push_back(
                    {name, std::to_string(lines * line_bytes),
                     formatDouble(predicted, 6), formatDouble(measured, 6),
                     formatDouble(err, 6), formatDouble(sampled_ratio, 6)});
            }
            ctx.printf("\n%s (%d frames, %dx%d bilinear):\n", name.c_str(),
                       n_frames, cfg.width, cfg.height);
            ctx.write(table.render());
            std::remove(trace_path.c_str());
        });
    }
    if (!runLegs(sweep))
        return 1;

    CsvWriter csv(csvPath("ext_mrc_validation.csv"),
                  {"workload", "capacity_bytes", "predicted_miss_ratio",
                   "measured_miss_ratio", "abs_error",
                   "sampled_miss_ratio"});
    for (const auto &leg_rows : csv_rows)
        for (const auto &row : leg_rows)
            csv.rowStrings(row);

    int failures = 0;
    for (int f : fail_counts)
        failures += f;
    wroteCsv(csv);
    if (failures > 0) {
        std::fprintf(stderr,
                     "FAIL: %d swept capacities deviate more than %.1f%% "
                     "from the one-pass MRC\n",
                     failures, kTolerance * 100.0);
        return 1;
    }
    std::printf("OK: every swept capacity within %.1f%% of the one-pass "
                "prediction\n",
                kTolerance * 100.0);
    return 0;
}
