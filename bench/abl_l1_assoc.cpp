/**
 * @file
 * Ablation (Hakura comparison, §2.3): L1 associativity — direct-mapped,
 * 2-way (the paper's choice, following Hakura), 4-way and fully
 * associative — at 2 KB and 16 KB, trilinear, Village.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Ablation: L1 associativity",
           "L1 hit rate by associativity (Village, trilinear, no L2)");

    const int n_frames = frames(36);
    const uint32_t assocs[] = {1, 2, 4, 0}; // 0 = fully associative
    const uint64_t sizes[] = {2 * 1024, 16 * 1024};

    Workload wl = buildWorkload("village");
    DriverConfig cfg;
    cfg.filter = FilterMode::Trilinear;
    cfg.frames = n_frames;

    MultiConfigRunner runner(wl, cfg);
    for (uint64_t size : sizes)
        for (uint32_t a : assocs) {
            CacheSimConfig sc = CacheSimConfig::pull(size);
            sc.l1.assoc = a;
            runner.addSim(sc, std::to_string(size / 1024) + "KB/" +
                                  (a ? std::to_string(a) + "-way"
                                     : "full"));
        }
    runner.run();

    CsvWriter csv(csvPath("abl_l1_assoc.csv"),
                  {"config", "hit_rate", "mb_per_frame"});
    TextTable table({"L1 config", "hit rate", "MB/frame"});
    for (size_t i = 0; i < runner.sims().size(); ++i) {
        const auto &sim = *runner.sims()[i];
        double avg = runner.averageHostBytesPerFrame(i) / (1024.0 * 1024.0);
        table.addRow({sim.label(),
                      formatPercent(sim.totals().l1HitRate(), 2),
                      formatDouble(avg, 2)});
        csv.rowStrings({sim.label(),
                        formatDouble(sim.totals().l1HitRate(), 5),
                        formatDouble(avg, 3)});
    }
    table.print();
    std::printf("(Hakura: 2-way suffices to avoid trilinear conflict "
                "misses)\n\n");
    wroteCsv(csv.path());
    return 0;
}
