/**
 * @file
 * Extension: transaction-level timing of the pull vs L2 architectures.
 *
 * Prices every counted transaction with explicit AGP / local-DRAM
 * latency+bandwidth parameters, producing frame-time and fps bounds, and
 * compares the *effective* fractional advantage against the paper's
 * analytic §5.4.2 model (Table 7's c = 8 assumption).
 */
#include "bench_common.hpp"
#include "model/performance_model.hpp"
#include "model/timing_model.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Extension: timing model",
           "Frame-time bounds (AGP 512 MB/s, local DRAM 1 GB/s) and "
           "effective fractional advantage vs the analytic model");

    const int n_frames = frames(36);
    const TimingParams tp;

    // One leg per workload on the work-stealing pool (MLTC_JOBS);
    // tables stream through the ordered leg buffers and CSV rows land
    // in leg-indexed slots — byte-identical for any worker count.
    const std::vector<std::string> names = workloadNames();
    std::vector<std::vector<std::vector<std::string>>> csv_rows(
        names.size());
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string name = names[w];
        sweep.addLeg(name, [&, w, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Trilinear;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addSim(CacheSimConfig::pull(2 * 1024), "pull-2KB");
            runner.addSim(CacheSimConfig::pull(16 * 1024), "pull-16KB");
            runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20),
                          "2KB+2MB-L2");
            runner.run();

            TextTable table({name + " architecture", "texture ms/frame",
                             "host bus ms/frame", "frame ms",
                             "fps bound"});
            for (size_t i = 0; i < runner.sims().size(); ++i) {
                const CacheSim &sim = *runner.sims()[i];
                // Average per-frame counters for timing.
                CacheFrameStats avg = sim.totals();
                uint32_t n = sim.frames();
                avg.accesses /= n;
                avg.l1_misses /= n;
                avg.l2_full_hits /= n;
                avg.l2_partial_hits /= n;
                avg.l2_full_misses /= n;
                avg.host_bytes /= n;
                avg.l2_read_bytes /= n;

                ArchTiming t = sim.l2() ? timeL2Frame(avg, tp)
                                        : timePullFrame(avg, tp);
                table.addRow(sim.label(),
                             {t.texture_path_ms, t.host_bus_ms, t.frame_ms,
                              t.fps_bound},
                             2);
                csv_rows[w].push_back({name, sim.label(),
                                       formatDouble(t.texture_path_ms, 3),
                                       formatDouble(t.host_bus_ms, 3),
                                       formatDouble(t.frame_ms, 3),
                                       formatDouble(t.fps_bound, 1)});
            }
            ctx.write(table.render());

            // Effective vs analytic fractional advantage for the L2
            // config.
            const CacheFrameStats &l2t = runner.sims()[2]->totals();
            PerformanceInputs in;
            in.l1_hit_rate = l2t.l1HitRate();
            in.l2_full_hit_rate = l2t.l2FullHitRate();
            in.l2_partial_hit_rate = l2t.l2PartialHitRate();
            in.full_miss_cost = 8.0;
            double f_analytic = fractionalAdvantage(in);
            double f_effective = effectiveFractionalAdvantage(l2t, tp);
            ctx.printf("%s fractional advantage: analytic (c=8) %.3f, "
                       "timing-model %.3f -> both %s 1\n\n",
                       name.c_str(), f_analytic, f_effective,
                       (f_analytic < 1 && f_effective < 1) ? "<" : ">=");
        });
    }
    if (!runLegs(sweep))
        return 1;

    CsvWriter csv(csvPath("ext_timing_model.csv"),
                  {"workload", "arch", "texture_ms", "host_bus_ms",
                   "frame_ms", "fps_bound"});
    for (const auto &leg_rows : csv_rows)
        for (const auto &row : leg_rows)
            csv.rowStrings(row);
    wroteCsv(csv.path());
    return 0;
}
