/**
 * @file
 * Table 1: measured depth complexity d, block utilisation and expected
 * inter-frame working set W for the Village and City animations
 * (1024x768, point sampling, 16x16 L2 tiles).
 */
#include "bench_common.hpp"
#include "model/working_set_model.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Table 1",
           "Workload statistics and expected inter-frame working set W\n"
           "(1024x768, point sampling, 16x16 L2 tiles; paper: Village "
           "d=3.8 util=4.7 W=2.43MB, City d=1.9 util=7.8 W=0.73MB)");

    const int n_frames = frames(96);
    TextTable table({"statistic", "Village", "City"});

    // One leg per workload on the work-stealing pool (MLTC_JOBS);
    // results land in leg-indexed slots and the table/CSV are rendered
    // after the sweep — byte-identical output for any worker count.
    const std::vector<std::string> names = workloadNames();
    std::vector<double> d_row(names.size()), util_row(names.size()),
        w_row(names.size());
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string name = names[w];
        sweep.addLeg(name, [&, w, name](LegContext &) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Point;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addWorkingSets({16}, {});
            runner.run();

            // Average d and utilisation over all frames.
            double d_sum = 0.0, util_sum = 0.0;
            uint64_t n = 0;
            for (const auto &row : runner.rows()) {
                d_sum += row.raster.depthComplexity(cfg.width, cfg.height);
                util_sum += row.working_sets->utilization(0);
                ++n;
            }
            double d = d_sum / static_cast<double>(n);
            double util = util_sum / static_cast<double>(n);
            d_row[w] = d;
            util_row[w] = util;
            w_row[w] = expectedWorkingSetBytes(
                           static_cast<uint64_t>(cfg.width) *
                               static_cast<uint64_t>(cfg.height),
                           d, util) /
                       (1024.0 * 1024.0);
        });
    }
    if (!runLegs(sweep))
        return 1;

    table.addRow("Depth complexity, d", d_row, 2);
    table.addRow("Block utilization", util_row, 2);
    table.addRow("Expected working set W (MB)", w_row, 2);
    table.print();

    CsvWriter csv(csvPath("tab01_workload_stats.csv"),
                  {"workload", "depth_complexity", "utilization",
                   "expected_ws_mb"});
    for (size_t i = 0; i < names.size(); ++i)
        csv.rowStrings({names[i], formatDouble(d_row[i], 3),
                        formatDouble(util_row[i], 3),
                        formatDouble(w_row[i], 3)});
    wroteCsv(csv.path());
    return 0;
}
