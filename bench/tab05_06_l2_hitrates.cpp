/**
 * @file
 * Tables 5 and 6: measured L1 hit rate and conditional L2 full/partial
 * hit rates (given an L1 miss) for the Village and City under bilinear
 * and trilinear filtering — 2 KB L1, 2 MB L2 of 16x16 tiles. These
 * rates feed the §5.4.2 performance model (Table 7).
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Tables 5/6",
           "L1 hit rate and conditional L2 hit rates (2KB L1, 2MB L2, "
           "16x16 tiles)");

    const int n_frames = frames(36);
    CsvWriter csv(csvPath("tab05_06_l2_hitrates.csv"),
                  {"workload", "filter", "h1", "h2full", "h2partial"});

    for (const std::string &name : workloadNames()) {
        TextTable table({name + " rate", "BL", "TL"});
        double h1[2], h2f[2], h2p[2];
        for (int pass = 0; pass < 2; ++pass) {
            FilterMode filter =
                pass == 0 ? FilterMode::Bilinear : FilterMode::Trilinear;
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = filter;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20),
                          "2KB+2MB");
            runner.run();

            const CacheFrameStats &t = runner.sims()[0]->totals();
            h1[pass] = t.l1HitRate();
            h2f[pass] = t.l2FullHitRate();
            h2p[pass] = t.l2PartialHitRate();
            csv.rowStrings({name, filterModeName(filter),
                            formatDouble(h1[pass], 4),
                            formatDouble(h2f[pass], 4),
                            formatDouble(h2p[pass], 4)});
        }
        table.addRow("L1 hit rate h1", {h1[0] * 100, h1[1] * 100}, 2);
        table.addRow("L2 full hit h2full | L1 miss",
                     {h2f[0] * 100, h2f[1] * 100}, 2);
        table.addRow("L2 partial hit h2partial | L1 miss",
                     {h2p[0] * 100, h2p[1] * 100}, 2);
        table.print();
        std::printf("\n");
    }
    std::printf("(inclusion is not maintained between L1 and L2, so these "
                "are conditional rates — paper footnote 5)\n");
    wroteCsv(csv.path());
    return 0;
}
