/**
 * @file
 * Tables 5 and 6: measured L1 hit rate and conditional L2 full/partial
 * hit rates (given an L1 miss) for the Village and City under bilinear
 * and trilinear filtering — 2 KB L1, 2 MB L2 of 16x16 tiles. These
 * rates feed the §5.4.2 performance model (Table 7).
 */
#include <vector>

#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Tables 5/6",
           "L1 hit rate and conditional L2 hit rates (2KB L1, 2MB L2, "
           "16x16 tiles)");

    const int n_frames = frames(36);

    // One leg per (workload, filter), run on the work-stealing pool
    // (MLTC_JOBS); rates land in leg-indexed slots and the CSV/tables
    // are rendered after the sweep in leg order, byte-identical for any
    // worker count (docs/parallelism.md).
    const std::vector<std::string> names = workloadNames();
    const FilterMode filters[] = {FilterMode::Bilinear,
                                  FilterMode::Trilinear};
    struct Rates
    {
        double h1 = 0, h2f = 0, h2p = 0;
    };
    std::vector<Rates> rates(names.size() * 2);

    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w)
        for (int pass = 0; pass < 2; ++pass) {
            const size_t slot = w * 2 + static_cast<size_t>(pass);
            const std::string name = names[w];
            const FilterMode filter = filters[pass];
            sweep.addLeg(name + "_" + filterModeName(filter),
                         [&, slot, name, filter](LegContext &) {
                             Workload wl = buildWorkload(name);
                             DriverConfig cfg;
                             cfg.filter = filter;
                             cfg.frames = n_frames;

                             MultiConfigRunner runner(wl, cfg);
                             runner.addSim(CacheSimConfig::twoLevel(
                                               2 * 1024, 2ull << 20),
                                           "2KB+2MB");
                             runner.run();

                             const CacheFrameStats &t =
                                 runner.sims()[0]->totals();
                             rates[slot] = {t.l1HitRate(),
                                            t.l2FullHitRate(),
                                            t.l2PartialHitRate()};
                         });
        }
    if (!runLegs(sweep))
        return 1;

    CsvWriter csv(csvPath("tab05_06_l2_hitrates.csv"),
                  {"workload", "filter", "h1", "h2full", "h2partial"});
    for (size_t w = 0; w < names.size(); ++w) {
        TextTable table({names[w] + " rate", "BL", "TL"});
        const Rates &bl = rates[w * 2];
        const Rates &tl = rates[w * 2 + 1];
        for (int pass = 0; pass < 2; ++pass) {
            const Rates &r = pass == 0 ? bl : tl;
            csv.rowStrings({names[w], filterModeName(filters[pass]),
                            formatDouble(r.h1, 4), formatDouble(r.h2f, 4),
                            formatDouble(r.h2p, 4)});
        }
        table.addRow("L1 hit rate h1", {bl.h1 * 100, tl.h1 * 100}, 2);
        table.addRow("L2 full hit h2full | L1 miss",
                     {bl.h2f * 100, tl.h2f * 100}, 2);
        table.addRow("L2 partial hit h2partial | L1 miss",
                     {bl.h2p * 100, tl.h2p * 100}, 2);
        table.print();
        std::printf("\n");
    }
    std::printf("(inclusion is not maintained between L1 and L2, so these "
                "are conditional rates — paper footnote 5)\n");
    wroteCsv(csv.path());
    return 0;
}
