/**
 * @file
 * Google-benchmark microbenchmarks of the simulator hot paths: L1
 * lookups, the full two-level controller (plain, pull, and with 3C
 * classification enabled), virtual address translation, the FlatSet64
 * trace structure, and end-to-end frame rasterization. These bound the
 * wall-clock cost of the experiment sweeps.
 *
 * Besides the console table, the run emits a machine-readable
 * `BENCH_perf.json` at the repository root (override the path with
 * MLTC_BENCH_OUT) with ns/op and ops/sec per benchmark — the file the
 * observability perf gate diffs against to prove the disabled-mode
 * hooks cost < 5%.
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry_server.hpp"
#include "util/build_info.hpp"
#include "raster/rasterizer.hpp"
#include "texture/procedural.hpp"
#include "trace/flat_set.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/village.hpp"

namespace {

using namespace mltc;

/** A small manager with one 256^2 texture for addressing benches. */
TextureManager &
benchTextures()
{
    static TextureManager tm;
    static TextureId tid =
        tm.load("bench", MipPyramid(makeChecker(256, 8, 0xff0000ffu,
                                                0xffffffffu)));
    (void)tid;
    return tm;
}

void
BM_L1Lookup(benchmark::State &state)
{
    L1Config cfg;
    cfg.size_bytes = 16 * 1024;
    L1Cache cache(cfg);
    Rng rng(7);
    std::vector<uint64_t> keys(4096);
    for (auto &k : keys)
        k = (1ull << 32) | (rng.below(1024) << 8) | rng.below(16);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(keys[i & 4095]));
        ++i;
    }
}
BENCHMARK(BM_L1Lookup);

void
BM_AddressTranslation(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    const TiledLayout &layout = tm.layout(1, TileSpec{16, 4});
    Rng rng(11);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 3) & 255;
        y = (y + 1) & 255;
        benchmark::DoNotOptimize(layout.blockKeyOf(1, x, y, 0));
    }
    (void)rng;
}
BENCHMARK(BM_AddressTranslation);

void
runCacheSimAccess(benchmark::State &state, const CacheSimConfig &cfg)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, cfg);
    sim.bindTexture(1);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 1) & 255;
        if (x == 0)
            y = (y + 1) & 255;
        sim.access(x, y, 0);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheSimAccess(benchmark::State &state)
{
    runCacheSimAccess(state, CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
}
BENCHMARK(BM_CacheSimAccess);

/**
 * BM_CacheSimAccess with the live telemetry plane attached: an enabled
 * MetricsRegistry receiving frame-boundary update batches under the
 * scrape guard, while a background thread renders the /metrics
 * Prometheus exposition at 10 Hz — the contention pattern of a real
 * scraped run. The perf gate holds this within 5% of the plain
 * BM_CacheSimAccess (scripts/check_perf_regression.py --telemetry).
 */
void
BM_CacheSimAccessTelemetry(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
    sim.bindTexture(1);
    MetricsRegistry registry(true);
    CounterHandle accesses =
        registry.counter("accesses", {{"stream", "0"}});
    GaugeHandle bias = registry.gauge("lod_bias", {{"stream", "0"}});
    std::atomic<bool> stop{false};
    std::thread scraper([&registry, &stop]() {
        while (!stop.load(std::memory_order_relaxed)) {
            benchmark::DoNotOptimize(renderExposition(registry));
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    });
    uint32_t x = 0, y = 0;
    uint64_t n = 0;
    for (auto _ : state) {
        x = (x + 1) & 255;
        if (x == 0)
            y = (y + 1) & 255;
        sim.access(x, y, 0);
        // A "frame" every 64K accesses: batch the registry update under
        // updateGuard exactly as the runners do at round boundaries.
        if ((++n & 0xffff) == 0) {
            auto guard = registry.updateGuard();
            accesses.set(n);
            bias.set(static_cast<double>(y));
        }
    }
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccessTelemetry);

/**
 * BM_CacheSimAccess with the continuous profiler installed and
 * actively sampling at the default 997 Hz: every access runs the
 * enabled-branch ScopedProfileStage push/pop while the sampler thread
 * snapshots the stack from outside. This prices the *enabled* mode —
 * the disabled-mode hook cost (one atomic load + branch) is what the
 * plain BM_CacheSimAccess row holds under the 5% baseline gate. The
 * perf gate bounds this row against the in-run BM_CacheSimAccess via
 * scripts/check_perf_regression.py --profile-threshold.
 */
void
BM_CacheSimAccessProfiled(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
    sim.bindTexture(1);
    ProfilerConfig pc;
    pc.hz = 997;
    pc.counters = false; // counter reads price leg/pass scopes, not this
    StageProfiler profiler(pc);
    installStageProfiler(&profiler);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 1) & 255;
        if (x == 0)
            y = (y + 1) & 255;
        sim.access(x, y, 0);
    }
    installStageProfiler(nullptr);
    profiler.stopSampler();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccessProfiled);

void
BM_CacheSimAccessPull(benchmark::State &state)
{
    runCacheSimAccess(state, CacheSimConfig::pull(16 * 1024));
}
BENCHMARK(BM_CacheSimAccessPull);

/** The explicit-opt-in cost of the 3C shadow models (--miss-classes). */
void
BM_CacheSimAccessClassified(benchmark::State &state)
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
    cfg.classify_misses = true;
    runCacheSimAccess(state, cfg);
}
BENCHMARK(BM_CacheSimAccessClassified);

/**
 * Two tenants interleaving through one shared Utility-policy L2: the
 * per-access cost of the multi-tenant path (stream-tagged page table,
 * quota-constrained victim selection, per-stream stats).
 */
void
BM_MultiStreamInterference(benchmark::State &state)
{
    static TextureManager tm_a;
    static TextureManager tm_b;
    static TextureId tid_a = tm_a.load(
        "tenant_a", MipPyramid(makeChecker(256, 8, 0xff0000ffu, 0xffffffffu)));
    static TextureId tid_b = tm_b.load(
        "tenant_b", MipPyramid(makeChecker(256, 8, 0xff00ff00u, 0xff000000u)));
    std::vector<TextureManager *> managers{&tm_a, &tm_b};
    L2Config l2cfg;
    l2cfg.size_bytes = 256ull << 10;
    L2TextureCache l2(managers, l2cfg, L2SharePolicy::Utility);
    CacheSim sim_a(tm_a, CacheSimConfig::pull(16 * 1024));
    CacheSim sim_b(tm_b, CacheSimConfig::pull(16 * 1024));
    sim_a.attachSharedL2(&l2, 0);
    sim_b.attachSharedL2(&l2, 1);
    sim_a.bindTexture(tid_a);
    sim_b.bindTexture(tid_b);
    uint32_t xa = 0, ya = 0, xb = 0, yb = 0;
    for (auto _ : state) {
        xa = (xa + 1) & 255;
        if (xa == 0)
            ya = (ya + 1) & 255;
        sim_a.access(xa, ya, 0);
        // The neighbor strides a tile at a time: maximal block churn.
        xb = (xb + 16) & 255;
        if (xb < 16)
            yb = (yb + 16) & 255;
        sim_b.access(xb, yb, 0);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MultiStreamInterference);

void
BM_FlatSetInsert(benchmark::State &state)
{
    FlatSet64 set(1 << 16);
    Rng rng(3);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.insert(i++ & 0xffff));
        if ((i & 0xfffff) == 0)
            set.clear();
    }
}
BENCHMARK(BM_FlatSetInsert);

void
BM_RenderVillageFrame(benchmark::State &state)
{
    VillageParams params;
    params.houses = 24;
    params.trees = 16;
    static Workload wl = buildVillage(params);
    Rasterizer raster(640, 480);
    raster.setFilter(FilterMode::Bilinear);
    NullSink sink;
    raster.setSink(&sink);
    int frame = 0;
    for (auto _ : state) {
        Camera cam = wl.cameraAtFrame(frame++ % 60, 60, 640.0f / 480.0f);
        benchmark::DoNotOptimize(
            raster.renderFrame(wl.scene, cam, *wl.textures));
    }
}
BENCHMARK(BM_RenderVillageFrame)->Unit(benchmark::kMillisecond);

/**
 * Console reporting plus capture of every per-iteration run so main()
 * can emit the BENCH_perf.json summary.
 */
class JsonCaptureReporter final : public benchmark::ConsoleReporter
{
  public:
    struct Result
    {
        std::string name;
        double ns_per_op = 0.0;
        double ops_per_sec = 0.0;
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration || r.error_occurred)
                continue;
            Result res;
            res.name = r.benchmark_name();
            if (r.iterations > 0 && r.real_accumulated_time > 0.0) {
                const double s_per_op =
                    r.real_accumulated_time /
                    static_cast<double>(r.iterations);
                res.ns_per_op = s_per_op * 1e9;
                res.ops_per_sec = 1.0 / s_per_op;
            }
            results_.push_back(std::move(res));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<Result> &results() const { return results_; }

  private:
    std::vector<Result> results_;
};

/** BENCH_perf.json destination: MLTC_BENCH_OUT or the repo root. */
std::string
benchOutPath()
{
    if (const char *env = std::getenv("MLTC_BENCH_OUT"); env && *env)
        return env;
#ifdef MLTC_REPO_ROOT
    return std::string(MLTC_REPO_ROOT) + "/BENCH_perf.json";
#else
    return "BENCH_perf.json";
#endif
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    mltc::JsonWriter w;
    w.beginObject();
    // Provenance first: a checked-in baseline says what produced it.
    w.key("build");
    mltc::appendBuildInfo(w);
    w.key("benchmarks").beginArray();
    for (const auto &res : reporter.results()) {
        w.beginObject()
            .kv("name", res.name)
            .kv("ns_per_op", res.ns_per_op)
            .kv("ops_per_sec", res.ops_per_sec)
            .endObject();
    }
    w.endArray();
    // The headline number the sweeps scale with: simulated texel
    // accesses per second through the two-level controller.
    for (const auto &res : reporter.results())
        if (res.name == "BM_CacheSimAccess")
            w.kv("accesses_per_sec", res.ops_per_sec);
    w.endObject();

    const std::string path = benchOutPath();
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%s\n", w.str().c_str());
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "could not write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
