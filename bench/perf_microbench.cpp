/**
 * @file
 * Google-benchmark microbenchmarks of the simulator hot paths: L1
 * lookups, the full two-level controller, virtual address translation,
 * the FlatSet64 trace structure, and end-to-end frame rasterization.
 * These bound the wall-clock cost of the experiment sweeps.
 */
#include <benchmark/benchmark.h>

#include "core/cache_sim.hpp"
#include "raster/rasterizer.hpp"
#include "texture/procedural.hpp"
#include "trace/flat_set.hpp"
#include "util/rng.hpp"
#include "workload/village.hpp"

namespace {

using namespace mltc;

/** A small manager with one 256^2 texture for addressing benches. */
TextureManager &
benchTextures()
{
    static TextureManager tm;
    static TextureId tid =
        tm.load("bench", MipPyramid(makeChecker(256, 8, 0xff0000ffu,
                                                0xffffffffu)));
    (void)tid;
    return tm;
}

void
BM_L1Lookup(benchmark::State &state)
{
    L1Config cfg;
    cfg.size_bytes = 16 * 1024;
    L1Cache cache(cfg);
    Rng rng(7);
    std::vector<uint64_t> keys(4096);
    for (auto &k : keys)
        k = (1ull << 32) | (rng.below(1024) << 8) | rng.below(16);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(keys[i & 4095]));
        ++i;
    }
}
BENCHMARK(BM_L1Lookup);

void
BM_AddressTranslation(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    const TiledLayout &layout = tm.layout(1, TileSpec{16, 4});
    Rng rng(11);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 3) & 255;
        y = (y + 1) & 255;
        benchmark::DoNotOptimize(layout.blockKeyOf(1, x, y, 0));
    }
    (void)rng;
}
BENCHMARK(BM_AddressTranslation);

void
BM_CacheSimAccess(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
    sim.bindTexture(1);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 1) & 255;
        if (x == 0)
            y = (y + 1) & 255;
        sim.access(x, y, 0);
    }
}
BENCHMARK(BM_CacheSimAccess);

void
BM_FlatSetInsert(benchmark::State &state)
{
    FlatSet64 set(1 << 16);
    Rng rng(3);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.insert(i++ & 0xffff));
        if ((i & 0xfffff) == 0)
            set.clear();
    }
}
BENCHMARK(BM_FlatSetInsert);

void
BM_RenderVillageFrame(benchmark::State &state)
{
    VillageParams params;
    params.houses = 24;
    params.trees = 16;
    static Workload wl = buildVillage(params);
    Rasterizer raster(640, 480);
    raster.setFilter(FilterMode::Bilinear);
    NullSink sink;
    raster.setSink(&sink);
    int frame = 0;
    for (auto _ : state) {
        Camera cam = wl.cameraAtFrame(frame++ % 60, 60, 640.0f / 480.0f);
        benchmark::DoNotOptimize(
            raster.renderFrame(wl.scene, cam, *wl.textures));
    }
}
BENCHMARK(BM_RenderVillageFrame)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
