/**
 * @file
 * Google-benchmark microbenchmarks of the simulator hot paths: L1
 * lookups, the full two-level controller (plain, pull, and with 3C
 * classification enabled), virtual address translation, the FlatSet64
 * trace structure, and end-to-end frame rasterization. These bound the
 * wall-clock cost of the experiment sweeps.
 *
 * Besides the console table, the run emits a machine-readable
 * `BENCH_perf.json` at the repository root (override the path with
 * MLTC_BENCH_OUT) with ns/op and ops/sec per benchmark — the file the
 * observability perf gate diffs against to prove the disabled-mode
 * hooks cost < 5%.
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry_server.hpp"
#include "util/build_info.hpp"
#include "raster/rasterizer.hpp"
#include "texture/procedural.hpp"
#include "trace/flat_set.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/village.hpp"

namespace {

using namespace mltc;

/** A small manager with one 256^2 texture for addressing benches. */
TextureManager &
benchTextures()
{
    static TextureManager tm;
    static TextureId tid =
        tm.load("bench", MipPyramid(makeChecker(256, 8, 0xff0000ffu,
                                                0xffffffffu)));
    (void)tid;
    return tm;
}

void
BM_L1Lookup(benchmark::State &state)
{
    L1Config cfg;
    cfg.size_bytes = 16 * 1024;
    L1Cache cache(cfg);
    Rng rng(7);
    std::vector<uint64_t> keys(4096);
    for (auto &k : keys)
        k = (1ull << 32) | (rng.below(1024) << 8) | rng.below(16);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(keys[i & 4095]));
        ++i;
    }
}
BENCHMARK(BM_L1Lookup);

void
BM_AddressTranslation(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    const TiledLayout &layout = tm.layout(1, TileSpec{16, 4});
    Rng rng(11);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 3) & 255;
        y = (y + 1) & 255;
        benchmark::DoNotOptimize(layout.blockKeyOf(1, x, y, 0));
    }
    (void)rng;
}
BENCHMARK(BM_AddressTranslation);

void
runCacheSimAccess(benchmark::State &state, const CacheSimConfig &cfg)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, cfg);
    sim.bindTexture(1);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 1) & 255;
        if (x == 0)
            y = (y + 1) & 255;
        sim.access(x, y, 0);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CacheSimAccess(benchmark::State &state)
{
    runCacheSimAccess(state, CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
}
BENCHMARK(BM_CacheSimAccess);

/**
 * The batched-vs-scalar gate pattern (docs/batched_access.md): a
 * serpentine walk over a 64x32-texel window. That window is the
 * conflict-free working set of the 16KB L1 under Morton set indexing,
 * so after warm-up every access hits and the rows isolate the
 * *front-end* cost per texel — virtual dispatch, observability-hook
 * check, coalescing filter, address translation, tag probe — which is
 * exactly the cost the batched path amortises and vectorises. The miss
 * path (L2, TLB, host fetch) is shared verbatim by both modes and is
 * priced separately by BM_CacheSimAccess's 25%-miss sweep, so an
 * all-hit pattern here is the honest denominator: miss-heavy patterns
 * would just dilute both rows with identical slow-path time.
 *
 * Scalar calls go through the TexelAccessSink interface pointer, as
 * every deployment call site does (rasterizer, trace replay,
 * multi-stream replay all hold sink pointers); laundering the pointer
 * through DoNotOptimize stops the compiler devirtualising a call that
 * no real call site can devirtualise.
 */
constexpr uint32_t kScanW = 64;
constexpr uint32_t kScanRows = 32;

void
runCacheSimScan(benchmark::State &state, const CacheSimConfig &cfg)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, cfg);
    TexelAccessSink *sink = &sim;
    benchmark::DoNotOptimize(sink);
    sink->bindTexture(1);
    uint32_t y = 0;
    for (auto _ : state) {
        for (uint32_t i = 0; i < kScanW; ++i)
            sink->access((y & 1) ? (kScanW - 1 - i) : i, y, 0);
        y = (y + 1) & (kScanRows - 1);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kScanW));
}

void
BM_CacheSimAccessScan(benchmark::State &state)
{
    runCacheSimScan(state,
                    CacheSimConfig::twoLevel(16 * 1024, 2ull << 20));
}
BENCHMARK(BM_CacheSimAccessScan);

/** Scalar scan with the 3C shadow models on (batch-gate denominator). */
void
BM_CacheSimAccessScanClassified(benchmark::State &state)
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(16 * 1024, 2ull << 20);
    cfg.classify_misses = true;
    runCacheSimScan(state, cfg);
}
BENCHMARK(BM_CacheSimAccessScanClassified);

/**
 * The batched access path: the same serpentine scan delivered as
 * 256-texel spans (four scanlines — a trace-replay chunk) through the
 * same laundered sink pointer. The spans are prebuilt: this row prices
 * the accessBatch() entry point itself, the per-texel analogue of
 * BM_CacheSimAccessScan's access() calls — producers own the buffer
 * fill and BM_CacheSimAccessBatchProduce prices that end-to-end.
 * ns/op is per texel access (items-normalised), so this row divides
 * directly against BM_CacheSimAccessScan; the perf gate enforces the
 * >= 2x speedup (check_perf_regression.py --batch-speedup).
 */
void
runCacheSimAccessBatch(benchmark::State &state, const CacheSimConfig &cfg,
                       bool prebuilt)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, cfg);
    TexelAccessSink *sink = &sim;
    benchmark::DoNotOptimize(sink);
    sink->bindTexture(1);
    constexpr uint32_t kSpanRows = 4;
    constexpr uint32_t kSpan = kScanW * kSpanRows;
    constexpr uint32_t kBands = kScanRows / kSpanRows;
    std::vector<std::vector<TexelRef>> spans(kBands);
    for (uint32_t b = 0; b < kBands; ++b)
        for (uint32_t r = 0; r < kSpanRows; ++r) {
            const uint32_t y = b * kSpanRows + r;
            for (uint32_t i = 0; i < kScanW; ++i)
                spans[b].push_back(TexelRef::texel(
                    (y & 1) ? (kScanW - 1 - i) : i, y, 0));
        }
    std::vector<TexelRef> scratch(kSpan);
    uint32_t b = 0;
    for (auto _ : state) {
        if (prebuilt) {
            sink->accessBatch(spans[b]);
        } else {
            // End-to-end: rebuild the span as a producer would before
            // delivering it.
            size_t k = 0;
            for (uint32_t r = 0; r < kSpanRows; ++r) {
                const uint32_t y = b * kSpanRows + r;
                for (uint32_t i = 0; i < kScanW; ++i)
                    scratch[k++] = TexelRef::texel(
                        (y & 1) ? (kScanW - 1 - i) : i, y, 0);
            }
            sink->accessBatch(scratch);
        }
        b = (b + 1) & (kBands - 1);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kSpan));
}

void
BM_CacheSimAccessBatch(benchmark::State &state)
{
    runCacheSimAccessBatch(
        state, CacheSimConfig::twoLevel(16 * 1024, 2ull << 20), true);
}
BENCHMARK(BM_CacheSimAccessBatch);

/**
 * The batched path end to end: span construction (the producer's
 * TexelRef stores) plus delivery, the full deployment cost of batched
 * mode per texel. Gated against BM_CacheSimAccessScan at a lower floor
 * (--batch-produce-speedup): batching must win even when it pays for
 * its own buffering.
 */
void
BM_CacheSimAccessBatchProduce(benchmark::State &state)
{
    runCacheSimAccessBatch(
        state, CacheSimConfig::twoLevel(16 * 1024, 2ull << 20), false);
}
BENCHMARK(BM_CacheSimAccessBatchProduce);

/**
 * Batched path with 3C classification on: the hit-observing shadow
 * models force the faithful per-texel replay branch, so only the
 * per-batch hook amortisation remains — the gate bounds it as
 * no-slower-than BM_CacheSimAccessScanClassified rather than 2x.
 */
void
BM_CacheSimAccessBatchClassified(benchmark::State &state)
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(16 * 1024, 2ull << 20);
    cfg.classify_misses = true;
    runCacheSimAccessBatch(state, cfg, true);
}
BENCHMARK(BM_CacheSimAccessBatchClassified);

/**
 * BM_CacheSimAccess with the live telemetry plane attached: an enabled
 * MetricsRegistry receiving frame-boundary update batches under the
 * scrape guard, while a background thread renders the /metrics
 * Prometheus exposition at 10 Hz — the contention pattern of a real
 * scraped run. The perf gate holds this within 5% of the plain
 * BM_CacheSimAccess (scripts/check_perf_regression.py --telemetry).
 */
void
BM_CacheSimAccessTelemetry(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
    sim.bindTexture(1);
    MetricsRegistry registry(true);
    CounterHandle accesses =
        registry.counter("accesses", {{"stream", "0"}});
    GaugeHandle bias = registry.gauge("lod_bias", {{"stream", "0"}});
    std::atomic<bool> stop{false};
    std::thread scraper([&registry, &stop]() {
        while (!stop.load(std::memory_order_relaxed)) {
            benchmark::DoNotOptimize(renderExposition(registry));
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    });
    uint32_t x = 0, y = 0;
    uint64_t n = 0;
    for (auto _ : state) {
        x = (x + 1) & 255;
        if (x == 0)
            y = (y + 1) & 255;
        sim.access(x, y, 0);
        // A "frame" every 64K accesses: batch the registry update under
        // updateGuard exactly as the runners do at round boundaries.
        if ((++n & 0xffff) == 0) {
            auto guard = registry.updateGuard();
            accesses.set(n);
            bias.set(static_cast<double>(y));
        }
    }
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccessTelemetry);

/**
 * BM_CacheSimAccess with the continuous profiler installed and
 * actively sampling at the default 997 Hz: every access runs the
 * enabled-branch ScopedProfileStage push/pop while the sampler thread
 * snapshots the stack from outside. This prices the *enabled* mode —
 * the disabled-mode hook cost (one atomic load + branch) is what the
 * plain BM_CacheSimAccess row holds under the 5% baseline gate. The
 * perf gate bounds this row against the in-run BM_CacheSimAccess via
 * scripts/check_perf_regression.py --profile-threshold.
 */
void
BM_CacheSimAccessProfiled(benchmark::State &state)
{
    TextureManager &tm = benchTextures();
    CacheSim sim(tm, CacheSimConfig::twoLevel(2 * 1024, 2ull << 20));
    sim.bindTexture(1);
    ProfilerConfig pc;
    pc.hz = 997;
    pc.counters = false; // counter reads price leg/pass scopes, not this
    StageProfiler profiler(pc);
    installStageProfiler(&profiler);
    uint32_t x = 0, y = 0;
    for (auto _ : state) {
        x = (x + 1) & 255;
        if (x == 0)
            y = (y + 1) & 255;
        sim.access(x, y, 0);
    }
    installStageProfiler(nullptr);
    profiler.stopSampler();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccessProfiled);

void
BM_CacheSimAccessPull(benchmark::State &state)
{
    runCacheSimAccess(state, CacheSimConfig::pull(16 * 1024));
}
BENCHMARK(BM_CacheSimAccessPull);

/** The explicit-opt-in cost of the 3C shadow models (--miss-classes). */
void
BM_CacheSimAccessClassified(benchmark::State &state)
{
    CacheSimConfig cfg = CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
    cfg.classify_misses = true;
    runCacheSimAccess(state, cfg);
}
BENCHMARK(BM_CacheSimAccessClassified);

/**
 * Two tenants interleaving through one shared Utility-policy L2: the
 * per-access cost of the multi-tenant path (stream-tagged page table,
 * quota-constrained victim selection, per-stream stats).
 */
void
BM_MultiStreamInterference(benchmark::State &state)
{
    static TextureManager tm_a;
    static TextureManager tm_b;
    static TextureId tid_a = tm_a.load(
        "tenant_a", MipPyramid(makeChecker(256, 8, 0xff0000ffu, 0xffffffffu)));
    static TextureId tid_b = tm_b.load(
        "tenant_b", MipPyramid(makeChecker(256, 8, 0xff00ff00u, 0xff000000u)));
    std::vector<TextureManager *> managers{&tm_a, &tm_b};
    L2Config l2cfg;
    l2cfg.size_bytes = 256ull << 10;
    L2TextureCache l2(managers, l2cfg, L2SharePolicy::Utility);
    CacheSim sim_a(tm_a, CacheSimConfig::pull(16 * 1024));
    CacheSim sim_b(tm_b, CacheSimConfig::pull(16 * 1024));
    sim_a.attachSharedL2(&l2, 0);
    sim_b.attachSharedL2(&l2, 1);
    sim_a.bindTexture(tid_a);
    sim_b.bindTexture(tid_b);
    uint32_t xa = 0, ya = 0, xb = 0, yb = 0;
    for (auto _ : state) {
        xa = (xa + 1) & 255;
        if (xa == 0)
            ya = (ya + 1) & 255;
        sim_a.access(xa, ya, 0);
        // The neighbor strides a tile at a time: maximal block churn.
        xb = (xb + 16) & 255;
        if (xb < 16)
            yb = (yb + 16) & 255;
        sim_b.access(xb, yb, 0);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MultiStreamInterference);

void
BM_FlatSetInsert(benchmark::State &state)
{
    FlatSet64 set(1 << 16);
    Rng rng(3);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.insert(i++ & 0xffff));
        if ((i & 0xfffff) == 0)
            set.clear();
    }
}
BENCHMARK(BM_FlatSetInsert);

void
BM_RenderVillageFrame(benchmark::State &state)
{
    VillageParams params;
    params.houses = 24;
    params.trees = 16;
    static Workload wl = buildVillage(params);
    Rasterizer raster(640, 480);
    raster.setFilter(FilterMode::Bilinear);
    NullSink sink;
    raster.setSink(&sink);
    int frame = 0;
    for (auto _ : state) {
        Camera cam = wl.cameraAtFrame(frame++ % 60, 60, 640.0f / 480.0f);
        benchmark::DoNotOptimize(
            raster.renderFrame(wl.scene, cam, *wl.textures));
    }
}
BENCHMARK(BM_RenderVillageFrame)->Unit(benchmark::kMillisecond);

/**
 * Console reporting plus capture of every per-iteration run so main()
 * can emit the BENCH_perf.json summary.
 */
class JsonCaptureReporter final : public benchmark::ConsoleReporter
{
  public:
    struct Result
    {
        std::string name;
        double ns_per_op = 0.0;
        double ops_per_sec = 0.0;
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration || r.error_occurred)
                continue;
            Result res;
            res.name = r.benchmark_name();
            // Prefer the items-normalised rate so batched rows (many
            // accesses per benchmark iteration) stay comparable with
            // scalar rows: ns/op is always per processed item.
            const auto items = r.counters.find("items_per_second");
            if (items != r.counters.end() &&
                static_cast<double>(items->second) > 0.0) {
                res.ops_per_sec = static_cast<double>(items->second);
                res.ns_per_op = 1e9 / res.ops_per_sec;
            } else if (r.iterations > 0 && r.real_accumulated_time > 0.0) {
                const double s_per_op =
                    r.real_accumulated_time /
                    static_cast<double>(r.iterations);
                res.ns_per_op = s_per_op * 1e9;
                res.ops_per_sec = 1.0 / s_per_op;
            }
            results_.push_back(std::move(res));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<Result> &results() const { return results_; }

  private:
    std::vector<Result> results_;
};

/** BENCH_perf.json destination: MLTC_BENCH_OUT or the repo root. */
std::string
benchOutPath()
{
    if (const char *env = std::getenv("MLTC_BENCH_OUT"); env && *env)
        return env;
#ifdef MLTC_REPO_ROOT
    return std::string(MLTC_REPO_ROOT) + "/BENCH_perf.json";
#else
    return "BENCH_perf.json";
#endif
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    mltc::JsonWriter w;
    w.beginObject();
    // Provenance first: a checked-in baseline says what produced it.
    w.key("build");
    mltc::appendBuildInfo(w);
    w.key("benchmarks").beginArray();
    for (const auto &res : reporter.results()) {
        w.beginObject()
            .kv("name", res.name)
            .kv("ns_per_op", res.ns_per_op)
            .kv("ops_per_sec", res.ops_per_sec)
            .endObject();
    }
    w.endArray();
    // The headline number the sweeps scale with: simulated texel
    // accesses per second through the two-level controller.
    for (const auto &res : reporter.results())
        if (res.name == "BM_CacheSimAccess")
            w.kv("accesses_per_sec", res.ops_per_sec);
    w.endObject();

    const std::string path = benchOutPath();
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%s\n", w.str().c_str());
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "could not write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
