/**
 * @file
 * Figure 9 + Table 2: L1 miss rate by cache size (2-32 KB, 2-way,
 * 4x4 tiles, no L2) over the Village animation, and average L1 hit
 * rates for bilinear and trilinear filtering.
 *
 * Paper headline: 16 KB is nearly as good as 32 KB; even 2 KB peaks
 * below ~4% (bilinear) / ~5% (trilinear) miss rate.
 *
 * Supports the shared resilience flags (--checkpoint, --resume,
 * --deadline-ms, --budget-ms, --audit; see sim/resilience.hpp). The CSV
 * is emitted from the accumulated rows *after* the run, so a resumed
 * run writes the complete series, not just the frames it rendered.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    using namespace mltc::bench;

    CommandLine cli(argc, argv);
    const ResilienceConfig resilience = resilienceFromCli(cli);
    installCancellationHandlers();

    banner("Figure 9 / Table 2",
           "L1 miss rate by cache size (Village); average hit rates for "
           "bilinear (BL) and trilinear (TL)");

    const int n_frames = frames(48);
    const uint64_t sizes_kb[] = {2, 4, 8, 16, 32};

    TextTable table({"L1 size", "BL hit rate", "TL hit rate"});
    double bl_hit[5], tl_hit[5];
    RunManifest manifests[2];

    // One leg per filter pass on the work-stealing pool (MLTC_JOBS);
    // each leg writes its own per-filter CSV and its stdout is buffered
    // in leg order, so output is byte-identical for any worker count.
    SweepExecutor sweep(benchJobs());
    for (int pass = 0; pass < 2; ++pass) {
        const FilterMode filter =
            pass == 0 ? FilterMode::Bilinear : FilterMode::Trilinear;
        sweep.addLeg(filterModeName(filter),
                     [&, pass, filter](LegContext &ctx) {
            Workload wl = buildWorkload("village");
            DriverConfig cfg;
            cfg.filter = filter;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            for (uint64_t s : sizes_kb)
                runner.addSim(CacheSimConfig::pull(s * 1024),
                              std::to_string(s) + "KB");

            const std::string leg = std::string(filterModeName(filter));
            manifests[pass] =
                runner.runSupervised(legResilience(resilience, leg));
            if (manifests[pass].outcome != RunOutcome::Completed)
                return;

            // Figure 9 proper is the trilinear... the paper plots both
            // bilinear and trilinear peaks; we emit one CSV per filter.
            std::string csv_name =
                std::string("fig09_l1_missrate_village_") +
                filterModeName(filter) + ".csv";
            CsvWriter csv(csvPath(csv_name),
                          {"frame", "miss_2kb", "miss_4kb", "miss_8kb",
                           "miss_16kb", "miss_32kb"});
            for (const FrameRow &row : runner.rows()) {
                std::vector<double> vals{static_cast<double>(row.frame)};
                for (const auto &sim : row.sims)
                    vals.push_back(1.0 - sim.l1HitRate());
                csv.row(vals);
            }

            for (size_t i = 0; i < 5; ++i) {
                double hit = runner.sims()[i]->totals().l1HitRate();
                (pass == 0 ? bl_hit : tl_hit)[i] = hit;
            }
            wroteCsv(ctx, csv);
        });
    }
    bool ok = runLegs(sweep);
    for (int pass = 0; pass < 2; ++pass) {
        reportManifest(pass == 0 ? "bilinear" : "trilinear",
                       manifests[pass]);
        if (manifests[pass].outcome != RunOutcome::Completed)
            ok = false;
    }
    if (!ok)
        return 1;

    for (size_t i = 0; i < 5; ++i)
        table.addRow(std::to_string(sizes_kb[i]) + " KB",
                     {bl_hit[i] * 100.0, tl_hit[i] * 100.0}, 2);
    table.print();
    std::printf("(paper Table 2 shape: hit rates rise with size and "
                "16 KB ~= 32 KB)\n\n");
    return 0;
}
