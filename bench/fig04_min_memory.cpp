/**
 * @file
 * Figure 4: per-frame minimum texture memory — all textures loaded in
 * main memory, the push architecture's oracle minimum (whole textures
 * touched per frame), and the L2 caching architecture's minimum (blocks
 * touched per frame) for 32x32, 16x16 and 8x8 L2 tiles. Point sampling.
 *
 * Paper headline: L2 caching needs ~3.9 MB (Village) / ~1.5 MB (City)
 * versus ~12 MB / ~7.4 MB for push — a 3x-5x local-memory saving.
 */
#include <algorithm>

#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Figure 4",
           "Minimum per-frame texture memory (MB): loaded / push oracle / "
           "L2 by tile size (point sampling)");

    const int n_frames = frames(96);
    // One leg per workload on the work-stealing pool (MLTC_JOBS); each
    // leg owns its CSV and buffers its stdout block, flushed in leg
    // order — byte-identical output for any worker count.
    SweepExecutor sweep(benchJobs());
    for (const std::string &name : workloadNames())
        sweep.addLeg(name, [&, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Point;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addWorkingSets({32, 16, 8}, {});
            runner.addPushModel();

            CsvWriter csv(csvPath("fig04_min_memory_" + name + ".csv"),
                          {"frame", "loaded_mb", "push_mb", "l2_32_mb",
                           "l2_16_mb", "l2_8_mb"});
            double push_peak = 0, l2_peak[3] = {0, 0, 0};
            double push_sum = 0, l2_sum[3] = {0, 0, 0};
            runner.run([&](const FrameRow &row) {
                const auto &ws = *row.working_sets;
                double push_mb = mb(row.push_bytes);
                double l2mb[3];
                for (int i = 0; i < 3; ++i) {
                    l2mb[i] =
                        mb(ws.l2[static_cast<size_t>(i)].bytesTouched());
                    l2_peak[i] = std::max(l2_peak[i], l2mb[i]);
                    l2_sum[i] += l2mb[i];
                }
                push_peak = std::max(push_peak, push_mb);
                push_sum += push_mb;
                csv.row({static_cast<double>(row.frame),
                         mb(ws.loaded_bytes), push_mb, l2mb[0], l2mb[1],
                         l2mb[2]});
            });

            double n = static_cast<double>(runner.rows().size());
            ctx.printf(
                "%-8s loaded=%.1f MB  push(avg/peak)=%.2f/%.2f MB  "
                "L2-32=%.2f/%.2f  L2-16=%.2f/%.2f  L2-8=%.2f/%.2f MB\n",
                name.c_str(), mb(wl.textures->totalHostBytes()),
                push_sum / n, push_peak, l2_sum[0] / n, l2_peak[0],
                l2_sum[1] / n, l2_peak[1], l2_sum[2] / n, l2_peak[2]);
            ctx.printf("%-8s push/L2-16 memory saving: avg %.1fx, peak "
                       "%.1fx (paper: 3x-5x)\n",
                       name.c_str(), push_sum / l2_sum[1],
                       push_peak / l2_peak[1]);
            wroteCsv(ctx, csv);
        });
    return runLegs(sweep) ? 0 : 1;
}
