/**
 * @file
 * Extension: compressed host textures (BTC, 3 bits/texel).
 *
 * Talisman-style texture compression attacks the same bandwidth problem
 * the L2 cache does, from the other side: every host download shrinks ~10x.
 * This bench measures both levers separately and together — pull
 * vs pull+BTC vs L2 vs L2+BTC — to show they compose (compression
 * scales the download cost; the L2 removes downloads altogether).
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "texture/btc.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Extension: BTC-compressed host textures (3 bits/texel)",
           "Pull vs L2, each with 32-bit and BTC-compressed host "
           "storage (2KB L1, 2MB L2, trilinear)");

    const int n_frames = frames(36);

    // One leg per (workload, compression) on the work-stealing pool
    // (MLTC_JOBS); CSV rows land in leg-indexed slots and stdout is
    // buffered in leg order — byte-identical for any worker count.
    const std::vector<std::string> names = workloadNames();
    std::vector<std::vector<std::vector<std::string>>> rows(
        names.size() * 2);
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w)
        for (int compressed = 0; compressed < 2; ++compressed) {
            const size_t slot = w * 2 + static_cast<size_t>(compressed);
            const std::string name = names[w];
            sweep.addLeg(name + (compressed ? "_btc" : "_raw"),
                         [&, slot, name, compressed](LegContext &ctx) {
                Workload wl = buildWorkload(name);
                if (compressed)
                    for (TextureId t = 1;
                         t <= static_cast<TextureId>(
                                  wl.textures->textureCount());
                         ++t)
                        wl.textures->setHostBitsPerTexel(
                            t, kBtcBitsPerTexel);

                DriverConfig cfg;
                cfg.filter = FilterMode::Trilinear;
                cfg.frames = n_frames;

                MultiConfigRunner runner(wl, cfg);
                runner.addSim(CacheSimConfig::pull(2 * 1024), "pull");
                runner.addSim(
                    CacheSimConfig::twoLevel(2 * 1024, 2ull << 20), "L2");
                runner.run();

                double host_mb =
                    static_cast<double>(wl.textures->totalHostBytes()) /
                    (1 << 20);
                for (size_t i = 0; i < 2; ++i) {
                    double avg = runner.averageHostBytesPerFrame(i) /
                                 (1024.0 * 1024.0);
                    std::string label =
                        std::string(i == 0 ? "pull" : "L2-2MB") +
                        (compressed ? "+BTC" : "");
                    ctx.printf("%-8s %-10s %7.3f MB/frame  (host texture "
                               "pool %.1f MB)\n",
                               name.c_str(), label.c_str(), avg, host_mb);
                    rows[slot].push_back({name, label,
                                          formatDouble(avg, 4),
                                          formatDouble(host_mb, 2)});
                }
                if (compressed)
                    ctx.printf("\n");
            });
        }
    if (!runLegs(sweep))
        return 1;

    CsvWriter csv(csvPath("ext_compressed.csv"),
                  {"workload", "config", "mb_per_frame",
                   "host_texture_mb"});
    for (const auto &leg_rows : rows)
        for (const auto &row : leg_rows)
            csv.rowStrings(row);
    std::printf("(BTC divides download cost by ~10; the L2 removes "
                "downloads — combined they compound)\n");
    wroteCsv(csv.path());
    return 0;
}
