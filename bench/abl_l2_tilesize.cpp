/**
 * @file
 * Ablation: L2 tile size (8x8 / 16x16 / 32x32) at fixed 2 MB capacity.
 * Larger tiles cut page-table size but waste capacity on unused sectors;
 * the paper settles on 16x16 (§4.2: "16x16 L2 tiles do not require
 * significantly more memory than 8x8 but provide some savings over
 * 32x32").
 */
#include "bench_common.hpp"
#include "model/structure_size_model.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Ablation: L2 tile size",
           "Bandwidth and page-table cost by L2 tile size (2KB L1 + 2MB "
           "L2, trilinear)");

    const int n_frames = frames(36);
    const uint32_t tiles[] = {8, 16, 32};
    CsvWriter csv(csvPath("abl_l2_tilesize.csv"),
                  {"workload", "l2_tile", "mb_per_frame", "h2full",
                   "page_table_kb_per_32mb"});

    for (const std::string &name : workloadNames()) {
        Workload wl = buildWorkload(name);
        DriverConfig cfg;
        cfg.filter = FilterMode::Trilinear;
        cfg.frames = n_frames;

        MultiConfigRunner runner(wl, cfg);
        for (uint32_t t : tiles)
            runner.addSim(
                CacheSimConfig::twoLevel(2 * 1024, 2ull << 20, t),
                std::to_string(t) + "x" + std::to_string(t));
        runner.run();

        TextTable table({name + " L2 tile", "MB/frame", "h2full",
                         "t_table KB / 32MB host"});
        for (size_t i = 0; i < 3; ++i) {
            StructureSizeParams p;
            p.l2_tile = tiles[i];
            StructureSizes s = computeStructureSizes(p);
            double avg = runner.averageHostBytesPerFrame(i) /
                         (1024.0 * 1024.0);
            double pt_kb = static_cast<double>(s.page_table_bytes) / 1024.0;
            const auto &sim = *runner.sims()[i];
            table.addRow({sim.label(), formatDouble(avg, 3),
                          formatPercent(sim.totals().l2FullHitRate()),
                          formatDouble(pt_kb, 0)});
            csv.rowStrings({name, std::to_string(tiles[i]),
                            formatDouble(avg, 4),
                            formatDouble(sim.totals().l2FullHitRate(), 4),
                            formatDouble(pt_kb, 1)});
        }
        table.print();
        std::printf("\n");
    }
    wroteCsv(csv.path());
    return 0;
}
