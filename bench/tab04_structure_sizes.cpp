/**
 * @file
 * Table 4: memory requirements of the L2 caching structures — texture
 * page table size versus host texture capacity, and BRL sizes versus L2
 * cache size — for 16x16 L2 tiles and 4x4 L1 tiles (analytic, §5.4.1).
 */
#include "bench_common.hpp"
#include "model/structure_size_model.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Table 4",
           "Memory requirements of L2 caching structures (16x16 L2 tiles, "
           "4x4 L1 tiles)\n"
           "paper: 64KB table per 16MB host texture; BRL active bits "
           ".25/.5/1 KB and index 8/16/32 KB for 2/4/8 MB L2");

    const uint64_t host_sizes_mb[] = {16, 32, 64, 256, 1024};
    const uint64_t l2_sizes_mb[] = {2, 4, 8};

    TextTable table({"structure", "size"});
    CsvWriter csv(csvPath("tab04_structure_sizes.csv"),
                  {"structure", "param_mb", "bytes"});

    for (uint64_t h : host_sizes_mb) {
        StructureSizeParams p;
        p.host_texture_bytes = h << 20;
        StructureSizes s = computeStructureSizes(p);
        table.addRow({"page table for " + std::to_string(h) +
                          " MB host texture",
                      formatBytes(static_cast<double>(s.page_table_bytes))});
        csv.rowStrings({"page_table", std::to_string(h),
                        std::to_string(s.page_table_bytes)});
    }
    for (uint64_t l2 : l2_sizes_mb) {
        StructureSizeParams p;
        p.l2_cache_bytes = l2 << 20;
        StructureSizes s = computeStructureSizes(p);
        table.addRow(
            {"BRL active bits, " + std::to_string(l2) + " MB L2 (on-chip)",
             formatBytes(static_cast<double>(s.brl_active_bits_bytes))});
        table.addRow(
            {"BRL t-index, " + std::to_string(l2) + " MB L2 (DRAM)",
             formatBytes(static_cast<double>(s.brl_index_bytes))});
        csv.rowStrings({"brl_active", std::to_string(l2),
                        std::to_string(s.brl_active_bits_bytes)});
        csv.rowStrings({"brl_index", std::to_string(l2),
                        std::to_string(s.brl_index_bytes)});
    }
    table.print();
    wroteCsv(csv.path());
    return 0;
}
