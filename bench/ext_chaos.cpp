/**
 * @file
 * Extension: deterministic chaos harness.
 *
 * The whole robustness ladder at once: a supervised sweep runs under
 * combined host-channel faults (drops, corruption, latency spikes), an
 * I/O fault storm on every persisted byte (EIO, ENOSPC, short writes,
 * fsync failures, torn renames), and seeded mid-run SIGKILLs — and the
 * final CSVs must still come out byte-identical to a clean-disk,
 * never-killed reference. Two modes:
 *
 *   ext_chaos [--seed=S]                single supervised multi-config
 *                                       sweep (host faults + storm +
 *                                       kills)
 *   ext_chaos --streams K [--seed=S]    K-tenant shared-L2 serving run
 *                                       (storm + kills)
 *
 * --io-faults=SPEC overrides the default storm (util/io.hpp grammar).
 * Every source of chaos derives from --seed, so a failing run can be
 * replayed exactly. Exit 0 = bit-identical, 1 = divergence or a run
 * that could not finish.
 *
 * Streams mode also takes --fail-at-round R (seed a deterministic
 * tenant quarantine) and --flight-out PREFIX (attach a flight recorder
 * for the storm run); together they prove a quarantine under the full
 * storm still lands a `PREFIX.flight/` bundle — and that attaching the
 * recorder never changes an output byte.
 *
 * The SIGKILLs are real: each crash epoch forks, the child raises
 * SIGKILL from inside the checkpoint path (no destructors, no atexit),
 * and the next epoch resumes from the surviving checkpoint generation.
 * Registered in ctest as `ext_chaos` / `ext_chaos_streams`; the CI
 * chaos job soaks it via scripts/chaos_soak.sh.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/multi_stream_runner.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "workload/registry.hpp"

namespace {

using namespace mltc;
using namespace mltc::bench;

std::string
fileText(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::fseek(f, 0, SEEK_END);
    std::string text(static_cast<size_t>(std::ftell(f)), '\0');
    std::fseek(f, 0, SEEK_SET);
    const size_t got = std::fread(text.data(), 1, text.size(), f);
    std::fclose(f);
    text.resize(got);
    return text;
}

/**
 * Run @p attempt_run under a seeded SIGKILL storm: crash epochs fork a
 * child that dies via --die-after-checkpoint inside the checkpoint
 * path, then a final in-process resume finishes the run. Returns false
 * when the storm could not be driven to completion.
 */
bool
runUnderKills(uint64_t seed, int epochs,
              const std::function<int(const ResilienceConfig &)> &attempt,
              const ResilienceConfig &base)
{
    for (int k = 0; k < epochs; ++k) {
        ResilienceConfig rc = base;
        rc.resume = k > 0;
        // Seed-derived kill point: after 1..3 periodic checkpoints of
        // this epoch — "random frame", replayable from --seed.
        rc.die_after_checkpoints =
            1 + static_cast<uint32_t>((seed + static_cast<uint64_t>(k) *
                                                  2654435761u) %
                                      3);
        std::fflush(stdout); // the child inherits the stdio buffer
        const pid_t child = fork();
        if (child < 0) {
            std::fprintf(stderr, "chaos: fork failed\n");
            return false;
        }
        if (child == 0) {
            const int rcode = attempt(rc);
            _exit(rcode);
        }
        int status = 0;
        if (waitpid(child, &status, 0) != child)
            return false;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            std::printf("chaos: epoch %d finished before its kill "
                        "point\n",
                        k);
            break; // the run completed under the storm
        }
        if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
            std::printf("chaos: epoch %d killed after %u checkpoint(s)\n",
                        k, rc.die_after_checkpoints);
            continue;
        }
        std::fprintf(stderr,
                     "chaos: epoch %d died unexpectedly (status %d)\n", k,
                     status);
        return false;
    }
    // Final in-process resume: must complete and write the CSVs.
    ResilienceConfig rc = base;
    rc.resume = true;
    return attempt(rc) == 0;
}

bool
compareCsv(const std::string &label, const std::string &reference,
           const std::string &path)
{
    const std::string got = fileText(path);
    if (got == reference && !got.empty()) {
        std::printf("chaos: [%s] byte-identical (%zu bytes)\n",
                    label.c_str(), got.size());
        return true;
    }
    std::fprintf(stderr,
                 "chaos: FAIL [%s] diverged (%zu reference bytes, %zu "
                 "chaos bytes) — see %s\n",
                 label.c_str(), reference.size(), got.size(),
                 path.c_str());
    return false;
}

// ---------------------------------------------------------------------------
// Single supervised sweep: one workload, three configurations, host
// faults on. The run function is shared between the reference and
// every chaos epoch, so the only variables are the storm and the kills.

int
runSingleSweep(int n_frames, uint64_t host_seed, const std::string &csv,
               const ResilienceConfig &rc)
{
    Workload wl = buildWorkload("village");
    DriverConfig cfg;
    cfg.filter = FilterMode::Trilinear;
    cfg.frames = n_frames;

    MultiConfigRunner runner(wl, cfg);
    const struct
    {
        const char *label;
        CacheSimConfig config;
    } candidates[] = {
        {"pull 2KB", CacheSimConfig::pull(2 * 1024)},
        {"2KB + 1MB L2", CacheSimConfig::twoLevel(2 * 1024, 1ull << 20)},
        {"2KB + 4MB L2", CacheSimConfig::twoLevel(2 * 1024, 4ull << 20)},
    };
    for (const auto &cand : candidates) {
        CacheSimConfig sc = cand.config;
        sc.host.fault_injection = true;
        sc.host.faults.seed = host_seed;
        sc.host.faults.drop_rate = 0.1;
        sc.host.faults.corrupt_rate = 0.05;
        sc.host.faults.spike_rate = 0.05;
        runner.addSim(sc, cand.label);
    }
    const RunManifest manifest = runner.runSupervised(rc);
    if (manifest.outcome != RunOutcome::Completed)
        return 3; // killed mid-run epochs land here if not SIGKILLed
    CsvWriter out(csv, {"config", "l1_hit", "host_mb_per_frame",
                        "host_retries", "degraded"});
    for (size_t i = 0; i < runner.sims().size(); ++i) {
        const CacheFrameStats &t = runner.sims()[i]->totals();
        out.rowStrings({candidates[i].label,
                        formatPercent(t.l1HitRate(), 2),
                        formatDouble(runner.averageHostBytesPerFrame(i) /
                                         (1024.0 * 1024.0),
                                     3),
                        std::to_string(t.host_retries),
                        std::to_string(t.degraded_accesses)});
    }
    out.close();
    return 0;
}

int
chaosSingle(uint64_t seed, int n_frames, const IoFaultConfig &storm)
{
    const std::string ref_csv = csvPath("ext_chaos_ref.csv");
    const std::string chaos_csv = csvPath("ext_chaos.csv");
    const std::string ckpt = csvPath("ext_chaos.ckpt.snap");

    std::printf("-- reference sweep (host faults, clean disk) --\n");
    if (runSingleSweep(n_frames, seed, ref_csv, {}) != 0) {
        std::fprintf(stderr, "chaos: reference run failed\n");
        return 1;
    }
    const std::string reference = fileText(ref_csv);

    std::printf("-- chaos sweep (storm + SIGKILL epochs) --\n");
    installProcessIoFaults(storm);
    ResilienceConfig base;
    base.checkpoint_path = ckpt;
    base.checkpoint_every = 1;
    const bool done = runUnderKills(
        seed, 4,
        [&](const ResilienceConfig &rc) {
            return runSingleSweep(n_frames, seed, chaos_csv, rc);
        },
        base);
    if (!done) {
        std::fprintf(stderr, "chaos: storm run never completed\n");
        return 1;
    }
    return compareCsv("single sweep", reference, chaos_csv) ? 0 : 1;
}

// ---------------------------------------------------------------------------
// K-tenant shared-L2 serving under the same storm.

MultiStreamConfig
streamsConfig(unsigned streams, int rounds)
{
    MultiStreamConfig ms;
    ms.width = 96;
    ms.height = 64;
    ms.rounds = static_cast<uint32_t>(rounds);
    ms.l1_bytes = 4ull << 10;
    ms.l2_bytes = 512ull << 10;
    ms.share = L2SharePolicy::Utility;
    ms.repartition_every = 2;
    ms.jobs = 1;
    const char *mix[] = {"village", "city", kThrasherWorkload, "village"};
    for (unsigned i = 0; i < streams; ++i) {
        StreamSpec spec;
        spec.workload = mix[i % 4];
        spec.filter =
            i % 2 == 0 ? FilterMode::Bilinear : FilterMode::Trilinear;
        spec.phase = i * 5;
        spec.seed = i;
        ms.streams.push_back(std::move(spec));
    }
    return ms;
}

int
runStreams(const MultiStreamConfig &ms, const std::string &csv_prefix,
           const ResilienceConfig &rc)
{
    MultiStreamRunner runner(ms);
    if (runner.run(rc).outcome != RunOutcome::Completed)
        return 3;
    for (uint32_t i = 0; i < runner.streamCount(); ++i)
        runner.writeStreamCsv(i, csv_prefix + ".stream" +
                                     std::to_string(i) + ".csv");
    return 0;
}

int
chaosStreams(uint64_t seed, unsigned streams, int rounds,
             const IoFaultConfig &storm, int fail_at_round,
             const std::string &flight_out)
{
    MultiStreamConfig ms = streamsConfig(streams, rounds);
    if (fail_at_round >= 0)
        // Seeded quarantine: a deterministic tenant death both the
        // reference and the storm run replay identically — and the
        // moment the flight recorder (when attached) dumps its bundle.
        ms.streams[(seed / 7) % streams].fail_at_round = fail_at_round;
    const std::string ref_prefix = csvPath("ext_chaos_streams_ref");
    const std::string chaos_prefix = csvPath("ext_chaos_streams");
    const std::string ckpt = csvPath("ext_chaos_streams.ckpt.snap");

    std::printf("-- reference %u-stream run (clean disk) --\n", streams);
    if (runStreams(ms, ref_prefix, {}) != 0) {
        std::fprintf(stderr, "chaos: reference run failed\n");
        return 1;
    }
    std::vector<std::string> reference;
    for (unsigned i = 0; i < streams; ++i)
        reference.push_back(fileText(ref_prefix + ".stream" +
                                     std::to_string(i) + ".csv"));

    std::printf("-- chaos %u-stream run (storm + SIGKILL epochs) --\n",
                streams);
    // The flight recorder rides through the storm: every SIGKILL epoch
    // inherits it across fork(), and a quarantine inside any epoch must
    // land a bundle through atomicWriteFile despite the injected
    // faults. Observation only — the CSV byte-identity check below
    // proves it never perturbs the run.
    std::unique_ptr<FlightRecorder> flight;
    if (!flight_out.empty()) {
        FlightRecorder::Config fc;
        fc.prefix = flight_out;
        flight = std::make_unique<FlightRecorder>(fc);
        installFlightRecorder(flight.get());
    }
    installProcessIoFaults(storm);
    ResilienceConfig base;
    base.checkpoint_path = ckpt;
    base.checkpoint_every = 1;
    const bool done = runUnderKills(
        seed, 4,
        [&](const ResilienceConfig &rc) {
            return runStreams(ms, chaos_prefix, rc);
        },
        base);
    if (flight)
        installFlightRecorder(nullptr);
    if (!done) {
        std::fprintf(stderr, "chaos: storm run never completed\n");
        return 1;
    }
    bool ok = true;
    for (unsigned i = 0; i < streams; ++i)
        ok = compareCsv("stream " + std::to_string(i), reference[i],
                        chaos_prefix + ".stream" + std::to_string(i) +
                            ".csv") &&
             ok;
    if (!flight_out.empty() && fail_at_round >= 0) {
        const std::string bundle = flight_out + ".flight";
        if (fileText(bundle + "/trace.json").empty() ||
            fileText(bundle + "/metrics.jsonl").empty()) {
            std::fprintf(stderr,
                         "chaos: FAIL no flight bundle at %s despite a "
                         "seeded quarantine\n",
                         bundle.c_str());
            ok = false;
        } else {
            std::printf("chaos: flight bundle landed at %s\n",
                        bundle.c_str());
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mltc;
    using namespace mltc::bench;

    CommandLine cli(argc, argv);
    const uint64_t seed = cli.getUnsigned("seed", 42);
    const unsigned streams =
        static_cast<unsigned>(cli.getUnsigned("streams", 0));
    const int n_frames = frames(6);

    banner("Extension: deterministic chaos harness",
           "Host faults + I/O fault storm + seeded SIGKILLs; final CSVs "
           "must be byte-identical to a clean-disk reference");

    // The reference runs on a perfect disk; the storm is installed only
    // after it. Default storm: every failure mode at once, plus a
    // guaranteed torn rename and fsync failure early on. Moderate rates
    // — the ladder retries each atomic commit up to 8 times, and
    // checkpoint commits degrade to skip-with-backoff, so the run rides
    // through without the CSVs ever depending on which attempts failed.
    IoFaultConfig storm;
    if (cli.has("io-faults")) {
        storm = parseIoFaultSpec(cli.getString("io-faults", ""));
    } else {
        storm.seed = seed;
        storm.eio_rate = 0.05;
        storm.enospc_rate = 0.03;
        storm.short_rate = 0.05;
        storm.fsync_rate = 0.10;
        storm.torn_rate = 0.08;
        storm.schedule.push_back({IoFaultKind::TornRename, 1});
        storm.schedule.push_back({IoFaultKind::FsyncFail, 2});
    }

    const int rcode =
        streams > 0
            ? chaosStreams(seed, streams, n_frames, storm,
                           static_cast<int>(cli.getInt("fail-at-round", -1)),
                           cli.getString("flight-out", ""))
            : chaosSingle(seed, n_frames, storm);
    if (IoFaultInjector *inj = FileBackend::instance().injector()) {
        const IoFaultStats &s = inj->stats();
        std::printf("chaos: injected %llu I/O faults (%llu eio, %llu "
                    "enospc, %llu short, %llu fsync, %llu torn) over "
                    "%llu writes / %llu fsyncs / %llu renames\n",
                    static_cast<unsigned long long>(s.injected()),
                    static_cast<unsigned long long>(s.eio),
                    static_cast<unsigned long long>(s.enospc),
                    static_cast<unsigned long long>(s.short_writes),
                    static_cast<unsigned long long>(s.fsync_failures),
                    static_cast<unsigned long long>(s.torn_renames),
                    static_cast<unsigned long long>(s.writes),
                    static_cast<unsigned long long>(s.fsyncs),
                    static_cast<unsigned long long>(s.renames));
    }
    clearProcessIoFaults();
    std::printf(rcode == 0 ? "ext_chaos: PASS\n" : "ext_chaos: FAIL\n");
    return rcode;
}
