/**
 * @file
 * Figure 3: expected inter-frame working set W as a function of screen
 * resolution R, depth complexity d and block utilisation (analytic,
 * §4.1). Pure model — no simulation.
 */
#include "bench_common.hpp"
#include "model/working_set_model.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Figure 3",
           "Expected inter-frame working set W = R*d*4/utilization (MB)");

    struct Res
    {
        const char *name;
        uint64_t pixels;
    } resolutions[] = {
        {"640x480", 640ull * 480},   {"800x600", 800ull * 600},
        {"1024x768", 1024ull * 768}, {"1280x1024", 1280ull * 1024},
        {"1600x1200", 1600ull * 1200},
    };
    const double utils[] = {0.1, 0.25, 0.5, 1.0, 5.0};
    const int depths[] = {1, 2, 3};

    CsvWriter csv(csvPath("fig03_working_set_model.csv"),
                  {"resolution", "depth", "utilization", "working_set_mb"});

    TextTable table({"R x d", "util=0.1", "util=0.25", "util=0.5",
                     "util=1.0", "util=5.0"});
    for (const auto &res : resolutions) {
        for (int d : depths) {
            std::vector<double> row;
            for (double u : utils) {
                double w_mb =
                    expectedWorkingSetBytes(res.pixels, d, u) /
                    (1024.0 * 1024.0);
                row.push_back(w_mb);
                csv.row({static_cast<double>(res.pixels),
                         static_cast<double>(d), u, w_mb});
            }
            table.addRow(std::string(res.name) + " d=" + std::to_string(d),
                         row, 1);
        }
    }
    table.print();
    wroteCsv(csv.path());

    // Paper's reading of the figure: under 64 MB at utilization >= 0.25,
    // under 16 MB at utilization >= 0.5 and d = 1, at reasonable
    // resolutions.
    double w64 = expectedWorkingSetBytes(1280ull * 1024, 2, 0.25);
    double w16 = expectedWorkingSetBytes(1024ull * 768, 1, 0.5);
    std::printf("check: 1280x1024 d=2 util=.25 -> %.1f MB (paper: <64)\n",
                w64 / (1024 * 1024));
    std::printf("check: 1024x768  d=1 util=.50 -> %.1f MB (paper: <16)\n\n",
                w16 / (1024 * 1024));
    return 0;
}
