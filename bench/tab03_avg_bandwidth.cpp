/**
 * @file
 * Table 3: average host/AGP bandwidth (MB/frame) for the Village and
 * City under bilinear and trilinear filtering, with no L2 (pull, 2 KB
 * and 16 KB L1) and with 2/4/8 MB L2 caches of 16x16 tiles.
 *
 * Runs under watchdog supervision; the resilience flags are shared with
 * every bench (see sim/resilience.hpp):
 *   --checkpoint=PATH [--checkpoint-every=N] [--resume]
 *   --deadline-ms=D --budget-ms=B --audit=off|cheap|full
 * plus the --faults / --fault-* family (host/host_cli.hpp) to run the
 * whole table over the fault-injectable host backend. A run killed
 * mid-table resumes from its per-leg checkpoints and emits an identical
 * CSV (scripts/kill_resume.sh proves this with a real SIGKILL).
 *
 * The four (workload, filter) legs run concurrently on the
 * work-stealing pool (MLTC_JOBS, default hardware concurrency); output
 * is byte-identical for any worker count (docs/parallelism.md).
 */
#include <array>
#include <vector>

#include "bench_common.hpp"
#include "host/host_cli.hpp"
#include "sim/multi_config_runner.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "workload/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    using namespace mltc::bench;

    CommandLine cli(argc, argv);
    const ResilienceConfig resilience = resilienceFromCli(cli);
    const HostPathConfig host = hostPathFromCli(cli);
    try {
        installIoFaultsFromCli(cli); // --io-faults=eio=R,...,seed=S
    } catch (const Exception &e) {
        std::fprintf(stderr, "%s\n", e.error().describe().c_str());
        return 1;
    }
    installCancellationHandlers();

    banner("Table 3",
           "Average download bandwidth MB/frame, bilinear (BL) and "
           "trilinear (TL), with and without L2 (16x16 tiles)");

    const int n_frames = frames(24);
    const char *config_names[] = {"pull 2KB L1", "pull 16KB L1",
                                  "2KB L1 + 2MB L2", "2KB L1 + 4MB L2",
                                  "2KB L1 + 8MB L2"};

    // One leg per (workload, filter): each builds its own workload and
    // five-sim runner, checkpoints to its own `<base>.<leg>.snap`, and
    // drops its averages into a leg-indexed slot. The CSV and tables
    // are rendered after the sweep in leg order, so the bytes are
    // identical for any MLTC_JOBS (docs/parallelism.md).
    const std::vector<std::string> names = workloadNames();
    const FilterMode filters[] = {FilterMode::Bilinear,
                                  FilterMode::Trilinear};
    const size_t n_legs = names.size() * 2;
    std::vector<std::array<double, 5>> avgs(n_legs);
    std::vector<RunManifest> manifests(n_legs);

    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w)
        for (int pass = 0; pass < 2; ++pass) {
            const size_t slot = w * 2 + static_cast<size_t>(pass);
            const std::string name = names[w];
            const FilterMode filter = filters[pass];
            const std::string leg = name + "_" + filterModeName(filter);
            sweep.addLeg(leg, [&, slot, name, filter](LegContext &) {
                Workload wl = buildWorkload(name);
                DriverConfig cfg;
                cfg.filter = filter;
                cfg.frames = n_frames;

                auto withHost = [&](CacheSimConfig sc) {
                    sc.host = host;
                    return sc;
                };
                MultiConfigRunner runner(wl, cfg);
                runner.addSim(withHost(CacheSimConfig::pull(2 * 1024)),
                              "p2");
                runner.addSim(withHost(CacheSimConfig::pull(16 * 1024)),
                              "p16");
                runner.addSim(withHost(CacheSimConfig::twoLevel(
                                  2 * 1024, 2ull << 20)),
                              "l2_2");
                runner.addSim(withHost(CacheSimConfig::twoLevel(
                                  2 * 1024, 4ull << 20)),
                              "l2_4");
                runner.addSim(withHost(CacheSimConfig::twoLevel(
                                  2 * 1024, 8ull << 20)),
                              "l2_8");

                manifests[slot] = runner.runSupervised(
                    legResilience(resilience,
                                  name + "_" + filterModeName(filter)));
                for (size_t i = 0; i < 5; ++i)
                    avgs[slot][i] = runner.averageHostBytesPerFrame(i) /
                                    (1024.0 * 1024.0);
            });
        }
    bool ok = runLegs(sweep);
    for (size_t w = 0; w < names.size(); ++w)
        for (int pass = 0; pass < 2; ++pass) {
            const size_t slot = w * 2 + static_cast<size_t>(pass);
            const std::string leg =
                names[w] + "_" + filterModeName(filters[pass]);
            reportManifest(leg, manifests[slot]);
            if (manifests[slot].outcome != RunOutcome::Completed)
                ok = false;
        }
    if (!ok)
        return 1; // partial table; checkpoints allow resuming

    CsvWriter csv(csvPath("tab03_avg_bandwidth.csv"),
                  {"workload", "filter", "config", "mb_per_frame"});
    for (size_t w = 0; w < names.size(); ++w) {
        TextTable table(
            {names[w] + " config", "BL MB/frame", "TL MB/frame"});
        for (int pass = 0; pass < 2; ++pass)
            for (size_t i = 0; i < 5; ++i)
                csv.rowStrings({names[w], filterModeName(filters[pass]),
                                config_names[i],
                                formatDouble(avgs[w * 2 +
                                                  static_cast<size_t>(
                                                      pass)][i],
                                             3)});
        for (size_t i = 0; i < 5; ++i)
            table.addRow(config_names[i],
                         {avgs[w * 2][i], avgs[w * 2 + 1][i]}, 2);
        table.print();
        std::printf("\n");
    }
    wroteCsv(csv);
    return 0;
}
