/**
 * @file
 * Ablation (paper §6 future work #1): z-buffering *before* texture
 * retrieval. A depth pre-pass reduces effective texture depth complexity
 * to ~1, shrinking both the working set and the download bandwidth —
 * quantified here against the default texture-before-z pipeline.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Ablation: z-prepass before texturing",
           "Depth complexity, working set and bandwidth with and without "
           "a depth pre-pass (2KB L1 + 2MB L2, trilinear)");

    const int n_frames = frames(36);
    CsvWriter csv(csvPath("abl_zbuffer_prepass.csv"),
                  {"workload", "mode", "depth_complexity", "ws_mb",
                   "mb_per_frame"});

    for (const std::string &name : workloadNames()) {
        TextTable table({name + " mode", "depth d", "L2 WS (MB/frame)",
                         "host MB/frame"});
        for (int mode = 0; mode < 2; ++mode) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Trilinear;
            cfg.frames = n_frames;
            cfg.z_prepass = mode == 1;

            MultiConfigRunner runner(wl, cfg);
            runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20),
                          "sim");
            runner.addWorkingSets({16}, {});
            runner.run();

            double d_sum = 0, ws_sum = 0;
            for (const auto &row : runner.rows()) {
                d_sum += row.raster.depthComplexity(cfg.width, cfg.height);
                ws_sum += mb(row.working_sets->l2[0].bytesTouched());
            }
            double n = static_cast<double>(runner.rows().size());
            double bw = runner.averageHostBytesPerFrame(0) /
                        (1024.0 * 1024.0);
            const char *label = mode ? "z-prepass" : "texture-before-z";
            table.addRow(label, {d_sum / n, ws_sum / n, bw}, 2);
            csv.rowStrings({name, label, formatDouble(d_sum / n, 3),
                            formatDouble(ws_sum / n, 3),
                            formatDouble(bw, 3)});
        }
        table.print();
        std::printf("\n");
    }
    std::printf("(paper §6: z-before-texture 'should reduce texture depth "
                "to something close to one')\n");
    wroteCsv(csv.path());
    return 0;
}
