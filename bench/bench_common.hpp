/**
 * @file
 * Shared plumbing for the experiment benches (one binary per paper
 * table/figure). Each bench prints the paper-style table/series to
 * stdout and writes a CSV next to it (MLTC_OUT_DIR overrides where).
 *
 * Frame counts: the paper runs 411 (Village) / 525 (City) frames; bench
 * defaults are lower to keep the full single-core sweep fast. Set
 * MLTC_FRAMES to override (e.g. MLTC_FRAMES=411 for paper-length runs);
 * the camera path is identical, just sampled at a different rate.
 */
#ifndef MLTC_BENCH_COMMON_HPP
#define MLTC_BENCH_COMMON_HPP

#include <cstdio>
#include <string>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace mltc::bench {

/** Bytes -> MB (decimal MiB as the paper plots). */
inline double
mb(uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/** Bytes -> KB. */
inline double
kb(uint64_t bytes)
{
    return static_cast<double>(bytes) / 1024.0;
}

/** Frame count for this bench run. */
inline int
frames(int bench_default)
{
    return benchFrameCount(bench_default);
}

/** CSV path in the output directory. */
inline std::string
csvPath(const std::string &name)
{
    return benchOutputDir() + "/" + name;
}

/** Banner printed by every bench. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("=== %s ===\n%s\n", experiment, description);
}

/** Footer noting the CSV artefact. */
inline void
wroteCsv(const std::string &path)
{
    std::printf("[csv] %s\n\n", path.c_str());
}

} // namespace mltc::bench

#endif // MLTC_BENCH_COMMON_HPP
