/**
 * @file
 * Shared plumbing for the experiment benches (one binary per paper
 * table/figure). Each bench prints the paper-style table/series to
 * stdout and writes a CSV next to it (MLTC_OUT_DIR overrides where).
 *
 * Frame counts: the paper runs 411 (Village) / 525 (City) frames; bench
 * defaults are lower to keep the full single-core sweep fast. Set
 * MLTC_FRAMES to override (e.g. MLTC_FRAMES=411 for paper-length runs);
 * the camera path is identical, just sampled at a different rate.
 */
#ifndef MLTC_BENCH_COMMON_HPP
#define MLTC_BENCH_COMMON_HPP

#include <cstdio>
#include <string>

#include "sim/multi_config_runner.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/resilience.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace mltc::bench {

/** Bytes -> MB (decimal MiB as the paper plots). */
inline double
mb(uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/** Bytes -> KB. */
inline double
kb(uint64_t bytes)
{
    return static_cast<double>(bytes) / 1024.0;
}

/** Frame count for this bench run. */
inline int
frames(int bench_default)
{
    return benchFrameCount(bench_default);
}

/** CSV path in the output directory. */
inline std::string
csvPath(const std::string &name)
{
    return benchOutputDir() + "/" + name;
}

/** Banner printed by every bench. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("=== %s ===\n%s\n", experiment, description);
}

/** Footer noting the CSV artefact. */
inline void
wroteCsv(const std::string &path)
{
    std::printf("[csv] %s\n\n", path.c_str());
}

/** Close (flushing + checking the stream) and note the CSV artefact. */
inline void
wroteCsv(CsvWriter &csv)
{
    csv.close();
    wroteCsv(csv.path());
}

/**
 * Worker count for a bench sweep: MLTC_JOBS if set, else hardware
 * concurrency. Benches take no --jobs flag (several take no flags at
 * all), so the environment is the one knob — consistent with
 * MLTC_FRAMES/MLTC_OUT_DIR. See docs/parallelism.md.
 */
inline unsigned
benchJobs()
{
    return ThreadPool::defaultJobs();
}

/**
 * Run the sweep, then report every failed or cancelled leg to stderr in
 * leg order. Returns true iff every leg completed — benches exit
 * non-zero otherwise, after emitting whatever legs did finish.
 */
inline bool
runLegs(SweepExecutor &sweep)
{
    const SweepManifest manifest = sweep.run();
    bool ok = true;
    for (const LegResult &lr : manifest.legs) {
        if (lr.outcome == LegOutcome::Completed)
            continue;
        std::fprintf(stderr, "[%s] leg %s%s%s\n", lr.name.c_str(),
                     legOutcomeName(lr.outcome),
                     lr.error.empty() ? "" : ": ", lr.error.c_str());
        ok = false;
    }
    return ok;
}

/** wroteCsv into a leg's ordered stdout buffer. */
inline void
wroteCsv(LegContext &ctx, CsvWriter &csv)
{
    csv.close();
    ctx.printf("[csv] %s\n\n", csv.path().c_str());
}

/**
 * Per-leg resilience config for benches that run several runners in one
 * process (per workload, per filter): each leg checkpoints to
 * `<base>.<leg>.snap`. On --resume a leg whose checkpoint is missing
 * (the crash happened before its first checkpoint) simply starts fresh;
 * a completed leg resumes at its last frame, i.e. is a cheap no-op.
 */
inline ResilienceConfig
legResilience(const ResilienceConfig &base, const std::string &leg)
{
    ResilienceConfig rc = base;
    if (!rc.checkpoint_path.empty()) {
        rc.checkpoint_path += "." + leg + ".snap";
        if (rc.resume) {
            if (std::FILE *f = std::fopen(rc.checkpoint_path.c_str(), "rb"))
                std::fclose(f);
            else
                rc.resume = false;
        }
    }
    return rc;
}

/** Report a supervised leg's outcome; quarantines go to stderr. */
inline void
reportManifest(const std::string &leg, const RunManifest &manifest)
{
    if (manifest.outcome != RunOutcome::Completed)
        std::fprintf(stderr, "[%s] run %s after %d frames\n", leg.c_str(),
                     runOutcomeName(manifest.outcome),
                     manifest.frames_completed);
    for (const auto &sim : manifest.sims)
        if (sim.quarantined)
            std::fprintf(stderr,
                         "[%s] sim '%s' quarantined at frame %d: %s\n",
                         leg.c_str(), sim.label.c_str(),
                         sim.quarantined_at_frame,
                         sim.error.describe().c_str());
}

} // namespace mltc::bench

#endif // MLTC_BENCH_COMMON_HPP
