/**
 * @file
 * Figure 6: minimum per-frame L1 download bandwidth, counting each L1
 * tile hit at least once (total = pull-architecture floor) versus only
 * the tiles not used the previous frame (new = L2-architecture floor),
 * for 8x8 and 4x4 L1 tiles. Point sampling.
 *
 * Paper headline: ~2 MB (Village) / ~510 KB (City) of L1 tiles are hit
 * per frame but only ~110 KB / ~23 KB are new.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Figure 6",
           "Minimum L1 download bandwidth per frame: total vs new, for "
           "8x8 and 4x4 L1 tiles (point sampling)");

    const int n_frames = frames(96);
    // One leg per workload on the work-stealing pool (MLTC_JOBS);
    // leg-ordered buffered stdout keeps output byte-identical for any
    // worker count.
    SweepExecutor sweep(benchJobs());
    for (const std::string &name : workloadNames())
        sweep.addLeg(name, [&, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Point;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addWorkingSets({}, {8, 4});

            CsvWriter csv(csvPath("fig06_min_bandwidth_" + name + ".csv"),
                          {"frame", "total_8x8_mb", "new_8x8_kb",
                           "total_4x4_mb", "new_4x4_kb"});
            double tot_sum[2] = {0, 0}, new_sum[2] = {0, 0};
            int counted = 0;
            runner.run([&](const FrameRow &row) {
                const auto &l1 = row.working_sets->l1;
                csv.row({static_cast<double>(row.frame),
                         mb(l1[0].bytesTouched()), kb(l1[0].bytesNew()),
                         mb(l1[1].bytesTouched()), kb(l1[1].bytesNew())});
                if (row.frame > 0) {
                    for (int i = 0; i < 2; ++i) {
                        tot_sum[i] +=
                            mb(l1[static_cast<size_t>(i)].bytesTouched());
                        new_sum[i] +=
                            kb(l1[static_cast<size_t>(i)].bytesNew());
                    }
                    ++counted;
                }
            });
            for (int i = 0; i < 2; ++i) {
                int tile = i == 0 ? 8 : 4;
                ctx.printf("%-8s %dx%d: total %.2f MB/frame, new %.0f "
                           "KB/frame -> potential AGP saving %.0fx\n",
                           name.c_str(), tile, tile, tot_sum[i] / counted,
                           new_sum[i] / counted,
                           tot_sum[i] * 1024.0 / new_sum[i]);
            }
            wroteCsv(ctx, csv);
        });
    return runLegs(sweep) ? 0 : 1;
}
