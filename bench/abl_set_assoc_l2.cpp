/**
 * @file
 * Ablation (paper §5.1): fully-associative page-table L2 versus the
 * rejected set-associative organisation at the same capacity. The paper
 * argues inter-texture collisions make direct-mapped/set-associative L2
 * caches hard to hash well; this bench quantifies the penalty.
 */
#include "bench_common.hpp"
#include "core/set_assoc_l2.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Ablation: L2 associativity",
           "Fully-associative (page table + clock) vs 1/2/4-way "
           "set-associative L2 at 2MB (2KB L1, trilinear)");

    const int n_frames = frames(36);
    CsvWriter csv(csvPath("abl_set_assoc_l2.csv"),
                  {"workload", "organisation", "mb_per_frame", "h2full"});

    for (const std::string &name : workloadNames()) {
        Workload wl = buildWorkload(name);
        DriverConfig cfg;
        cfg.filter = FilterMode::Trilinear;
        cfg.frames = n_frames;

        MultiConfigRunner runner(wl, cfg);
        runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20),
                      "full-assoc");

        std::vector<std::unique_ptr<SetAssocL2Sim>> sa_sims;
        for (uint32_t ways : {1u, 2u, 4u}) {
            SetAssocL2Config sc;
            sc.l1.size_bytes = 2 * 1024;
            sc.l2_size_bytes = 2ull << 20;
            sc.l2_assoc = ways;
            sa_sims.push_back(std::make_unique<SetAssocL2Sim>(
                *wl.textures, sc, std::to_string(ways) + "-way"));
            runner.addExtraSink(sa_sims.back().get());
        }
        runner.run([&](const FrameRow &) {
            for (auto &s : sa_sims)
                s->endFrame();
        });

        TextTable table({name + " L2 organisation", "MB/frame", "h2full"});
        double fa = runner.averageHostBytesPerFrame(0) / (1024.0 * 1024.0);
        table.addRow({"full-assoc (paper)", formatDouble(fa, 3),
                      formatPercent(
                          runner.sims()[0]->totals().l2FullHitRate())});
        csv.rowStrings({name, "full-assoc", formatDouble(fa, 4),
                        formatDouble(
                            runner.sims()[0]->totals().l2FullHitRate(), 4)});
        double n = static_cast<double>(runner.rows().size());
        for (auto &s : sa_sims) {
            double avg =
                static_cast<double>(s->totals().host_bytes) / n /
                (1024.0 * 1024.0);
            table.addRow({s->label(), formatDouble(avg, 3),
                          formatPercent(s->totals().l2FullHitRate())});
            csv.rowStrings({name, s->label(), formatDouble(avg, 4),
                            formatDouble(s->totals().l2FullHitRate(), 4)});
        }
        table.print();
        std::printf("\n");
    }
    wroteCsv(csv.path());
    return 0;
}
