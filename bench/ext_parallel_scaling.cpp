/**
 * @file
 * Extension: wall-clock scaling of the parallel sweep executor.
 *
 * Runs a Tables-5/6-style L2 hit-rate sweep (eight independent legs:
 * Village, bilinear x trilinear, 1/2/4/8 MB L2) at 1, 2, 4 and 8
 * worker threads and reports the speedup curve. The per-leg results
 * are also cross-checked across worker counts — the speedup must come
 * with byte-identical answers (docs/parallelism.md).
 *
 * The curve is merged into BENCH_perf.json (MLTC_BENCH_OUT overrides
 * the path) as wall-clock rows named `BM_ParallelSweep/jobs:N`,
 * preserving whatever perf_microbench wrote there. The perf gate
 * (scripts/check_perf_regression.py) deliberately ignores these rows:
 * wall-clock over N threads depends on the machine's core count, not
 * on code quality.
 *
 * The >= 3x-at-8-jobs acceptance assertion only fires on hardware that
 * can deliver it (>= 8 hardware threads) or when MLTC_REQUIRE_SPEEDUP=1
 * forces it; on smaller machines the bench still emits the measured
 * curve.
 */
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "util/json.hpp"
#include "workload/registry.hpp"

namespace {

using namespace mltc;
using namespace mltc::bench;

struct LegSpec
{
    FilterMode filter;
    uint64_t l2_mb;
};

/** Measured hit rates of one leg; compared across worker counts. */
struct LegRates
{
    double h1 = 0, h2f = 0;
};

/** Run the eight-leg sweep at @p jobs workers; returns wall ms. */
double
runSweepAt(unsigned jobs, const std::vector<LegSpec> &legs, int n_frames,
           std::vector<LegRates> &rates)
{
    rates.assign(legs.size(), LegRates{});
    SweepExecutor sweep(jobs);
    for (size_t i = 0; i < legs.size(); ++i) {
        const LegSpec spec = legs[i];
        sweep.addLeg("leg" + std::to_string(i), [&, i, spec](LegContext &) {
            Workload wl = buildWorkload("village");
            DriverConfig cfg;
            cfg.filter = spec.filter;
            cfg.frames = n_frames;
            MultiConfigRunner runner(wl, cfg);
            runner.addSim(
                CacheSimConfig::twoLevel(2 * 1024, spec.l2_mb << 20),
                std::to_string(spec.l2_mb) + "MB");
            runner.run();
            const CacheFrameStats &t = runner.sims()[0]->totals();
            rates[i] = {t.l1HitRate(), t.l2FullHitRate()};
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = runLegs(sweep);
    const auto t1 = std::chrono::steady_clock::now();
    if (!ok)
        throw Exception(ErrorCode::Corrupt, "scaling sweep leg failed");
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** BENCH_perf.json destination: MLTC_BENCH_OUT or the repo root. */
std::string
benchOutPath()
{
    const std::string env = envString("MLTC_BENCH_OUT", "");
    if (!env.empty())
        return env;
#ifdef MLTC_REPO_ROOT
    return std::string(MLTC_REPO_ROOT) + "/BENCH_perf.json";
#else
    return "BENCH_perf.json";
#endif
}

/**
 * Read-modify-write BENCH_perf.json: keep every benchmark row that is
 * not a BM_ParallelSweep row (perf_microbench's rows in particular),
 * replace the sweep rows with this run's measurements, and re-emit any
 * top-level scalar keys.
 */
void
mergeIntoBenchJson(const std::string &path,
                   const std::vector<std::pair<unsigned, double>> &curve)
{
    JsonValue existing;
    {
        std::ifstream in(path, std::ios::binary);
        if (in.good()) {
            std::ostringstream ss;
            ss << in.rdbuf();
            try {
                existing = parseJson(ss.str());
            } catch (const Exception &) {
                existing = JsonValue::makeNull(); // rewrite corrupt file
            }
        }
    }

    JsonWriter w;
    w.beginObject();
    w.key("benchmarks").beginArray();
    if (const JsonValue *rows = existing.find("benchmarks"))
        if (rows->isArray())
            for (const JsonValue &row : rows->asArray()) {
                const JsonValue *name = row.find("name");
                if (name && name->isString() &&
                    name->asString().rfind("BM_ParallelSweep", 0) == 0)
                    continue;
                const JsonValue *ns = row.find("ns_per_op");
                const JsonValue *ops = row.find("ops_per_sec");
                if (!name || !name->isString() || !ns || !ns->isNumber())
                    continue;
                w.beginObject()
                    .kv("name", name->asString())
                    .kv("ns_per_op", ns->asNumber())
                    .kv("ops_per_sec",
                        ops && ops->isNumber() ? ops->asNumber() : 0.0)
                    .endObject();
            }
    for (const auto &[jobs, ms] : curve) {
        const double ns = ms * 1e6;
        w.beginObject()
            .kv("name", "BM_ParallelSweep/jobs:" + std::to_string(jobs))
            .kv("ns_per_op", ns)
            .kv("ops_per_sec", ns > 0 ? 1e9 / ns : 0.0)
            .endObject();
    }
    w.endArray();
    if (const JsonValue *aps = existing.find("accesses_per_sec"))
        if (aps->isNumber())
            w.kv("accesses_per_sec", aps->asNumber());
    if (!curve.empty() && curve.front().second > 0.0)
        w.kv("parallel_speedup_at_8_jobs",
             curve.front().second / curve.back().second);
    w.endObject();

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << w.str() << "\n";
    if (!out.good())
        throw Exception(ErrorCode::Io, "cannot write " + path);
}

} // namespace

int
main()
{
    banner("Extension: parallel sweep scaling",
           "Wall-clock speedup of an 8-leg L2 hit-rate sweep at 1/2/4/8 "
           "worker threads (results cross-checked across counts)");

    const int n_frames = frames(6);
    std::vector<LegSpec> legs;
    for (FilterMode f : {FilterMode::Bilinear, FilterMode::Trilinear})
        for (uint64_t mb : {1ull, 2ull, 4ull, 8ull})
            legs.push_back({f, mb});

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("%zu legs, %d frames each, %u hardware threads\n\n",
                legs.size(), n_frames, hw);

    std::vector<LegRates> reference;
    std::vector<std::pair<unsigned, double>> curve;
    TextTable table({"jobs", "wall ms", "speedup", "efficiency"});
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        std::vector<LegRates> rates;
        const double ms = runSweepAt(jobs, legs, n_frames, rates);
        if (jobs == 1)
            reference = rates;
        // The whole point of the executor: more threads, same numbers.
        for (size_t i = 0; i < rates.size(); ++i)
            if (rates[i].h1 != reference[i].h1 ||
                rates[i].h2f != reference[i].h2f) {
                std::fprintf(stderr,
                             "FAIL: leg %zu rates differ at jobs=%u\n", i,
                             jobs);
                return 1;
            }
        curve.emplace_back(jobs, ms);
        const double speedup = curve.front().second / ms;
        table.addRow({std::to_string(jobs), formatDouble(ms, 1),
                      formatDouble(speedup, 2) + "x",
                      formatPercent(speedup / jobs)});
    }
    table.print();

    const double speedup8 = curve.front().second / curve.back().second;
    const bool require =
        envInt("MLTC_REQUIRE_SPEEDUP", 0) != 0 || hw >= 8;
    if (require && speedup8 < 3.0) {
        std::fprintf(stderr,
                     "FAIL: speedup at 8 jobs is %.2fx (< 3x) with %u "
                     "hardware threads\n",
                     speedup8, hw);
        return 1;
    }
    if (!require)
        std::printf("(speedup gate skipped: %u hardware threads; set "
                    "MLTC_REQUIRE_SPEEDUP=1 to force)\n",
                    hw);

    const std::string path = benchOutPath();
    mergeIntoBenchJson(path, curve);
    std::printf("merged BM_ParallelSweep/jobs:{1,2,4,8} into %s\n", path.c_str());
    return 0;
}
