/**
 * @file
 * Extension: sector prefetching in the L2.
 *
 * The paper's sector mapping fetches only the demanded L1 sub-block,
 * matching the pull architecture's bandwidth floor; Hakura observed
 * that fetching neighbours cuts miss rate but raises bandwidth. This
 * bench quantifies that trade-off in the L2: demand-only vs
 * adjacent-sector vs whole-block filling.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Extension: L2 sector prefetch",
           "Demand-only (paper) vs adjacent-sector vs whole-block fill "
           "(2KB L1 + 2MB L2, trilinear)");

    const int n_frames = frames(36);
    const PrefetchPolicy policies[] = {PrefetchPolicy::None,
                                       PrefetchPolicy::AdjacentSector,
                                       PrefetchPolicy::WholeBlock};

    // One leg per workload on the work-stealing pool (MLTC_JOBS),
    // keeping the three-policy sim fanout per leg; tables stream
    // through the ordered leg buffers and CSV rows land in leg-indexed
    // slots — byte-identical for any worker count.
    const std::vector<std::string> names = workloadNames();
    std::vector<std::vector<std::vector<std::string>>> csv_rows(
        names.size());
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string name = names[w];
        sweep.addLeg(name, [&, w, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Trilinear;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            for (PrefetchPolicy p : policies) {
                CacheSimConfig sc =
                    CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
                sc.l2.prefetch = p;
                runner.addSim(sc, prefetchPolicyName(p));
            }
            runner.run();

            TextTable table({name + " prefetch", "MB/frame", "h2full",
                             "partial rate", "prefetch accuracy"});
            for (size_t i = 0; i < runner.sims().size(); ++i) {
                const CacheSim &sim = *runner.sims()[i];
                const L2Stats &l2 = sim.l2()->stats();
                double accuracy =
                    l2.prefetch_sectors
                        ? static_cast<double>(l2.prefetch_useful) /
                              static_cast<double>(l2.prefetch_sectors)
                        : 0.0;
                double avg = runner.averageHostBytesPerFrame(i) /
                             (1024.0 * 1024.0);
                table.addRow(
                    {sim.label(), formatDouble(avg, 3),
                     formatPercent(sim.totals().l2FullHitRate()),
                     formatPercent(sim.totals().l2PartialHitRate()),
                     l2.prefetch_sectors ? formatPercent(accuracy) : "-"});
                csv_rows[w].push_back(
                    {name, sim.label(), formatDouble(avg, 4),
                     formatDouble(sim.totals().l2FullHitRate(), 4),
                     formatDouble(accuracy, 4)});
            }
            ctx.write(table.render());
            ctx.printf("\n");
        });
    }
    if (!runLegs(sweep))
        return 1;

    CsvWriter csv(csvPath("ext_prefetch.csv"),
                  {"workload", "policy", "mb_per_frame", "h2full",
                   "prefetch_accuracy"});
    for (const auto &leg_rows : csv_rows)
        for (const auto &row : leg_rows)
            csv.rowStrings(row);
    std::printf("(prefetching trades host bandwidth for L2 hit rate; the "
                "paper's demand fetch is the bandwidth floor)\n");
    wroteCsv(csv.path());
    return 0;
}
