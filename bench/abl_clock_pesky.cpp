/**
 * @file
 * Ablation (paper §5.4.2): the clock algorithm's victim-search cost.
 *
 * The paper reports that extreme BRL[] searches are "pesky — lasting
 * only a frame or two", and that if the active bits are searched 16 at
 * a time, "a victim could always be found within 32 cycles" for 2-4 MB
 * L2 caches. This bench records the full distribution of victim-search
 * lengths over both animations and checks that claim: cycles =
 * ceil(steps / 16).
 */
#include <cmath>

#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "util/histogram.hpp"
#include "workload/registry.hpp"

namespace {

using namespace mltc;

/** Wraps a CacheSim and histograms every eviction's search length. */
class PeskyProbe final : public TexelAccessSink
{
  public:
    PeskyProbe(TextureManager &tm, const CacheSimConfig &cfg)
        : sim(tm, cfg, "probe"), hist(8192)
    {
    }

    void bindTexture(TextureId tid) override { sim.bindTexture(tid); }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        uint64_t before = sim.l2()->stats().evictions;
        sim.access(x, y, mip);
        if (sim.l2()->stats().evictions != before)
            hist.add(sim.l2()->lastVictimSteps());
    }

    void
    accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
               uint32_t mip) override
    {
        access(x0, y0, mip);
        access(x1, y0, mip);
        access(x0, y1, mip);
        access(x1, y1, mip);
    }

    CacheSim sim;
    Histogram hist;
};

} // namespace

int
main()
{
    using namespace mltc::bench;

    banner("Ablation: clock victim-search cost (the 'pesky' study)",
           "Distribution of BRL search lengths; paper: searching 16 bits "
           "at a time finds a victim within 32 cycles for 2-4MB L2");

    const int n_frames = frames(36);
    CsvWriter csv(csvPath("abl_clock_pesky.csv"),
                  {"workload", "l2_mb", "evictions", "mean_steps",
                   "p99_steps", "max_steps", "max_cycles_16wide"});

    for (const std::string &name : workloadNames()) {
        TextTable table({name + " L2 size", "evictions", "mean steps",
                         "p99 steps", "max steps", "max 16-wide cycles"});
        for (uint64_t mb : {2ull, 4ull}) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Trilinear;
            cfg.frames = n_frames;

            PeskyProbe probe(*wl.textures,
                             CacheSimConfig::twoLevel(2 * 1024, mb << 20));
            runAnimation(wl, cfg, &probe,
                         [&](int, const FrameStats &) {
                             probe.sim.endFrame();
                         });

            const Histogram &h = probe.hist;
            uint64_t cycles =
                (h.max() + 15) / 16; // searched 16 bits per cycle
            table.addRow({std::to_string(mb) + " MB",
                          std::to_string(h.count()),
                          formatDouble(h.mean(), 1),
                          std::to_string(h.percentile(0.99)),
                          std::to_string(h.max()),
                          std::to_string(cycles)});
            csv.rowStrings({name, std::to_string(mb),
                            std::to_string(h.count()),
                            formatDouble(h.mean(), 2),
                            std::to_string(h.percentile(0.99)),
                            std::to_string(h.max()),
                            std::to_string(cycles)});
        }
        table.print();
        std::printf("\n");
    }
    std::printf("(typical searches are a handful of steps; worst cases "
                "are full sweeps — rare and short-lived, matching the "
                "paper's 'pesky' description)\n");
    wroteCsv(csv.path());
    return 0;
}
