/**
 * @file
 * Figure 10: per-frame host download bandwidth with and without an L2
 * cache — 2 KB and 16 KB L1 caches alone (pull architecture) versus a
 * 2 KB L1 backed by 2, 4 and 8 MB L2 caches of 16x16 tiles. Trilinear.
 *
 * Paper headline: without L2 the Village needs ~1.6 GB/s (2 KB L1) or
 * ~475 MB/s (16 KB L1) at 30 Hz — beyond AGP; a 2 MB L2 drops the 2 KB
 * L1 requirement to ~92 MB/s, a 5x-18x saving.
 *
 * Supports the shared resilience flags (--checkpoint, --resume,
 * --deadline-ms, --budget-ms, --audit; see sim/resilience.hpp). The CSV
 * is emitted from the accumulated rows *after* the run, so a resumed
 * run writes the complete series, not just the frames it rendered.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main(int argc, char **argv)
{
    using namespace mltc;
    using namespace mltc::bench;

    CommandLine cli(argc, argv);
    const ResilienceConfig resilience = resilienceFromCli(cli);
    installCancellationHandlers();

    banner("Figure 10",
           "Per-frame download bandwidth (MB/frame), trilinear, 16x16 L2 "
           "tiles: pull (2KB/16KB L1) vs 2KB L1 + 2/4/8MB L2");

    const int n_frames = frames(48);
    // One leg per workload on the work-stealing pool (MLTC_JOBS); each
    // leg owns its CSV and its stdout block is buffered and flushed in
    // leg order — byte-identical output for any worker count.
    const std::vector<std::string> names = workloadNames();
    std::vector<RunManifest> manifests(names.size());
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string name = names[w];
        sweep.addLeg(name, [&, w, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Trilinear;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addSim(CacheSimConfig::pull(2 * 1024), "pull-2KB");
            runner.addSim(CacheSimConfig::pull(16 * 1024), "pull-16KB");
            runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20),
                          "2KB+2MB");
            runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 4ull << 20),
                          "2KB+4MB");
            runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 8ull << 20),
                          "2KB+8MB");

            manifests[w] =
                runner.runSupervised(legResilience(resilience, name));
            if (manifests[w].outcome != RunOutcome::Completed)
                return;

            CsvWriter csv(csvPath("fig10_bandwidth_" + name + ".csv"),
                          {"frame", "pull_2kb_mb", "pull_16kb_mb",
                           "l2_2mb_mb", "l2_4mb_mb", "l2_8mb_mb"});
            for (const FrameRow &row : runner.rows()) {
                std::vector<double> vals{static_cast<double>(row.frame)};
                for (const auto &sim : row.sims)
                    vals.push_back(mb(sim.host_bytes));
                csv.row(vals);
            }

            ctx.printf("%-8s avg MB/frame (MB/s @30Hz):\n", name.c_str());
            double pull2 = 0;
            for (size_t i = 0; i < runner.sims().size(); ++i) {
                double avg = runner.averageHostBytesPerFrame(i) /
                             (1024.0 * 1024.0);
                if (i == 0)
                    pull2 = avg;
                ctx.printf("  %-9s %8.2f MB/frame  (%7.1f MB/s)%s\n",
                           runner.sims()[i]->label().c_str(), avg,
                           avg * 30.0,
                           i >= 2 ? (" saving vs pull-2KB: " +
                                     formatDouble(pull2 / avg, 1) + "x")
                                        .c_str()
                                  : "");
            }
            wroteCsv(ctx, csv);
        });
    }
    bool ok = runLegs(sweep);
    for (size_t w = 0; w < names.size(); ++w) {
        reportManifest(names[w], manifests[w]);
        if (manifests[w].outcome != RunOutcome::Completed)
            ok = false;
    }
    if (!ok)
        return 1;
    std::printf("(paper shape: 2MB L2 saves 5x-18x vs pull; AGP 1.0 "
                "delivers ~512 MB/s)\n\n");
    return 0;
}
