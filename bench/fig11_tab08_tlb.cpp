/**
 * @file
 * Figure 11 + Table 8: texture page table TLB hit rates as a function of
 * TLB entries (1-16, round-robin), with a 2 KB L1 and 2 MB L2 of 16x16
 * tiles. Figure 11 plots the Village trilinear per-frame curve; Table 8
 * gives bilinear averages for both workloads.
 *
 * Paper averages (bilinear): ~36/63/74/81/91% for 1/2/4/8/16 entries.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Figure 11 / Table 8",
           "Texture page table TLB hit rates vs entries (2KB L1, 2MB L2, "
           "16x16 tiles, round-robin)");

    const int n_frames = frames(36);
    const uint32_t entry_counts[] = {1, 2, 4, 8, 16};

    // Three independent legs on the work-stealing pool (MLTC_JOBS):
    // the Figure 11 per-frame run and one Table 8 run per workload.
    // Leg-ordered buffered stdout and leg-indexed result slots keep the
    // output byte-identical for any worker count.
    double rates[5][2];
    SweepExecutor sweep(benchJobs());

    // --- Figure 11: Village, trilinear, per-frame curves ---------------
    sweep.addLeg("fig11_village_trilinear", [&](LegContext &ctx) {
        Workload wl = buildWorkload("village");
        DriverConfig cfg;
        cfg.filter = FilterMode::Trilinear;
        cfg.frames = n_frames;

        MultiConfigRunner runner(wl, cfg);
        for (uint32_t e : entry_counts) {
            CacheSimConfig sc =
                CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
            sc.tlb_entries = e;
            runner.addSim(sc, std::to_string(e) + "-entry");
        }
        CsvWriter csv(csvPath("fig11_tlb_village.csv"),
                      {"frame", "tlb_1", "tlb_2", "tlb_4", "tlb_8",
                       "tlb_16"});
        runner.run([&](const FrameRow &row) {
            std::vector<double> vals{static_cast<double>(row.frame)};
            for (const auto &sim : row.sims)
                vals.push_back(sim.tlbHitRate());
            csv.row(vals);
        });
        wroteCsv(ctx, csv);
    });

    // --- Table 8: both workloads, bilinear, averages --------------------
    const std::vector<std::string> names = workloadNames();
    for (size_t col = 0; col < names.size(); ++col) {
        const std::string name = names[col];
        sweep.addLeg("tab08_" + name, [&, col, name](LegContext &) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Bilinear;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            for (uint32_t e : entry_counts) {
                CacheSimConfig sc =
                    CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
                sc.tlb_entries = e;
                runner.addSim(sc, std::to_string(e));
            }
            runner.run();
            for (size_t i = 0; i < 5; ++i)
                rates[i][col] = runner.sims()[i]->totals().tlbHitRate();
        });
    }
    if (!runLegs(sweep))
        return 1;

    TextTable table({"# TLB entries", "Village hit rate", "City hit rate"});
    for (size_t i = 0; i < 5; ++i)
        table.addRow(std::to_string(entry_counts[i]),
                     {rates[i][0] * 100.0, rates[i][1] * 100.0}, 1);
    table.print();
    std::printf("(paper: ~36%% / 63%% / 74%% / 81%% / 91%% for "
                "1/2/4/8/16 entries)\n\n");
    return 0;
}
