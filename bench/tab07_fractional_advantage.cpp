/**
 * @file
 * Table 7: fractional advantage f of the L2 caching architecture — the
 * ratio of the L2 architecture's average cost on an L1 miss to the pull
 * architecture's — computed from measured hit rates via the §5.4.2
 * model, with the full-miss cost bounded at c = 8 (and a sweep over c).
 *
 * f < 1 everywhere means L2 caching beats the pull architecture even
 * when a full L2 miss costs 8x an L1 download.
 */
#include "bench_common.hpp"
#include "model/performance_model.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Table 7",
           "Fractional advantage f of L2 caching (2KB L1 + 2MB L2, c = "
           "t2miss/t3); f<1 means L2 wins");

    const int n_frames = frames(36);

    // One leg per (workload, filter) on the work-stealing pool
    // (MLTC_JOBS): legs store measured rates into leg-indexed slots;
    // the model evaluation, table and CSV happen after the sweep in
    // leg order — byte-identical output for any worker count.
    const std::vector<std::string> names = workloadNames();
    const FilterMode filters[] = {FilterMode::Bilinear,
                                  FilterMode::Trilinear};
    std::vector<PerformanceInputs> inputs(names.size() * 2);
    SweepExecutor sweep(benchJobs());
    for (size_t w = 0; w < names.size(); ++w)
        for (int pass = 0; pass < 2; ++pass) {
            const size_t slot = w * 2 + static_cast<size_t>(pass);
            const std::string name = names[w];
            const FilterMode filter = filters[pass];
            sweep.addLeg(name + "_" + filterModeName(filter),
                         [&, slot, name, filter](LegContext &) {
                             Workload wl = buildWorkload(name);
                             DriverConfig cfg;
                             cfg.filter = filter;
                             cfg.frames = n_frames;

                             MultiConfigRunner runner(wl, cfg);
                             runner.addSim(CacheSimConfig::twoLevel(
                                               2 * 1024, 2ull << 20),
                                           "2KB+2MB");
                             runner.run();
                             const CacheFrameStats &t =
                                 runner.sims()[0]->totals();
                             inputs[slot].l1_hit_rate = t.l1HitRate();
                             inputs[slot].l2_full_hit_rate =
                                 t.l2FullHitRate();
                             inputs[slot].l2_partial_hit_rate =
                                 t.l2PartialHitRate();
                         });
        }
    if (!runLegs(sweep))
        return 1;

    CsvWriter csv(csvPath("tab07_fractional_advantage.csv"),
                  {"workload", "filter", "c", "f", "speedup"});
    TextTable table({"workload / filter", "f (c=2)", "f (c=4)", "f (c=8)",
                     "speedup (c=8)"});
    for (size_t w = 0; w < names.size(); ++w)
        for (int pass = 0; pass < 2; ++pass) {
            PerformanceInputs in =
                inputs[w * 2 + static_cast<size_t>(pass)];
            std::vector<double> row;
            for (double c : {2.0, 4.0, 8.0}) {
                in.full_miss_cost = c;
                double f = fractionalAdvantage(in);
                row.push_back(f);
                csv.rowStrings({names[w], filterModeName(filters[pass]),
                                formatDouble(c, 0), formatDouble(f, 4),
                                formatDouble(l2Speedup(in), 3)});
            }
            in.full_miss_cost = 8.0;
            row.push_back(l2Speedup(in));
            table.addRow(names[w] + " / " +
                             filterModeName(filters[pass]),
                         row, 3);
        }
    table.print();
    wroteCsv(csv.path());
    return 0;
}
