/**
 * @file
 * Extension: multi-texturing (detail layers).
 *
 * The paper's §4 names multi-texture hardware as a growing source of
 * intra-frame texture locality. This bench attaches a shared detail
 * layer to the Village's large surfaces (ground, streets, hills) —
 * rendered as the era-accurate second pass — and measures what the
 * extra texture layer costs each architecture. The detail texture is
 * shared across objects and heavily tiled, so the L2 absorbs almost
 * all of its traffic.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "texture/procedural.hpp"
#include "workload/village.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Extension: multitexturing (detail layer, two-pass)",
           "Village with a shared detail texture on its large surfaces "
           "(2KB L1, 2MB L2, trilinear)");

    const int n_frames = frames(36);

    // One leg per configuration on the work-stealing pool (MLTC_JOBS);
    // CSV rows land in leg-indexed slots and stdout is buffered in leg
    // order — byte-identical for any worker count.
    std::vector<std::vector<std::string>> rows(2);
    SweepExecutor sweep(benchJobs());
    for (int with_detail = 0; with_detail < 2; ++with_detail) {
        const char *label =
            with_detail ? "base + detail layer" : "single texture";
        sweep.addLeg(label, [&, with_detail, label](LegContext &ctx) {
            Workload wl = buildVillage();
            if (with_detail) {
                TextureId noise = wl.textures->load(
                    "detail_noise", MipPyramid(makeDirt(256, 0x0e7a11)));
                for (size_t i = 0; i < wl.scene.objects().size(); ++i) {
                    SceneObject &obj = wl.scene.object(i);
                    if (obj.name == "ground" ||
                        obj.name.rfind("street", 0) == 0 ||
                        obj.name.rfind("hill", 0) == 0 ||
                        obj.name.rfind("meadow", 0) == 0) {
                        obj.detail_texture = noise;
                        obj.detail_uv_scale = 16.0f;
                    }
                }
            }

            DriverConfig cfg;
            cfg.filter = FilterMode::Trilinear;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addSim(CacheSimConfig::pull(2 * 1024), "pull");
            runner.addSim(CacheSimConfig::twoLevel(2 * 1024, 2ull << 20),
                          "L2");
            runner.run();

            double d = 0;
            for (const auto &row : runner.rows())
                d += row.raster.depthComplexity(cfg.width, cfg.height);
            d /= static_cast<double>(runner.rows().size());
            double pull = runner.averageHostBytesPerFrame(0) / (1 << 20);
            double l2 = runner.averageHostBytesPerFrame(1) / (1 << 20);

            ctx.printf("%-20s d=%.2f  pull %6.2f MB/frame  L2 %5.2f "
                       "MB/frame\n",
                       label, d, pull, l2);
            rows[static_cast<size_t>(with_detail)] = {
                label, formatDouble(d, 3), formatDouble(pull, 3),
                formatDouble(l2, 3)};
        });
    }
    if (!runLegs(sweep))
        return 1;

    CsvWriter csv(csvPath("ext_multitexture.csv"),
                  {"config", "d", "pull_mb_per_frame",
                   "l2_mb_per_frame"});
    for (const auto &row : rows)
        csv.rowStrings(row);
    std::printf("(the shared, tiled detail layer adds texturing work but "
                "almost no L2 bandwidth — intra-frame locality absorbs "
                "it, as §4 argues)\n\n");
    wroteCsv(csv.path());
    return 0;
}
