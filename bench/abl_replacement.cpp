/**
 * @file
 * Ablation (paper §6 future work #2): L2 replacement policy — the
 * paper's clock approximation versus exact LRU, FIFO and random — at
 * 2 MB L2 / 2 KB L1, trilinear. Also reports the worst clock victim
 * search per run (the "pesky" behaviour of §5.4.2).
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Ablation: L2 replacement policy",
           "Host bandwidth by victim-selection algorithm (2KB L1 + 2MB "
           "L2, trilinear)");

    const int n_frames = frames(36);
    const ReplacementPolicy policies[] = {
        ReplacementPolicy::Clock, ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo, ReplacementPolicy::Random};

    CsvWriter csv(csvPath("abl_replacement.csv"),
                  {"workload", "policy", "mb_per_frame", "h2full",
                   "worst_clock_steps"});

    for (const std::string &name : workloadNames()) {
        Workload wl = buildWorkload(name);
        DriverConfig cfg;
        cfg.filter = FilterMode::Trilinear;
        cfg.frames = n_frames;

        MultiConfigRunner runner(wl, cfg);
        for (ReplacementPolicy p : policies) {
            CacheSimConfig sc =
                CacheSimConfig::twoLevel(2 * 1024, 2ull << 20);
            sc.l2.policy = p;
            runner.addSim(sc, replacementPolicyName(p));
        }
        runner.run();

        TextTable table({name + " policy", "MB/frame", "h2full",
                         "worst victim search"});
        for (size_t i = 0; i < runner.sims().size(); ++i) {
            const auto &sim = *runner.sims()[i];
            double avg = runner.averageHostBytesPerFrame(i) /
                         (1024.0 * 1024.0);
            table.addRow({sim.label(), formatDouble(avg, 3),
                          formatPercent(sim.totals().l2FullHitRate()),
                          std::to_string(sim.totals().victim_steps_max)});
            csv.rowStrings({name, sim.label(), formatDouble(avg, 4),
                            formatDouble(sim.totals().l2FullHitRate(), 4),
                            std::to_string(sim.totals().victim_steps_max)});
        }
        table.print();
        std::printf("\n");
    }
    wroteCsv(csv.path());
    return 0;
}
