/**
 * @file
 * Figure 5: per-frame total versus *new* L2 memory (16x16 tiles, point
 * sampling) — the inter-frame working set drifts slowly.
 *
 * Paper headline: only ~150 KB (Village) / ~40 KB (City) of the
 * per-frame texture blocks are new each frame.
 */
#include "bench_common.hpp"
#include "sim/multi_config_runner.hpp"
#include "workload/registry.hpp"

int
main()
{
    using namespace mltc;
    using namespace mltc::bench;

    banner("Figure 5",
           "Total vs new per-frame L2 memory, 16x16 tiles (point "
           "sampling)");

    const int n_frames = frames(96);
    // One leg per workload on the work-stealing pool (MLTC_JOBS);
    // leg-ordered buffered stdout keeps output byte-identical for any
    // worker count.
    SweepExecutor sweep(benchJobs());
    for (const std::string &name : workloadNames())
        sweep.addLeg(name, [&, name](LegContext &ctx) {
            Workload wl = buildWorkload(name);
            DriverConfig cfg;
            cfg.filter = FilterMode::Point;
            cfg.frames = n_frames;

            MultiConfigRunner runner(wl, cfg);
            runner.addWorkingSets({16}, {});

            CsvWriter csv(csvPath("fig05_interframe_ws_" + name + ".csv"),
                          {"frame", "total_mb", "new_kb"});
            double total_sum = 0, new_sum = 0;
            int counted = 0;
            runner.run([&](const FrameRow &row) {
                const auto &ws = row.working_sets->l2[0];
                csv.row({static_cast<double>(row.frame),
                         mb(ws.bytesTouched()), kb(ws.bytesNew())});
                if (row.frame > 0) { // frame 0 is all-new by construction
                    total_sum += mb(ws.bytesTouched());
                    new_sum += kb(ws.bytesNew());
                    ++counted;
                }
            });
            ctx.printf("%-8s avg total %.2f MB/frame, avg new %.0f "
                       "KB/frame (paper: ~150 KB Village / ~40 KB City at "
                       "411/525 frames)\n",
                       name.c_str(), total_sum / counted,
                       new_sum / counted);
            wroteCsv(ctx, csv);
        });
    const bool ok = runLegs(sweep);
    std::printf("note: fewer frames -> faster camera -> proportionally "
                "larger 'new' per frame; MLTC_FRAMES=411 reproduces the "
                "paper's pacing.\n\n");
    return ok ? 0 : 1;
}
