/**
 * @file
 * Consumer interface for the per-pixel texel access stream.
 *
 * The rasterizer announces the bound texture once per object, then emits
 * every texel reference (texel coordinates + MIP level) generated while
 * scan-converting that object. Cache simulators and the statistics
 * library both attach here — this mirrors the paper's approach of
 * instrumenting the renderer with "calls to our own tracing library from
 * appropriate code sites" (§3.2).
 */
#ifndef MLTC_RASTER_ACCESS_SINK_HPP
#define MLTC_RASTER_ACCESS_SINK_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "texture/tiled_layout.hpp"

namespace mltc {

/**
 * One element of a batched access stream: a lossless encoding of the
 * scalar sink events between two texture binds. Producers (sampler,
 * trace replay, multi-stream replay) buffer these a scanline (or a few
 * thousand events) at a time and hand the span to accessBatch(), paying
 * one virtual call and one observability-hook crossing per batch
 * instead of per texel. Pixel markers are recorded verbatim — never
 * deduplicated — so replaying a batch element-by-element through the
 * scalar entry points reproduces the exact scalar event sequence.
 */
struct TexelRef
{
    enum Kind : uint16_t
    {
        kTexel = 0, ///< one texel reference (x0, y0, mip)
        kQuad = 1,  ///< bilinear footprint (x0|x1, y0|y1, mip)
        kPixel = 2, ///< beginPixel marker; screen position in (x0, y0)
    };

    uint32_t x0 = 0;
    uint32_t y0 = 0;
    uint32_t x1 = 0; ///< quad only: wrapped neighbour column
    uint32_t y1 = 0; ///< quad only: wrapped neighbour row
    uint16_t mip = 0;
    uint16_t kind = kTexel;

    static constexpr TexelRef
    texel(uint32_t x, uint32_t y, uint32_t m)
    {
        return {x, y, 0, 0, static_cast<uint16_t>(m), kTexel};
    }

    static constexpr TexelRef
    quad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1, uint32_t m)
    {
        return {x0, y0, x1, y1, static_cast<uint16_t>(m), kQuad};
    }

    static constexpr TexelRef
    pixel(uint32_t px, uint32_t py)
    {
        return {px, py, 0, 0, 0, kPixel};
    }
};

/**
 * Process-wide batched-emission toggle. On (the default, overridable
 * with the MLTC_BATCH environment variable: "0"/"false"/"off" disable)
 * the rasterizer, trace replay and multi-stream replay buffer the
 * access stream into TexelRef spans and deliver it via accessBatch();
 * off they call the scalar entry points per event. Both modes are
 * byte-identical by contract (tests/test_batch_equivalence.cpp); the
 * toggle exists for differential testing and for bisecting perf.
 */
bool batchedAccess();

/** Override the batched-emission toggle (--batch / --no-batch). */
void setBatchedAccess(bool on);

/** Receives the texel access stream from the rasterizer. */
class TexelAccessSink
{
  public:
    virtual ~TexelAccessSink() = default;

    /**
     * All subsequent access() calls refer to texture @p tid (the
     * accelerator's "current texture" register, §5.2).
     */
    virtual void bindTexture(TextureId tid) = 0;

    /**
     * Subsequent accesses shade screen pixel (px, py). Optional
     * position metadata for spatial profilers (screen-space miss
     * heatmaps); the default ignores it, and trace replay does not
     * reproduce it.
     */
    virtual void beginPixel(uint32_t px, uint32_t py)
    {
        (void)px;
        (void)py;
    }

    /** One texel reference at (x, y) of MIP level @p mip. */
    virtual void access(uint32_t x, uint32_t y, uint32_t mip) = 0;

    /**
     * A bilinear footprint: the four texels (x0|x1, y0|y1) of level
     * @p mip, where x1/y1 are the (wrapped) neighbours of x0/y0. The
     * default expands to four access() calls; cache simulators override
     * it to coalesce the footprint (it usually lands in one tile).
     */
    virtual void
    accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
               uint32_t mip)
    {
        access(x0, y0, mip);
        access(x1, y0, mip);
        access(x0, y1, mip);
        access(x1, y1, mip);
    }

    /**
     * A buffered span of accesses between two texture binds (producers
     * flush before every bindTexture call, so a batch never spans a
     * bind). The default replays the span through the scalar entry
     * points in order, which makes every sink batch-correct by
     * construction; CacheSim overrides this with a vectorized fast
     * path that is bit-identical to the replay.
     */
    virtual void
    accessBatch(std::span<const TexelRef> refs)
    {
        for (const TexelRef &r : refs) {
            switch (r.kind) {
              case TexelRef::kTexel:
                access(r.x0, r.y0, r.mip);
                break;
              case TexelRef::kQuad:
                accessQuad(r.x0, r.y0, r.x1, r.y1, r.mip);
                break;
              default:
                beginPixel(r.x0, r.y0);
                break;
            }
        }
    }
};

/** Sink that drops everything (render-only paths). */
class NullSink final : public TexelAccessSink
{
  public:
    void bindTexture(TextureId) override {}
    void access(uint32_t, uint32_t, uint32_t) override {}
    void accessQuad(uint32_t, uint32_t, uint32_t, uint32_t,
                    uint32_t) override
    {
    }
    void accessBatch(std::span<const TexelRef>) override {}
};

/** Sink that counts accesses (testing and quick statistics). */
class CountingSink final : public TexelAccessSink
{
  public:
    void bindTexture(TextureId tid) override { last_tid = tid; }

    void
    access(uint32_t, uint32_t, uint32_t) override
    {
        ++count;
    }

    void
    accessQuad(uint32_t, uint32_t, uint32_t, uint32_t, uint32_t) override
    {
        count += 4;
    }

    void
    accessBatch(std::span<const TexelRef> refs) override
    {
        for (const TexelRef &r : refs) {
            if (r.kind == TexelRef::kTexel)
                ++count;
            else if (r.kind == TexelRef::kQuad)
                count += 4;
        }
    }

    uint64_t count = 0;
    TextureId last_tid = 0;
};

/** Fan a single access stream out to several sinks (multi-config runs). */
class FanoutSink final : public TexelAccessSink
{
  public:
    /** Attach a downstream sink; not owned. */
    void add(TexelAccessSink *sink) { sinks_.push_back(sink); }

    void clear() { sinks_.clear(); }

    void
    bindTexture(TextureId tid) override
    {
        for (auto *s : sinks_)
            s->bindTexture(tid);
    }

    void
    beginPixel(uint32_t px, uint32_t py) override
    {
        for (auto *s : sinks_)
            s->beginPixel(px, py);
    }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        for (auto *s : sinks_)
            s->access(x, y, mip);
    }

    void
    accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
               uint32_t mip) override
    {
        for (auto *s : sinks_)
            s->accessQuad(x0, y0, x1, y1, mip);
    }

    void
    accessBatch(std::span<const TexelRef> refs) override
    {
        for (auto *s : sinks_)
            s->accessBatch(refs);
    }

  private:
    std::vector<TexelAccessSink *> sinks_;
};

} // namespace mltc

#endif // MLTC_RASTER_ACCESS_SINK_HPP
