/**
 * @file
 * Consumer interface for the per-pixel texel access stream.
 *
 * The rasterizer announces the bound texture once per object, then emits
 * every texel reference (texel coordinates + MIP level) generated while
 * scan-converting that object. Cache simulators and the statistics
 * library both attach here — this mirrors the paper's approach of
 * instrumenting the renderer with "calls to our own tracing library from
 * appropriate code sites" (§3.2).
 */
#ifndef MLTC_RASTER_ACCESS_SINK_HPP
#define MLTC_RASTER_ACCESS_SINK_HPP

#include <cstdint>
#include <vector>

#include "texture/tiled_layout.hpp"

namespace mltc {

/** Receives the texel access stream from the rasterizer. */
class TexelAccessSink
{
  public:
    virtual ~TexelAccessSink() = default;

    /**
     * All subsequent access() calls refer to texture @p tid (the
     * accelerator's "current texture" register, §5.2).
     */
    virtual void bindTexture(TextureId tid) = 0;

    /**
     * Subsequent accesses shade screen pixel (px, py). Optional
     * position metadata for spatial profilers (screen-space miss
     * heatmaps); the default ignores it, and trace replay does not
     * reproduce it.
     */
    virtual void beginPixel(uint32_t px, uint32_t py)
    {
        (void)px;
        (void)py;
    }

    /** One texel reference at (x, y) of MIP level @p mip. */
    virtual void access(uint32_t x, uint32_t y, uint32_t mip) = 0;

    /**
     * A bilinear footprint: the four texels (x0|x1, y0|y1) of level
     * @p mip, where x1/y1 are the (wrapped) neighbours of x0/y0. The
     * default expands to four access() calls; cache simulators override
     * it to coalesce the footprint (it usually lands in one tile).
     */
    virtual void
    accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
               uint32_t mip)
    {
        access(x0, y0, mip);
        access(x1, y0, mip);
        access(x0, y1, mip);
        access(x1, y1, mip);
    }
};

/** Sink that drops everything (render-only paths). */
class NullSink final : public TexelAccessSink
{
  public:
    void bindTexture(TextureId) override {}
    void access(uint32_t, uint32_t, uint32_t) override {}
    void accessQuad(uint32_t, uint32_t, uint32_t, uint32_t,
                    uint32_t) override
    {
    }
};

/** Sink that counts accesses (testing and quick statistics). */
class CountingSink final : public TexelAccessSink
{
  public:
    void bindTexture(TextureId tid) override { last_tid = tid; }

    void
    access(uint32_t, uint32_t, uint32_t) override
    {
        ++count;
    }

    void
    accessQuad(uint32_t, uint32_t, uint32_t, uint32_t, uint32_t) override
    {
        count += 4;
    }

    uint64_t count = 0;
    TextureId last_tid = 0;
};

/** Fan a single access stream out to several sinks (multi-config runs). */
class FanoutSink final : public TexelAccessSink
{
  public:
    /** Attach a downstream sink; not owned. */
    void add(TexelAccessSink *sink) { sinks_.push_back(sink); }

    void clear() { sinks_.clear(); }

    void
    bindTexture(TextureId tid) override
    {
        for (auto *s : sinks_)
            s->bindTexture(tid);
    }

    void
    beginPixel(uint32_t px, uint32_t py) override
    {
        for (auto *s : sinks_)
            s->beginPixel(px, py);
    }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        for (auto *s : sinks_)
            s->access(x, y, mip);
    }

    void
    accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
               uint32_t mip) override
    {
        for (auto *s : sinks_)
            s->accessQuad(x0, y0, x1, y1, mip);
    }

  private:
    std::vector<TexelAccessSink *> sinks_;
};

} // namespace mltc

#endif // MLTC_RASTER_ACCESS_SINK_HPP
