/**
 * @file
 * Texture sampler: point / bilinear / trilinear filtering (paper §2.1).
 *
 * For every filtered sample it emits the exact set of texel references
 * the filter footprint touches (1, 4 or 8 texels) to the attached
 * TexelAccessSink, and — when shading is enabled — computes the filtered
 * color for display.
 */
#ifndef MLTC_RASTER_SAMPLER_HPP
#define MLTC_RASTER_SAMPLER_HPP

#include <cstdint>
#include <vector>

#include "raster/access_sink.hpp"
#include "texture/texture_manager.hpp"

namespace mltc {

/** Texture filtering mode. */
enum class FilterMode { Point, Bilinear, Trilinear };

/** Human-readable name of a filter mode ("point"/"bilinear"/"trilinear"). */
const char *filterModeName(FilterMode mode);

/**
 * Per-object texture sampling state. Bind a texture, then call sample()
 * per pixel. Not thread-safe (the simulator is single-threaded, like the
 * hardware pipeline it models).
 */
class TextureSampler
{
  public:
    TextureSampler() = default;

    /** Attach the access-stream consumer (may be null to disable). */
    void
    setSink(TexelAccessSink *sink)
    {
        flushBatch();
        sink_ = sink;
    }

    /**
     * Buffer footprints into TexelRef spans and deliver them through
     * accessBatch() instead of per-event scalar calls (the rasterizer
     * enables this per frame from the process-wide batchedAccess()
     * toggle). The emitted event sequence is identical either way.
     */
    void
    setBatching(bool enabled)
    {
        if (!enabled)
            flushBatch();
        batching_ = enabled;
    }

    bool batching() const { return batching_; }

    /** Deliver any buffered accesses to the sink as one batch. */
    void
    flushBatch()
    {
        if (!batch_.empty()) {
            if (sink_)
                sink_->accessBatch(batch_);
            batch_.clear();
        }
    }

    /** Select the filter for subsequent samples. */
    void setFilter(FilterMode mode) { filter_ = mode; }

    FilterMode filter() const { return filter_; }

    /** Enable color computation (off keeps simulation-only runs fast). */
    void setShading(bool enabled) { shading_ = enabled; }

    /**
     * Bind @p entry as the current texture; notifies the sink. The entry
     * must outlive subsequent sample() calls.
     */
    void bind(const TextureEntry &entry);

    /** Announce the screen pixel subsequent samples shade (profiling). */
    void
    beginPixel(uint32_t px, uint32_t py)
    {
        if (!sink_)
            return;
        if (batching_)
            push(TexelRef::pixel(px, py));
        else
            sink_->beginPixel(px, py);
    }

    /**
     * Sample the bound texture at normalised coordinates (u, v) (repeat
     * wrapping) with LOD @p lambda = log2(texels per pixel) measured in
     * base-level texels. Emits footprint accesses; returns the filtered
     * color (0 when shading is disabled).
     */
    uint32_t sample(float u, float v, float lambda);

    /** Number of texel references emitted since construction. */
    uint64_t accessCount() const { return accesses_; }

    /**
     * Harvest (and reset) wall time spent inside sample() while a
     * global tracer was installed (see SelfTimer) — the sampler's
     * aggregate self time for stage summaries. Zero while not tracing.
     */
    uint64_t
    takeSampleNs()
    {
        const uint64_t ns = sample_ns_;
        sample_ns_ = 0;
        return ns;
    }

  private:
    uint32_t samplePoint(float u, float v, uint32_t m);
    uint32_t sampleBilinear(float u, float v, uint32_t m);

    /** sample() body, shared by the traced and untraced branches. */
    uint32_t sampleImpl(float u, float v, float lambda);

    /** Backstop cap; the rasterizer flushes per scanline well below it. */
    static constexpr size_t kBatchCap = 4096;

    void
    push(const TexelRef &r)
    {
        batch_.push_back(r);
        if (batch_.size() >= kBatchCap)
            flushBatch();
    }

    const MipPyramid *pyramid_ = nullptr;
    TexelAccessSink *sink_ = nullptr;
    FilterMode filter_ = FilterMode::Point;
    bool shading_ = false;
    bool batching_ = false;
    uint32_t max_level_ = 0;
    uint64_t accesses_ = 0;
    uint64_t sample_ns_ = 0; ///< SelfTimer accumulator (tracing only)
    std::vector<TexelRef> batch_;
};

} // namespace mltc

#endif // MLTC_RASTER_SAMPLER_HPP
