/**
 * @file
 * Color + depth framebuffer for rendered output (example snapshots) and
 * for the z-prepass extension.
 */
#ifndef MLTC_RASTER_FRAMEBUFFER_HPP
#define MLTC_RASTER_FRAMEBUFFER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mltc {

/** Simple color (32-bit RGBA) + depth (float NDC z) buffer. */
class Framebuffer
{
  public:
    Framebuffer(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Reset color to @p color and depth to +infinity. */
    void clear(uint32_t color = 0xff000000u);

    /** Reset depth only. */
    void clearDepth();

    uint32_t
    pixel(int x, int y) const
    {
        return color_[index(x, y)];
    }

    float
    depth(int x, int y) const
    {
        return depth_[index(x, y)];
    }

    /**
     * Depth-test-and-set at (x, y): when @p z passes (less-equal), write
     * color+depth and return true.
     */
    bool
    shade(int x, int y, float z, uint32_t color)
    {
        size_t i = index(x, y);
        if (z <= depth_[i]) {
            depth_[i] = z;
            color_[i] = color;
            return true;
        }
        return false;
    }

    /** Depth-only update (z-prepass). Returns true when z won. */
    bool
    depthOnly(int x, int y, float z)
    {
        size_t i = index(x, y);
        if (z <= depth_[i]) {
            depth_[i] = z;
            return true;
        }
        return false;
    }

    /** True when @p z is the surviving (front-most) depth at (x, y). */
    bool
    depthMatches(int x, int y, float z, float eps = 1e-5f) const
    {
        return z <= depth_[index(x, y)] + eps;
    }

    /** Packed color plane, row-major top-first (for PPM output). */
    const std::vector<uint32_t> &colors() const { return color_; }

  private:
    size_t
    index(int x, int y) const
    {
        return static_cast<size_t>(y) * static_cast<size_t>(width_) +
               static_cast<size_t>(x);
    }

    int width_;
    int height_;
    std::vector<uint32_t> color_;
    std::vector<float> depth_;
};

} // namespace mltc

#endif // MLTC_RASTER_FRAMEBUFFER_HPP
