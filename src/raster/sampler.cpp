#include "raster/sampler.hpp"

#include <cmath>

#include "geom/vec.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"

namespace mltc {

namespace {

/** Blend two packed colors channelwise: a*(1-t) + b*t. */
uint32_t
blend(uint32_t a, uint32_t b, float t)
{
    uint32_t out = 0;
    for (int ch = 0; ch < 4; ++ch) {
        float v = lerp(static_cast<float>(channel(a, ch)),
                       static_cast<float>(channel(b, ch)), t);
        out |= static_cast<uint32_t>(v + 0.5f) << (8 * ch);
    }
    return out;
}

} // namespace

const char *
filterModeName(FilterMode mode)
{
    switch (mode) {
      case FilterMode::Point: return "point";
      case FilterMode::Bilinear: return "bilinear";
      case FilterMode::Trilinear: return "trilinear";
    }
    return "?";
}

void
TextureSampler::bind(const TextureEntry &entry)
{
    pyramid_ = &entry.pyramid;
    max_level_ = pyramid_->levels() - 1;
    // Batches never span a texture bind: the buffered refs carry no
    // texture id, so they must reach the sink under the old binding.
    flushBatch();
    if (sink_)
        sink_->bindTexture(entry.tid);
}

uint32_t
TextureSampler::samplePoint(float u, float v, uint32_t m)
{
    const Image &img = pyramid_->level(m);
    // Truncate-to-nearest texel; repeat wrap via power-of-two mask.
    int32_t x = static_cast<int32_t>(
        std::floor(u * static_cast<float>(img.width())));
    int32_t y = static_cast<int32_t>(
        std::floor(v * static_cast<float>(img.height())));
    uint32_t ux = static_cast<uint32_t>(x) & (img.width() - 1);
    uint32_t uy = static_cast<uint32_t>(y) & (img.height() - 1);
    if (sink_) {
        if (batching_)
            push(TexelRef::texel(ux, uy, m));
        else
            sink_->access(ux, uy, m);
    }
    ++accesses_;
    return shading_ ? img.texel(ux, uy) : 0;
}

uint32_t
TextureSampler::sampleBilinear(float u, float v, uint32_t m)
{
    const Image &img = pyramid_->level(m);
    float fx = u * static_cast<float>(img.width()) - 0.5f;
    float fy = v * static_cast<float>(img.height()) - 0.5f;
    float flx = std::floor(fx);
    float fly = std::floor(fy);
    int32_t x0 = static_cast<int32_t>(flx);
    int32_t y0 = static_cast<int32_t>(fly);
    uint32_t mask_x = img.width() - 1;
    uint32_t mask_y = img.height() - 1;
    uint32_t ux0 = static_cast<uint32_t>(x0) & mask_x;
    uint32_t uy0 = static_cast<uint32_t>(y0) & mask_y;
    uint32_t ux1 = static_cast<uint32_t>(x0 + 1) & mask_x;
    uint32_t uy1 = static_cast<uint32_t>(y0 + 1) & mask_y;

    if (sink_) {
        if (batching_)
            push(TexelRef::quad(ux0, uy0, ux1, uy1, m));
        else
            sink_->accessQuad(ux0, uy0, ux1, uy1, m);
    }
    accesses_ += 4;

    if (!shading_)
        return 0;
    float tx = fx - flx;
    float ty = fy - fly;
    uint32_t top = blend(img.texel(ux0, uy0), img.texel(ux1, uy0), tx);
    uint32_t bot = blend(img.texel(ux0, uy1), img.texel(ux1, uy1), tx);
    return blend(top, bot, ty);
}

uint32_t
TextureSampler::sample(float u, float v, float lambda)
{
    // The SelfTimer/profiler scopes live only on the observed branch so
    // their destructors cannot burden the unobserved per-pixel hot
    // path.
    if (globalTracer() != nullptr || stageProfiler() != nullptr)
        [[unlikely]] {
        SelfTimer timer(&sample_ns_);
        ScopedProfileStage prof("sampler.sample");
        return sampleImpl(u, v, lambda);
    }
    return sampleImpl(u, v, lambda);
}

uint32_t
TextureSampler::sampleImpl(float u, float v, float lambda)
{
    switch (filter_) {
      case FilterMode::Point: {
        float rounded = std::floor(lambda + 0.5f);
        uint32_t m = rounded <= 0.0f
                         ? 0u
                         : std::min(static_cast<uint32_t>(rounded), max_level_);
        return samplePoint(u, v, m);
      }
      case FilterMode::Bilinear: {
        float rounded = std::floor(lambda + 0.5f);
        uint32_t m = rounded <= 0.0f
                         ? 0u
                         : std::min(static_cast<uint32_t>(rounded), max_level_);
        return sampleBilinear(u, v, m);
      }
      case FilterMode::Trilinear: {
        if (lambda <= 0.0f) {
            // Magnification: a single bilinear probe of the base level,
            // as real trilinear hardware degenerates to.
            return sampleBilinear(u, v, 0);
        }
        uint32_t m0 = std::min(static_cast<uint32_t>(lambda), max_level_);
        uint32_t m1 = std::min(m0 + 1, max_level_);
        if (m0 == m1)
            return sampleBilinear(u, v, m0);
        uint32_t c0 = sampleBilinear(u, v, m0);
        uint32_t c1 = sampleBilinear(u, v, m1);
        if (!shading_)
            return 0;
        float frac = lambda - std::floor(lambda);
        return blend(c0, c1, frac);
      }
    }
    return 0;
}

} // namespace mltc
