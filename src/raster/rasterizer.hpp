/**
 * @file
 * Perspective-correct scanline rasterizer.
 *
 * Implements the fixed-function pipeline the paper's methodology assumes:
 * object-space frustum culling (in Scene), clip-space near/guard-band
 * clipping, perspective projection, and *scanline-order* rasterization
 * (the paper explicitly studies scanline rather than tiled order, §2.3)
 * with per-pixel MIP LOD selection from exact screen-space derivatives.
 * Every textured pixel drives the TextureSampler, which emits the texel
 * access stream the cache simulators consume.
 *
 * By default every rasterized pixel is textured regardless of occlusion
 * (texturing-before-z, as 1998 pipelines did) — this is what gives the
 * paper's depth-complexity factor d. The z-prepass mode implements the
 * paper's first future-work item (§6): depth-test before texture fetch.
 */
#ifndef MLTC_RASTER_RASTERIZER_HPP
#define MLTC_RASTER_RASTERIZER_HPP

#include <cstdint>
#include <memory>

#include "raster/framebuffer.hpp"
#include "raster/sampler.hpp"
#include "scene/camera.hpp"
#include "scene/scene.hpp"

namespace mltc {

/** Per-frame pipeline counters. */
struct FrameStats
{
    uint64_t objects_visible = 0;   ///< objects passing frustum culling
    uint64_t triangles_in = 0;      ///< triangles submitted to setup
    uint64_t triangles_drawn = 0;   ///< triangles surviving cull/clip
    uint64_t pixels_textured = 0;   ///< textured pixel writes (R * d)
    uint64_t texel_accesses = 0;    ///< texel references emitted

    /** Depth complexity d = textured pixels / screen pixels. */
    double
    depthComplexity(int width, int height) const
    {
        return static_cast<double>(pixels_textured) /
               (static_cast<double>(width) * static_cast<double>(height));
    }
};

/** Scanline rasterizer bound to a fixed screen size. */
class Rasterizer
{
  public:
    /** Screen dimensions in pixels (the paper uses 1024x768). */
    Rasterizer(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Select the texture filter used for all subsequent frames. */
    void setFilter(FilterMode mode) { sampler_.setFilter(mode); }

    /** Attach the texel access stream consumer (may be null). */
    void setSink(TexelAccessSink *sink) { sampler_.setSink(sink); }

    /**
     * Attach a framebuffer for shaded output; null disables shading
     * (simulation-only runs are much faster without it).
     */
    void setFramebuffer(Framebuffer *fb);

    /**
     * Enable the z-prepass extension: a depth-only pass runs first and
     * the texture pass only samples pixels that remain visible.
     */
    void setZPrepass(bool enabled) { z_prepass_ = enabled; }

    bool zPrepass() const { return z_prepass_; }

    /**
     * Cull, clip, project and rasterize the whole scene for one frame.
     * Texel accesses stream into the sink; shaded pixels into the
     * framebuffer when attached.
     */
    FrameStats renderFrame(const Scene &scene, const Camera &camera,
                           const TextureManager &textures);

  private:
    struct ClipVertex
    {
        Vec4 clip;
        Vec2 uv;
    };

    struct ScreenVertex
    {
        float x, y;      ///< pixel coordinates (center convention)
        float z;         ///< NDC depth for z-buffering
        float inv_w;     ///< 1/w (affine in screen space)
        float u_ow, v_ow; ///< u/w, v/w (affine in screen space)
    };

    enum class Pass { DepthOnly, Texture };

    void drawObject(const SceneObject &obj, const Camera &camera,
                    const TextureManager &textures, Pass pass,
                    FrameStats &stats, bool detail_pass = false);
    void rasterizeTriangle(const ScreenVertex &a, const ScreenVertex &b,
                           const ScreenVertex &c, Pass pass,
                           FrameStats &stats);

    int width_;
    int height_;
    float tex_width_ = 0.0f;  ///< base-level texture width (LOD scaling)
    float tex_height_ = 0.0f;
    TextureSampler sampler_;
    Framebuffer *framebuffer_ = nullptr;
    std::unique_ptr<Framebuffer> internal_fb_; ///< for z-prepass w/o fb
    bool z_prepass_ = false;
};

} // namespace mltc

#endif // MLTC_RASTER_RASTERIZER_HPP
