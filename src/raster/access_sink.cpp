#include "raster/access_sink.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mltc {

namespace {

bool
batchEnvDefault()
{
    const char *env = std::getenv("MLTC_BATCH");
    if (!env || !*env)
        return true;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0 &&
           std::strcmp(env, "off") != 0;
}

std::atomic<bool> &
batchFlag()
{
    // Function-local so the env read cannot race static initialization
    // order across translation units.
    static std::atomic<bool> flag{batchEnvDefault()};
    return flag;
}

} // namespace

bool
batchedAccess()
{
    return batchFlag().load(std::memory_order_relaxed);
}

void
setBatchedAccess(bool on)
{
    batchFlag().store(on, std::memory_order_relaxed);
}

} // namespace mltc
