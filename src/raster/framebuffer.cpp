#include "raster/framebuffer.hpp"

#include <limits>
#include <stdexcept>

namespace mltc {

Framebuffer::Framebuffer(int width, int height)
    : width_(width), height_(height),
      color_(static_cast<size_t>(width) * static_cast<size_t>(height)),
      depth_(color_.size(), std::numeric_limits<float>::infinity())
{
    if (width <= 0 || height <= 0)
        throw std::invalid_argument("Framebuffer: bad dimensions");
}

void
Framebuffer::clear(uint32_t color)
{
    std::fill(color_.begin(), color_.end(), color);
    clearDepth();
}

void
Framebuffer::clearDepth()
{
    std::fill(depth_.begin(), depth_.end(),
              std::numeric_limits<float>::infinity());
}

} // namespace mltc
