#include "raster/rasterizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace_event.hpp"

namespace mltc {

Rasterizer::Rasterizer(int width, int height)
    : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        throw std::invalid_argument("Rasterizer: bad dimensions");
}

void
Rasterizer::setFramebuffer(Framebuffer *fb)
{
    framebuffer_ = fb;
    sampler_.setShading(fb != nullptr);
}

FrameStats
Rasterizer::renderFrame(const Scene &scene, const Camera &camera,
                        const TextureManager &textures)
{
    FrameStats stats;
    const uint64_t access_base = sampler_.accessCount();
    sampler_.setBatching(batchedAccess());

    auto visible = scene.visibleObjects(camera.frustum());
    stats.objects_visible = visible.size();

    if (z_prepass_) {
        if (!framebuffer_ && !internal_fb_)
            internal_fb_ = std::make_unique<Framebuffer>(width_, height_);
        Framebuffer *depth_fb =
            framebuffer_ ? framebuffer_ : internal_fb_.get();
        depth_fb->clearDepth();
        // Depth-only pass: establish the front-most surface per pixel.
        ScopedTrace pass_scope("raster.depth_prepass", "raster");
        ScopedProfileStage prof_scope("raster.depth_prepass",
                                      /*with_counters=*/true);
        for (size_t idx : visible)
            drawObject(scene.objects()[idx], camera, textures,
                       Pass::DepthOnly, stats);
    }

    {
        ScopedTrace pass_scope("raster.texture_pass", "raster");
        ScopedProfileStage prof_scope("raster.texture_pass",
                                      /*with_counters=*/true);
        for (size_t idx : visible) {
            const SceneObject &obj = scene.objects()[idx];
            drawObject(obj, camera, textures, Pass::Texture, stats);
            // Multi-pass multitexturing: the detail layer re-rasterizes
            // the object bound to its second texture (as 1998 hardware
            // without single-pass multitexture did).
            if (obj.detail_texture != 0)
                drawObject(obj, camera, textures, Pass::Texture, stats,
                           /*detail_pass=*/true);
        }
    }

    sampler_.flushBatch();

    if (ChromeTraceWriter *t = globalTracer())
        t->recordAggregate("sampler.sample", sampler_.takeSampleNs() / 1000);

    stats.texel_accesses = sampler_.accessCount() - access_base;
    return stats;
}

void
Rasterizer::drawObject(const SceneObject &obj, const Camera &camera,
                       const TextureManager &textures, Pass pass,
                       FrameStats &stats, bool detail_pass)
{
    const TextureId tid = detail_pass ? obj.detail_texture : obj.texture;
    const float uv_scale = detail_pass ? obj.detail_uv_scale : 1.0f;
    if (tid == 0 || !obj.mesh)
        return;
    const TextureEntry &tex = textures.texture(tid);
    if (pass == Pass::Texture) {
        sampler_.bind(tex);
        tex_width_ = static_cast<float>(tex.pyramid.width());
        tex_height_ = static_cast<float>(tex.pyramid.height());
    }

    const Mat4 mvp = camera.viewProjection() * obj.transform;
    const Mesh &mesh = *obj.mesh;
    const float near_w = camera.nearPlane();

    // Transform all vertices once per object.
    std::vector<ClipVertex> transformed(mesh.vertices.size());
    for (size_t i = 0; i < mesh.vertices.size(); ++i) {
        transformed[i].clip = mvp * Vec4{mesh.vertices[i].position, 1.0f};
        transformed[i].uv = mesh.vertices[i].uv * uv_scale;
    }

    std::vector<ClipVertex> poly, scratch;

    for (size_t t = 0; t + 2 < mesh.indices.size(); t += 3) {
        if (pass == Pass::Texture)
            ++stats.triangles_in;

        poly.clear();
        poly.push_back(transformed[mesh.indices[t]]);
        poly.push_back(transformed[mesh.indices[t + 1]]);
        poly.push_back(transformed[mesh.indices[t + 2]]);

        // Trivial reject: all three behind the near plane.
        if (poly[0].clip.w < near_w && poly[1].clip.w < near_w &&
            poly[2].clip.w < near_w)
            continue;

        // Clip planes in clip space: near (w >= near_w), then a guard
        // band of 1.25x the frustum in x/y to bound screen coordinates,
        // and the far plane z <= w.
        auto clipPlane = [&](auto dist) {
            scratch.clear();
            size_t n = poly.size();
            for (size_t i = 0; i < n; ++i) {
                const ClipVertex &a = poly[i];
                const ClipVertex &b = poly[(i + 1) % n];
                float da = dist(a.clip);
                float db = dist(b.clip);
                if (da >= 0.0f)
                    scratch.push_back(a);
                if ((da >= 0.0f) != (db >= 0.0f)) {
                    float s = da / (da - db);
                    ClipVertex v;
                    v.clip = a.clip + (b.clip - a.clip) * s;
                    v.uv = a.uv + (b.uv - a.uv) * s;
                    scratch.push_back(v);
                }
            }
            poly.swap(scratch);
        };

        constexpr float kGuard = 1.25f;
        clipPlane([&](Vec4 v) { return v.w - near_w; });
        if (poly.size() < 3) continue;
        clipPlane([&](Vec4 v) { return v.x + kGuard * v.w; });
        if (poly.size() < 3) continue;
        clipPlane([&](Vec4 v) { return kGuard * v.w - v.x; });
        if (poly.size() < 3) continue;
        clipPlane([&](Vec4 v) { return v.y + kGuard * v.w; });
        if (poly.size() < 3) continue;
        clipPlane([&](Vec4 v) { return kGuard * v.w - v.y; });
        if (poly.size() < 3) continue;
        clipPlane([&](Vec4 v) { return v.w - v.z; });
        if (poly.size() < 3) continue;

        // Project to screen space.
        std::vector<ScreenVertex> screen(poly.size());
        for (size_t i = 0; i < poly.size(); ++i) {
            const Vec4 &c = poly[i].clip;
            float inv_w = 1.0f / c.w;
            screen[i].x = (c.x * inv_w * 0.5f + 0.5f) *
                          static_cast<float>(width_);
            screen[i].y = (0.5f - c.y * inv_w * 0.5f) *
                          static_cast<float>(height_);
            screen[i].z = c.z * inv_w;
            screen[i].inv_w = inv_w;
            screen[i].u_ow = poly[i].uv.x * inv_w;
            screen[i].v_ow = poly[i].uv.y * inv_w;
        }

        // Fan-triangulate the clipped polygon; backface-cull on signed
        // area (consistent across the fan since clipping preserves
        // winding). World-CCW triangles have *negative* screen-space
        // area because the screen y axis points down. The scanline fill
        // and the plane-equation gradients are winding-agnostic, so
        // two-sided objects simply skip the cull.
        for (size_t i = 1; i + 1 < screen.size(); ++i) {
            const ScreenVertex &a = screen[0];
            const ScreenVertex &b = screen[i];
            const ScreenVertex &c = screen[i + 1];
            float area2 = (b.x - a.x) * (c.y - a.y) -
                          (c.x - a.x) * (b.y - a.y);
            if (area2 == 0.0f)
                continue; // degenerate
            if (area2 > 0.0f && !obj.two_sided)
                continue; // backfacing
            if (pass == Pass::Texture)
                ++stats.triangles_drawn;
            rasterizeTriangle(a, b, c, pass, stats);
        }
    }
}

void
Rasterizer::rasterizeTriangle(const ScreenVertex &a, const ScreenVertex &b,
                              const ScreenVertex &c, Pass pass,
                              FrameStats &stats)
{
    // Screen-space plane gradients for the affine quantities 1/w, u/w,
    // v/w and z. For f with values f0,f1,f2 at the vertices:
    //   df/dx = ((f1-f0)(y2-y0) - (f2-f0)(y1-y0)) / area2
    //   df/dy = ((f2-f0)(x1-x0) - (f1-f0)(x2-x0)) / area2
    const float x10 = b.x - a.x, y10 = b.y - a.y;
    const float x20 = c.x - a.x, y20 = c.y - a.y;
    const float area2 = x10 * y20 - x20 * y10;
    if (area2 == 0.0f)
        return;
    // The plane-equation gradients are exact for either winding (the
    // sign cancels between numerator and area).
    const float inv_area = 1.0f / area2;

    auto gradX = [&](float f0, float f1, float f2) {
        return ((f1 - f0) * y20 - (f2 - f0) * y10) * inv_area;
    };
    auto gradY = [&](float f0, float f1, float f2) {
        return ((f2 - f0) * x10 - (f1 - f0) * x20) * inv_area;
    };

    const float wx = gradX(a.inv_w, b.inv_w, c.inv_w);
    const float wy = gradY(a.inv_w, b.inv_w, c.inv_w);
    const float ux = gradX(a.u_ow, b.u_ow, c.u_ow);
    const float uy = gradY(a.u_ow, b.u_ow, c.u_ow);
    const float vx = gradX(a.v_ow, b.v_ow, c.v_ow);
    const float vy = gradY(a.v_ow, b.v_ow, c.v_ow);
    const float zx = gradX(a.z, b.z, c.z);
    const float zy = gradY(a.z, b.z, c.z);

    const ScreenVertex *verts[3] = {&a, &b, &c};

    float ymin = std::min({a.y, b.y, c.y});
    float ymax = std::max({a.y, b.y, c.y});
    int y_start = std::max(0, static_cast<int>(std::ceil(ymin - 0.5f)));
    int y_end = std::min(height_ - 1,
                         static_cast<int>(std::floor(ymax - 0.5f)));

    const bool shade = framebuffer_ != nullptr;
    const bool prepass_filter = z_prepass_ && pass == Pass::Texture;
    Framebuffer *depth_fb =
        framebuffer_ ? framebuffer_ : internal_fb_.get();

    for (int py = y_start; py <= y_end; ++py) {
        const float yc = static_cast<float>(py) + 0.5f;

        // Find the span [xl, xr) from edge crossings at this scanline.
        float xl = std::numeric_limits<float>::max();
        float xr = std::numeric_limits<float>::lowest();
        for (int e = 0; e < 3; ++e) {
            const ScreenVertex &p = *verts[e];
            const ScreenVertex &q = *verts[(e + 1) % 3];
            if ((p.y <= yc && q.y > yc) || (q.y <= yc && p.y > yc)) {
                float s = (yc - p.y) / (q.y - p.y);
                float x = p.x + (q.x - p.x) * s;
                xl = std::min(xl, x);
                xr = std::max(xr, x);
            }
        }
        if (xl >= xr)
            continue;

        int px_start = std::max(0, static_cast<int>(std::ceil(xl - 0.5f)));
        int px_end = std::min(width_ - 1,
                              static_cast<int>(std::ceil(xr - 0.5f)) - 1);
        if (px_start > px_end)
            continue;

        // Evaluate the affine attributes at the first pixel center from
        // the plane equations, then step incrementally across the span.
        const float dx0 = static_cast<float>(px_start) + 0.5f - a.x;
        const float dy0 = yc - a.y;
        float W = a.inv_w + wx * dx0 + wy * dy0;
        float U = a.u_ow + ux * dx0 + uy * dy0;
        float V = a.v_ow + vx * dx0 + vy * dy0;
        float Z = a.z + zx * dx0 + zy * dy0;

        for (int px = px_start; px <= px_end;
             ++px, W += wx, U += ux, V += vx, Z += zx) {
            if (W <= 0.0f)
                continue; // numerical guard; near clip keeps w positive
            const float w = 1.0f / W;
            if (pass == Pass::DepthOnly) {
                depth_fb->depthOnly(px, py, Z);
                continue;
            }
            if (prepass_filter && !depth_fb->depthMatches(px, py, Z))
                continue; // occluded: skip the texture fetch entirely

            const float u = U * w;
            const float v = V * w;

            // Exact screen-space derivatives of the texel coordinates:
            // d(u)/dx = (Ux - u*Wx) / W, scaled to base-level texels.
            const float dudx = (ux - u * wx) * w * tex_width_;
            const float dvdx = (vx - v * wx) * w * tex_height_;
            const float dudy = (uy - u * wy) * w * tex_width_;
            const float dvdy = (vy - v * wy) * w * tex_height_;
            const float rho2 = std::max(dudx * dudx + dvdx * dvdx,
                                        dudy * dudy + dvdy * dvdy);
            // lambda = log2(sqrt(rho2)) = 0.5 * log2(rho2)
            const float lambda =
                rho2 > 0.0f ? 0.5f * std::log2(rho2) : -16.0f;

            sampler_.beginPixel(static_cast<uint32_t>(px),
                                static_cast<uint32_t>(py));
            const uint32_t color = sampler_.sample(u, v, lambda);
            ++stats.pixels_textured;
            if (shade)
                framebuffer_->shade(px, py, Z, color);
        }
        // One batch per scanline keeps spans cache-resident in the sink
        // while preserving left-to-right, top-to-bottom event order.
        sampler_.flushBatch();
    }
}

} // namespace mltc
