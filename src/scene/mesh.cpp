#include "scene/mesh.hpp"

namespace mltc {

Aabb
Mesh::bounds() const
{
    Aabb box;
    for (const auto &v : vertices)
        box.extend(v.position);
    return box;
}

Mesh
makeQuadXZ(float size_x, float size_z, float uv_repeat_x, float uv_repeat_z)
{
    Mesh m;
    float hx = size_x * 0.5f, hz = size_z * 0.5f;
    m.vertices = {
        {{-hx, 0.0f, -hz}, {0.0f, 0.0f}},
        {{hx, 0.0f, -hz}, {uv_repeat_x, 0.0f}},
        {{hx, 0.0f, hz}, {uv_repeat_x, uv_repeat_z}},
        {{-hx, 0.0f, hz}, {0.0f, uv_repeat_z}},
    };
    // Wound so the face normal points +Y (visible from above).
    m.indices = {0, 2, 1, 0, 3, 2};
    return m;
}

Mesh
makeQuadXY(float size_x, float size_y, float uv_repeat_x, float uv_repeat_y)
{
    Mesh m;
    float hx = size_x * 0.5f;
    m.vertices = {
        {{-hx, 0.0f, 0.0f}, {0.0f, uv_repeat_y}},
        {{hx, 0.0f, 0.0f}, {uv_repeat_x, uv_repeat_y}},
        {{hx, size_y, 0.0f}, {uv_repeat_x, 0.0f}},
        {{-hx, size_y, 0.0f}, {0.0f, 0.0f}},
    };
    m.indices = {0, 1, 2, 0, 2, 3};
    return m;
}

Mesh
makeBox(float sx, float sy, float sz, float uv_per_unit)
{
    Mesh m;
    float hx = sx * 0.5f, hz = sz * 0.5f;
    float ux = sx * uv_per_unit;
    float uy = sy * uv_per_unit;
    float uz = sz * uv_per_unit;

    auto addFace = [&m](Vec3 a, Vec3 b, Vec3 c, Vec3 d, float uu, float vv) {
        uint32_t base = static_cast<uint32_t>(m.vertices.size());
        m.vertices.push_back({a, {0.0f, vv}});
        m.vertices.push_back({b, {uu, vv}});
        m.vertices.push_back({c, {uu, 0.0f}});
        m.vertices.push_back({d, {0.0f, 0.0f}});
        for (uint32_t i : {0u, 1u, 2u, 0u, 2u, 3u})
            m.indices.push_back(base + i);
    };

    // Four side walls, then the top.
    addFace({-hx, 0, hz}, {hx, 0, hz}, {hx, sy, hz}, {-hx, sy, hz}, ux, uy);
    addFace({hx, 0, hz}, {hx, 0, -hz}, {hx, sy, -hz}, {hx, sy, hz}, uz, uy);
    addFace({hx, 0, -hz}, {-hx, 0, -hz}, {-hx, sy, -hz}, {hx, sy, -hz}, ux, uy);
    addFace({-hx, 0, -hz}, {-hx, 0, hz}, {-hx, sy, hz}, {-hx, sy, -hz}, uz, uy);
    addFace({-hx, sy, hz}, {hx, sy, hz}, {hx, sy, -hz}, {-hx, sy, -hz}, ux, uz);
    return m;
}

Mesh
makeGroundGrid(float extent, int cells, float uv_repeat)
{
    Mesh m;
    if (cells < 1)
        cells = 1;
    float step = extent / static_cast<float>(cells);
    float uv_step = uv_repeat / static_cast<float>(cells);
    float half = extent * 0.5f;
    for (int j = 0; j <= cells; ++j)
        for (int i = 0; i <= cells; ++i) {
            float x = -half + static_cast<float>(i) * step;
            float z = -half + static_cast<float>(j) * step;
            m.vertices.push_back(
                {{x, 0.0f, z},
                 {static_cast<float>(i) * uv_step,
                  static_cast<float>(j) * uv_step}});
        }
    auto vid = [cells](int i, int j) {
        return static_cast<uint32_t>(j * (cells + 1) + i);
    };
    for (int j = 0; j < cells; ++j)
        for (int i = 0; i < cells; ++i) {
            // Wound so the face normal points +Y (visible from above).
            for (uint32_t idx : {vid(i, j), vid(i + 1, j + 1), vid(i + 1, j),
                                 vid(i, j), vid(i, j + 1), vid(i + 1, j + 1)})
                m.indices.push_back(idx);
        }
    return m;
}

Mesh
makeGabledRoof(float sx, float sz, float base_y, float ridge_y,
               float uv_repeat)
{
    Mesh m;
    float hx = sx * 0.5f, hz = sz * 0.5f;
    auto addSlope = [&](Vec3 a, Vec3 b, Vec3 c, Vec3 d) {
        uint32_t base = static_cast<uint32_t>(m.vertices.size());
        m.vertices.push_back({a, {0.0f, uv_repeat}});
        m.vertices.push_back({b, {uv_repeat, uv_repeat}});
        m.vertices.push_back({c, {uv_repeat, 0.0f}});
        m.vertices.push_back({d, {0.0f, 0.0f}});
        for (uint32_t i : {0u, 1u, 2u, 0u, 2u, 3u})
            m.indices.push_back(base + i);
    };
    // Two slopes meeting at the ridge running along X.
    addSlope({-hx, base_y, hz}, {hx, base_y, hz}, {hx, ridge_y, 0.0f},
             {-hx, ridge_y, 0.0f});
    addSlope({hx, base_y, -hz}, {-hx, base_y, -hz}, {-hx, ridge_y, 0.0f},
             {hx, ridge_y, 0.0f});
    // Gable end triangles.
    uint32_t base = static_cast<uint32_t>(m.vertices.size());
    m.vertices.push_back({{-hx, base_y, hz}, {0.0f, uv_repeat}});
    m.vertices.push_back({{-hx, base_y, -hz}, {uv_repeat, uv_repeat}});
    m.vertices.push_back({{-hx, ridge_y, 0.0f}, {uv_repeat * 0.5f, 0.0f}});
    m.vertices.push_back({{hx, base_y, -hz}, {0.0f, uv_repeat}});
    m.vertices.push_back({{hx, base_y, hz}, {uv_repeat, uv_repeat}});
    m.vertices.push_back({{hx, ridge_y, 0.0f}, {uv_repeat * 0.5f, 0.0f}});
    // Gable winding order chosen so normals point outward (-X / +X).
    for (uint32_t i : {0u, 2u, 1u, 3u, 5u, 4u})
        m.indices.push_back(base + i);
    return m;
}

void
appendMesh(Mesh &dst, const Mesh &src)
{
    uint32_t base = static_cast<uint32_t>(dst.vertices.size());
    dst.vertices.insert(dst.vertices.end(), src.vertices.begin(),
                        src.vertices.end());
    dst.indices.reserve(dst.indices.size() + src.indices.size());
    for (uint32_t i : src.indices)
        dst.indices.push_back(base + i);
}

void
transformMesh(Mesh &mesh, const Mat4 &transform)
{
    for (auto &v : mesh.vertices)
        v.position = transform.transformPoint(v.position);
}

} // namespace mltc
