#include "scene/camera_path.hpp"

#include <cmath>

namespace mltc {

namespace {

Vec3
catmullRom(Vec3 p0, Vec3 p1, Vec3 p2, Vec3 p3, float t)
{
    float t2 = t * t;
    float t3 = t2 * t;
    return (p1 * 2.0f + (p2 - p0) * t +
            (p0 * 2.0f - p1 * 5.0f + p2 * 4.0f - p3) * t2 +
            (p1 * 3.0f - p0 - p2 * 3.0f + p3) * t3) *
           0.5f;
}

} // namespace

void
CameraPath::addKey(Vec3 eye, Vec3 target)
{
    keys_.push_back({eye, target});
}

CameraPose
CameraPath::sample(float t) const
{
    if (keys_.empty())
        return {};
    if (keys_.size() == 1)
        return keys_[0];

    t = clampf(t, 0.0f, 1.0f);
    float ft = t * static_cast<float>(keys_.size() - 1);
    int seg = static_cast<int>(ft);
    int last = static_cast<int>(keys_.size()) - 1;
    if (seg >= last)
        seg = last - 1;
    float local = ft - static_cast<float>(seg);

    auto key = [&](int i) -> const CameraPose & {
        if (i < 0) i = 0;
        if (i > last) i = last;
        return keys_[static_cast<size_t>(i)];
    };

    const CameraPose &k0 = key(seg - 1);
    const CameraPose &k1 = key(seg);
    const CameraPose &k2 = key(seg + 1);
    const CameraPose &k3 = key(seg + 2);

    return {catmullRom(k0.eye, k1.eye, k2.eye, k3.eye, local),
            catmullRom(k0.target, k1.target, k2.target, k3.target, local)};
}

} // namespace mltc
