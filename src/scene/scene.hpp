/**
 * @file
 * Scene container: textured objects with world transforms and cached
 * world-space bounds, plus frustum culling (the ISM's "object-space
 * visibility culling" stage we substitute).
 */
#ifndef MLTC_SCENE_SCENE_HPP
#define MLTC_SCENE_SCENE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/frustum.hpp"
#include "geom/mat4.hpp"
#include "scene/mesh.hpp"
#include "texture/tiled_layout.hpp"

namespace mltc {

/** One renderable: shared mesh + transform + texture binding. */
struct SceneObject
{
    MeshPtr mesh;
    Mat4 transform = Mat4::identity();
    TextureId texture = 0;
    Aabb world_bounds; ///< cached; filled by Scene::addObject
    std::string name;
    bool two_sided = false; ///< rasterize both windings (billboards)
    /**
     * Optional second texture layer (detail map / lightmap), rendered
     * as an additional pass per 1998 multi-pass multitexturing. The
     * paper's §4 calls out multi-texture hardware as a driver of
     * intra-frame texture locality.
     */
    TextureId detail_texture = 0;
    float detail_uv_scale = 8.0f; ///< uv multiplier for the detail pass
};

/** A scene: a flat list of objects (no hierarchy needed here). */
class Scene
{
  public:
    Scene() = default;

    /**
     * Add an object; computes and caches its world bounds.
     * @return index of the new object.
     */
    size_t addObject(MeshPtr mesh, const Mat4 &transform, TextureId texture,
                     std::string name = {}, bool two_sided = false);

    const std::vector<SceneObject> &objects() const { return objects_; }

    /** Mutable object access (e.g. to attach detail textures). */
    SceneObject &object(size_t index) { return objects_[index]; }

    /** Total triangles over all objects. */
    uint64_t triangleCount() const;

    /** World bounds of the whole scene. */
    Aabb bounds() const;

    /**
     * Indices of objects at least partially inside @p frustum
     * (object-space culling).
     */
    std::vector<size_t> visibleObjects(const Frustum &frustum) const;

  private:
    std::vector<SceneObject> objects_;
};

} // namespace mltc

#endif // MLTC_SCENE_SCENE_HPP
