#include "scene/scene.hpp"

namespace mltc {

size_t
Scene::addObject(MeshPtr mesh, const Mat4 &transform, TextureId texture,
                 std::string name, bool two_sided)
{
    SceneObject obj;
    obj.mesh = std::move(mesh);
    obj.transform = transform;
    obj.texture = texture;
    obj.name = std::move(name);
    obj.two_sided = two_sided;
    // World bounds: transform the object-space AABB corners (conservative).
    Aabb local = obj.mesh->bounds();
    if (!local.empty())
        for (int i = 0; i < 8; ++i)
            obj.world_bounds.extend(transform.transformPoint(local.corner(i)));
    objects_.push_back(std::move(obj));
    return objects_.size() - 1;
}

uint64_t
Scene::triangleCount() const
{
    uint64_t total = 0;
    for (const auto &o : objects_)
        total += o.mesh->triangleCount();
    return total;
}

Aabb
Scene::bounds() const
{
    Aabb box;
    for (const auto &o : objects_)
        box.extend(o.world_bounds);
    return box;
}

std::vector<size_t>
Scene::visibleObjects(const Frustum &frustum) const
{
    std::vector<size_t> out;
    out.reserve(objects_.size());
    for (size_t i = 0; i < objects_.size(); ++i)
        if (frustum.intersects(objects_[i].world_bounds))
            out.push_back(i);
    return out;
}

} // namespace mltc
