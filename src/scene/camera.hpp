/**
 * @file
 * Perspective camera: pose + projection, with cached matrices.
 */
#ifndef MLTC_SCENE_CAMERA_HPP
#define MLTC_SCENE_CAMERA_HPP

#include "geom/frustum.hpp"
#include "geom/mat4.hpp"

namespace mltc {

/** Perspective camera; paper experiments use 1024x768. */
class Camera
{
  public:
    /**
     * @param fovy_radians vertical field of view
     * @param aspect width / height
     * @param z_near near plane (> 0)
     * @param z_far far plane (> z_near)
     */
    Camera(float fovy_radians, float aspect, float z_near, float z_far);

    /** Place the camera at @p eye looking at @p target. */
    void lookAt(Vec3 eye, Vec3 target, Vec3 up = {0.0f, 1.0f, 0.0f});

    const Mat4 &view() const { return view_; }
    const Mat4 &projection() const { return proj_; }
    const Mat4 &viewProjection() const { return view_proj_; }
    const Frustum &frustum() const { return frustum_; }

    Vec3 eye() const { return eye_; }
    float nearPlane() const { return z_near_; }
    float farPlane() const { return z_far_; }

  private:
    Mat4 proj_;
    Mat4 view_;
    Mat4 view_proj_;
    Frustum frustum_;
    Vec3 eye_;
    float z_near_;
    float z_far_;
};

} // namespace mltc

#endif // MLTC_SCENE_CAMERA_HPP
