#include "scene/camera.hpp"

namespace mltc {

Camera::Camera(float fovy_radians, float aspect, float z_near, float z_far)
    : proj_(Mat4::perspective(fovy_radians, aspect, z_near, z_far)),
      view_(Mat4::identity()), view_proj_(proj_), frustum_(view_proj_),
      z_near_(z_near), z_far_(z_far)
{
}

void
Camera::lookAt(Vec3 eye, Vec3 target, Vec3 up)
{
    eye_ = eye;
    view_ = Mat4::lookAt(eye, target, up);
    view_proj_ = proj_ * view_;
    frustum_ = Frustum(view_proj_);
}

} // namespace mltc
