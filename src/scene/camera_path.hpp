/**
 * @file
 * Scripted camera animation: Catmull-Rom interpolated keyframes, the
 * substitute for the paper's scripted Village walk-through and City
 * fly-through (§3.1).
 */
#ifndef MLTC_SCENE_CAMERA_PATH_HPP
#define MLTC_SCENE_CAMERA_PATH_HPP

#include <vector>

#include "geom/vec.hpp"

namespace mltc {

/** Camera pose at one instant. */
struct CameraPose
{
    Vec3 eye;
    Vec3 target;
};

/**
 * Keyframed camera path. Sampling at t in [0, 1] interpolates eye and
 * target independently with centripetal-free uniform Catmull-Rom splines
 * (endpoints clamped), giving the smooth incremental viewpoint motion the
 * paper's inter-frame locality analysis assumes.
 */
class CameraPath
{
  public:
    CameraPath() = default;

    /** Append a keyframe. */
    void addKey(Vec3 eye, Vec3 target);

    /** Number of keyframes. */
    size_t keyCount() const { return keys_.size(); }

    /**
     * Pose at normalised time @p t in [0, 1] (clamped). Requires at
     * least one keyframe.
     */
    CameraPose sample(float t) const;

    /** Pose at frame @p frame of a @p total_frames animation. */
    CameraPose
    atFrame(int frame, int total_frames) const
    {
        float denom = static_cast<float>(total_frames > 1 ? total_frames - 1 : 1);
        return sample(static_cast<float>(frame) / denom);
    }

  private:
    std::vector<CameraPose> keys_;
};

} // namespace mltc

#endif // MLTC_SCENE_CAMERA_PATH_HPP
