/**
 * @file
 * Triangle meshes with texture coordinates, plus the primitive builders
 * the procedural workloads are assembled from.
 */
#ifndef MLTC_SCENE_MESH_HPP
#define MLTC_SCENE_MESH_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/mat4.hpp"
#include "geom/vec.hpp"

namespace mltc {

/** One mesh vertex: object-space position and texture coordinate. */
struct MeshVertex
{
    Vec3 position;
    Vec2 uv;
};

/** Indexed triangle mesh. */
struct Mesh
{
    std::vector<MeshVertex> vertices;
    std::vector<uint32_t> indices; ///< 3 per triangle

    /** Number of triangles. */
    size_t triangleCount() const { return indices.size() / 3; }

    /** Object-space bounding box. */
    Aabb bounds() const;
};

/** Shared immutable mesh handle (objects commonly share geometry). */
using MeshPtr = std::shared_ptr<const Mesh>;

/**
 * Unit quad in the XZ plane, centred at origin, facing +Y, with uv
 * repeated @p uv_repeat times across each axis.
 */
Mesh makeQuadXZ(float size_x, float size_z, float uv_repeat_x,
                float uv_repeat_z);

/** Vertical quad in the XY plane facing +Z (billboards, walls). */
Mesh makeQuadXY(float size_x, float size_y, float uv_repeat_x,
                float uv_repeat_y);

/**
 * Axis-aligned box spanning [-sx/2, sx/2] x [0, sy] x [-sz/2, sz/2].
 * Side faces map uv with @p uv_per_unit texture repeats per world unit;
 * the top face likewise. The bottom face is omitted (never visible in
 * the workloads).
 */
Mesh makeBox(float sx, float sy, float sz, float uv_per_unit);

/**
 * Ground grid of quads (subdividing improves frustum-clip behaviour for
 * very large ground planes), uv repeated @p uv_repeat times across the
 * whole extent.
 */
Mesh makeGroundGrid(float extent, int cells, float uv_repeat);

/**
 * Gabled roof (two sloped quads) spanning a sx x sz footprint at height
 * @p base_y rising to @p ridge_y.
 */
Mesh makeGabledRoof(float sx, float sz, float base_y, float ridge_y,
                    float uv_repeat);

/** Append @p src to @p dst (indices rebased). */
void appendMesh(Mesh &dst, const Mesh &src);

/** Transform all vertex positions of @p mesh by @p transform in place. */
void transformMesh(Mesh &mesh, const Mat4 &transform);

} // namespace mltc

#endif // MLTC_SCENE_MESH_HPP
