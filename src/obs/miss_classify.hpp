/**
 * @file
 * 3C miss classification (Hill's compulsory / capacity / conflict
 * taxonomy) with per-texture / per-MIP-level attribution, the lens
 * Mosaic-style demand attribution gives a memory system: *where* does
 * miss traffic come from and *what kind* of miss is it.
 *
 * Two shadow models run beside the real cache, fed the identical
 * access stream:
 *
 *  - an infinite cache (a seen-set) — a miss on a never-seen unit is
 *    **compulsory** (cold): no cache of any size avoids it;
 *  - a fully-associative LRU cache of the real cache's capacity — a
 *    real miss the shadow *hits* is **conflict** (for the
 *    set-associative L1: set conflicts; for the fully-associative
 *    clock-replaced L2: replacement-policy losses vs LRU), and a real
 *    miss the shadow also misses is **capacity**: the working set
 *    plainly exceeds the cache.
 *
 * The unit key (what "seen" means) and the shadow key (what occupies
 * LRU capacity) are distinct so the L2 can classify at sector
 * granularity while shadowing at block granularity (the allocation
 * unit); for the L1 both are the line key.
 *
 * Classifier state is part of simulator state: it is fed from the
 * access path and serialized in CacheSim checkpoints, so a resumed run
 * classifies bit-identically to a straight one.
 */
#ifndef MLTC_OBS_MISS_CLASSIFY_HPP
#define MLTC_OBS_MISS_CLASSIFY_HPP

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/serializer.hpp"

namespace mltc {

/** Hill's 3C miss classes. */
enum class MissClass : uint8_t { Compulsory = 0, Capacity = 1, Conflict = 2 };

/** Stable lowercase name of @p c ("compulsory"/"capacity"/"conflict"). */
const char *missClassName(MissClass c);

/** Per-class miss counts. */
struct MissClassCounts
{
    uint64_t compulsory = 0;
    uint64_t capacity = 0;
    uint64_t conflict = 0;

    uint64_t total() const { return compulsory + capacity + conflict; }

    void
    add(MissClass c)
    {
        switch (c) {
          case MissClass::Compulsory: ++compulsory; break;
          case MissClass::Capacity: ++capacity; break;
          case MissClass::Conflict: ++conflict; break;
        }
    }
};

/** One attribution row: misses charged to a (texture, MIP) pair. */
struct MissAttributionRow
{
    uint32_t tex = 0;
    uint32_t mip = 0;
    MissClassCounts counts;
    uint64_t bytes = 0; ///< host download traffic those misses caused
};

/**
 * Fully-associative LRU shadow cache (tags only). Deterministic and
 * serializable; capacity 0 disables it (every access reports a miss).
 */
class ShadowLru
{
  public:
    explicit ShadowLru(uint64_t capacity) : capacity_(capacity) {}

    /** Touch @p key: true on hit; on miss insert + evict LRU. */
    bool access(uint64_t key);

    uint64_t size() const { return order_.size(); }
    uint64_t capacity() const { return capacity_; }

    void save(SnapshotWriter &w) const;
    void load(SnapshotReader &r);

  private:
    uint64_t capacity_;
    std::list<uint64_t> order_; ///< front = MRU, back = LRU
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where_;
};

/** The classifier: shadow models + counters + attribution tables. */
class MissClassifier
{
  public:
    /** @param shadow_capacity real cache capacity in allocation units. */
    explicit MissClassifier(uint64_t shadow_capacity)
        : shadow_(shadow_capacity)
    {
    }

    /**
     * Observe one access (hits included — the shadow LRU must see the
     * full reference stream to stay honest).
     *
     * @param unit_key identity of the referenced unit (line / sector)
     * @param shadow_key identity of its allocation unit in the shadow
     * @param real_hit whether the real cache hit
     * @param tex texture id, @param mip MIP level (attribution)
     * @param miss_bytes host bytes this miss cost (attribution)
     * @return the class when the real cache missed; nullopt on a hit
     */
    std::optional<MissClass> access(uint64_t unit_key, uint64_t shadow_key,
                                    bool real_hit, uint32_t tex,
                                    uint32_t mip, uint64_t miss_bytes);

    /** Classified miss totals since construction. */
    const MissClassCounts &totals() const { return totals_; }

    /** Distinct units ever referenced (the compulsory frontier). */
    uint64_t unitsSeen() const { return seen_.size(); }

    /** Attribution rows ordered by (tex, mip). */
    std::vector<MissAttributionRow> attributionRows() const;

    /**
     * The @p n heaviest textures by attributed miss traffic (bytes,
     * tie-broken by miss count then id), MIP levels folded together.
     */
    std::vector<MissAttributionRow> topTexturesByTraffic(size_t n) const;

    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) on shadow-capacity
     *         skew, (Corrupt) on inconsistent content.
     */
    void load(SnapshotReader &r);

  private:
    struct Attribution
    {
        MissClassCounts counts;
        uint64_t bytes = 0;
    };

    ShadowLru shadow_;
    std::unordered_set<uint64_t> seen_;
    MissClassCounts totals_;
    /** Ordered so iteration (reports, snapshots) is deterministic. */
    std::map<std::pair<uint32_t, uint32_t>, Attribution> attribution_;

    // Consecutive same-key memos (hot path; see access()). Pure caches
    // of the maps above — never serialized, reset on load().
    bool have_last_ = false;
    uint64_t last_shadow_key_ = 0;
    uint64_t last_unit_key_ = 0;
    Attribution *last_attr_ = nullptr;
    uint32_t last_tex_ = 0;
    uint32_t last_mip_ = 0;
};

} // namespace mltc

#endif // MLTC_OBS_MISS_CLASSIFY_HPP
