#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include <sys/stat.h>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace mltc {

namespace {

void
copyTruncated(char *dst, size_t cap, const char *src)
{
    size_t i = 0;
    for (; src && src[i] && i + 1 < cap; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
}

} // namespace

FlightRecorder::FlightRecorder(const Config &config)
    : capacity_(config.capacity == 0 ? 1 : config.capacity),
      prefix_(config.prefix), registry_(config.registry),
      rings_(config.workers == 0 ? 1 : config.workers),
      t0_(std::chrono::steady_clock::now())
{
    for (Ring &ring : rings_)
        ring.slots = std::vector<Slot>(capacity_);
}

FlightRecorder::Ring &
FlightRecorder::ringForThisThread()
{
    // One ring per recording thread while rings last; extra threads
    // share rings round-robin (slot indices still interleave safely
    // through the atomic head, and the seqlock publish keeps readers
    // consistent).
    thread_local const FlightRecorder *t_owner = nullptr;
    thread_local uint32_t t_ring = 0;
    if (t_owner != this) {
        t_owner = this;
        t_ring = next_ring_.fetch_add(1, std::memory_order_relaxed) %
                 static_cast<uint32_t>(rings_.size());
    }
    return rings_[t_ring];
}

void
FlightRecorder::record(const char *name, const char *cat, uint8_t kind,
                       double value)
{
    Ring &ring = ringForThisThread();
    const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const uint64_t idx =
        ring.head.fetch_add(1, std::memory_order_relaxed) % capacity_;
    Slot &slot = ring.slots[idx];
    slot.seq.store(0, std::memory_order_release);
    FlightEvent &ev = slot.event;
    ev.seq = seq;
    ev.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - t0_)
                   .count();
    ev.kind = kind;
    copyTruncated(ev.name, sizeof ev.name, name);
    copyTruncated(ev.cat, sizeof ev.cat, cat);
    ev.value = value;
    slot.seq.store(seq, std::memory_order_release);
    if (kind == FlightEvent::Frame)
        last_frame_.store(static_cast<int64_t>(value),
                          std::memory_order_relaxed);
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::vector<FlightEvent> events;
    for (const Ring &ring : rings_) {
        for (const Slot &slot : ring.slots) {
            const uint64_t before =
                slot.seq.load(std::memory_order_acquire);
            if (before == 0)
                continue;
            FlightEvent ev = slot.event;
            if (slot.seq.load(std::memory_order_acquire) != before ||
                ev.seq != before)
                continue; // torn by a concurrent rewrite; skip
            events.push_back(ev);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const FlightEvent &a, const FlightEvent &b) {
                  return a.seq < b.seq;
              });
    return events;
}

std::string
FlightRecorder::dump(const std::string &reason)
{
    if (prefix_.empty())
        return "";
    try {
        // Collect per-ring so each ring maps onto its own Chrome tid.
        struct Tagged
        {
            uint32_t ring;
            FlightEvent event;
        };
        std::vector<Tagged> events;
        for (uint32_t w = 0; w < rings_.size(); ++w) {
            for (const Slot &slot : rings_[w].slots) {
                const uint64_t before =
                    slot.seq.load(std::memory_order_acquire);
                if (before == 0)
                    continue;
                FlightEvent ev = slot.event;
                if (slot.seq.load(std::memory_order_acquire) != before ||
                    ev.seq != before)
                    continue;
                events.push_back(Tagged{w, ev});
            }
        }
        std::sort(events.begin(), events.end(),
                  [](const Tagged &a, const Tagged &b) {
                      return a.event.seq < b.event.seq;
                  });

        // --- trace.json ------------------------------------------------
        JsonWriter w;
        w.beginObject().key("traceEvents").beginArray();
        w.beginObject()
            .kv("ph", "M")
            .kv("pid", 1)
            .kv("tid", 1)
            .kv("name", "process_name")
            .key("args")
            .beginObject()
            .kv("name", "mltc-flight")
            .endObject()
            .endObject();
        for (uint32_t r = 0; r < rings_.size(); ++r)
            w.beginObject()
                .kv("ph", "M")
                .kv("pid", 1)
                .kv("tid", static_cast<uint64_t>(r) + 1)
                .kv("name", "thread_name")
                .key("args")
                .beginObject()
                .kv("name", "flight-w" + std::to_string(r))
                .endObject()
                .endObject();
        // Per-tid clamp keeps timestamps monotonic even when several
        // threads shared a ring.
        std::map<uint32_t, int64_t> last_ts;
        int64_t max_ts = 0;
        for (const Tagged &t : events) {
            const uint32_t tid = t.ring + 1;
            int64_t ts = t.event.ts_us;
            auto it = last_ts.find(tid);
            if (it != last_ts.end() && ts < it->second)
                ts = it->second;
            last_ts[tid] = ts;
            max_ts = std::max(max_ts, ts);
            w.beginObject()
                .kv("ph", "i")
                .kv("pid", 1)
                .kv("tid", static_cast<uint64_t>(tid))
                .kv("ts", ts)
                .kv("s", "t")
                .kv("name", std::string(t.event.name))
                .kv("cat", std::string(t.event.cat))
                .key("args")
                .beginObject()
                .kv("value", t.event.value)
                .kv("seq", t.event.seq)
                .endObject()
                .endObject();
        }
        w.beginObject()
            .kv("ph", "i")
            .kv("pid", 1)
            .kv("tid", 1)
            .kv("ts", max_ts)
            .kv("s", "t")
            .kv("name", "flight.dumped")
            .kv("cat", "flight")
            .key("args")
            .beginObject()
            .kv("reason", reason)
            .kv("events", static_cast<uint64_t>(events.size()))
            .endObject()
            .endObject();
        w.endArray().kv("displayTimeUnit", "ms").endObject();

        // --- metrics.jsonl ---------------------------------------------
        JsonWriter m;
        m.beginObject()
            .kv("ts", logTimestampUtc())
            .key("flight")
            .beginObject()
            .kv("reason", reason)
            .kv("events", static_cast<uint64_t>(events.size()))
            .kv("recorded", recorded())
            .kv("capacity", capacity_)
            .kv("workers", static_cast<uint64_t>(rings_.size()))
            .endObject()
            .endObject();
        std::string metrics = m.str() + "\n";
        if (registry_ && registry_->enabled()) {
            auto guard = registry_->updateGuard();
            metrics += registry_->frameSnapshotJson(
                           last_frame_.load(std::memory_order_relaxed)) +
                       "\n";
        }

        // --- commit through the recovery ladder -------------------------
        const std::string dir = prefix_ + ".flight";
        if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
            throw Exception(ErrorCode::Io,
                            "flight: cannot create '" + dir +
                                "': " + std::strerror(errno));
        const std::string &trace = w.str();
        atomicWriteFile(dir + "/trace.json", trace.data(), trace.size(),
                        AtomicWriteOptions{});
        atomicWriteFile(dir + "/metrics.jsonl", metrics.data(),
                        metrics.size(), AtomicWriteOptions{});
        logInfo("flight: dumped " + std::to_string(events.size()) +
                " event(s) to " + dir + " (" + reason + ")");
        return dir;
    } catch (const Exception &e) {
        logWarn("flight: dump failed (" + reason +
                "): " + e.error().describe());
    } catch (const std::exception &e) {
        logWarn(std::string("flight: dump failed (") + reason +
                "): " + e.what());
    }
    return "";
}

void
installFlightRecorder(FlightRecorder *recorder)
{
    detail::g_flight.store(recorder, std::memory_order_release);
}

std::string
flightDump(const std::string &reason)
{
    // A dump trigger (quarantine, watchdog, audit, I/O storm) is
    // exactly when the profile-so-far matters: flush it next to the
    // bundle, best-effort, matching the metrics/trace snapshot
    // behaviour.
    if (StageProfiler *p = stageProfiler())
        p->flushOutputs();
    FlightRecorder *fr = flightRecorder();
    return fr ? fr->dump(reason) : "";
}

} // namespace mltc
