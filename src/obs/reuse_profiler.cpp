#include "obs/reuse_profiler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/json.hpp"

namespace mltc {

namespace {

/** SplitMix64 finalizer: the sampling / priority hash. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** fopen for writing with a typed error. */
std::FILE *
openOut(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw Exception(ErrorCode::Io, "cannot open '" + path + "' for write");
    return f;
}

/** fclose checking both the stream state and the close itself. */
void
closeOut(std::FILE *f, const std::string &path)
{
    const bool bad = std::ferror(f) != 0;
    if (std::fclose(f) != 0 || bad)
        throw Exception(ErrorCode::Io, "write to '" + path + "' failed");
}

/** "64 B" / "4.0 KB" / "2.0 MB" for capacity axis labels. */
std::string
humanBytes(uint64_t bytes)
{
    char buf[32];
    if (bytes < 1024)
        std::snprintf(buf, sizeof buf, "%" PRIu64 " B", bytes);
    else if (bytes < 1024ull * 1024)
        std::snprintf(buf, sizeof buf, "%.1f KB",
                      static_cast<double>(bytes) / 1024.0);
    else
        std::snprintf(buf, sizeof buf, "%.1f MB",
                      static_cast<double>(bytes) / (1024.0 * 1024.0));
    return buf;
}

} // namespace

// ---------------------------------------------------------------- tree

uint32_t
OrderStatTree::newNode(uint64_t key)
{
    Node node;
    node.key = key;
    node.prio = mix64(key);
    if (!free_.empty()) {
        const uint32_t n = free_.back();
        free_.pop_back();
        pool_[n] = node;
        return n;
    }
    pool_.push_back(node);
    return static_cast<uint32_t>(pool_.size() - 1);
}

void
OrderStatTree::freeNode(uint32_t n)
{
    free_.push_back(n);
}

void
OrderStatTree::pull(uint32_t n)
{
    Node &nd = pool_[n];
    nd.count = 1;
    if (nd.left != kNil)
        nd.count += pool_[nd.left].count;
    if (nd.right != kNil)
        nd.count += pool_[nd.right].count;
}

void
OrderStatTree::split(uint32_t n, uint64_t key, uint32_t &lo, uint32_t &hi)
{
    if (n == kNil) {
        lo = kNil;
        hi = kNil;
        return;
    }
    if (pool_[n].key <= key) {
        lo = n;
        split(pool_[n].right, key, pool_[n].right, hi);
        pull(n);
    } else {
        hi = n;
        split(pool_[n].left, key, lo, pool_[n].left);
        pull(n);
    }
}

uint32_t
OrderStatTree::merge(uint32_t a, uint32_t b)
{
    if (a == kNil)
        return b;
    if (b == kNil)
        return a;
    if (pool_[a].prio >= pool_[b].prio) {
        pool_[a].right = merge(pool_[a].right, b);
        pull(a);
        return a;
    }
    pool_[b].left = merge(a, pool_[b].left);
    pull(b);
    return b;
}

void
OrderStatTree::insert(uint64_t key)
{
    const uint32_t n = newNode(key);
    uint32_t lo, hi;
    split(root_, key, lo, hi);
    root_ = merge(merge(lo, n), hi);
}

void
OrderStatTree::erase(uint64_t key)
{
    // The caller guarantees presence, so subtree counts can be fixed up
    // on the way down without a parent stack.
    uint32_t *link = &root_;
    while (*link != kNil) {
        Node &nd = pool_[*link];
        if (nd.key == key) {
            const uint32_t dead = *link;
            *link = merge(nd.left, nd.right);
            freeNode(dead);
            return;
        }
        --nd.count;
        link = key < nd.key ? &nd.left : &nd.right;
    }
    throw Exception(ErrorCode::OutOfRange,
                    "OrderStatTree: erase of absent key");
}

uint64_t
OrderStatTree::countGreater(uint64_t key) const
{
    uint64_t count = 0;
    uint32_t n = root_;
    while (n != kNil) {
        const Node &nd = pool_[n];
        if (nd.key > key) {
            count += 1;
            if (nd.right != kNil)
                count += pool_[nd.right].count;
            n = nd.left;
        } else {
            n = nd.right;
        }
    }
    return count;
}

uint64_t
OrderStatTree::size() const
{
    return root_ == kNil ? 0 : pool_[root_].count;
}

void
OrderStatTree::clear()
{
    pool_.clear();
    free_.clear();
    root_ = kNil;
}

// ------------------------------------------------------------- tracker

ReuseDistanceTracker::ReuseDistanceTracker(double sample_rate)
    : rate_(sample_rate)
{
    if (!(rate_ > 0.0) || rate_ > 1.0)
        throw Exception(ErrorCode::BadArgument,
                        "reuse-distance sample rate must be in (0, 1]");
    // Spatial filter: track a key iff the top 32 bits of its hash fall
    // under rate * 2^32. rate 1.0 accepts everything (exact mode).
    threshold_ = static_cast<uint64_t>(rate_ * 4294967296.0);
}

bool
ReuseDistanceTracker::sampled(uint64_t key) const
{
    return (mix64(key) >> 32) < threshold_;
}

void
ReuseDistanceTracker::record(uint64_t key)
{
    ++recorded_;
    ++interval_accesses_;
    if (!sampled(key))
        return;
    ++sampled_total_;
    const uint64_t now = clock_++;
    auto it = last_.find(key);
    if (it == last_.end()) {
        ++cold_;
        ++interval_cold_;
        ++interval_distinct_;
        last_.emplace(key, now);
        tree_.insert(now);
        return;
    }
    const uint64_t prev = it->second;
    // Distinct sampled units touched since the previous reference,
    // rescaled to a full-stream distance under sampling.
    const uint64_t d_sampled = tree_.countGreater(prev);
    const uint64_t d =
        rate_ < 1.0 ? static_cast<uint64_t>(
                          std::llround(static_cast<double>(d_sampled) / rate_))
                    : d_sampled;
    if (d < kMaxTrackedDistance) {
        if (d >= hist_.size())
            hist_.resize(std::max<size_t>(d + 1, hist_.size() * 2), 0);
        ++hist_[d];
    } else {
        ++overflow_;
    }
    if (prev < interval_start_)
        ++interval_distinct_;
    tree_.erase(prev);
    tree_.insert(now);
    it->second = now;
}

WorkingSetRow
ReuseDistanceTracker::peekInterval(uint32_t frame_begin,
                                   uint32_t frame_end) const
{
    const double inv = 1.0 / rate_;
    WorkingSetRow row;
    row.frame_begin = frame_begin;
    row.frame_end = frame_end;
    row.accesses = interval_accesses_;
    row.distinct_units = static_cast<uint64_t>(
        std::llround(static_cast<double>(interval_distinct_) * inv));
    row.cold_units = static_cast<uint64_t>(
        std::llround(static_cast<double>(interval_cold_) * inv));
    return row;
}

WorkingSetRow
ReuseDistanceTracker::closeInterval(uint32_t frame_begin, uint32_t frame_end)
{
    const WorkingSetRow row = peekInterval(frame_begin, frame_end);
    interval_accesses_ = 0;
    interval_distinct_ = 0;
    interval_cold_ = 0;
    interval_start_ = clock_;
    return row;
}

uint64_t
ReuseDistanceTracker::totalAccesses() const
{
    return static_cast<uint64_t>(std::llround(
               static_cast<double>(sampled_total_) / rate_)) +
           repeats_;
}

uint64_t
ReuseDistanceTracker::distinctUnits() const
{
    return static_cast<uint64_t>(
        std::llround(static_cast<double>(cold_) / rate_));
}

uint64_t
ReuseDistanceTracker::coldAccesses() const
{
    return distinctUnits();
}

double
ReuseDistanceTracker::missRatio(uint64_t capacity_units) const
{
    const double total = static_cast<double>(sampled_total_) / rate_ +
                         static_cast<double>(repeats_);
    if (total <= 0.0)
        return 0.0;
    if (capacity_units == 0)
        return 1.0;
    // An access at reuse distance d hits any LRU cache with capacity
    // > d, so misses(C) = cold + all accesses with distance >= C.
    double misses =
        static_cast<double>(cold_) + static_cast<double>(overflow_);
    for (uint64_t d = capacity_units; d < hist_.size(); ++d)
        misses += static_cast<double>(hist_[d]);
    return (misses / rate_) / total;
}

std::vector<MrcPoint>
ReuseDistanceTracker::curve() const
{
    std::vector<MrcPoint> out;
    const uint64_t limit = std::max<uint64_t>(1, distinctUnits());
    for (uint64_t c = 1;; c <<= 1) {
        out.push_back({c, missRatio(c)});
        if (c >= limit || c > (1ull << 40))
            break;
    }
    return out;
}

namespace {
constexpr uint32_t kTrackerTag = snapTag("RDT ");
constexpr uint32_t kProfilerTag = snapTag("PROF");
} // namespace

void
ReuseDistanceTracker::save(SnapshotWriter &w) const
{
    w.section(kTrackerTag);
    w.f64(rate_);
    w.u64(clock_);
    // The map in sorted key order; the treap shape is a pure function
    // of the timestamp set, so the tree itself is not serialized.
    std::vector<std::pair<uint64_t, uint64_t>> live(last_.begin(),
                                                    last_.end());
    std::sort(live.begin(), live.end());
    w.u64(live.size());
    for (const auto &[key, t] : live) {
        w.u64(key);
        w.u64(t);
    }
    // Trim growth padding: hist_'s doubling capacity depends on access
    // order, and bit-identical resume requires canonical bytes.
    std::vector<uint64_t> hist = hist_;
    while (!hist.empty() && hist.back() == 0)
        hist.pop_back();
    w.u64Vec(hist);
    w.u64(overflow_);
    w.u64(cold_);
    w.u64(sampled_total_);
    w.u64(repeats_);
    w.u64(recorded_);
    w.u64(interval_accesses_);
    w.u64(interval_distinct_);
    w.u64(interval_cold_);
    w.u64(interval_start_);
}

void
ReuseDistanceTracker::load(SnapshotReader &r)
{
    r.expectSection(kTrackerTag, "ReuseDistanceTracker");
    const double rate = r.f64();
    if (rate != rate_)
        throw Exception(ErrorCode::VersionMismatch,
                        "ReuseDistanceTracker: snapshot sample rate " +
                            std::to_string(rate) +
                            " does not match the configured " +
                            std::to_string(rate_));
    clock_ = r.u64();
    const uint64_t live = r.u64();
    last_.clear();
    tree_.clear();
    last_.reserve(live);
    uint64_t prev_key = 0;
    for (uint64_t i = 0; i < live; ++i) {
        const uint64_t key = r.u64();
        const uint64_t t = r.u64();
        if (i > 0 && key <= prev_key)
            throw Exception(ErrorCode::Corrupt,
                            "ReuseDistanceTracker: live keys not "
                            "strictly increasing");
        if (t >= clock_)
            throw Exception(ErrorCode::Corrupt,
                            "ReuseDistanceTracker: timestamp beyond clock");
        prev_key = key;
        last_.emplace(key, t);
        tree_.insert(t);
    }
    r.u64Vec(hist_);
    overflow_ = r.u64();
    cold_ = r.u64();
    sampled_total_ = r.u64();
    repeats_ = r.u64();
    recorded_ = r.u64();
    interval_accesses_ = r.u64();
    interval_distinct_ = r.u64();
    interval_cold_ = r.u64();
    interval_start_ = r.u64();
}

// ----------------------------------------------------------------- cli

ReuseProfilerConfig
mrcFromCli(const CommandLine &cli)
{
    ReuseProfilerConfig cfg;
    cfg.mrc_out = cli.getString("mrc-out", "");
    cfg.heatmap_out = cli.getString("heatmap-out", "");
    cfg.enabled = cli.getFlag("mrc") || !cfg.mrc_out.empty() ||
                  !cfg.heatmap_out.empty();
    cfg.sample_rate = cli.getDouble("mrc-sample-rate", 1.0);
    if (!(cfg.sample_rate > 0.0) || cfg.sample_rate > 1.0)
        throw Exception(ErrorCode::BadArgument,
                        "--mrc-sample-rate must be in (0, 1]");
    const unsigned long interval = cli.getUnsigned("mrc-interval", 8);
    if (interval == 0)
        throw Exception(ErrorCode::BadArgument,
                        "--mrc-interval must be >= 1");
    cfg.interval_frames = static_cast<uint32_t>(interval);
    const unsigned long granule = cli.getUnsigned("heatmap-granule", 16);
    if (granule == 0 || (granule & (granule - 1)) != 0)
        throw Exception(ErrorCode::BadArgument,
                        "--heatmap-granule must be a power of two");
    cfg.tex_granule = static_cast<uint32_t>(granule);
    return cfg;
}

// ------------------------------------------------------------ profiler

ReuseProfiler::ReuseProfiler(const ReuseProfilerConfig &config)
    : cfg_(config), l1_(config.sample_rate), l2_(config.sample_rate)
{
    if (cfg_.screen_width > 0 && cfg_.screen_height > 0) {
        screen_.width = cfg_.screen_width;
        screen_.height = cfg_.screen_height;
        screen_.accesses.assign(
            static_cast<size_t>(screen_.width) * screen_.height, 0);
        screen_.misses.assign(
            static_cast<size_t>(screen_.width) * screen_.height, 0);
    }
}

void
ReuseProfiler::bindTexture(uint32_t tid, uint32_t w, uint32_t h)
{
    bound_tid_ = tid;
    bound_w_ = w;
    bound_h_ = h;
    bound_grid_ = nullptr;
    tex_dims_[tid] = {w, h};
}

HeatmapGrid &
ReuseProfiler::grid(uint32_t tid)
{
    HeatmapGrid &g = tex_grids_[tid];
    if (g.width == 0) {
        g.width = std::max(1u, (bound_w_ + cfg_.tex_granule - 1) /
                                   cfg_.tex_granule);
        g.height = std::max(1u, (bound_h_ + cfg_.tex_granule - 1) /
                                    cfg_.tex_granule);
        g.accesses.assign(static_cast<size_t>(g.width) * g.height, 0);
        g.misses.assign(static_cast<size_t>(g.width) * g.height, 0);
    }
    return g;
}

void
ReuseProfiler::bumpTexCell(uint32_t x, uint32_t y, uint32_t mip, bool miss)
{
    if (!bound_grid_)
        bound_grid_ = &grid(bound_tid_);
    // Fold MIP levels onto the base level: level-m texel (x, y) covers
    // base texels starting at (x << m, y << m).
    const uint32_t gx = std::min((x << mip) / cfg_.tex_granule,
                                 bound_grid_->width - 1);
    const uint32_t gy = std::min((y << mip) / cfg_.tex_granule,
                                 bound_grid_->height - 1);
    const size_t idx = static_cast<size_t>(gy) * bound_grid_->width + gx;
    ++bound_grid_->accesses[idx];
    if (miss)
        ++bound_grid_->misses[idx];
}

void
ReuseProfiler::onL1Access(uint64_t line_key, bool l1_hit, uint32_t x,
                          uint32_t y, uint32_t mip)
{
    l1_.record(line_key);
    bumpTexCell(x, y, mip, !l1_hit);
    if (!l1_hit && screen_.width > 0 && cur_px_ < screen_.width &&
        cur_py_ < screen_.height)
        ++screen_.accesses[static_cast<size_t>(cur_py_) * screen_.width +
                           cur_px_];
}

void
ReuseProfiler::onL2Sector(uint64_t sector_key, bool full_hit, uint32_t x,
                          uint32_t y, uint32_t mip)
{
    (void)x;
    (void)y;
    (void)mip;
    l2_seen_ = true;
    l2_.record(sector_key);
    if (!full_hit && screen_.width > 0 && cur_px_ < screen_.width &&
        cur_py_ < screen_.height)
        ++screen_.misses[static_cast<size_t>(cur_py_) * screen_.width +
                         cur_px_];
}

void
ReuseProfiler::endFrame(uint64_t frame_accesses)
{
    // Everything the simulator counted but the profiler did not record
    // is a coalesced / quad-deduplicated repeat: a distance-zero hit.
    accesses_seen_ += frame_accesses;
    const uint64_t recorded = l1_.recordedRaw();
    l1_.addRepeats(frame_accesses - (recorded - l1_record_mark_));
    l1_record_mark_ = recorded;
    ++frames_;
    if (frames_ - interval_begin_ >= cfg_.interval_frames) {
        // Close both streams so their interval clocks stay aligned even
        // if the L2 stream only appears later; empty L2 rows are simply
        // not exported.
        ws_l1_.push_back(l1_.closeInterval(interval_begin_, frames_));
        ws_l2_.push_back(l2_.closeInterval(interval_begin_, frames_));
        interval_begin_ = frames_;
    }
}

// -------------------------------------------------------------- export

std::vector<WorkingSetRow>
ReuseProfiler::spectrumRows(bool l2_stream) const
{
    std::vector<WorkingSetRow> rows = l2_stream ? ws_l2_ : ws_l1_;
    if (frames_ > interval_begin_) {
        const ReuseDistanceTracker &t = l2_stream ? l2_ : l1_;
        const WorkingSetRow tail = t.peekInterval(interval_begin_, frames_);
        if (tail.accesses > 0)
            rows.push_back(tail);
    }
    return rows;
}

void
ReuseProfiler::writeMrc(const std::string &base) const
{
    // MRC points.
    {
        const std::string path = base + ".csv";
        std::FILE *f = openOut(path);
        std::fprintf(f, "level,capacity_units,capacity_bytes,miss_ratio\n");
        for (const MrcPoint &p : l1_.curve())
            std::fprintf(f, "l1,%" PRIu64 ",%" PRIu64 ",%.6f\n",
                         p.capacity_units,
                         p.capacity_units * cfg_.l1_unit_bytes,
                         p.miss_ratio);
        if (l2_seen_) {
            for (const MrcPoint &p : l2_.curve())
                std::fprintf(f, "l2,%" PRIu64 ",%" PRIu64 ",%.6f\n",
                             p.capacity_units,
                             p.capacity_units * cfg_.l2_unit_bytes,
                             p.miss_ratio);
        }
        closeOut(f, path);
    }
    // Working-set spectra (closed intervals plus the open tail, so a
    // run shorter than one interval still reports a spectrum).
    {
        const std::string path = base + ".ws.csv";
        std::FILE *f = openOut(path);
        std::fprintf(f, "level,frame_begin,frame_end,accesses,"
                        "distinct_units,cold_units,working_set_bytes\n");
        const auto dump = [&](const char *level,
                              const std::vector<WorkingSetRow> &rows,
                              uint64_t unit_bytes) {
            for (const WorkingSetRow &row : rows)
                std::fprintf(f,
                             "%s,%u,%u,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                             ",%" PRIu64 "\n",
                             level, row.frame_begin, row.frame_end,
                             row.accesses, row.distinct_units,
                             row.cold_units,
                             row.distinct_units * unit_bytes);
        };
        dump("l1", spectrumRows(false), cfg_.l1_unit_bytes);
        if (l2_seen_)
            dump("l2", spectrumRows(true), cfg_.l2_unit_bytes);
        closeOut(f, path);
    }
    // Structured JSON (both, plus stream totals).
    {
        JsonWriter j;
        j.beginObject();
        j.kv("sample_rate", l1_.sampleRate());
        j.kv("frames", static_cast<uint64_t>(frames_));
        j.kv("interval_frames", static_cast<uint64_t>(cfg_.interval_frames));
        const auto stream = [&](const char *name,
                                const ReuseDistanceTracker &t,
                                const std::vector<WorkingSetRow> &rows,
                                uint64_t unit_bytes) {
            j.key(name);
            j.beginObject();
            j.kv("unit_bytes", unit_bytes);
            j.kv("accesses", t.totalAccesses());
            j.kv("distinct_units", t.distinctUnits());
            j.kv("cold_accesses", t.coldAccesses());
            j.key("mrc");
            j.beginArray();
            for (const MrcPoint &p : t.curve()) {
                j.beginObject();
                j.kv("capacity_units", p.capacity_units);
                j.kv("capacity_bytes", p.capacity_units * unit_bytes);
                j.kv("miss_ratio", p.miss_ratio);
                j.endObject();
            }
            j.endArray();
            j.key("working_set");
            j.beginArray();
            for (const WorkingSetRow &row : rows) {
                j.beginObject();
                j.kv("frame_begin", static_cast<uint64_t>(row.frame_begin));
                j.kv("frame_end", static_cast<uint64_t>(row.frame_end));
                j.kv("accesses", row.accesses);
                j.kv("distinct_units", row.distinct_units);
                j.kv("cold_units", row.cold_units);
                j.endObject();
            }
            j.endArray();
            j.endObject();
        };
        stream("l1", l1_, spectrumRows(false), cfg_.l1_unit_bytes);
        if (l2_seen_)
            stream("l2", l2_, spectrumRows(true), cfg_.l2_unit_bytes);
        j.endObject();
        const std::string path = base + ".json";
        std::FILE *f = openOut(path);
        std::fwrite(j.str().data(), 1, j.str().size(), f);
        std::fputc('\n', f);
        closeOut(f, path);
    }
}

namespace {

/** Log-scale a count grid into 8-bit gray (0 stays 0). */
std::vector<uint8_t>
logScale(const std::vector<uint64_t> &counts)
{
    uint64_t max = 0;
    for (uint64_t c : counts)
        max = std::max(max, c);
    std::vector<uint8_t> gray(counts.size(), 0);
    if (max == 0)
        return gray;
    const double denom = std::log1p(static_cast<double>(max));
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double v =
            std::log1p(static_cast<double>(counts[i])) / denom * 255.0;
        gray[i] = static_cast<uint8_t>(std::min(255.0, std::max(1.0, v)));
    }
    return gray;
}

/** Binary P5 PGM writer (throws Io; see util/ppm for the P6 cousin). */
void
writePgmOrThrow(const std::string &path, uint32_t w, uint32_t h,
                const std::vector<uint8_t> &gray)
{
    std::FILE *f = openOut(path);
    std::fprintf(f, "P5\n%u %u\n255\n", w, h);
    std::fwrite(gray.data(), 1, gray.size(), f);
    closeOut(f, path);
}

} // namespace

void
ReuseProfiler::writeHeatmaps(const std::string &base) const
{
    JsonWriter j;
    j.beginObject();
    j.kv("granule", static_cast<uint64_t>(cfg_.tex_granule));
    if (screen_.width > 0) {
        uint64_t l1_total = 0, l2_total = 0;
        for (uint64_t c : screen_.accesses)
            l1_total += c;
        for (uint64_t c : screen_.misses)
            l2_total += c;
        j.key("screen");
        j.beginObject();
        j.kv("width", static_cast<uint64_t>(screen_.width));
        j.kv("height", static_cast<uint64_t>(screen_.height));
        j.kv("l1_misses", l1_total);
        j.kv("l2_misses", l2_total);
        j.endObject();
        writePgmOrThrow(base + ".screen.pgm", screen_.width,
                        screen_.height, logScale(screen_.accesses));
        if (l2_seen_)
            writePgmOrThrow(base + ".screen_l2.pgm", screen_.width,
                            screen_.height, logScale(screen_.misses));
    } else {
        j.key("screen");
        j.nullValue();
    }
    j.key("textures");
    j.beginArray();
    for (const auto &[tid, g] : tex_grids_) {
        uint64_t accesses = 0, misses = 0;
        for (size_t i = 0; i < g.accesses.size(); ++i) {
            accesses += g.accesses[i];
            misses += g.misses[i];
        }
        // Hottest blocks first; the JSON carries the top slice so report
        // can rank without shipping every empty cell.
        std::vector<uint32_t> order(g.accesses.size());
        for (uint32_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) {
                      if (g.misses[a] != g.misses[b])
                          return g.misses[a] > g.misses[b];
                      if (g.accesses[a] != g.accesses[b])
                          return g.accesses[a] > g.accesses[b];
                      return a < b;
                  });
        constexpr size_t kTopBlocks = 256;
        j.beginObject();
        j.kv("tid", static_cast<uint64_t>(tid));
        j.kv("width", static_cast<uint64_t>(g.width));
        j.kv("height", static_cast<uint64_t>(g.height));
        j.kv("accesses", accesses);
        j.kv("misses", misses);
        j.key("blocks");
        j.beginArray();
        for (size_t i = 0; i < order.size() && i < kTopBlocks; ++i) {
            const uint32_t idx = order[i];
            if (g.accesses[idx] == 0)
                break;
            j.beginObject();
            j.kv("gx", static_cast<uint64_t>(idx % g.width));
            j.kv("gy", static_cast<uint64_t>(idx / g.width));
            j.kv("accesses", g.accesses[idx]);
            j.kv("misses", g.misses[idx]);
            j.endObject();
        }
        j.endArray();
        j.endObject();
        writePgmOrThrow(base + ".tex" + std::to_string(tid) + ".pgm",
                        g.width, g.height, logScale(g.misses));
    }
    j.endArray();
    j.endObject();
    const std::string path = base + ".json";
    std::FILE *f = openOut(path);
    std::fwrite(j.str().data(), 1, j.str().size(), f);
    std::fputc('\n', f);
    closeOut(f, path);
}

std::string
ReuseProfiler::asciiMrc(uint32_t plot_width) const
{
    std::string out;
    char buf[160];
    const auto plot = [&](const char *name, const ReuseDistanceTracker &t,
                          uint64_t unit_bytes) {
        std::snprintf(buf, sizeof buf,
                      "%s miss-ratio curve (unit %" PRIu64
                      " B, %" PRIu64 " accesses, %" PRIu64 " units)\n",
                      name, unit_bytes, t.totalAccesses(),
                      t.distinctUnits());
        out += buf;
        for (const MrcPoint &p : t.curve()) {
            const uint32_t bar = static_cast<uint32_t>(
                p.miss_ratio * static_cast<double>(plot_width) + 0.5);
            std::snprintf(buf, sizeof buf, "  %10s |",
                          humanBytes(p.capacity_units * unit_bytes).c_str());
            out += buf;
            for (uint32_t i = 0; i < plot_width; ++i)
                out += i < bar ? '#' : ' ';
            std::snprintf(buf, sizeof buf, "| %.4f\n", p.miss_ratio);
            out += buf;
        }
    };
    plot("L1", l1_, cfg_.l1_unit_bytes);
    if (l2_seen_) {
        out += '\n';
        plot("L2", l2_, cfg_.l2_unit_bytes);
    }
    return out;
}

// ------------------------------------------------------------ snapshot

void
ReuseProfiler::save(SnapshotWriter &w) const
{
    w.section(kProfilerTag);
    // Configuration fingerprint: resuming under different knobs would
    // silently skew every curve.
    w.f64(cfg_.sample_rate);
    w.u32(cfg_.interval_frames);
    w.u32(cfg_.tex_granule);
    w.u32(cfg_.screen_width);
    w.u32(cfg_.screen_height);
    l1_.save(w);
    l2_.save(w);
    w.u8(l2_seen_ ? 1 : 0);
    const auto rows = [&w](const std::vector<WorkingSetRow> &ws) {
        w.u64(ws.size());
        for (const WorkingSetRow &row : ws) {
            w.u32(row.frame_begin);
            w.u32(row.frame_end);
            w.u64(row.accesses);
            w.u64(row.distinct_units);
            w.u64(row.cold_units);
        }
    };
    rows(ws_l1_);
    rows(ws_l2_);
    w.u32(frames_);
    w.u32(interval_begin_);
    w.u64(accesses_seen_);
    w.u64(l1_record_mark_);
    w.u32(cur_px_);
    w.u32(cur_py_);
    w.u32(bound_tid_);
    w.u32(bound_w_);
    w.u32(bound_h_);
    w.u64(tex_dims_.size());
    for (const auto &[tid, dims] : tex_dims_) {
        w.u32(tid);
        w.u32(dims.first);
        w.u32(dims.second);
    }
    w.u64(tex_grids_.size());
    for (const auto &[tid, g] : tex_grids_) {
        w.u32(tid);
        w.u32(g.width);
        w.u32(g.height);
        w.u64Vec(g.accesses);
        w.u64Vec(g.misses);
    }
    if (screen_.width > 0) {
        w.u64Vec(screen_.accesses);
        w.u64Vec(screen_.misses);
    }
}

void
ReuseProfiler::load(SnapshotReader &r)
{
    r.expectSection(kProfilerTag, "ReuseProfiler");
    const double rate = r.f64();
    const uint32_t interval = r.u32();
    const uint32_t granule = r.u32();
    const uint32_t sw = r.u32();
    const uint32_t sh = r.u32();
    if (rate != cfg_.sample_rate || interval != cfg_.interval_frames ||
        granule != cfg_.tex_granule || sw != cfg_.screen_width ||
        sh != cfg_.screen_height)
        throw Exception(ErrorCode::VersionMismatch,
                        "ReuseProfiler: snapshot profiler configuration "
                        "does not match the configured profiler");
    l1_.load(r);
    l2_.load(r);
    l2_seen_ = r.u8() != 0;
    const auto rows = [&r](std::vector<WorkingSetRow> &ws) {
        const uint64_t n = r.u64();
        ws.clear();
        ws.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            WorkingSetRow row;
            row.frame_begin = r.u32();
            row.frame_end = r.u32();
            row.accesses = r.u64();
            row.distinct_units = r.u64();
            row.cold_units = r.u64();
            ws.push_back(row);
        }
    };
    rows(ws_l1_);
    rows(ws_l2_);
    frames_ = r.u32();
    interval_begin_ = r.u32();
    accesses_seen_ = r.u64();
    l1_record_mark_ = r.u64();
    cur_px_ = r.u32();
    cur_py_ = r.u32();
    bound_tid_ = r.u32();
    bound_w_ = r.u32();
    bound_h_ = r.u32();
    const uint64_t dims = r.u64();
    tex_dims_.clear();
    for (uint64_t i = 0; i < dims; ++i) {
        const uint32_t tid = r.u32();
        const uint32_t tw = r.u32();
        const uint32_t th = r.u32();
        tex_dims_[tid] = {tw, th};
    }
    const uint64_t grids = r.u64();
    tex_grids_.clear();
    bound_grid_ = nullptr;
    for (uint64_t i = 0; i < grids; ++i) {
        const uint32_t tid = r.u32();
        HeatmapGrid g;
        g.width = r.u32();
        g.height = r.u32();
        r.u64Vec(g.accesses);
        r.u64Vec(g.misses);
        const size_t cells = static_cast<size_t>(g.width) * g.height;
        if (g.accesses.size() != cells || g.misses.size() != cells)
            throw Exception(ErrorCode::Corrupt,
                            "ReuseProfiler: heatmap grid size mismatch");
        tex_grids_.emplace(tid, std::move(g));
    }
    if (screen_.width > 0) {
        r.u64Vec(screen_.accesses);
        r.u64Vec(screen_.misses);
        const size_t cells =
            static_cast<size_t>(screen_.width) * screen_.height;
        if (screen_.accesses.size() != cells ||
            screen_.misses.size() != cells)
            throw Exception(ErrorCode::Corrupt,
                            "ReuseProfiler: screen grid size mismatch");
    }
}

} // namespace mltc
