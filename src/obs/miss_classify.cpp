#include "obs/miss_classify.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mltc {

const char *
missClassName(MissClass c)
{
    switch (c) {
      case MissClass::Compulsory: return "compulsory";
      case MissClass::Capacity: return "capacity";
      case MissClass::Conflict: return "conflict";
    }
    return "?";
}

bool
ShadowLru::access(uint64_t key)
{
    if (capacity_ == 0)
        return false;
    auto it = where_.find(key);
    if (it != where_.end()) {
        order_.splice(order_.begin(), order_, it->second);
        return true;
    }
    if (order_.size() >= capacity_) {
        // Miss at capacity: evicting the LRU and inserting the new key
        // allocates nothing — recycle the LRU's list node (splice it to
        // the front and overwrite the key) and the hash node (extract,
        // rekey, reinsert). A thrashing stream otherwise pays an
        // alloc/free pair per access in each container.
        const uint64_t victim = order_.back();
        order_.splice(order_.begin(), order_, std::prev(order_.end()));
        order_.front() = key;
        auto node = where_.extract(victim);
        node.key() = key;
        node.mapped() = order_.begin();
        where_.insert(std::move(node));
    } else {
        order_.push_front(key);
        where_.emplace(key, order_.begin());
    }
    return false;
}

void
ShadowLru::save(SnapshotWriter &w) const
{
    w.u64(capacity_);
    // MRU-to-LRU order is the state; rebuild the index on load.
    std::vector<uint64_t> keys(order_.begin(), order_.end());
    w.u64Vec(keys);
}

void
ShadowLru::load(SnapshotReader &r)
{
    const uint64_t capacity = r.u64();
    if (capacity != capacity_)
        throw Exception(ErrorCode::VersionMismatch,
                        "ShadowLru: snapshot capacity " +
                            std::to_string(capacity) +
                            " does not match configured capacity " +
                            std::to_string(capacity_));
    std::vector<uint64_t> keys;
    r.u64Vec(keys);
    if (keys.size() > capacity_)
        throw Exception(ErrorCode::Corrupt,
                        "ShadowLru: snapshot holds more keys than its "
                        "capacity");
    order_.clear();
    where_.clear();
    for (uint64_t key : keys) {
        order_.push_back(key);
        auto it = std::prev(order_.end());
        if (!where_.emplace(key, it).second)
            throw Exception(ErrorCode::Corrupt,
                            "ShadowLru: duplicate key in snapshot");
    }
}

std::optional<MissClass>
MissClassifier::access(uint64_t unit_key, uint64_t shadow_key, bool real_hit,
                       uint32_t tex, uint32_t mip, uint64_t miss_bytes)
{
    // Both shadow models observe every access, hit or miss, so their
    // contents depend only on the reference stream — never on the real
    // cache's outcomes.
    //
    // Consecutive same-key memoization: the access stream has strong
    // run locality (the L2 classifier sees the same block for every
    // sector of an L1 tile walk), and a key equal to the immediately
    // preceding one is guaranteed at the shadow's MRU position — the
    // hit outcome and a splice-to-front are both identity operations,
    // so skip the hash lookups entirely. Pure caching: every outcome
    // and every byte of shadow state is identical to the unmemoized
    // path. The shadow memo is only valid when a shadow exists
    // (capacity 0 always misses, even on repeats).
    bool shadow_hit;
    if (have_last_ && shadow_key == last_shadow_key_ &&
        shadow_.capacity() > 0) {
        shadow_hit = true;
    } else {
        shadow_hit = shadow_.access(shadow_key);
        last_shadow_key_ = shadow_key;
    }
    bool first_touch;
    if (have_last_ && unit_key == last_unit_key_) {
        first_touch = false;
    } else {
        first_touch = seen_.insert(unit_key).second;
        last_unit_key_ = unit_key;
    }
    have_last_ = true;
    if (real_hit)
        return std::nullopt;

    MissClass c;
    if (first_touch)
        c = MissClass::Compulsory;
    else if (shadow_hit)
        c = MissClass::Conflict;
    else
        c = MissClass::Capacity;

    totals_.add(c);
    // The attribution row is a std::map walk; (tex, mip) repeats for
    // long runs of accesses, so cache the row pointer (std::map nodes
    // are stable across inserts).
    if (!last_attr_ || tex != last_tex_ || mip != last_mip_) {
        last_attr_ = &attribution_[{tex, mip}];
        last_tex_ = tex;
        last_mip_ = mip;
    }
    last_attr_->counts.add(c);
    last_attr_->bytes += miss_bytes;
    return c;
}

std::vector<MissAttributionRow>
MissClassifier::attributionRows() const
{
    std::vector<MissAttributionRow> rows;
    rows.reserve(attribution_.size());
    for (const auto &[key, a] : attribution_)
        rows.push_back({key.first, key.second, a.counts, a.bytes});
    return rows;
}

std::vector<MissAttributionRow>
MissClassifier::topTexturesByTraffic(size_t n) const
{
    std::map<uint32_t, MissAttributionRow> per_tex;
    for (const auto &[key, a] : attribution_) {
        MissAttributionRow &row = per_tex[key.first];
        row.tex = key.first;
        row.counts.compulsory += a.counts.compulsory;
        row.counts.capacity += a.counts.capacity;
        row.counts.conflict += a.counts.conflict;
        row.bytes += a.bytes;
    }
    std::vector<MissAttributionRow> rows;
    rows.reserve(per_tex.size());
    for (const auto &[tex, row] : per_tex)
        rows.push_back(row);
    std::sort(rows.begin(), rows.end(),
              [](const MissAttributionRow &a, const MissAttributionRow &b) {
                  if (a.bytes != b.bytes)
                      return a.bytes > b.bytes;
                  if (a.counts.total() != b.counts.total())
                      return a.counts.total() > b.counts.total();
                  return a.tex < b.tex;
              });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

namespace {
constexpr uint32_t kClassifierTag = snapTag("3CCL");
} // namespace

void
MissClassifier::save(SnapshotWriter &w) const
{
    w.section(kClassifierTag);
    shadow_.save(w);
    // The seen-set is unordered; serialize sorted so identical states
    // produce identical snapshots.
    std::vector<uint64_t> seen(seen_.begin(), seen_.end());
    std::sort(seen.begin(), seen.end());
    w.u64Vec(seen);
    w.u64(totals_.compulsory);
    w.u64(totals_.capacity);
    w.u64(totals_.conflict);
    w.u32(static_cast<uint32_t>(attribution_.size()));
    for (const auto &[key, a] : attribution_) {
        w.u32(key.first);
        w.u32(key.second);
        w.u64(a.counts.compulsory);
        w.u64(a.counts.capacity);
        w.u64(a.counts.conflict);
        w.u64(a.bytes);
    }
}

void
MissClassifier::load(SnapshotReader &r)
{
    r.expectSection(kClassifierTag, "MissClassifier");
    shadow_.load(r);
    std::vector<uint64_t> seen;
    r.u64Vec(seen);
    seen_.clear();
    seen_.reserve(seen.size());
    for (uint64_t key : seen)
        if (!seen_.insert(key).second)
            throw Exception(ErrorCode::Corrupt,
                            "MissClassifier: duplicate seen-set key in "
                            "snapshot");
    totals_.compulsory = r.u64();
    totals_.capacity = r.u64();
    totals_.conflict = r.u64();
    // The memo caches reference pre-load state; drop them.
    have_last_ = false;
    last_attr_ = nullptr;
    const uint32_t rows = r.u32();
    attribution_.clear();
    for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t tex = r.u32();
        const uint32_t mip = r.u32();
        Attribution a;
        a.counts.compulsory = r.u64();
        a.counts.capacity = r.u64();
        a.counts.conflict = r.u64();
        a.bytes = r.u64();
        if (!attribution_.emplace(std::make_pair(tex, mip), a).second)
            throw Exception(ErrorCode::Corrupt,
                            "MissClassifier: duplicate attribution row in "
                            "snapshot");
    }
}

} // namespace mltc
