/**
 * @file
 * Online per-stream SLOs with multi-window burn-rate alerting.
 *
 * Rule grammar (comma-separated list in one --slo value):
 *
 *     metric '<'|'>' threshold '@' window 'f'
 *     e.g.  --slo "stream.miss_rate.l2<0.15@30f,stream.lod_bias<1@16f"
 *
 * The objective is "metric op threshold should hold"; a frame where it
 * does not is a violation. Each (rule, entity) pair keeps a sliding
 * window of the last 4W frames and compares the violating fraction in
 * the fast window (last W frames) and the slow window (all 4W) against
 * an error budget (default: 10% of frames may violate):
 *
 *     burn = violating_fraction / budget
 *     fire  when the fast window is full, burn_fast >= 2 and
 *           burn_slow >= 1 (both windows burning: sustained, recent);
 *     clear when burn_fast < 1 (the fast window has recovered).
 *
 * The two-window AND makes the alert robust: a single bad frame cannot
 * fire it (slow window too dilute), and a long-past incident cannot
 * keep it firing (fast window recovers first). Non-contiguous frame
 * numbers — a resume from checkpoint, a skipped round — reset every
 * window, so stale pre-gap samples never contribute to a burn rate.
 *
 * The tracker is pure bookkeeping: callers feed one value per entity
 * per frame and act on the returned fire/clear transitions (metrics
 * gauges, trace instants, log lines, --slo-out JSONL).
 */
#ifndef MLTC_OBS_SLO_HPP
#define MLTC_OBS_SLO_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace mltc {

/** One parsed objective. */
struct SloRule
{
    std::string metric;    ///< e.g. "stream.miss_rate.l2"
    char op = '<';         ///< objective: value op threshold must hold
    double threshold = 0.0;
    uint32_t window = 1;   ///< fast window W in frames (slow = 4W)
    std::string spec;      ///< original text, for labels and logs

    /** True when @p value satisfies the objective. */
    bool
    satisfied(double value) const
    {
        return op == '<' ? value < threshold : value > threshold;
    }
};

/**
 * Parse a comma-separated rule list.
 * @throws mltc::Exception (BadArgument) naming the offending rule on
 *         any grammar violation (empty metric, bad op, zero window...).
 */
std::vector<SloRule> parseSloRules(const std::string &spec);

/** One fire/clear transition returned by SloTracker::observeFrame. */
struct SloEvent
{
    size_t rule = 0;     ///< index into rules()
    uint32_t entity = 0; ///< stream / sim index
    bool firing = false; ///< true = fired this frame, false = cleared
    int64_t frame = 0;
    double value = 0.0;  ///< the sample that completed the transition
    double burn_fast = 0.0;
    double burn_slow = 0.0;
};

/** Multi-window burn-rate evaluator; see file comment. */
class SloTracker
{
  public:
    explicit SloTracker(std::vector<SloRule> rules,
                        double error_budget = 0.1);

    const std::vector<SloRule> &rules() const { return rules_; }

    /**
     * Feed one frame: @p values[r][e] is rule r's sample for entity e
     * (NaN = entity absent this frame, e.g. a quarantined stream —
     * treated as satisfying the objective so a dead stream cannot keep
     * an alert burning). Entities may grow between frames. Returns the
     * fire/clear transitions this frame caused, in (rule, entity)
     * order.
     */
    std::vector<SloEvent>
    observeFrame(int64_t frame,
                 const std::vector<std::vector<double>> &values);

    /** Is (rule, entity) currently firing? */
    bool alerting(size_t rule, uint32_t entity) const;

    /** Any rule firing for @p entity? */
    bool anyAlerting(uint32_t entity) const;

    /** Current burn rates (0 when the pair is unknown). */
    double burnFast(size_t rule, uint32_t entity) const;
    double burnSlow(size_t rule, uint32_t entity) const;

  private:
    struct Cell
    {
        std::deque<uint8_t> window; ///< 1 = violation; back = newest
        bool firing = false;
        double burn_fast = 0.0;
        double burn_slow = 0.0;
    };

    const Cell *cell(size_t rule, uint32_t entity) const;

    std::vector<SloRule> rules_;
    double budget_;
    int64_t last_frame_ = 0;
    bool seen_frame_ = false;
    /** state_[rule][entity]. */
    std::vector<std::vector<Cell>> state_;
};

} // namespace mltc

#endif // MLTC_OBS_SLO_HPP
