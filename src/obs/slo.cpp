#include "obs/slo.hpp"

#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace mltc {

namespace {

[[noreturn]] void
badRule(const std::string &rule, const char *why)
{
    throw Exception(ErrorCode::BadArgument,
                    "--slo: bad rule '" + rule + "': " + why);
}

SloRule
parseOneRule(const std::string &text)
{
    SloRule rule;
    rule.spec = text;
    const size_t op = text.find_first_of("<>");
    if (op == std::string::npos)
        badRule(text, "expected metric<threshold@Nf or metric>...");
    if (op == 0)
        badRule(text, "empty metric name");
    rule.metric = text.substr(0, op);
    rule.op = text[op];

    const size_t at = text.find('@', op + 1);
    if (at == std::string::npos)
        badRule(text, "missing @window (e.g. @30f)");
    const std::string threshold = text.substr(op + 1, at - op - 1);
    char *end = nullptr;
    rule.threshold = std::strtod(threshold.c_str(), &end);
    if (threshold.empty() || end != threshold.c_str() + threshold.size() ||
        !std::isfinite(rule.threshold))
        badRule(text, "threshold is not a number");

    std::string window = text.substr(at + 1);
    if (window.empty() || window.back() != 'f')
        badRule(text, "window must end in 'f' (frames)");
    window.pop_back();
    const long frames = std::strtol(window.c_str(), &end, 10);
    if (window.empty() || end != window.c_str() + window.size() ||
        frames <= 0 || frames > 1000000)
        badRule(text, "window must be a positive frame count");
    rule.window = static_cast<uint32_t>(frames);
    return rule;
}

} // namespace

std::vector<SloRule>
parseSloRules(const std::string &spec)
{
    std::vector<SloRule> rules;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string text = spec.substr(pos, comma - pos);
        if (!text.empty())
            rules.push_back(parseOneRule(text));
        pos = comma + 1;
    }
    if (rules.empty() && !spec.empty())
        throw Exception(ErrorCode::BadArgument,
                        "--slo: no rules in '" + spec + "'");
    return rules;
}

SloTracker::SloTracker(std::vector<SloRule> rules, double error_budget)
    : rules_(std::move(rules)), budget_(error_budget)
{
    if (budget_ <= 0.0 || budget_ > 1.0)
        throw Exception(ErrorCode::BadArgument,
                        "SloTracker: error budget must be in (0, 1]");
    state_.resize(rules_.size());
}

const SloTracker::Cell *
SloTracker::cell(size_t rule, uint32_t entity) const
{
    if (rule >= state_.size() || entity >= state_[rule].size())
        return nullptr;
    return &state_[rule][entity];
}

bool
SloTracker::alerting(size_t rule, uint32_t entity) const
{
    const Cell *c = cell(rule, entity);
    return c && c->firing;
}

bool
SloTracker::anyAlerting(uint32_t entity) const
{
    for (size_t r = 0; r < rules_.size(); ++r)
        if (alerting(r, entity))
            return true;
    return false;
}

double
SloTracker::burnFast(size_t rule, uint32_t entity) const
{
    const Cell *c = cell(rule, entity);
    return c ? c->burn_fast : 0.0;
}

double
SloTracker::burnSlow(size_t rule, uint32_t entity) const
{
    const Cell *c = cell(rule, entity);
    return c ? c->burn_slow : 0.0;
}

std::vector<SloEvent>
SloTracker::observeFrame(int64_t frame,
                         const std::vector<std::vector<double>> &values)
{
    std::vector<SloEvent> events;
    // A gap or a rewind (resume from checkpoint) invalidates every
    // window: the skipped frames have no samples and pre-gap state must
    // not leak burn rate into the new epoch. Alert state survives the
    // reset so a still-bad signal re-fires only once its new windows
    // fill again.
    if (seen_frame_ && frame != last_frame_ + 1)
        for (auto &rule_state : state_)
            for (Cell &c : rule_state)
                c.window.clear();
    seen_frame_ = true;
    last_frame_ = frame;

    for (size_t r = 0; r < rules_.size() && r < values.size(); ++r) {
        const SloRule &rule = rules_[r];
        const uint32_t fast = rule.window;
        const uint32_t slow = 4 * rule.window;
        if (values[r].size() > state_[r].size())
            state_[r].resize(values[r].size());
        for (uint32_t e = 0; e < values[r].size(); ++e) {
            Cell &c = state_[r][e];
            const double value = values[r][e];
            // NaN = no sample (dead stream): counts as satisfied.
            const bool violated =
                !std::isnan(value) && !rule.satisfied(value);
            c.window.push_back(violated ? 1 : 0);
            while (c.window.size() > slow)
                c.window.pop_front();

            uint64_t slow_viol = 0, fast_viol = 0;
            const size_t n = c.window.size();
            for (size_t i = 0; i < n; ++i) {
                slow_viol += c.window[i];
                if (i + fast >= n)
                    fast_viol += c.window[i];
            }
            const size_t fast_n = n < fast ? n : fast;
            c.burn_fast = fast_n == 0
                              ? 0.0
                              : static_cast<double>(fast_viol) /
                                    static_cast<double>(fast_n) / budget_;
            c.burn_slow = static_cast<double>(slow_viol) /
                          static_cast<double>(n) / budget_;

            const bool was = c.firing;
            if (!was && n >= fast && c.burn_fast >= 2.0 &&
                c.burn_slow >= 1.0)
                c.firing = true;
            else if (was && c.burn_fast < 1.0)
                c.firing = false;
            if (c.firing != was)
                events.push_back(SloEvent{r, e, c.firing, frame, value,
                                          c.burn_fast, c.burn_slow});
        }
    }
    return events;
}

} // namespace mltc
