#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mltc {

namespace {

constexpr uint32_t kRingCapacity = 512; ///< samples buffered per thread

/** Claim bookkeeping: which profiler instance this thread belongs to. */
struct TlsClaim
{
    uint64_t generation = 0;
    uint32_t slot = detail::kProfileMaxThreads; ///< invalid marker
};

thread_local TlsClaim t_claim;

std::atomic<uint64_t> g_generation{1};

} // namespace

// ---------------------------------------------------------------------------
// Folded-format helpers

std::string
foldedEscape(const std::string &frame)
{
    std::string out;
    out.reserve(frame.size());
    for (char c : frame) {
        if (c == ';' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
foldedKey(const std::vector<std::string> &frames)
{
    std::string key;
    for (size_t i = 0; i < frames.size(); ++i) {
        if (i != 0)
            key.push_back(';');
        key += foldedEscape(frames[i]);
    }
    return key;
}

std::vector<std::string>
foldedSplit(const std::string &key)
{
    std::vector<std::string> frames;
    std::string cur;
    for (size_t i = 0; i < key.size(); ++i) {
        const char c = key[i];
        if (c == '\\' && i + 1 < key.size()) {
            cur.push_back(key[++i]);
        } else if (c == ';') {
            frames.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty() || !frames.empty())
        frames.push_back(cur);
    return frames;
}

std::string
renderFolded(const std::map<std::string, uint64_t> &stacks)
{
    std::string out;
    for (const auto &[key, count] : stacks) {
        if (count == 0 || key.empty())
            continue; // zero-sample stacks are omitted by contract
        out += key;
        out.push_back(' ');
        out += std::to_string(count);
        out.push_back('\n');
    }
    return out;
}

namespace {

/** Aggregate a stack map into sorted per-stage self/total counts. */
void
aggregateStages(FoldedProfile &profile)
{
    std::map<std::string, ProfileStageCount> stages;
    profile.total_samples = 0;
    for (const auto &[key, count] : profile.stacks) {
        if (count == 0)
            continue;
        profile.total_samples += count;
        const std::vector<std::string> frames = foldedSplit(key);
        if (frames.empty())
            continue;
        // total counts each stage once per stack, however often a
        // recursive frame repeats within it.
        std::vector<std::string> uniq = frames;
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
        for (const std::string &f : uniq) {
            ProfileStageCount &s = stages[f];
            s.name = f;
            s.total += count;
        }
        stages[frames.back()].self += count;
    }
    profile.stages.clear();
    profile.stages.reserve(stages.size());
    for (auto &[name, stat] : stages)
        profile.stages.push_back(std::move(stat));
}

} // namespace

FoldedProfile
loadFolded(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        throw Exception(ErrorCode::Io,
                        "profile: cannot open '" + path + "'");
    FoldedProfile profile;
    char line[4096];
    size_t lineno = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++lineno;
        std::string s(line);
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
            s.pop_back();
        if (s.empty())
            continue;
        // Frame names may contain spaces ("leg:2 MB L2"): the count is
        // everything after the LAST space, as flamegraph.pl parses it.
        const size_t sp = s.rfind(' ');
        bool ok = sp != std::string::npos && sp + 1 < s.size() && sp > 0;
        uint64_t count = 0;
        if (ok) {
            for (size_t i = sp + 1; i < s.size(); ++i) {
                if (s[i] < '0' || s[i] > '9') {
                    ok = false;
                    break;
                }
                count = count * 10 + static_cast<uint64_t>(s[i] - '0');
            }
        }
        if (!ok)
            throw Exception(ErrorCode::Corrupt,
                            "profile: " + path + ":" +
                                std::to_string(lineno) +
                                ": not a 'stack count' folded line");
        profile.stacks[s.substr(0, sp)] += count;
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw Exception(ErrorCode::Io, "profile: read failed: " + path);
    aggregateStages(profile);
    return profile;
}

ProfileDiff
diffFoldedProfiles(const FoldedProfile &a, const FoldedProfile &b,
                   double min_share)
{
    std::map<std::string, std::pair<double, double>> shares;
    const double ta =
        a.total_samples ? static_cast<double>(a.total_samples) : 1.0;
    const double tb =
        b.total_samples ? static_cast<double>(b.total_samples) : 1.0;
    for (const ProfileStageCount &s : a.stages)
        shares[s.name].first = static_cast<double>(s.self) / ta;
    for (const ProfileStageCount &s : b.stages)
        shares[s.name].second = static_cast<double>(s.self) / tb;

    ProfileDiff diff;
    for (const auto &[name, sh] : shares) {
        ProfileDiffRow row;
        row.name = name;
        row.share_a = sh.first;
        row.share_b = sh.second;
        const double hi = std::max(sh.first, sh.second);
        if (hi > 0.0 && hi >= min_share)
            row.rel_delta = (hi - std::min(sh.first, sh.second)) / hi;
        diff.max_rel = std::max(diff.max_rel, row.rel_delta);
        diff.rows.push_back(std::move(row));
    }
    std::sort(diff.rows.begin(), diff.rows.end(),
              [](const ProfileDiffRow &x, const ProfileDiffRow &y) {
                  if (x.rel_delta != y.rel_delta)
                      return x.rel_delta > y.rel_delta;
                  return x.name < y.name;
              });
    return diff;
}

// ---------------------------------------------------------------------------
// Global slot

void
installStageProfiler(StageProfiler *profiler)
{
    detail::g_profiler.store(profiler, std::memory_order_release);
}

const char *
profileInternAnnotation(const std::string &name)
{
    StageProfiler *p = stageProfiler();
    return p ? p->intern(name) : nullptr;
}

// ---------------------------------------------------------------------------
// StageProfiler

StageProfiler::StageProfiler(const ProfilerConfig &config)
    : cfg_(config),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed))
{
    if (cfg_.hz == 0 || cfg_.hz > 100000)
        throw Exception(ErrorCode::BadArgument,
                        "profiler: sampling rate must be in [1, 100000] Hz");
    t0_ = std::chrono::steady_clock::now();
    if (cfg_.registry != nullptr) {
        auto guard = cfg_.registry->updateGuard();
        samples_metric_ = cfg_.registry->counter("profile.samples");
        dropped_metric_ = cfg_.registry->counter("profile.samples_dropped");
        unavailable_metric_ =
            cfg_.registry->gauge("profile.counters_unavailable");
        unavailable_metric_.set(0.0);
    }
    if (cfg_.force_counters_unavailable)
        markCountersUnavailable();
    sampler_ = std::thread([this] { samplerLoop(); });
}

StageProfiler::~StageProfiler()
{
    stopSampler();
#if defined(__linux__)
    for (HwGroup &g : groups_)
        for (int fd : g.fds)
            if (fd >= 0)
                ::close(fd);
#endif
}

void
StageProfiler::stopSampler()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    wake_cv_.notify_all();
    if (sampler_.joinable())
        sampler_.join();
}

uint32_t
StageProfiler::slotForThisThread()
{
    if (t_claim.generation == generation_)
        return t_claim.slot;
    const uint32_t idx =
        next_slot_.fetch_add(1, std::memory_order_acq_rel);
    t_claim.generation = generation_;
    t_claim.slot = idx < detail::kProfileMaxThreads
                       ? idx
                       : detail::kProfileMaxThreads;
    return t_claim.slot;
}

detail::ProfileSlot *
StageProfiler::enter(const char *name)
{
    if (name == nullptr)
        return nullptr;
    const uint32_t idx = slotForThisThread();
    if (idx >= detail::kProfileMaxThreads) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    detail::ProfileSlot &slot = slots_[idx];
    const uint32_t d = slot.depth.load(std::memory_order_relaxed);
    if (d >= detail::kProfileMaxDepth) {
        // Deeper than the fixed stack: keep counting depth so the
        // matching leave() rebalances, but drop the frame name.
        slot.depth.store(d + 1, std::memory_order_release);
        return &slot;
    }
    slot.frames[d].store(name, std::memory_order_relaxed);
    slot.depth.store(d + 1, std::memory_order_release);
    return &slot;
}

const char *
StageProfiler::intern(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = interned_.find(name);
    if (it != interned_.end())
        return it->second;
    intern_storage_.push_back(name);
    const char *stable = intern_storage_.back().c_str();
    interned_.emplace(name, stable);
    intern_order_.push_back(stable);
    return stable;
}

// ---------------------------------------------------------------------------
// Sampler thread

void
StageProfiler::samplerLoop()
{
    const auto period = std::chrono::nanoseconds(
        1000000000ull / static_cast<uint64_t>(cfg_.hz));
    auto next = std::chrono::steady_clock::now() + period;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(wake_mutex_);
            wake_cv_.wait_until(lock, next, [this] {
                return stop_.load(std::memory_order_relaxed);
            });
        }
        if (stop_.load(std::memory_order_relaxed))
            return;
        next += period;
        const auto now = std::chrono::steady_clock::now();
        if (next < now) // fell behind (debugger, VM pause): resync
            next = now + period;
        std::lock_guard<std::mutex> lock(mutex_);
        tickLocked();
    }
}

void
StageProfiler::tickLocked()
{
    const uint32_t claimed = std::min(
        next_slot_.load(std::memory_order_acquire),
        detail::kProfileMaxThreads);
    for (uint32_t i = 0; i < claimed; ++i) {
        detail::ProfileSlot &slot = slots_[i];
        const uint32_t d = slot.depth.load(std::memory_order_acquire);
        if (d == 0)
            continue; // idle thread: contributes nothing
        Sample sample;
        sample.depth = std::min(d, detail::kProfileMaxDepth);
        for (uint32_t j = 0; j < sample.depth; ++j)
            sample.frames[j] =
                slot.frames[j].load(std::memory_order_relaxed);
        std::vector<Sample> &ring = rings_[i];
        if (ring.capacity() == 0)
            ring.reserve(kRingCapacity);
        ring.push_back(sample);
        if (ring.size() >= kRingCapacity)
            foldRingLocked(i); // amortized: fold on wrap, not per tick
    }
    publishRegistryLocked();
}

void
StageProfiler::foldRingLocked(uint32_t slot)
{
    std::vector<Sample> &ring = rings_[slot];
    std::string key;
    for (const Sample &sample : ring) {
        key.clear();
        bool first = true;
        for (uint32_t j = 0; j < sample.depth; ++j) {
            const char *frame = sample.frames[j];
            if (frame == nullptr)
                continue; // torn snapshot before the first push there
            if (!first)
                key.push_back(';');
            first = false;
            key += foldedEscape(frame);
        }
        if (key.empty())
            continue;
        ++folded_[key];
        ++folded_samples_;
    }
    ring.clear();
}

void
StageProfiler::foldAllLocked()
{
    for (uint32_t i = 0; i < detail::kProfileMaxThreads; ++i)
        if (!rings_[i].empty())
            foldRingLocked(i);
}

void
StageProfiler::publishRegistryLocked()
{
    if (cfg_.registry == nullptr)
        return;
    uint64_t pending = 0;
    for (const std::vector<Sample> &ring : rings_)
        pending += ring.size();
    auto guard = cfg_.registry->updateGuard();
    samples_metric_.set(folded_samples_ + pending);
    dropped_metric_.set(dropped_.load(std::memory_order_relaxed));
}

uint64_t
StageProfiler::sampleCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t pending = 0;
    for (const std::vector<Sample> &ring : rings_)
        pending += ring.size();
    return folded_samples_ + pending;
}

// ---------------------------------------------------------------------------
// Hardware counters

void
StageProfiler::markCountersUnavailable()
{
    if (counters_unavailable_.exchange(true, std::memory_order_relaxed))
        return;
    if (cfg_.registry != nullptr) {
        auto guard = cfg_.registry->updateGuard();
        unavailable_metric_.set(1.0);
    }
    logWarn("profiler: perf_event_open unavailable; continuing without "
            "hardware counters");
}

bool
StageProfiler::openGroup(HwGroup &g)
{
#if defined(__linux__)
    struct CounterSpec
    {
        uint32_t type;
        uint64_t config;
    };
    static const CounterSpec specs[4] = {
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {PERF_TYPE_HW_CACHE,
         PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
             (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    };
    for (int i = 0; i < 4; ++i) {
        struct perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = specs[i].type;
        attr.config = specs[i].config;
        attr.read_format = PERF_FORMAT_GROUP;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.disabled = i == 0 ? 1 : 0;
        const int group_fd = i == 0 ? -1 : g.fds[0];
        const long fd = ::syscall(__NR_perf_event_open, &attr, 0, -1,
                                  group_fd, 0);
        if (fd < 0) {
            for (int j = 0; j < i; ++j) {
                ::close(g.fds[j]);
                g.fds[j] = -1;
            }
            return false; // EPERM/EACCES/ENOSYS/EINVAL all degrade
        }
        g.fds[i] = static_cast<int>(fd);
    }
    if (::ioctl(g.fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ::ioctl(g.fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
        for (int &fd : g.fds) {
            if (fd >= 0)
                ::close(fd);
            fd = -1;
        }
        return false;
    }
    return true;
#else
    (void)g;
    return false;
#endif
}

bool
StageProfiler::readCounters(uint64_t out[4])
{
    if (!cfg_.counters ||
        counters_unavailable_.load(std::memory_order_relaxed))
        return false;
    const uint32_t idx = slotForThisThread();
    if (idx >= detail::kProfileMaxThreads)
        return false;
    HwGroup &g = groups_[idx];
    if (g.failed)
        return false;
    if (!g.open) {
        // perf_event_open binds to the calling thread (pid=0, cpu=-1),
        // so the group must be opened lazily by its owner.
        if (!openGroup(g)) {
            g.failed = true;
            markCountersUnavailable();
            return false;
        }
        g.open = true;
    }
#if defined(__linux__)
    struct
    {
        uint64_t nr;
        uint64_t values[4];
    } buf;
    const ssize_t n = ::read(g.fds[0], &buf, sizeof(buf));
    if (n < static_cast<ssize_t>(sizeof(uint64_t)) || buf.nr < 4) {
        g.failed = true;
        markCountersUnavailable();
        return false;
    }
    for (int i = 0; i < 4; ++i)
        out[i] = buf.values[i];
    return true;
#else
    (void)out;
    return false;
#endif
}

void
StageProfiler::accumulateCounters(const char *stage, const uint64_t delta[4])
{
    std::lock_guard<std::mutex> lock(mutex_);
    HwStageCounters &c = counter_stats_[stage];
    ++c.enters;
    c.cycles += delta[0];
    c.instructions += delta[1];
    c.llc_misses += delta[2];
    c.branch_misses += delta[3];
}

// ---------------------------------------------------------------------------
// Output

std::string
StageProfiler::renderJsonLocked()
{
    FoldedProfile profile;
    profile.stacks = folded_;
    aggregateStages(profile);

    const double elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0_)
            .count();

    JsonWriter w;
    w.beginObject();
    w.key("build");
    appendBuildInfo(w);
    w.key("profile")
        .beginObject()
        .kv("hz", static_cast<uint64_t>(cfg_.hz))
        .kv("samples", profile.total_samples)
        .kv("dropped", dropped_.load(std::memory_order_relaxed))
        .kv("threads",
            static_cast<uint64_t>(std::min(
                next_slot_.load(std::memory_order_relaxed),
                detail::kProfileMaxThreads)))
        .kv("duration_us", elapsed_us)
        .endObject();

    w.key("stages").beginArray();
    for (const ProfileStageCount &s : profile.stages)
        w.beginObject()
            .kv("stage", s.name)
            .kv("self", s.self)
            .kv("total", s.total)
            .endObject();
    w.endArray();

    // Legs and streams in annotation registration order: SweepExecutor
    // registers legs in addLeg() order, so a profile merged from any
    // --jobs N schedule lists them identically.
    const auto annotations = [&](const char *prefix) {
        for (const char *name : intern_order_) {
            if (std::strncmp(name, prefix, std::strlen(prefix)) != 0)
                continue;
            uint64_t total = 0;
            for (const ProfileStageCount &s : profile.stages)
                if (s.name == name)
                    total = s.total;
            w.beginObject()
                .kv("name", std::string(name))
                .kv("samples", total)
                .endObject();
        }
    };
    w.key("legs").beginArray();
    annotations("leg:");
    w.endArray();
    w.key("streams").beginArray();
    annotations("stream:");
    w.endArray();

    w.key("counters")
        .beginObject()
        .kv("available", !counters_unavailable_.load(
                             std::memory_order_relaxed) &&
                             cfg_.counters)
        .key("stages")
        .beginArray();
    for (const auto &[stage, c] : counter_stats_)
        w.beginObject()
            .kv("stage", stage)
            .kv("enters", c.enters)
            .kv("cycles", c.cycles)
            .kv("instructions", c.instructions)
            .kv("llc_misses", c.llc_misses)
            .kv("branch_misses", c.branch_misses)
            .endObject();
    w.endArray().endObject();
    w.endObject();
    return w.str();
}

std::string
StageProfiler::liveJson()
{
    std::lock_guard<std::mutex> lock(mutex_);
    foldAllLocked();
    return renderJsonLocked();
}

void
StageProfiler::writeOutputs()
{
    if (cfg_.out_prefix.empty())
        return;
    std::string folded_text;
    std::string json_text;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        foldAllLocked();
        folded_text = renderFolded(folded_);
        json_text = renderJsonLocked();
        json_text.push_back('\n');
    }
    atomicWriteFile(cfg_.out_prefix + ".folded", folded_text.data(),
                    folded_text.size(), AtomicWriteOptions{});
    atomicWriteFile(cfg_.out_prefix + ".json", json_text.data(),
                    json_text.size(), AtomicWriteOptions{});
}

bool
StageProfiler::flushOutputs() noexcept
{
    try {
        writeOutputs();
        return true;
    } catch (const Exception &e) {
        logWarn("profiler: flush failed: " + e.error().describe());
    } catch (const std::exception &e) {
        logWarn(std::string("profiler: flush failed: ") + e.what());
    }
    return false;
}

} // namespace mltc
