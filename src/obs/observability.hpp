/**
 * @file
 * The per-run observability bundle and its shared command-line flags.
 *
 * Every example and bench driver exposes the same three knobs:
 *
 *   --metrics-out=PATH   per-frame metrics registry snapshots (JSONL)
 *   --trace-out=PATH     Chrome trace-event / Perfetto timeline (JSON)
 *   --miss-classes       3C miss classification + attribution tables
 *   --top-textures=N     rows in the top-textures summary (default 8)
 *
 * plus the live telemetry plane (docs/observability.md):
 *
 *   --telemetry-port=P        /metrics, /healthz, /runz, /profilez on
 *                             127.0.0.1:P (0 = kernel-assigned)
 *   --telemetry-port-file=F   write the bound port to F (for scripts)
 *   --slo=RULES               per-stream SLO rules (see obs/slo.hpp)
 *   --slo-out=PATH            SLO fire/clear transitions (JSONL)
 *   --flight-out=PREFIX       flight-recorder bundle at PREFIX.flight/
 *
 * and the continuous profiling plane (docs/profiling.md):
 *
 *   --profile-out=PREFIX      sampled stage profile: PREFIX.folded
 *                             (flamegraph collapsed stacks) and
 *                             PREFIX.json (stage/leg/stream summary
 *                             with hardware counters)
 *   --profile-hz=N            sampling rate (default 997)
 *   --profile-no-counters     skip perf_event_open entirely
 *
 * Observability owns the registry, the trace writer and the JSONL
 * sinks, installs itself as the process-global tracer for its
 * lifetime, and mirrors the structured log stream into the metrics
 * JSONL file (one shared sink, rows distinguished by their keys).
 * Attach it to a MultiConfigRunner with setObservability(); call
 * close() before reading the output files.
 */
#ifndef MLTC_OBS_OBSERVABILITY_HPP
#define MLTC_OBS_OBSERVABILITY_HPP

#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/trace_event.hpp"
#include "util/cli.hpp"

namespace mltc {

/** Parsed observability knobs. */
struct ObsConfig
{
    std::string metrics_path; ///< empty = metrics registry disabled
    std::string trace_path;   ///< empty = tracing disabled
    bool miss_classes = false;
    uint32_t top_textures = 8;

    // Live telemetry plane (see file comment).
    bool telemetry = false;           ///< --telemetry-port given
    uint16_t telemetry_port = 0;      ///< 0 = kernel-assigned
    std::string telemetry_port_file;  ///< --telemetry-port-file
    std::string slo_spec;             ///< --slo rule list (raw text)
    std::string slo_out;              ///< --slo-out JSONL path
    std::string flight_out;           ///< --flight-out bundle prefix

    // Continuous profiling plane (see file comment).
    std::string profile_out;          ///< --profile-out prefix
    uint32_t profile_hz = 997;        ///< --profile-hz sampling rate
    bool profile_counters = true;     ///< cleared by --profile-no-counters
    bool profile_force_fallback = false; ///< MLTC_PROFILE_FORCE_FALLBACK=1

    bool
    anyEnabled() const
    {
        return !metrics_path.empty() || !trace_path.empty() ||
               miss_classes || telemetry || !slo_spec.empty() ||
               !flight_out.empty() || !profile_out.empty();
    }
};

/**
 * Read the shared observability flags.
 * @throws mltc::Exception (BadArgument) on malformed values.
 */
ObsConfig obsFromCli(const CommandLine &cli);

/** Owns the run's metric/trace state; see file comment. */
class Observability
{
  public:
    /**
     * @p install_process_hooks wires the process-global integrations
     * (log-to-JSONL mirroring, global tracer). Parallel sweep legs pass
     * false: each leg owns a private metrics sink and must not fight
     * over process globals; the sweep driver keeps one shared,
     * thread-safe tracer installed instead.
     */
    explicit Observability(const ObsConfig &config,
                           bool install_process_hooks = true);

    /** Uninstalls the global tracer; best-effort close. */
    ~Observability();

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;

    const ObsConfig &config() const { return cfg_; }

    /** Always valid; enabled by --metrics-out and/or --telemetry-port
     *  (a live scrape needs real storage even with no metrics file). */
    MetricsRegistry &metrics() { return metrics_; }

    /** Null without --trace-out. */
    ChromeTraceWriter *trace() { return trace_.get(); }

    /** Null without --metrics-out. */
    JsonlFileSink *metricsSink() { return metrics_sink_.get(); }

    /** Null without --telemetry-port. */
    TelemetryServer *telemetry() { return telemetry_.get(); }

    /** Parsed --slo rules (empty without --slo). */
    const std::vector<SloRule> &sloRules() const { return slo_rules_; }

    /** Null without --slo-out. */
    JsonlFileSink *sloSink() { return slo_sink_.get(); }

    /** Null without --flight-out. */
    FlightRecorder *flight() { return flight_.get(); }

    /** Null without --profile-out. */
    StageProfiler *profiler() { return profiler_.get(); }

    /**
     * Flush every sink without closing it, so an interrupted run keeps
     * everything emitted so far. The metrics JSONL sink already flushes
     * per line; this pushes the buffered trace events out too. Safe to
     * call repeatedly; never throws (failures surface at close()).
     */
    void flush();

    /**
     * Flush and close every sink. Sink I/O failures are logged and
     * counted (sinkErrors()) rather than thrown — lost telemetry must
     * never take down the run that produced it.
     */
    void close();

    /** Sinks lost to I/O failure at close(). */
    int sinkErrors() const { return sink_errors_; }

  private:
    ObsConfig cfg_;
    bool hooks_;
    MetricsRegistry metrics_;
    std::unique_ptr<JsonlFileSink> metrics_sink_;
    std::unique_ptr<ChromeTraceWriter> trace_;
    std::unique_ptr<TelemetryServer> telemetry_;
    std::vector<SloRule> slo_rules_;
    std::unique_ptr<JsonlFileSink> slo_sink_;
    std::unique_ptr<FlightRecorder> flight_;
    std::unique_ptr<StageProfiler> profiler_;
    int sink_errors_ = 0;
};

} // namespace mltc

#endif // MLTC_OBS_OBSERVABILITY_HPP
