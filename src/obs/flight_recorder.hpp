/**
 * @file
 * Crash-scoped flight recorder: a fixed-size ring of recent trace
 * events and metric deltas per worker, always-on and bounded, dumped
 * as a schema-valid Chrome trace + metrics JSONL bundle when the run
 * dies (quarantine, watchdog kill, audit violation, fatal I/O error).
 *
 * Design constraints, in order:
 *  - recording must be cheap and lock-free: one relaxed fetch_add for
 *    the global sequence number, one for the per-worker ring cursor,
 *    and a seqlock-style slot publish. No allocation, no locks, no
 *    syscalls — safe from any thread including sweep workers;
 *  - memory is bounded at construction: workers * capacity slots of
 *    POD events (names truncate into fixed buffers); when the ring
 *    wraps, the oldest events are overwritten — a flight recorder
 *    keeps the *last* moments, not the first;
 *  - the dump itself must survive a dying process on a faulty disk: it
 *    renders from the rings into memory, then commits both files
 *    through atomicWriteFile (FileBackend + retries — the PR-7
 *    recovery ladder), and never throws: a failed dump is logged, not
 *    fatal — the recorder must not take down the error path that
 *    invoked it.
 *
 * Bundle layout (`<prefix>.flight/`):
 *   trace.json     Chrome trace: process/thread metadata + one instant
 *                  event per ring slot (args: value, seq) + a final
 *                  "flight.dumped" instant carrying the reason —
 *                  passes trace_validate;
 *   metrics.jsonl  a dump-summary row, then (when a registry is
 *                  attached) one final frame-snapshot row — accepted
 *                  by `report --metrics`.
 *
 * A process-global install slot (like the global tracer) lets runners
 * and sinks record without plumbing: every hook is one atomic load +
 * branch when no recorder is installed.
 */
#ifndef MLTC_OBS_FLIGHT_RECORDER_HPP
#define MLTC_OBS_FLIGHT_RECORDER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mltc {

class MetricsRegistry;

/** One recorded moment; POD so slots are copy-in/copy-out. */
struct FlightEvent
{
    enum Kind : uint8_t { Instant = 0, Metric = 1, Frame = 2 };

    uint64_t seq = 0; ///< global order; 0 = slot never written
    int64_t ts_us = 0;
    uint8_t kind = Instant;
    char name[48] = {0};
    char cat[16] = {0};
    double value = 0.0;
};

/** Bounded per-worker event rings + bundle dumper; see file comment. */
class FlightRecorder
{
  public:
    struct Config
    {
        uint32_t workers = 8;    ///< independent rings
        uint32_t capacity = 512; ///< slots per ring
        std::string prefix;      ///< bundle lands at <prefix>.flight/
        MetricsRegistry *registry = nullptr; ///< snapshot at dump time
    };

    explicit FlightRecorder(const Config &config);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Record one event. Lock-free; callable from any thread. */
    void record(const char *name, const char *cat,
                uint8_t kind = FlightEvent::Instant, double value = 0.0);

    /** Ring contents in global (seq) order — the dump's event list. */
    std::vector<FlightEvent> snapshot() const;

    /**
     * Dump the rings as `<prefix>.flight/{trace.json,metrics.jsonl}`.
     * Returns the bundle directory, or "" on failure (logged, never
     * thrown). Idempotent: later dumps overwrite with fresher state.
     */
    std::string dump(const std::string &reason);

    uint64_t recorded() const { return seq_.load(); }
    uint32_t capacity() const { return capacity_; }
    uint32_t workers() const { return static_cast<uint32_t>(rings_.size()); }
    const std::string &prefix() const { return prefix_; }

  private:
    struct Slot
    {
        /** Seqlock-style publication: 0 while the slot is being
         *  (re)written, the event's seq once complete. */
        std::atomic<uint64_t> seq{0};
        FlightEvent event;
    };

    struct Ring
    {
        std::vector<Slot> slots;
        std::atomic<uint64_t> head{0};
    };

    Ring &ringForThisThread();

    uint32_t capacity_;
    std::string prefix_;
    MetricsRegistry *registry_;
    std::vector<Ring> rings_;
    std::atomic<uint64_t> seq_{0};
    std::atomic<uint32_t> next_ring_{0};
    std::atomic<int64_t> last_frame_{-1};
    std::chrono::steady_clock::time_point t0_;
};

namespace detail {
/** Process-global recorder slot (mirrors detail::g_tracer). */
inline std::atomic<FlightRecorder *> g_flight{nullptr};
} // namespace detail

/** Install @p recorder as the process recorder (null to remove). */
void installFlightRecorder(FlightRecorder *recorder);

/** The process recorder, or null when none is installed. */
inline FlightRecorder *
flightRecorder()
{
    return detail::g_flight.load(std::memory_order_acquire);
}

/** Record against the process recorder; no-op when absent. */
inline void
flightEvent(const char *name, const char *cat, double value = 0.0)
{
    if (FlightRecorder *fr = flightRecorder())
        fr->record(name, cat, FlightEvent::Instant, value);
}

/** Record one metric delta sample; no-op when absent. */
inline void
flightMetric(const char *name, double value)
{
    if (FlightRecorder *fr = flightRecorder())
        fr->record(name, "metric", FlightEvent::Metric, value);
}

/** Mark a frame/round boundary; no-op when absent. */
inline void
flightFrame(int64_t frame)
{
    if (FlightRecorder *fr = flightRecorder())
        fr->record("frame", "frame", FlightEvent::Frame,
                   static_cast<double>(frame));
}

/** Dump the process recorder; returns "" when absent or failed. */
std::string flightDump(const std::string &reason);

} // namespace mltc

#endif // MLTC_OBS_FLIGHT_RECORDER_HPP
