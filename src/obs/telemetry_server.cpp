#include "obs/telemetry_server.hpp"

#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/exposition.hpp"
#include "util/io.hpp"

namespace mltc {

namespace {

using Labels = std::vector<std::pair<std::string, std::string>>;

/** Split a canonical registry key back into base name + labels. */
void
parseMetricKey(const std::string &key, std::string &base, Labels &labels)
{
    labels.clear();
    const size_t brace = key.find('{');
    if (brace == std::string::npos || key.back() != '}') {
        base = key;
        return;
    }
    base = key.substr(0, brace);
    // "k1=v1,k2=v2" — the registry sorts and rejects duplicate keys, so
    // a plain split is enough. Values (sim labels like "4 MB L2")
    // contain no ',' or '=' by construction of the label sources.
    const std::string body = key.substr(brace + 1, key.size() - brace - 2);
    size_t pos = 0;
    while (pos < body.size()) {
        size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        const std::string pair = body.substr(pos, comma - pos);
        const size_t eq = pair.find('=');
        if (eq != std::string::npos)
            labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
        pos = comma + 1;
    }
}

const char *
kindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter:
        return "counter";
    case MetricKind::Gauge:
        return "gauge";
    case MetricKind::Histogram:
        return "histogram";
    }
    return "untyped";
}

/** Cumulative power-of-two `le` boundaries: 0,1,2,4,...,cap. */
std::vector<uint64_t>
bucketBounds(uint32_t cap)
{
    std::vector<uint64_t> bounds{0};
    for (uint64_t b = 1; b <= cap; b *= 2)
        bounds.push_back(b);
    if (bounds.back() != cap)
        bounds.push_back(cap);
    return bounds;
}

void
renderHistogram(std::string &out, const std::string &family,
                const Labels &labels, const Histogram &h)
{
    uint64_t cum = 0;
    uint64_t v = 0;
    for (uint64_t le : bucketBounds(h.cap())) {
        for (; v <= le; ++v)
            cum += h.bucket(v);
        Labels with_le = labels;
        with_le.emplace_back("le", expositionValue(le));
        out += family + "_bucket" + expositionLabels(with_le) + ' ' +
               expositionValue(cum) + '\n';
    }
    Labels with_inf = labels;
    with_inf.emplace_back("le", "+Inf");
    out += family + "_bucket" + expositionLabels(with_inf) + ' ' +
           expositionValue(h.count()) + '\n';
    out += family + "_sum" + expositionLabels(labels) + ' ' +
           expositionValue(h.sum()) + '\n';
    out += family + "_count" + expositionLabels(labels) + ' ' +
           expositionValue(h.count()) + '\n';
}

} // namespace

std::string
renderExposition(const MetricsRegistry &registry)
{
    // Families keyed by sanitized name; the registry iterates keys in
    // sorted canonical order, so samples within a family keep a
    // deterministic order and the map sorts the families themselves.
    struct Family
    {
        MetricKind kind;
        bool mixed = false;
        std::string samples;
    };
    std::map<std::string, Family> families;

    registry.forEach([&](const std::string &key, MetricKind kind,
                         uint64_t counter, double gauge,
                         const Histogram *histogram) {
        std::string base;
        Labels labels;
        parseMetricKey(key, base, labels);
        const std::string family = expositionMetricName(base);
        auto [it, inserted] = families.emplace(family, Family{kind, false,
                                                              {}});
        if (!inserted && it->second.kind != kind)
            it->second.mixed = true;
        std::string &out = it->second.samples;
        switch (kind) {
          case MetricKind::Counter:
            out += family + expositionLabels(labels) + ' ' +
                   expositionValue(counter) + '\n';
            break;
          case MetricKind::Gauge:
            out += family + expositionLabels(labels) + ' ' +
                   expositionValue(gauge) + '\n';
            break;
          case MetricKind::Histogram:
            renderHistogram(out, family, labels, *histogram);
            break;
        }
    });

    std::string text;
    for (const auto &[name, family] : families) {
        text += "# TYPE " + name + ' ' +
                (family.mixed ? "untyped" : kindName(family.kind)) + '\n';
        text += family.samples;
    }
    return text;
}

TelemetryServer::TelemetryServer(const TelemetryConfig &config,
                                 MetricsRegistry *registry)
    : registry_(registry)
{
    server_.start(config.port,
                  [this](const HttpRequest &req) { return handle(req); });
    if (!config.port_file.empty()) {
        const std::string line = std::to_string(port()) + "\n";
        atomicWriteFile(config.port_file, line.data(), line.size(),
                        AtomicWriteOptions{});
    }
}

TelemetryServer::~TelemetryServer()
{
    stop();
}

void
TelemetryServer::publishHealth(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    health_json_ = json;
}

void
TelemetryServer::publishRunz(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    runz_json_ = json;
}

void
TelemetryServer::setProfileProvider(std::function<std::string()> provider)
{
    std::lock_guard<std::mutex> lock(mutex_);
    profile_provider_ = std::move(provider);
}

namespace {

/**
 * Prepend {"build":...} to a pushed JSON object so /runz attributes
 * the run to its binary and machine. Pushed documents are complete
 * objects by contract, so splicing after the opening brace is safe.
 */
std::string
withBuildInfo(const std::string &doc)
{
    if (doc.size() < 2 || doc.front() != '{')
        return doc;
    const std::string build = "{\"build\":" + buildInfoJson();
    if (doc == "{}")
        return build + "}";
    return build + "," + doc.substr(1);
}

} // namespace

HttpResponse
TelemetryServer::handle(const HttpRequest &req)
{
    HttpResponse resp;
    if (req.method != "GET" && req.method != "HEAD") {
        resp.status = 405;
        resp.body = "only GET is supported\n";
        return resp;
    }
    if (req.target == "/metrics") {
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = renderExposition(*registry_);
        return resp;
    }
    if (req.target == "/healthz" || req.target == "/runz") {
        resp.content_type = "application/json";
        std::lock_guard<std::mutex> lock(mutex_);
        resp.body = (req.target == "/healthz"
                         ? health_json_
                         : withBuildInfo(runz_json_)) +
                    "\n";
        return resp;
    }
    if (req.target == "/profilez") {
        resp.content_type = "application/json";
        std::function<std::string()> provider;
        {
            // Copy out: the provider locks the profiler internally and
            // must not run under the server's own document mutex.
            std::lock_guard<std::mutex> lock(mutex_);
            provider = profile_provider_;
        }
        resp.body = (provider ? provider() : "{\"enabled\":false}") + "\n";
        return resp;
    }
    resp.status = 404;
    resp.body =
        "unknown endpoint (try /metrics, /healthz, /runz, /profilez)\n";
    return resp;
}

} // namespace mltc
