#include "obs/observability.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace mltc {

ObsConfig
obsFromCli(const CommandLine &cli)
{
    ObsConfig cfg;
    cfg.metrics_path = cli.getString("metrics-out", "");
    cfg.trace_path = cli.getString("trace-out", "");
    cfg.miss_classes = cli.getFlag("miss-classes");
    cfg.top_textures =
        static_cast<uint32_t>(cli.getUnsigned("top-textures", 8));
    return cfg;
}

Observability::Observability(const ObsConfig &config,
                             bool install_process_hooks)
    : cfg_(config), hooks_(install_process_hooks),
      metrics_(!config.metrics_path.empty())
{
    if (!cfg_.metrics_path.empty()) {
        metrics_sink_ = std::make_unique<JsonlFileSink>(cfg_.metrics_path);
        // One shared JSONL stream: log rows carry ts/level/msg keys,
        // metric rows carry frame/counters/... keys.
        if (hooks_)
            setLogJsonlSink(metrics_sink_.get());
    }
    if (!cfg_.trace_path.empty()) {
        trace_ = std::make_unique<ChromeTraceWriter>(cfg_.trace_path);
        if (hooks_)
            setGlobalTracer(trace_.get());
    }
}

Observability::~Observability()
{
    if (hooks_ && metrics_sink_)
        setLogJsonlSink(nullptr);
    if (hooks_ && trace_ && globalTracer() == trace_.get())
        setGlobalTracer(nullptr);
    // Sinks close themselves best-effort; explicit close() reports I/O
    // failures as typed errors.
}

void
Observability::flush()
{
    if (trace_)
        trace_->flush();
}

void
Observability::close()
{
    // Telemetry loss must not abort the run that produced it: a sink
    // that hit I/O failure reports a typed error here, which we log and
    // swallow so the sweep's actual results still land.
    if (trace_) {
        if (hooks_ && globalTracer() == trace_.get())
            setGlobalTracer(nullptr);
        try {
            trace_->close();
        } catch (const Exception &e) {
            ++sink_errors_;
            logWarn("observability: trace sink lost: " +
                    e.error().describe());
        }
    }
    if (metrics_sink_) {
        if (hooks_)
            setLogJsonlSink(nullptr);
        try {
            metrics_sink_->close();
        } catch (const Exception &e) {
            ++sink_errors_;
            logWarn("observability: metrics sink lost: " +
                    e.error().describe());
        }
    }
}

} // namespace mltc
