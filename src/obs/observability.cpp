#include "obs/observability.hpp"

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace mltc {

ObsConfig
obsFromCli(const CommandLine &cli)
{
    ObsConfig cfg;
    cfg.metrics_path = cli.getString("metrics-out", "");
    cfg.trace_path = cli.getString("trace-out", "");
    cfg.miss_classes = cli.getFlag("miss-classes");
    cfg.top_textures =
        static_cast<uint32_t>(cli.getUnsigned("top-textures", 8));
    if (cli.has("telemetry-port")) {
        const unsigned long port = cli.getUnsigned("telemetry-port", 0);
        if (port > 65535)
            throw Exception(ErrorCode::BadArgument,
                            "--telemetry-port: not a TCP port");
        cfg.telemetry = true;
        cfg.telemetry_port = static_cast<uint16_t>(port);
    }
    cfg.telemetry_port_file = cli.getString("telemetry-port-file", "");
    cfg.slo_spec = cli.getString("slo", "");
    cfg.slo_out = cli.getString("slo-out", "");
    cfg.flight_out = cli.getString("flight-out", "");
    cfg.profile_out = cli.getString("profile-out", "");
    const unsigned long hz = cli.getUnsigned("profile-hz", 997);
    if (hz == 0 || hz > 100000)
        throw Exception(ErrorCode::BadArgument,
                        "--profile-hz: expected a sampling rate in "
                        "[1, 100000], got '" +
                            cli.getString("profile-hz", "") + "'");
    cfg.profile_hz = static_cast<uint32_t>(hz);
    cfg.profile_counters = !cli.getFlag("profile-no-counters");
    // Test/CI hook: exercise the denied-perf_event_open degradation
    // deterministically, whatever the host kernel allows.
    cfg.profile_force_fallback =
        envInt("MLTC_PROFILE_FORCE_FALLBACK", 0) != 0;
    return cfg;
}

Observability::Observability(const ObsConfig &config,
                             bool install_process_hooks)
    : cfg_(config), hooks_(install_process_hooks),
      metrics_(!config.metrics_path.empty() || config.telemetry)
{
    // Parse SLO rules first: a malformed --slo must fail before any
    // sink is created.
    if (!cfg_.slo_spec.empty())
        slo_rules_ = parseSloRules(cfg_.slo_spec);

    if (!cfg_.metrics_path.empty()) {
        metrics_sink_ = std::make_unique<JsonlFileSink>(cfg_.metrics_path);
        // One shared JSONL stream: log rows carry ts/level/msg keys,
        // metric rows carry frame/counters/... keys.
        if (hooks_)
            setLogJsonlSink(metrics_sink_.get());
    }
    if (!cfg_.trace_path.empty()) {
        trace_ = std::make_unique<ChromeTraceWriter>(cfg_.trace_path);
        if (hooks_)
            setGlobalTracer(trace_.get());
    }
    if (!cfg_.profile_out.empty()) {
        ProfilerConfig pc;
        pc.hz = cfg_.profile_hz;
        pc.out_prefix = cfg_.profile_out;
        pc.counters = cfg_.profile_counters;
        pc.force_counters_unavailable = cfg_.profile_force_fallback;
        pc.registry = &metrics_;
        profiler_ = std::make_unique<StageProfiler>(pc);
        if (hooks_)
            installStageProfiler(profiler_.get());
    }
    if (cfg_.telemetry) {
        TelemetryConfig tc;
        tc.enabled = true;
        tc.port = cfg_.telemetry_port;
        tc.port_file = cfg_.telemetry_port_file;
        telemetry_ = std::make_unique<TelemetryServer>(tc, &metrics_);
        if (profiler_) {
            StageProfiler *p = profiler_.get();
            telemetry_->setProfileProvider(
                [p]() { return p->liveJson(); });
        }
    }
    if (!cfg_.slo_out.empty())
        slo_sink_ = std::make_unique<JsonlFileSink>(cfg_.slo_out);
    if (!cfg_.flight_out.empty()) {
        FlightRecorder::Config fc;
        fc.prefix = cfg_.flight_out;
        fc.registry = &metrics_;
        flight_ = std::make_unique<FlightRecorder>(fc);
        if (hooks_)
            installFlightRecorder(flight_.get());
    }
}

Observability::~Observability()
{
    if (hooks_ && metrics_sink_)
        setLogJsonlSink(nullptr);
    if (hooks_ && trace_ && globalTracer() == trace_.get())
        setGlobalTracer(nullptr);
    if (hooks_ && flight_ && flightRecorder() == flight_.get())
        installFlightRecorder(nullptr);
    if (hooks_ && profiler_ && stageProfiler() == profiler_.get())
        installStageProfiler(nullptr);
    // The telemetry server joins its thread in its own destructor;
    // sinks close themselves best-effort; explicit close() reports I/O
    // failures as typed errors.
}

void
Observability::flush()
{
    if (trace_)
        trace_->flush();
    // Matches the trace/metrics signal-flush contract: a cooperative
    // SIGINT/SIGTERM exit keeps every sample taken so far.
    if (profiler_)
        profiler_->flushOutputs();
}

void
Observability::close()
{
    // Telemetry loss must not abort the run that produced it: a sink
    // that hit I/O failure reports a typed error here, which we log and
    // swallow so the sweep's actual results still land.
    if (telemetry_)
        telemetry_->stop(); // joins the scrape thread
    if (hooks_ && flight_ && flightRecorder() == flight_.get())
        installFlightRecorder(nullptr);
    if (profiler_) {
        if (hooks_ && stageProfiler() == profiler_.get())
            installStageProfiler(nullptr);
        profiler_->stopSampler();
        try {
            profiler_->writeOutputs();
        } catch (const Exception &e) {
            ++sink_errors_;
            logWarn("observability: profile sink lost: " +
                    e.error().describe());
        }
    }
    if (slo_sink_) {
        try {
            slo_sink_->close();
        } catch (const Exception &e) {
            ++sink_errors_;
            logWarn("observability: slo sink lost: " +
                    e.error().describe());
        }
    }
    if (trace_) {
        if (hooks_ && globalTracer() == trace_.get())
            setGlobalTracer(nullptr);
        try {
            trace_->close();
        } catch (const Exception &e) {
            ++sink_errors_;
            logWarn("observability: trace sink lost: " +
                    e.error().describe());
        }
    }
    if (metrics_sink_) {
        if (hooks_)
            setLogJsonlSink(nullptr);
        try {
            metrics_sink_->close();
        } catch (const Exception &e) {
            ++sink_errors_;
            logWarn("observability: metrics sink lost: " +
                    e.error().describe());
        }
    }
}

} // namespace mltc
