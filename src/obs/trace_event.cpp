#include "obs/trace_event.hpp"

#include <algorithm>
#include <cinttypes>

#include "util/error.hpp"
#include "util/io.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace mltc {

void
setGlobalTracer(ChromeTraceWriter *tracer)
{
    detail::g_tracer.store(tracer, std::memory_order_release);
}

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
    : path_(path), t0_(std::chrono::steady_clock::now())
{
    file_ = FileBackend::instance().open(path, "wb");
    if (!file_)
        throw Exception(ErrorCode::Io,
                        "ChromeTraceWriter: cannot open '" + path + "'");
    putLocked("{\"traceEvents\":[");
    // Process/thread metadata so Perfetto shows meaningful track names.
    putLocked("\n{\"ph\":\"M\",\"pid\":1,\"tid\":1,"
              "\"name\":\"process_name\","
              "\"args\":{\"name\":\"mltc\"}},"
              "\n{\"ph\":\"M\",\"pid\":1,\"tid\":1,"
              "\"name\":\"thread_name\","
              "\"args\":{\"name\":\"simulation\"}}");
    first_ = false; // metadata already needs comma separation
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    if (file_) {
        try {
            close();
        } catch (...) {
            // Destructor must not throw; close() explicitly to observe
            // write failures.
        }
    }
}

void
ChromeTraceWriter::putLocked(const char *data, size_t size)
{
    if (!file_)
        return;
    FileBackend &fs = FileBackend::instance();
    if (!fs.write(file_, data, size)) {
        // Telemetry must not take the run down: on the first I/O
        // failure the sink disables itself (the emitters all no-op on a
        // null file) and the loss surfaces as a typed throw at close().
        failed_ = true;
        fs.close(file_);
        file_ = nullptr;
        logWarn("ChromeTraceWriter: write failed on '" + path_ +
                "'; trace sink disabled");
    }
}

void
ChromeTraceWriter::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ && !FileBackend::instance().flush(file_))
        failed_ = true;
}

uint64_t
ChromeTraceWriter::nowUsLocked()
{
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    // Clamp for monotonicity: the schema requires non-decreasing ts.
    last_ts_ = std::max(last_ts_, static_cast<uint64_t>(us));
    return last_ts_;
}

uint64_t
ChromeTraceWriter::nowUs()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nowUsLocked();
}

uint64_t
ChromeTraceWriter::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

bool
ChromeTraceWriter::disabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failed_;
}

size_t
ChromeTraceWriter::openScopes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t open = 0;
    for (const auto &[id, state] : threads_)
        open += state.stack.size();
    return open;
}

ChromeTraceWriter::ThreadState &
ChromeTraceWriter::threadState()
{
    auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
    ThreadState &state = it->second;
    if (inserted) {
        state.tid = next_tid_++;
        // tid 1 ("simulation") is already announced in the prologue, so
        // a single-threaded run emits byte-for-byte the old preamble;
        // later threads introduce themselves as workers.
        if (state.tid != 1 && file_) {
            char buf[128];
            const int n = std::snprintf(
                buf, sizeof(buf),
                "%s\n{\"ph\":\"M\",\"pid\":1,\"tid\":%" PRIu32
                ",\"name\":\"thread_name\","
                "\"args\":{\"name\":\"worker-%" PRIu32 "\"}}",
                first_ ? "" : ",", state.tid, state.tid);
            putLocked(buf, static_cast<size_t>(n));
            first_ = false;
        }
    }
    return state;
}

void
ChromeTraceWriter::emitPrefix(char ph, uint64_t ts, uint32_t tid)
{
    if (!file_)
        return;
    char buf[96];
    const int n = std::snprintf(buf, sizeof(buf),
                                "%s\n{\"ph\":\"%c\",\"pid\":1,\"tid\":%" PRIu32
                                ",\"ts\":%" PRIu64,
                                first_ ? "" : ",", ph, tid, ts);
    putLocked(buf, static_cast<size_t>(n));
    first_ = false;
}

void
ChromeTraceWriter::emitCommon(const std::string &name, const char *cat)
{
    if (!file_)
        return;
    putLocked(",\"name\":\"" + jsonEscape(name) + "\",\"cat\":\"" + cat +
              "\"");
}

void
ChromeTraceWriter::finishEvent()
{
    if (!file_)
        return;
    putLocked("}", 1);
    ++events_;
}

void
ChromeTraceWriter::begin(const std::string &name, const char *cat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ThreadState &state = threadState();
    const uint64_t ts = nowUsLocked();
    emitPrefix('B', ts, state.tid);
    emitCommon(name, cat);
    finishEvent();
    state.stack.push_back({name, ts, 0});
}

void
ChromeTraceWriter::endLocked(ThreadState &state)
{
    const uint64_t ts = nowUsLocked();
    Scope scope = std::move(state.stack.back());
    state.stack.pop_back();
    emitPrefix('E', ts, state.tid);
    finishEvent();

    const uint64_t inclusive = ts - scope.start_us;
    StageStat &stat = stages_[scope.name];
    stat.name = scope.name;
    ++stat.count;
    stat.total_us += inclusive;
    stat.self_us += inclusive - std::min(scope.child_us, inclusive);
    if (!state.stack.empty())
        state.stack.back().child_us += inclusive;
}

void
ChromeTraceWriter::end()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ThreadState &state = threadState();
    if (state.stack.empty())
        throw Exception(ErrorCode::BadArgument,
                        "ChromeTraceWriter: end() without a matching begin()");
    endLocked(state);
}

void
ChromeTraceWriter::instant(const std::string &name, const char *cat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ThreadState &state = threadState();
    emitPrefix('i', nowUsLocked(), state.tid);
    emitCommon(name, cat);
    if (file_)
        putLocked(",\"s\":\"t\"");
    finishEvent();
}

void
ChromeTraceWriter::instant(
    const std::string &name, const char *cat,
    const std::vector<std::pair<std::string, std::string>> &args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ThreadState &state = threadState();
    emitPrefix('i', nowUsLocked(), state.tid);
    emitCommon(name, cat);
    if (file_) {
        JsonWriter a;
        a.beginObject();
        for (const auto &[k, v] : args)
            a.kv(k, v);
        a.endObject();
        putLocked(",\"s\":\"t\",\"args\":" + a.str());
    }
    finishEvent();
}

void
ChromeTraceWriter::counter(
    const std::string &name,
    const std::vector<std::pair<std::string, double>> &series)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ThreadState &state = threadState();
    emitPrefix('C', nowUsLocked(), state.tid);
    emitCommon(name, "metric");
    if (file_) {
        JsonWriter args;
        args.beginObject();
        for (const auto &[k, v] : series)
            args.kv(k, v);
        args.endObject();
        putLocked(",\"args\":" + args.str());
    }
    finishEvent();
}

void
ChromeTraceWriter::recordAggregate(const std::string &name, uint64_t duration_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    StageStat &stat = stages_[name];
    stat.name = name;
    ++stat.count;
    stat.total_us += duration_us;
    stat.self_us += duration_us;
}

std::vector<StageStat>
ChromeTraceWriter::stageStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StageStat> out;
    out.reserve(stages_.size());
    for (const auto &[name, stat] : stages_)
        out.push_back(stat);
    std::sort(out.begin(), out.end(),
              [](const StageStat &a, const StageStat &b) {
                  return a.total_us > b.total_us;
              });
    return out;
}

void
ChromeTraceWriter::close()
{
    bool rc = true;
    bool failed = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        failed = failed_;
        if (!file_) {
            if (!failed)
                return; // already cleanly closed
        } else {
            // A truncated run still yields matched B/E pairs per tid.
            for (auto &[id, state] : threads_)
                while (!state.stack.empty())
                    endLocked(state);
            putLocked("\n],\"displayTimeUnit\":\"ms\"}\n");
            if (file_) {
                rc = FileBackend::instance().close(file_);
                file_ = nullptr;
            }
            failed = failed_;
        }
    }
    ChromeTraceWriter *self = this;
    detail::g_tracer.compare_exchange_strong(self, nullptr);
    if (!rc || failed)
        throw Exception(ErrorCode::Io,
                        "ChromeTraceWriter: write failure on '" + path_ + "'");
}

} // namespace mltc
