#include "obs/trace_event.hpp"

#include <algorithm>
#include <cinttypes>

#include "util/error.hpp"
#include "util/json.hpp"

namespace mltc {

void
setGlobalTracer(ChromeTraceWriter *tracer)
{
    detail::g_tracer = tracer;
}

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
    : path_(path), t0_(std::chrono::steady_clock::now())
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        throw Exception(ErrorCode::Io,
                        "ChromeTraceWriter: cannot open '" + path + "'");
    if (std::fputs("{\"traceEvents\":[", file_) == EOF)
        failed_ = true;
    // Process/thread metadata so Perfetto shows meaningful track names.
    if (std::fputs("\n{\"ph\":\"M\",\"pid\":1,\"tid\":1,"
                   "\"name\":\"process_name\","
                   "\"args\":{\"name\":\"mltc\"}},"
                   "\n{\"ph\":\"M\",\"pid\":1,\"tid\":1,"
                   "\"name\":\"thread_name\","
                   "\"args\":{\"name\":\"simulation\"}}",
                   file_) == EOF)
        failed_ = true;
    first_ = false; // metadata already needs comma separation
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    if (file_) {
        try {
            close();
        } catch (...) {
            // Destructor must not throw; close() explicitly to observe
            // write failures.
        }
    }
}

void
ChromeTraceWriter::flush()
{
    if (file_ && std::fflush(file_) != 0)
        failed_ = true;
}

uint64_t
ChromeTraceWriter::nowUs()
{
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    // Clamp for monotonicity: the schema requires non-decreasing ts.
    last_ts_ = std::max(last_ts_, static_cast<uint64_t>(us));
    return last_ts_;
}

void
ChromeTraceWriter::emitPrefix(char ph, uint64_t ts)
{
    if (!file_)
        return;
    if (std::fprintf(file_, "%s\n{\"ph\":\"%c\",\"pid\":1,\"tid\":1,"
                            "\"ts\":%" PRIu64,
                     first_ ? "" : ",", ph, ts) < 0)
        failed_ = true;
    first_ = false;
}

void
ChromeTraceWriter::emitCommon(const std::string &name, const char *cat)
{
    if (!file_)
        return;
    if (std::fprintf(file_, ",\"name\":\"%s\",\"cat\":\"%s\"",
                     jsonEscape(name).c_str(), cat) < 0)
        failed_ = true;
}

void
ChromeTraceWriter::finishEvent()
{
    if (!file_)
        return;
    if (std::fputc('}', file_) == EOF)
        failed_ = true;
    ++events_;
}

void
ChromeTraceWriter::begin(const std::string &name, const char *cat)
{
    const uint64_t ts = nowUs();
    emitPrefix('B', ts);
    emitCommon(name, cat);
    finishEvent();
    stack_.push_back({name, ts, 0});
}

void
ChromeTraceWriter::end()
{
    if (stack_.empty())
        throw Exception(ErrorCode::BadArgument,
                        "ChromeTraceWriter: end() without a matching begin()");
    const uint64_t ts = nowUs();
    Scope scope = std::move(stack_.back());
    stack_.pop_back();
    emitPrefix('E', ts);
    finishEvent();

    const uint64_t inclusive = ts - scope.start_us;
    StageStat &stat = stages_[scope.name];
    stat.name = scope.name;
    ++stat.count;
    stat.total_us += inclusive;
    stat.self_us += inclusive - std::min(scope.child_us, inclusive);
    if (!stack_.empty())
        stack_.back().child_us += inclusive;
}

void
ChromeTraceWriter::instant(const std::string &name, const char *cat)
{
    emitPrefix('i', nowUs());
    emitCommon(name, cat);
    if (file_ && std::fputs(",\"s\":\"t\"", file_) == EOF)
        failed_ = true;
    finishEvent();
}

void
ChromeTraceWriter::counter(
    const std::string &name,
    const std::vector<std::pair<std::string, double>> &series)
{
    emitPrefix('C', nowUs());
    emitCommon(name, "metric");
    if (file_) {
        JsonWriter args;
        args.beginObject();
        for (const auto &[k, v] : series)
            args.kv(k, v);
        args.endObject();
        if (std::fprintf(file_, ",\"args\":%s", args.str().c_str()) < 0)
            failed_ = true;
    }
    finishEvent();
}

void
ChromeTraceWriter::recordAggregate(const std::string &name, uint64_t duration_us)
{
    StageStat &stat = stages_[name];
    stat.name = name;
    ++stat.count;
    stat.total_us += duration_us;
    stat.self_us += duration_us;
}

std::vector<StageStat>
ChromeTraceWriter::stageStats() const
{
    std::vector<StageStat> out;
    out.reserve(stages_.size());
    for (const auto &[name, stat] : stages_)
        out.push_back(stat);
    std::sort(out.begin(), out.end(),
              [](const StageStat &a, const StageStat &b) {
                  return a.total_us > b.total_us;
              });
    return out;
}

void
ChromeTraceWriter::close()
{
    if (!file_)
        return;
    while (!stack_.empty())
        end(); // a truncated run still yields matched B/E pairs
    if (std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", file_) == EOF)
        failed_ = true;
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (detail::g_tracer == this)
        detail::g_tracer = nullptr;
    if (rc != 0 || failed_)
        throw Exception(ErrorCode::Io,
                        "ChromeTraceWriter: write failure on '" + path_ + "'");
}

} // namespace mltc
