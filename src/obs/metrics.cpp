#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mltc {

std::string
metricKey(const std::string &name, const MetricLabels &labels)
{
    if (labels.empty())
        return name;
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 1; i < sorted.size(); ++i)
        if (sorted[i].first == sorted[i - 1].first)
            throw Exception(ErrorCode::BadArgument,
                            "metricKey: duplicate label '" +
                                sorted[i].first + "' on metric '" + name +
                                "'");
    std::string key = name + '{';
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            key += ',';
        key += sorted[i].first;
        key += '=';
        key += sorted[i].second;
    }
    key += '}';
    return key;
}

MetricsRegistry::Entry *
MetricsRegistry::resolve(const std::string &name, const MetricLabels &labels,
                         MetricKind kind)
{
    if (!enabled_)
        return nullptr;
    const std::string key = metricKey(name, labels);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        if (it->second.kind != kind)
            throw Exception(ErrorCode::BadArgument,
                            "MetricsRegistry: metric '" + key +
                                "' re-registered as a different kind");
        return &it->second;
    }
    Entry e;
    e.kind = kind;
    switch (kind) {
      case MetricKind::Counter:
        e.index = counters_.size();
        counters_.push_back(0);
        break;
      case MetricKind::Gauge:
        e.index = gauges_.size();
        gauges_.push_back(0.0);
        break;
      case MetricKind::Histogram:
        // Caller sizes the histogram in histogram(); placeholder here.
        e.index = histograms_.size();
        break;
    }
    return &entries_.emplace(key, e).first->second;
}

CounterHandle
MetricsRegistry::counter(const std::string &name, const MetricLabels &labels)
{
    Entry *e = resolve(name, labels, MetricKind::Counter);
    return e ? CounterHandle(&counters_[e->index]) : CounterHandle();
}

GaugeHandle
MetricsRegistry::gauge(const std::string &name, const MetricLabels &labels)
{
    Entry *e = resolve(name, labels, MetricKind::Gauge);
    return e ? GaugeHandle(&gauges_[e->index]) : GaugeHandle();
}

HistogramHandle
MetricsRegistry::histogram(const std::string &name,
                           const MetricLabels &labels, uint32_t max_value)
{
    if (!enabled_)
        return HistogramHandle();
    const size_t before = histograms_.size();
    Entry *e = resolve(name, labels, MetricKind::Histogram);
    if (histograms_.size() == before && e->index == before)
        histograms_.emplace_back(max_value); // first registration
    return HistogramHandle(&histograms_[e->index]);
}

uint64_t
MetricsRegistry::counterValue(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.kind != MetricKind::Counter)
        return 0;
    return counters_[it->second.index];
}

double
MetricsRegistry::gaugeValue(const std::string &key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.kind != MetricKind::Gauge)
        return 0.0;
    return gauges_[it->second.index];
}

std::string
MetricsRegistry::frameSnapshotJson(int64_t frame) const
{
    JsonWriter w;
    w.beginObject().kv("frame", frame);
    // entries_ is an ordered map, so each section lists keys sorted.
    w.key("counters").beginObject();
    for (const auto &[key, e] : entries_)
        if (e.kind == MetricKind::Counter)
            w.kv(key, counters_[e.index]);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[key, e] : entries_)
        if (e.kind == MetricKind::Gauge)
            w.kv(key, gauges_[e.index]);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[key, e] : entries_) {
        if (e.kind != MetricKind::Histogram)
            continue;
        w.key(key);
        histograms_[e.index].writeJson(w);
    }
    w.endObject().endObject();
    return w.str();
}

void
MetricsRegistry::writeFrameSnapshot(JsonlFileSink &sink, int64_t frame) const
{
    sink.writeLine(frameSnapshotJson(frame));
}

void
MetricsRegistry::forEach(
    const std::function<void(const std::string &, MetricKind, uint64_t,
                             double, const Histogram *)> &fn) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (const auto &[key, e] : entries_) {
        switch (e.kind) {
          case MetricKind::Counter:
            fn(key, e.kind, counters_[e.index], 0.0, nullptr);
            break;
          case MetricKind::Gauge:
            fn(key, e.kind, 0, gauges_[e.index], nullptr);
            break;
          case MetricKind::Histogram:
            fn(key, e.kind, 0, 0.0, &histograms_[e.index]);
            break;
        }
    }
}

} // namespace mltc
