/**
 * @file
 * Continuous profiling plane: sampled stage flamegraphs and hardware
 * counter attribution (docs/profiling.md).
 *
 * Three legs, one subsystem:
 *
 *  1. A sampling stage profiler. Every worker thread maintains a
 *     lock-free annotated stage stack (pushed by ScopedProfileStage
 *     from the same hook sites the Chrome tracer instruments:
 *     rasterizer passes, the sampler, CacheSim::access, sweep legs and
 *     tenant streams). A per-process sampler thread wakes at
 *     --profile-hz (default 997, prime so it cannot phase-lock with
 *     frame loops) and snapshots every claimed stack into a per-thread
 *     ring buffer; rings fold into an aggregate stack->count map when
 *     they fill and on flush. Flush emits collapsed-stack folded
 *     format (`PREFIX.folded`, flamegraph.pl / speedscope compatible)
 *     plus a JSON summary (`PREFIX.json`) with per-stage self/total
 *     sample counts, per sweep leg and per tenant stream, headed by
 *     the build provenance (util/build_info.hpp).
 *
 *  2. Hardware counter attribution via perf_event_open: one grouped
 *     event set per thread (cycles leader, instructions,
 *     LLC-load-misses, branch-misses), read at the boundaries of the
 *     hot stages (rasterizer passes) and whole sweep legs. When the
 *     syscall is denied (CI containers, perf_event_paranoid) the
 *     profiler degrades to a `profile.counters_unavailable` gauge —
 *     never a hard failure.
 *
 *  3. Differential profiling: loadFolded() + diffFoldedProfiles()
 *     align two .folded files by stage and compute symmetric relative
 *     self-share deltas — `report profile A.folded B.folded
 *     [--threshold R]` exits 3 over threshold, the same contract as
 *     `report compare`.
 *
 * Concurrency model (mirrors trace_event.hpp's global-slot idiom): the
 * profiler installs into an atomic process-global slot; when absent,
 * every hook is one atomic load + branch. Stack push/pop are plain
 * atomic stores (no RMW, no fence beyond release) on a cache-line-
 * aligned per-thread slot; the sampler reads depth with acquire and
 * the frames relaxed. A torn read can momentarily misattribute one
 * sample to a neighbouring stage — harmless for a statistical profile
 * and the price of a zero-lock hot path.
 *
 * Determinism contract: the profiler observes, never steers. Attaching
 * it cannot change any simulation output byte (validate_profile.sh
 * proves CSV byte-identity against a profiler-off run). Its own
 * outputs are deterministic in *shape*: folded lines sorted
 * lexicographically, JSON legs/streams in annotation registration
 * order — only the sample counts vary run to run.
 */
#ifndef MLTC_OBS_PROFILER_HPP
#define MLTC_OBS_PROFILER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mltc {

class StageProfiler;

/** Profiler knobs (a slice of ObsConfig). */
struct ProfilerConfig
{
    uint32_t hz = 997;          ///< sampling rate (1..100000)
    std::string out_prefix;     ///< PREFIX.folded + PREFIX.json ("" = live-only)
    bool counters = true;       ///< attempt perf_event_open at all
    bool force_counters_unavailable = false; ///< test hook: degraded path
    MetricsRegistry *registry = nullptr;     ///< live aggregate export
};

namespace detail {

constexpr uint32_t kProfileMaxDepth = 16;
constexpr uint32_t kProfileMaxThreads = 64;

/**
 * One thread's stage stack, readable by the sampler mid-mutation.
 * Push: frames[d] store (relaxed) then depth d+1 store (release).
 * Pop: depth d-1 store (release). Sampler: depth load (acquire),
 * frames loads (relaxed). Everything is atomic, so the race is benign
 * by construction (and clean under TSan).
 */
struct alignas(64) ProfileSlot
{
    std::atomic<uint32_t> depth{0};
    std::atomic<const char *> frames[kProfileMaxDepth] = {};
};

/** The process-global profiler slot; mirrors detail::g_tracer. */
inline std::atomic<StageProfiler *> g_profiler{nullptr};

} // namespace detail

/** Install @p profiler as the process-global profiler (null removes). */
void installStageProfiler(StageProfiler *profiler);

/**
 * The process-global profiler, or null when profiling is disabled.
 * Inline for the same reason globalTracer() is: the disabled-mode cost
 * of every hook must stay one atomic load + branch (the <5% microbench
 * gate measures exactly this).
 */
inline StageProfiler *
stageProfiler()
{
    return detail::g_profiler.load(std::memory_order_acquire);
}

/** Hardware counter totals attributed to one stage. */
struct HwStageCounters
{
    uint64_t enters = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llc_misses = 0;
    uint64_t branch_misses = 0;
};

/** Self/total sample counts of one stage (from folded stacks). */
struct ProfileStageCount
{
    std::string name;
    uint64_t self = 0;  ///< samples with this stage on top
    uint64_t total = 0; ///< samples with this stage anywhere on stack
};

/** A parsed .folded profile plus its per-stage aggregation. */
struct FoldedProfile
{
    std::map<std::string, uint64_t> stacks; ///< folded key -> samples
    std::vector<ProfileStageCount> stages;  ///< sorted by name
    uint64_t total_samples = 0;
};

/** One stage's appearance in a differential profile. */
struct ProfileDiffRow
{
    std::string name;
    double share_a = 0.0; ///< self-sample share in A (0..1)
    double share_b = 0.0; ///< self-sample share in B
    double rel_delta = 0.0; ///< |a-b| / max(a,b); 1.0 when one side absent
};

/** diffFoldedProfiles() result: per-stage rows plus the worst delta. */
struct ProfileDiff
{
    std::vector<ProfileDiffRow> rows; ///< largest delta first
    double max_rel = 0.0;
};

// Folded-format helpers (unit-tested in tests/test_profiler.cpp).

/** Escape one frame name for a folded stack key (';'/'\' escaped). */
std::string foldedEscape(const std::string &frame);

/** Join @p frames into one folded stack key, escaping each frame. */
std::string foldedKey(const std::vector<std::string> &frames);

/** Split a folded stack key back into frame names (unescaping). */
std::vector<std::string> foldedSplit(const std::string &key);

/**
 * Render a stack->count map as collapsed-stack text: one
 * "frame;frame;... N" line per stack, lexicographic key order,
 * zero-count stacks omitted.
 */
std::string renderFolded(const std::map<std::string, uint64_t> &stacks);

/**
 * Load a .folded file and aggregate per-stage self/total counts.
 * @throws mltc::Exception (Io on open failure, Corrupt on a line that
 *         does not parse as "stack count").
 */
FoldedProfile loadFolded(const std::string &path);

/**
 * Align two profiles by stage name and compute symmetric relative
 * self-share deltas. @p min_share suppresses noise: stages whose
 * self-share is below it in both profiles are reported with delta 0.
 */
ProfileDiff diffFoldedProfiles(const FoldedProfile &a,
                               const FoldedProfile &b,
                               double min_share = 0.0);

/** The continuous profiler; see file comment. */
class StageProfiler
{
  public:
    /**
     * Starts the sampler thread immediately.
     * @throws mltc::Exception (BadArgument) on an hz outside [1,1e5].
     */
    explicit StageProfiler(const ProfilerConfig &config);

    /** Stops the sampler and releases the perf fds (no file I/O). */
    ~StageProfiler();

    StageProfiler(const StageProfiler &) = delete;
    StageProfiler &operator=(const StageProfiler &) = delete;

    const ProfilerConfig &config() const { return cfg_; }

    /**
     * Push @p name on the calling thread's stage stack. Returns the
     * thread's slot for the matching leave(), or null when the thread
     * pool outgrew kProfileMaxThreads (the sample is counted dropped).
     * Null @p name is a no-op. Called by ScopedProfileStage only.
     */
    detail::ProfileSlot *enter(const char *name);

    /** Pop the innermost stage pushed via enter(). */
    static void
    leave(detail::ProfileSlot *slot)
    {
        const uint32_t d = slot->depth.load(std::memory_order_relaxed);
        if (d > 0)
            slot->depth.store(d - 1, std::memory_order_release);
    }

    /**
     * Intern an annotation name (sweep leg, tenant stream), returning
     * a pointer stable for the profiler's lifetime. Registration order
     * is remembered: the JSON summary lists legs/streams in first-
     * intern order, which SweepExecutor registration order induces.
     */
    const char *intern(const std::string &name);

    /** True once any thread failed to open its perf event group. */
    bool countersUnavailable() const
    {
        return counters_unavailable_.load(std::memory_order_relaxed);
    }

    /** Whether counter scopes should even attempt a read. */
    bool countersWanted() const { return cfg_.counters; }

    /**
     * Read the calling thread's counter group (opening it lazily).
     * Returns false — after flipping the unavailable gauge — when the
     * group cannot be opened or read. @p out receives cycles,
     * instructions, LLC misses, branch misses.
     */
    bool readCounters(uint64_t out[4]);

    /** Attribute a counter delta (exit minus enter) to @p stage. */
    void accumulateCounters(const char *stage, const uint64_t delta[4]);

    /** Samples folded so far (rings included). */
    uint64_t sampleCount() const;

    /** Samples dropped to slot exhaustion. */
    uint64_t droppedSamples() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * The current aggregate as a JSON document (the /profilez body):
     * same schema as PREFIX.json, rendered live. Never throws.
     */
    std::string liveJson();

    /**
     * Fold outstanding rings and write PREFIX.folded + PREFIX.json.
     * No-op without an out_prefix.
     * @throws mltc::Exception (Io) when a file cannot be written.
     */
    void writeOutputs();

    /**
     * writeOutputs() for signal/flight paths: best-effort, never
     * throws, returns false on failure. Safe to call repeatedly — the
     * writes are atomic replacements, so a later close() supersedes.
     */
    bool flushOutputs() noexcept;

    /** Stop the sampler thread (idempotent; destructor also stops). */
    void stopSampler();

  private:
    struct Sample
    {
        uint32_t depth = 0;
        const char *frames[detail::kProfileMaxDepth];
    };

    /** Per-thread perf_event group (fds owned by the profiler). */
    struct HwGroup
    {
        int fds[4] = {-1, -1, -1, -1};
        bool open = false;
        bool failed = false;
    };

    void samplerLoop();
    void tickLocked();
    void foldRingLocked(uint32_t slot);
    void foldAllLocked();
    void publishRegistryLocked();
    std::string renderJsonLocked();
    uint32_t slotForThisThread();
    bool openGroup(HwGroup &g);
    void markCountersUnavailable();

    ProfilerConfig cfg_;
    const uint64_t generation_; ///< distinguishes profiler instances
    detail::ProfileSlot slots_[detail::kProfileMaxThreads];
    HwGroup groups_[detail::kProfileMaxThreads];
    std::atomic<uint32_t> next_slot_{0};
    std::atomic<uint64_t> dropped_{0};
    std::atomic<bool> counters_unavailable_{false};

    mutable std::mutex mutex_; ///< rings, folded_, interns, counters
    std::vector<Sample> rings_[detail::kProfileMaxThreads];
    std::map<std::string, uint64_t> folded_; ///< stack key -> samples
    uint64_t folded_samples_ = 0;
    std::deque<std::string> intern_storage_;
    std::map<std::string, const char *> interned_;
    std::vector<const char *> intern_order_;
    std::map<std::string, HwStageCounters> counter_stats_;
    std::chrono::steady_clock::time_point t0_;

    // Live registry handles (null when no registry / disabled).
    CounterHandle samples_metric_;
    CounterHandle dropped_metric_;
    GaugeHandle unavailable_metric_;

    std::atomic<bool> stop_{false};
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::thread sampler_;
};

/**
 * RAII stage scope against the global profiler; a no-op when none is
 * installed (one inline atomic load + branch) or when @p name is null
 * (an annotation interned while no profiler existed).
 *
 * With @p with_counters, the scope also brackets a grouped hardware
 * counter read and attributes the delta to @p name — reserved for
 * coarse stages (rasterizer passes, whole sweep legs); never put it on
 * a per-texel path.
 */
class ScopedProfileStage
{
  public:
    explicit ScopedProfileStage(const char *name)
    {
        StageProfiler *p = stageProfiler();
        if (p != nullptr && name != nullptr) [[unlikely]]
            slot_ = p->enter(name);
    }

    ScopedProfileStage(const char *name, bool with_counters) : name_(name)
    {
        StageProfiler *p = stageProfiler();
        if (p != nullptr && name != nullptr) [[unlikely]] {
            slot_ = p->enter(name);
            if (with_counters && p->countersWanted())
                counting_ = p->readCounters(start_);
            prof_ = p;
        }
    }

    ~ScopedProfileStage()
    {
        if (counting_) {
            uint64_t end[4];
            if (prof_->readCounters(end)) {
                uint64_t delta[4];
                for (int i = 0; i < 4; ++i)
                    delta[i] = end[i] >= start_[i] ? end[i] - start_[i] : 0;
                prof_->accumulateCounters(name_, delta);
            }
        }
        if (slot_ != nullptr) [[unlikely]]
            StageProfiler::leave(slot_);
    }

    ScopedProfileStage(const ScopedProfileStage &) = delete;
    ScopedProfileStage &operator=(const ScopedProfileStage &) = delete;

  private:
    detail::ProfileSlot *slot_ = nullptr;
    StageProfiler *prof_ = nullptr;
    const char *name_ = nullptr;
    bool counting_ = false;
    uint64_t start_[4] = {};
};

/**
 * Intern an annotation frame ("leg:NAME", "stream:NAME") against the
 * global profiler; null when profiling is off (ScopedProfileStage
 * treats a null name as a no-op, so call sites stay unconditional).
 */
const char *profileInternAnnotation(const std::string &name);

} // namespace mltc

#endif // MLTC_OBS_PROFILER_HPP
