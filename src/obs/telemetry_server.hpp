/**
 * @file
 * The live telemetry plane's exposition pillar: an embedded loopback
 * HTTP server rendering the run's MetricsRegistry in Prometheus text
 * exposition format on demand, plus two JSON endpoints the runners
 * push into.
 *
 * Endpoints:
 *   /metrics  Prometheus text format 0.0.4, rendered live from the
 *             registry under its update lock: every counter, gauge and
 *             histogram (cumulative power-of-two `le` buckets plus
 *             `_sum`/`_count`), with the registry's sorted labels
 *             (`{stream="3"}`, `{sim="4 MB L2"}`) carried through.
 *   /healthz  watchdog / quarantine state, pushed by the runner each
 *             round via publishHealth() — '{"status":...}' JSON.
 *   /runz     run manifest (config, seed, frame progress, per-leg
 *             sweep status), pushed via publishRunz(); the server
 *             prepends the build provenance (util/build_info.hpp) so
 *             every scraped run is attributable to a binary+machine.
 *   /profilez live continuous-profiling aggregates (same JSON schema
 *             as --profile-out's PREFIX.json), rendered on demand via
 *             setProfileProvider(); '{"enabled":false}' without one.
 *
 * The scrape thread only ever touches the registry through its lock
 * and the two pushed strings under the server's own mutex, so a
 * concurrent scrape can never perturb the simulation or its outputs —
 * the byte-identity acceptance check in
 * scripts/validate_exposition.sh holds for any scrape timing.
 */
#ifndef MLTC_OBS_TELEMETRY_SERVER_HPP
#define MLTC_OBS_TELEMETRY_SERVER_HPP

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "util/http.hpp"

namespace mltc {

/** Telemetry-plane knobs (a slice of ObsConfig). */
struct TelemetryConfig
{
    bool enabled = false;  ///< --telemetry-port given
    uint16_t port = 0;     ///< 0 = kernel-assigned (see port())
    std::string port_file; ///< write the bound port here, for scripts
};

/**
 * Render @p registry in Prometheus text exposition format. Metric
 * families are grouped and sorted by sanitized name, each preceded by
 * one `# TYPE` line; a family whose canonical keys mix kinds after
 * sanitization is exposed as `untyped`. Locks the registry internally.
 */
std::string renderExposition(const MetricsRegistry &registry);

/** The embedded scrape endpoint; see file comment. */
class TelemetryServer
{
  public:
    /**
     * Bind and start serving immediately.
     * @throws mltc::Exception (Io) when the port cannot be bound or
     *         the port file cannot be written.
     */
    TelemetryServer(const TelemetryConfig &config,
                    MetricsRegistry *registry);

    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /** The bound port (resolved even for port 0). */
    uint16_t port() const { return server_.port(); }

    /** Requests answered so far. */
    uint64_t scrapes() const { return server_.requestsServed(); }

    /** Replace the /healthz document (a complete JSON object). */
    void publishHealth(const std::string &json);

    /** Replace the /runz document (a complete JSON object). */
    void publishRunz(const std::string &json);

    /**
     * Install the /profilez renderer (typically StageProfiler::
     * liveJson bound by Observability). The callable runs on the
     * scrape thread and must be internally synchronized.
     */
    void setProfileProvider(std::function<std::string()> provider);

    /** Stop serving; idempotent (also run by the destructor). */
    void stop() { server_.stop(); }

  private:
    HttpResponse handle(const HttpRequest &req);

    MetricsRegistry *registry_;
    mutable std::mutex mutex_; ///< guards the pushed documents
    std::string health_json_ = "{\"status\":\"starting\"}";
    std::string runz_json_ = "{}";
    std::function<std::string()> profile_provider_;
    HttpServer server_;
};

} // namespace mltc

#endif // MLTC_OBS_TELEMETRY_SERVER_HPP
