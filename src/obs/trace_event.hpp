/**
 * @file
 * Chrome trace-event / Perfetto-loadable timeline emission.
 *
 * ChromeTraceWriter streams a JSON object trace file
 * (`{"traceEvents":[...],"displayTimeUnit":"ms"}`) whose events follow
 * the Chrome Trace Event Format:
 *
 *  - duration events (ph B/E) from ScopedTrace profiling scopes,
 *    strictly nested per thread id, with non-decreasing timestamps;
 *  - counter events (ph C) for per-frame tracks (miss rates, AGP
 *    bandwidth);
 *  - instant events (ph i) for notable occurrences (checkpoint
 *    committed, simulator quarantined, host fetch failed);
 *  - metadata events (ph M) naming the process and threads.
 *
 * Load the file in Perfetto (ui.perfetto.dev) or chrome://tracing; see
 * docs/observability.md for the walkthrough.
 *
 * A process-global tracer pointer lets hot paths (rasterizer, sampler,
 * CacheSim, host fetch) instrument themselves without plumbing a
 * writer through every constructor: when no tracer is installed every
 * hook is one null-check. The slot is an atomic and the writer is
 * internally synchronized, so parallel sweep legs can stream into one
 * trace file: each OS thread gets its own Chrome tid (the first thread
 * keeps tid 1, "simulation"; workers announce themselves as
 * "worker-N") and its own scope stack, preserving the per-(pid,tid)
 * strict nesting and non-decreasing timestamps the schema checker
 * (trace_validate) verifies.
 *
 * The writer also aggregates per-stage totals (count, total wall time,
 * self time excluding children) from its scopes so drivers can print a
 * stage self-time summary without re-parsing the file.
 */
#ifndef MLTC_OBS_TRACE_EVENT_HPP
#define MLTC_OBS_TRACE_EVENT_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mltc {

/** Aggregated wall-time of one named stage across the run. */
struct StageStat
{
    std::string name;
    uint64_t count = 0;    ///< times the scope ran
    uint64_t total_us = 0; ///< inclusive wall time
    uint64_t self_us = 0;  ///< total minus enclosed child scopes
};

/**
 * Streams one Chrome trace file. Thread-safe: concurrent begin/end/
 * counter/instant calls from sweep workers serialize on an internal
 * mutex and land on per-thread tids with per-thread scope stacks.
 */
class ChromeTraceWriter
{
  public:
    /**
     * Open (truncate) @p path and write the prologue + process
     * metadata.
     * @throws mltc::Exception (Io) when the file cannot be opened.
     */
    explicit ChromeTraceWriter(const std::string &path);

    /** Closes the file (best-effort) if close() was not called. */
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** Microseconds since construction (monotonic, never decreasing). */
    uint64_t nowUs();

    /** Open a duration scope (ph B). Pair with end(). */
    void begin(const std::string &name, const char *cat);

    /** Close the innermost duration scope (ph E). */
    void end();

    /** Emit an instant event (ph i, thread scope). */
    void instant(const std::string &name, const char *cat);

    /**
     * Emit an instant event carrying string args (SLO alerts attach
     * rule/entity/burn context the schema validator checks).
     */
    void
    instant(const std::string &name, const char *cat,
            const std::vector<std::pair<std::string, std::string>> &args);

    /** Emit one counter sample (ph C): a named track of series. */
    void counter(const std::string &name,
                 const std::vector<std::pair<std::string, double>> &series);

    /**
     * Record wall time measured elsewhere (e.g. accumulated per-call
     * sampler/CacheSim self time) into the stage aggregates without
     * emitting a timeline event.
     */
    void recordAggregate(const std::string &name, uint64_t duration_us);

    /** Events written so far (excluding metadata). */
    uint64_t events() const;

    /** True once an I/O failure disabled the sink (events dropped). */
    bool disabled() const;

    /** Open duration scopes across all threads (0 when balanced). */
    size_t openScopes() const;

    /**
     * Push buffered events to the OS (fflush). The file stays open and
     * incomplete (no epilogue) but every event emitted so far survives
     * an abrupt process death; Perfetto loads such truncated traces.
     * Called on cancellation and quarantine paths so an interrupted run
     * keeps its last complete frame of events.
     */
    void flush();

    /** Stage aggregates, most total time first. */
    std::vector<StageStat> stageStats() const;

    const std::string &path() const { return path_; }

    /**
     * Close any scopes left open, write the epilogue and close the
     * file.
     * @throws mltc::Exception (Io) if any write failed — a truncated
     *         trace must not pass silently as a complete one.
     */
    void close();

  private:
    struct Scope
    {
        std::string name;
        uint64_t start_us = 0;
        uint64_t child_us = 0;
    };

    /** Per-OS-thread emission state: Chrome tid + open-scope stack. */
    struct ThreadState
    {
        uint32_t tid = 1;
        std::vector<Scope> stack;
    };

    // All private helpers assume mutex_ is held by the caller.
    ThreadState &threadState();
    void putLocked(const char *data, size_t size);
    void putLocked(const std::string &s) { putLocked(s.data(), s.size()); }
    void emitPrefix(char ph, uint64_t ts, uint32_t tid);
    void emitCommon(const std::string &name, const char *cat);
    void finishEvent();
    uint64_t nowUsLocked();
    void endLocked(ThreadState &state);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::chrono::steady_clock::time_point t0_;
    uint64_t last_ts_ = 0;
    uint64_t events_ = 0;
    bool first_ = true;
    bool failed_ = false;
    uint32_t next_tid_ = 1;
    std::map<std::thread::id, ThreadState> threads_;
    std::map<std::string, StageStat> stages_;
    mutable std::mutex mutex_;
};

namespace detail {
/** The process-global tracer slot; use globalTracer()/setGlobalTracer. */
inline std::atomic<ChromeTraceWriter *> g_tracer{nullptr};
} // namespace detail

/** Install @p tracer as the process-global tracer (null to remove). */
void setGlobalTracer(ChromeTraceWriter *tracer);

/**
 * The process-global tracer, or null when tracing is disabled. Inline
 * so hot-path hooks (SelfTimer, per-texel guards) compile down to one
 * atomic load + branch instead of a cross-TU call; acquire pairs with
 * the installer's release so the writer's construction is visible to
 * every worker that observes the pointer.
 */
inline ChromeTraceWriter *
globalTracer()
{
    return detail::g_tracer.load(std::memory_order_acquire);
}

/** RAII duration scope against the global tracer; no-op when absent. */
class ScopedTrace
{
  public:
    ScopedTrace(const char *name, const char *cat) : t_(globalTracer())
    {
        if (t_)
            t_->begin(name, cat);
    }

    ~ScopedTrace()
    {
        if (t_)
            t_->end();
    }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    ChromeTraceWriter *t_;
};

/**
 * Accumulating timer for hot paths too fine-grained for one trace
 * event each (per-texel access, per-sample sink dispatch): adds the
 * scope's wall time to @p accum_ns only while a global tracer is
 * installed; otherwise construction is a single null-check.
 */
class SelfTimer
{
  public:
    explicit SelfTimer(uint64_t *accum_ns)
        : accum_(globalTracer() ? accum_ns : nullptr)
    {
        if (accum_)
            start_ = std::chrono::steady_clock::now();
    }

    ~SelfTimer()
    {
        if (accum_)
            *accum_ += static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
    }

    SelfTimer(const SelfTimer &) = delete;
    SelfTimer &operator=(const SelfTimer &) = delete;

  private:
    uint64_t *accum_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace mltc

#endif // MLTC_OBS_TRACE_EVENT_HPP
