/**
 * @file
 * Single-pass reuse-distance profiler: miss-ratio curves, working-set
 * spectra and spatial miss heatmaps from one trace traversal.
 *
 * The paper's headline curves (Fig. 9/10, Tab. 5-6) re-simulate the
 * whole trace once per cache size. Mattson's stack algorithm gets the
 * entire LRU miss-ratio-vs-capacity curve from a *single* pass instead:
 * an access to a unit last referenced with `d` distinct units touched
 * in between (its reuse distance) hits in every fully-associative LRU
 * cache of capacity > d and misses in every smaller one, so a histogram
 * of reuse distances integrates into the full curve.
 *
 * The engine here is
 *
 *  - a hash map from unit key to the timestamp of its last reference,
 *  - an order-statistic treap over the live timestamps, giving the
 *    number of distinct units referenced since any past timestamp
 *    (= the reuse distance) in O(log N) per access,
 *  - optional SHARDS-style spatial hash sampling (--mrc-sample-rate):
 *    only keys whose hash falls under the rate threshold are tracked,
 *    and distances/counts are rescaled by 1/rate, bounding memory on
 *    long runs at a small accuracy cost.
 *
 * Two independent streams are profiled: the L1 line stream (the same
 * post-coalescing stream the real L1 sees) and the L2 sector stream
 * (L1 misses only). On top of the distance machinery the profiler
 * keeps per-interval working-set spectra (distinct units per frame
 * window — the measured generalization of model/working_set_model) and
 * spatial heatmaps: screen-space miss density and texture-space
 * per-block access/miss grids, exported as PGM images + JSON.
 *
 * Profiler state is simulator state: CacheSim serializes an attached
 * profiler into checkpoints so a resumed run emits bit-identical
 * curves and heatmaps.
 */
#ifndef MLTC_OBS_REUSE_PROFILER_HPP
#define MLTC_OBS_REUSE_PROFILER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/cli.hpp"
#include "util/serializer.hpp"

namespace mltc {

/**
 * Order-statistic treap over a set of distinct uint64 keys. Node
 * priorities are a deterministic hash of the key, so the tree shape is
 * a pure function of the key set — rebuilding from a serialized key
 * list reproduces identical behaviour regardless of insertion order.
 */
class OrderStatTree
{
  public:
    /** Insert @p key (must not be present). O(log N) expected. */
    void insert(uint64_t key);

    /** Remove @p key (must be present). O(log N) expected. */
    void erase(uint64_t key);

    /** Number of live keys strictly greater than @p key. */
    uint64_t countGreater(uint64_t key) const;

    /** Live keys. */
    uint64_t size() const;

    void clear();

  private:
    static constexpr uint32_t kNil = 0xffffffffu;

    struct Node
    {
        uint64_t key;
        uint64_t prio;
        uint32_t left = kNil;
        uint32_t right = kNil;
        uint32_t count = 1; ///< subtree size
    };

    uint32_t newNode(uint64_t key);
    void freeNode(uint32_t n);
    void pull(uint32_t n);
    /** Split into (keys <= key, keys > key). */
    void split(uint32_t n, uint64_t key, uint32_t &lo, uint32_t &hi);
    uint32_t merge(uint32_t a, uint32_t b);

    std::vector<Node> pool_;
    std::vector<uint32_t> free_;
    uint32_t root_ = kNil;
};

/** One point of a miss-ratio curve. */
struct MrcPoint
{
    uint64_t capacity_units = 0; ///< fully-associative LRU capacity
    double miss_ratio = 0.0;     ///< estimated misses / accesses
};

/** One working-set spectrum row (a closed frame interval). */
struct WorkingSetRow
{
    uint32_t frame_begin = 0;    ///< first frame of the interval
    uint32_t frame_end = 0;      ///< one past the last frame
    uint64_t accesses = 0;       ///< stream accesses in the interval
    uint64_t distinct_units = 0; ///< estimated units touched (working set)
    uint64_t cold_units = 0;     ///< estimated never-before-seen units
};

/**
 * Reuse-distance tracker for one access stream. Exact when the sample
 * rate is 1.0; a SHARDS-style estimator below that.
 */
class ReuseDistanceTracker
{
  public:
    /** @param sample_rate spatial sampling rate in (0, 1]. */
    explicit ReuseDistanceTracker(double sample_rate = 1.0);

    /** Observe one access to @p key. */
    void record(uint64_t key);

    /**
     * Observe @p n distance-zero accesses (the coalescing filter's and
     * quad dedup's implicit repeats): guaranteed hits at any capacity,
     * counted exactly so miss ratios share CacheSim's denominator.
     */
    void
    addRepeats(uint64_t n)
    {
        repeats_ += n;
        interval_accesses_ += n;
    }

    /** record() calls observed (pre-sampling, excluding repeats). */
    uint64_t recordedRaw() const { return recorded_; }

    /**
     * Close the current working-set interval as frames
     * [frame_begin, frame_end) and start the next one.
     */
    WorkingSetRow closeInterval(uint32_t frame_begin, uint32_t frame_end);

    /**
     * The current interval's row without closing it — exports use this
     * so a run shorter than the interval still reports its spectrum.
     */
    WorkingSetRow peekInterval(uint32_t frame_begin,
                               uint32_t frame_end) const;

    /** Total accesses observed (estimated; exact at rate 1). */
    uint64_t totalAccesses() const;

    /** Distinct units ever seen (estimated; exact at rate 1). */
    uint64_t distinctUnits() const;

    /** Cold (first-touch) accesses (estimated; exact at rate 1). */
    uint64_t coldAccesses() const;

    /**
     * Estimated miss ratio of a fully-associative LRU cache holding
     * @p capacity_units units, fed this stream. capacity 0 returns 1.
     */
    double missRatio(uint64_t capacity_units) const;

    /**
     * The full curve at power-of-two capacities 1, 2, 4, ... up to the
     * first capacity that contains the whole distinct-unit set.
     */
    std::vector<MrcPoint> curve() const;

    double sampleRate() const { return rate_; }

    /** Live tracked units (sampled), i.e. current tree size. */
    uint64_t trackedUnits() const { return tree_.size(); }

    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) on sample-rate skew,
     *         (Corrupt) on inconsistent content.
     */
    void load(SnapshotReader &r);

  private:
    bool sampled(uint64_t key) const;

    double rate_;
    uint64_t threshold_; ///< hash acceptance bound derived from rate_

    std::unordered_map<uint64_t, uint64_t> last_; ///< key -> timestamp
    OrderStatTree tree_;                          ///< live timestamps
    uint64_t clock_ = 0;                          ///< timestamps issued

    std::vector<uint64_t> hist_; ///< hist_[d] = sampled accesses at distance d
    uint64_t overflow_ = 0;      ///< distances >= kMaxTrackedDistance
    uint64_t cold_ = 0;          ///< sampled first-touch accesses
    uint64_t sampled_total_ = 0; ///< sampled accesses (incl. cold)
    uint64_t repeats_ = 0;       ///< exact distance-zero accesses
    uint64_t recorded_ = 0;      ///< record() calls (pre-sampling)

    // Current working-set interval (reset by closeInterval()).
    uint64_t interval_accesses_ = 0; ///< raw accesses (incl. repeats)
    uint64_t interval_distinct_ = 0; ///< sampled units first touched here
    uint64_t interval_cold_ = 0;     ///< sampled never-seen units
    uint64_t interval_start_ = 0;    ///< clock_ at interval open

    static constexpr uint64_t kMaxTrackedDistance = 1ull << 22;
};

/** Parsed profiler knobs (see mrcFromCli). */
struct ReuseProfilerConfig
{
    bool enabled = false;
    double sample_rate = 1.0;     ///< --mrc-sample-rate
    uint32_t interval_frames = 8; ///< --mrc-interval (working-set window)
    uint32_t screen_width = 0;    ///< 0 disables the screen heatmap
    uint32_t screen_height = 0;
    uint32_t tex_granule = 16;  ///< texture heatmap cell edge (base texels)
    uint64_t l1_unit_bytes = 64;  ///< capacity axis scale, L1 stream
    uint64_t l2_unit_bytes = 64;  ///< capacity axis scale, L2 stream
    std::string mrc_out;          ///< --mrc-out (CSV/JSON base path)
    std::string heatmap_out;      ///< --heatmap-out (PGM/JSON base path)
};

/**
 * Read the shared profiler flags: --mrc, --mrc-out=BASE,
 * --heatmap-out=BASE, --mrc-sample-rate=R, --mrc-interval=N. Either
 * output flag implies --mrc.
 * @throws mltc::Exception (BadArgument) on malformed values.
 */
ReuseProfilerConfig mrcFromCli(const CommandLine &cli);

/** One texture-space heatmap grid (fixed-granule cells, mips folded). */
struct HeatmapGrid
{
    uint32_t width = 0;  ///< cells per row
    uint32_t height = 0; ///< rows
    std::vector<uint64_t> accesses; ///< width*height, row-major
    std::vector<uint64_t> misses;   ///< width*height, row-major
};

/**
 * The profiler: two reuse-distance trackers (L1 lines, L2 sectors),
 * working-set spectra and spatial heatmaps. Attach to a CacheSim with
 * setReuseProfiler(); it is fed from the access path and serialized in
 * the simulator's snapshot.
 */
class ReuseProfiler
{
  public:
    explicit ReuseProfiler(const ReuseProfilerConfig &config);

    const ReuseProfilerConfig &config() const { return cfg_; }

    // ---- stream hooks (called by CacheSim) ----

    /** The rasterizer moved to screen pixel (px, py). */
    void
    beginPixel(uint32_t px, uint32_t py)
    {
        cur_px_ = px;
        cur_py_ = py;
    }

    /** Texture @p tid (base dimensions @p w x @p h) is now bound. */
    void bindTexture(uint32_t tid, uint32_t w, uint32_t h);

    /** One post-coalescing L1 line reference. */
    void onL1Access(uint64_t line_key, bool l1_hit, uint32_t x, uint32_t y,
                    uint32_t mip);

    /** One L2 sector reference (an L1 miss reaching the L2). */
    void onL2Sector(uint64_t sector_key, bool full_hit, uint32_t x,
                    uint32_t y, uint32_t mip);

    /**
     * Frame boundary. @p frame_accesses is the frame's raw access count
     * (CacheFrameStats::accesses): the gap between it and the L1
     * references recorded this frame is exactly the coalescing filter's
     * and quad dedup's implicit repeats — distance-zero guaranteed hits,
     * booked here so the hot path carries no per-repeat profiler branch
     * and miss-ratio denominators still match the simulator's.
     */
    void endFrame(uint64_t frame_accesses);

    // ---- results ----

    const ReuseDistanceTracker &l1() const { return l1_; }
    const ReuseDistanceTracker &l2() const { return l2_; }

    /** True once any L2 sector was observed (two-level configs). */
    bool hasL2Stream() const { return l2_seen_; }

    /** Closed working-set rows for the given stream ("l1" / "l2"). */
    const std::vector<WorkingSetRow> &
    workingSet(bool l2_stream) const
    {
        return l2_stream ? ws_l2_ : ws_l1_;
    }

    /**
     * workingSet() plus the open partial interval when any access
     * landed in it — the rows the exports print.
     */
    std::vector<WorkingSetRow> spectrumRows(bool l2_stream) const;

    /** Texture heatmap grids by texture id (granule-cell resolution). */
    const std::map<uint32_t, HeatmapGrid> &textureGrids() const
    {
        return tex_grids_;
    }

    /** Screen-space L1 miss density (empty without screen dims). */
    const HeatmapGrid &screenGrid() const { return screen_; }

    /** Frames completed. */
    uint32_t frames() const { return frames_; }

    // ---- export ----

    /**
     * Write `<base>.csv` (MRC points), `<base>.ws.csv` (working-set
     * spectra) and `<base>.json` (both, structured).
     * @throws mltc::Exception (Io) on any file failure.
     */
    void writeMrc(const std::string &base) const;

    /**
     * Write `<base>.json` (per-block totals + hottest blocks) and
     * log-scaled PGM images: `<base>.screen.pgm` (when screen dims are
     * set) and `<base>.tex<id>.pgm` per referenced texture.
     * @throws mltc::Exception (Io) on any file failure.
     */
    void writeHeatmaps(const std::string &base) const;

    /** ASCII rendering of both MRC curves (report, quick looks). */
    std::string asciiMrc(uint32_t plot_width = 48) const;

    // ---- snapshot ----

    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) on configuration skew,
     *         (Corrupt) on damaged content.
     */
    void load(SnapshotReader &r);

  private:
    HeatmapGrid &grid(uint32_t tid);
    void bumpTexCell(uint32_t x, uint32_t y, uint32_t mip, bool miss);

    ReuseProfilerConfig cfg_;
    ReuseDistanceTracker l1_;
    ReuseDistanceTracker l2_;
    bool l2_seen_ = false;

    std::vector<WorkingSetRow> ws_l1_;
    std::vector<WorkingSetRow> ws_l2_;
    uint32_t frames_ = 0;
    uint32_t interval_begin_ = 0; ///< first frame of the open interval
    uint64_t accesses_seen_ = 0;  ///< raw accesses booked via endFrame()
    uint64_t l1_record_mark_ = 0; ///< l1_.recordedRaw() at last endFrame

    // Spatial state.
    uint32_t cur_px_ = 0;
    uint32_t cur_py_ = 0;
    uint32_t bound_tid_ = 0;
    uint32_t bound_w_ = 0; ///< base-level texels
    uint32_t bound_h_ = 0;
    HeatmapGrid *bound_grid_ = nullptr; ///< cache of grid(bound_tid_)
    std::map<uint32_t, HeatmapGrid> tex_grids_;
    std::map<uint32_t, std::pair<uint32_t, uint32_t>> tex_dims_;
    HeatmapGrid screen_; ///< accesses = L1 misses, misses = L2 misses
};

} // namespace mltc

#endif // MLTC_OBS_REUSE_PROFILER_HPP
