/**
 * @file
 * Metrics registry: named counters, gauges and histograms with
 * hierarchical dotted names and sorted key=value labels, e.g.
 *
 *     l2.miss{class=capacity,sim=4 MB L2}
 *     l2.miss.tex{level=2,sim=4 MB L2,tex=5}
 *
 * The registry exists in one of two modes, decided at construction:
 *
 *  - enabled: handles point at registry-owned storage; updates are a
 *    pointer write. The whole registry snapshots to one JSONL row per
 *    frame (cumulative values — consumers diff adjacent rows for
 *    per-frame deltas).
 *  - disabled: every handle is null and every operation is a single
 *    predictable branch. No allocation, no hashing, no I/O — the mode
 *    the perf acceptance gate (<5% on perf_microbench) measures.
 *
 * Concurrency contract (the /metrics telemetry plane scrapes a live
 * registry from its own thread): updates through handles are raw
 * pointer writes and remain unsynchronized by design — callers that
 * share a registry with a scraper wrap each frame-boundary update
 * batch in updateGuard(). Readers that may run concurrently with such
 * writers (the exposition renderer via forEach()) take the same lock.
 * Hot paths never touch the registry per access, only at frame
 * boundaries, so the lock is contended at most once per frame per
 * scrape.
 *
 * Metric values are *derived* state: they are recomputed from simulator
 * counters at every frame boundary, never fed back into the simulation,
 * so attaching or detaching the registry can never perturb
 * checkpoint/resume bit-equivalence (see docs/observability.md).
 */
#ifndef MLTC_OBS_METRICS_HPP
#define MLTC_OBS_METRICS_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.hpp"
#include "util/json.hpp"

namespace mltc {

/** One metric label; sets of labels are sorted by key when rendered. */
using MetricLabel = std::pair<std::string, std::string>;
using MetricLabels = std::vector<MetricLabel>;

/**
 * Canonical metric key: `name` or `name{k1=v1,k2=v2}` with labels
 * sorted by key. Duplicate label keys throw (BadArgument) — a metric
 * with two `tex=` labels is a caller bug worth failing loudly on.
 */
std::string metricKey(const std::string &name, const MetricLabels &labels);

/** Monotonic counter handle; null (disabled) handles are no-ops. */
class CounterHandle
{
  public:
    CounterHandle() = default;
    explicit CounterHandle(uint64_t *v) : v_(v) {}

    void
    inc(uint64_t n = 1)
    {
        if (v_)
            *v_ += n;
    }

    /** Overwrite with a cumulative value computed elsewhere. */
    void
    set(uint64_t value)
    {
        if (v_)
            *v_ = value;
    }

    uint64_t value() const { return v_ ? *v_ : 0; }
    explicit operator bool() const { return v_ != nullptr; }

  private:
    uint64_t *v_ = nullptr;
};

/** Point-in-time gauge handle; null (disabled) handles are no-ops. */
class GaugeHandle
{
  public:
    GaugeHandle() = default;
    explicit GaugeHandle(double *v) : v_(v) {}

    void
    set(double value)
    {
        if (v_)
            *v_ = value;
    }

    double value() const { return v_ ? *v_ : 0.0; }
    explicit operator bool() const { return v_ != nullptr; }

  private:
    double *v_ = nullptr;
};

/** Distribution handle; null (disabled) handles are no-ops. */
class HistogramHandle
{
  public:
    HistogramHandle() = default;
    explicit HistogramHandle(Histogram *h) : h_(h) {}

    void
    observe(uint64_t value)
    {
        if (h_)
            h_->add(value);
    }

    const Histogram *histogram() const { return h_; }
    explicit operator bool() const { return h_ != nullptr; }

  private:
    Histogram *h_ = nullptr;
};

/** Kind tag for registry introspection. */
enum class MetricKind : uint8_t { Counter, Gauge, Histogram };

/**
 * The registry. Handle acquisition is idempotent: asking twice for the
 * same canonical key returns a handle onto the same storage (the kind
 * must match; a kind clash throws BadArgument). Handles stay valid for
 * the registry's lifetime — storage is deque-backed and never moves.
 */
class MetricsRegistry
{
  public:
    explicit MetricsRegistry(bool enabled) : enabled_(enabled) {}

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    bool enabled() const { return enabled_; }

    CounterHandle counter(const std::string &name,
                          const MetricLabels &labels = {});
    GaugeHandle gauge(const std::string &name,
                      const MetricLabels &labels = {});
    HistogramHandle histogram(const std::string &name,
                              const MetricLabels &labels = {},
                              uint32_t max_value = 4096);

    /** Registered metric count (0 while disabled). */
    size_t size() const { return entries_.size(); }

    /** Value of a counter by canonical key (0 when absent). */
    uint64_t counterValue(const std::string &key) const;

    /** Value of a gauge by canonical key (0 when absent). */
    double gaugeValue(const std::string &key) const;

    /**
     * One JSONL row of every registered metric, cumulative:
     * {"frame":N,"counters":{...},"gauges":{...},"histograms":{...}}.
     * Keys appear in sorted order so rows diff cleanly.
     */
    std::string frameSnapshotJson(int64_t frame) const;

    /** Append frameSnapshotJson(@p frame) to @p sink. */
    void writeFrameSnapshot(JsonlFileSink &sink, int64_t frame) const;

    /**
     * Serialize an update batch (or a snapshot read) against a
     * concurrent scraper. Handle writes, registration and
     * frameSnapshotJson() inside the returned lock's lifetime are
     * atomic with respect to forEach() visitors.
     */
    std::unique_lock<std::mutex>
    updateGuard() const
    {
        return std::unique_lock<std::mutex>(mutex_);
    }

    /**
     * Visit every registered metric in canonical-key order, under the
     * registry lock (do NOT hold updateGuard() while calling). The
     * histogram pointer is only valid during the visit.
     */
    void forEach(const std::function<void(const std::string &key,
                                          MetricKind kind, uint64_t counter,
                                          double gauge,
                                          const Histogram *histogram)> &fn)
        const;

  private:
    struct Entry
    {
        MetricKind kind;
        size_t index; ///< into the per-kind storage deque
    };

    /** Find-or-create; null when disabled, throws on kind clash. */
    Entry *resolve(const std::string &name, const MetricLabels &labels,
                   MetricKind kind);

    bool enabled_;
    mutable std::mutex mutex_;             ///< see updateGuard()
    std::map<std::string, Entry> entries_; ///< canonical key -> entry
    std::deque<uint64_t> counters_;        ///< stable addresses
    std::deque<double> gauges_;
    std::deque<Histogram> histograms_;
};

} // namespace mltc

#endif // MLTC_OBS_METRICS_HPP
