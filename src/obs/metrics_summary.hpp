/**
 * @file
 * Library form of the `report --metrics` summarization so the logic is
 * unit-testable and reusable from other drivers: fold a metrics JSONL
 * stream (as written by JsonlFileSink behind MetricsRegistry) into
 * final counter totals and per-gauge series statistics.
 *
 * Counters are cumulative, so the last frame row carries the run
 * totals; gauges are summarized min/mean/max across frames. Rows
 * without a "frame" key are mirrored structured-log lines sharing the
 * stream and are counted but otherwise skipped.
 */
#ifndef MLTC_OBS_METRICS_SUMMARY_HPP
#define MLTC_OBS_METRICS_SUMMARY_HPP

#include <istream>
#include <map>
#include <string>

#include "util/csv_reader.hpp"

namespace mltc {

/** Folded view of one metrics JSONL stream. */
struct MetricsSummary
{
    size_t frame_rows = 0; ///< rows carrying a "frame" key
    size_t log_rows = 0;   ///< mirrored log rows (no "frame" key)
    /** Final cumulative value per counter, keyed by counter name. */
    std::map<std::string, double> final_counters;
    /** Per-gauge series statistics across all frame rows. */
    std::map<std::string, SeriesSummary> gauges;
};

/**
 * Summarize a metrics JSONL stream read from @p in. @p name labels the
 * stream in error messages.
 * @throws mltc::Exception (Corrupt) on a malformed JSONL row, with the
 *         offending line number in the message.
 */
MetricsSummary summarizeMetricsStream(std::istream &in,
                                      const std::string &name = "<stream>");

/**
 * Summarize the metrics JSONL file at @p path.
 * @throws mltc::Exception (Io) when the file cannot be opened,
 *         (Corrupt) on a malformed row.
 */
MetricsSummary summarizeMetricsFile(const std::string &path);

/**
 * Render @p s as the aligned text tables `report --metrics` prints
 * (counter totals, then gauge min/mean/max when any gauge was seen).
 */
std::string renderMetricsSummary(const MetricsSummary &s);

/** One differing series between two metrics summaries. */
struct MetricsDiffRow
{
    std::string key;  ///< counter name or "mean:<gauge>"
    double a = 0.0;   ///< value in the first (baseline) summary
    double b = 0.0;   ///< value in the second (candidate) summary
    double rel = 0.0; ///< symmetric relative delta, see diffMetricsSummaries
};

/** Differential view of two metrics summaries (A = baseline, B = candidate). */
struct MetricsDiff
{
    /** All keys seen in either summary, baseline-order, counters first. */
    std::vector<MetricsDiffRow> rows;
    /** Largest row |rel| (0 when the files agree on every series). */
    double max_rel = 0.0;
    size_t only_a = 0; ///< series present only in the baseline
    size_t only_b = 0; ///< series present only in the candidate
};

/**
 * Compare counter totals and gauge means of two summaries. Each row's
 * `rel` is the symmetric relative delta |b-a| / max(|a|,|b|), which is
 * bounded to [0,1] and treats a series missing from one side (reported
 * in only_a/only_b) as a full-scale difference of 1.
 */
MetricsDiff diffMetricsSummaries(const MetricsSummary &a,
                                 const MetricsSummary &b);

/** Render @p d as the aligned text table `report compare` prints. */
std::string renderMetricsDiff(const MetricsDiff &d);

} // namespace mltc

#endif // MLTC_OBS_METRICS_SUMMARY_HPP
