#include "obs/metrics_summary.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace mltc {

MetricsSummary
summarizeMetricsStream(std::istream &in, const std::string &name)
{
    MetricsSummary out;
    std::map<std::string, std::vector<double>> gauge_values;
    // Counters are cumulative within one leg's stream, and a sweep file
    // is per-leg streams concatenated in leg order (each leg restarts
    // at frame 0 with a fresh registry). A leg boundary is a frame
    // number that does not increase; fold the finished leg's final
    // counters into the file totals there, so a parallel sweep's merged
    // JSONL sums legs instead of reporting only the last one.
    std::map<std::string, double> leg_counters;
    double last_frame = -1.0;
    auto fold_leg = [&]() {
        for (const auto &[key, value] : leg_counters)
            out.final_counters[key] += value;
        leg_counters.clear();
    };
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JsonValue row;
        try {
            row = parseJson(line);
        } catch (const Exception &e) {
            throw Exception(ErrorCode::Corrupt,
                            name + " line " + std::to_string(line_no) +
                                ": " + e.error().message);
        }
        const JsonValue *frame = row.find("frame");
        if (!frame) {
            ++out.log_rows; // structured log row sharing the stream
            continue;
        }
        ++out.frame_rows;
        if (frame->asNumber() <= last_frame)
            fold_leg();
        last_frame = frame->asNumber();
        if (const JsonValue *counters = row.find("counters")) {
            leg_counters.clear();
            for (const auto &[key, v] : counters->asObject())
                leg_counters[key] = v.asNumber();
        }
        if (const JsonValue *gauges = row.find("gauges")) {
            for (const auto &[key, v] : gauges->asObject())
                gauge_values[key].push_back(v.asNumber());
        }
    }
    fold_leg();
    for (const auto &[key, values] : gauge_values)
        out.gauges[key] = summarize(values);
    return out;
}

MetricsSummary
summarizeMetricsFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw Exception(ErrorCode::Io, "cannot open '" + path + "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // JsonlFileSink terminates every row with '\n'; a file that stops
    // mid-line was truncated and its last row must not be half-counted.
    if (!text.empty() && text.back() != '\n')
        throw Exception(ErrorCode::Truncated,
                        "'" + path +
                            "' does not end in a newline (truncated?)");
    std::istringstream stream(text);
    return summarizeMetricsStream(stream, path);
}

std::string
renderMetricsSummary(const MetricsSummary &s)
{
    std::string out = std::to_string(s.frame_rows) + " frame rows";
    if (s.log_rows > 0)
        out += " (+" + std::to_string(s.log_rows) + " log rows)";
    out += "\n";

    TextTable counters_out({"counter", "final (cumulative)"});
    for (const auto &[key, v] : s.final_counters)
        counters_out.addRow({key, formatDouble(v, 0)});
    out += counters_out.render();

    if (!s.gauges.empty()) {
        out += "\n";
        TextTable gauges_out({"gauge", "min", "mean", "max"});
        for (const auto &[key, g] : s.gauges)
            gauges_out.addRow({key, formatDouble(g.min, 4),
                               formatDouble(g.mean, 4),
                               formatDouble(g.max, 4)});
        out += gauges_out.render();
    }
    return out;
}

} // namespace mltc
