#include "obs/metrics_summary.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace mltc {

MetricsSummary
summarizeMetricsStream(std::istream &in, const std::string &name)
{
    MetricsSummary out;
    std::map<std::string, std::vector<double>> gauge_values;
    // Counters are cumulative within one leg's stream, and a sweep file
    // is per-leg streams concatenated in leg order (each leg restarts
    // at frame 0 with a fresh registry). A leg boundary is a frame
    // number that does not increase; fold the finished leg's final
    // counters into the file totals there, so a parallel sweep's merged
    // JSONL sums legs instead of reporting only the last one.
    std::map<std::string, double> leg_counters;
    double last_frame = -1.0;
    auto fold_leg = [&]() {
        for (const auto &[key, value] : leg_counters)
            out.final_counters[key] += value;
        leg_counters.clear();
    };
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JsonValue row;
        try {
            row = parseJson(line);
        } catch (const Exception &e) {
            throw Exception(ErrorCode::Corrupt,
                            name + " line " + std::to_string(line_no) +
                                ": " + e.error().message);
        }
        const JsonValue *frame = row.find("frame");
        if (!frame) {
            ++out.log_rows; // structured log row sharing the stream
            continue;
        }
        ++out.frame_rows;
        if (frame->asNumber() <= last_frame)
            fold_leg();
        last_frame = frame->asNumber();
        if (const JsonValue *counters = row.find("counters")) {
            leg_counters.clear();
            for (const auto &[key, v] : counters->asObject())
                leg_counters[key] = v.asNumber();
        }
        if (const JsonValue *gauges = row.find("gauges")) {
            for (const auto &[key, v] : gauges->asObject())
                gauge_values[key].push_back(v.asNumber());
        }
    }
    fold_leg();
    for (const auto &[key, values] : gauge_values)
        out.gauges[key] = summarize(values);
    return out;
}

MetricsSummary
summarizeMetricsFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw Exception(ErrorCode::Io, "cannot open '" + path + "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // JsonlFileSink terminates every row with '\n'; a file that stops
    // mid-line was truncated and its last row must not be half-counted.
    if (!text.empty() && text.back() != '\n')
        throw Exception(ErrorCode::Truncated,
                        "'" + path +
                            "' does not end in a newline (truncated?)");
    std::istringstream stream(text);
    return summarizeMetricsStream(stream, path);
}

std::string
renderMetricsSummary(const MetricsSummary &s)
{
    std::string out = std::to_string(s.frame_rows) + " frame rows";
    if (s.log_rows > 0)
        out += " (+" + std::to_string(s.log_rows) + " log rows)";
    out += "\n";

    TextTable counters_out({"counter", "final (cumulative)"});
    for (const auto &[key, v] : s.final_counters)
        counters_out.addRow({key, formatDouble(v, 0)});
    out += counters_out.render();

    if (!s.gauges.empty()) {
        out += "\n";
        TextTable gauges_out({"gauge", "min", "mean", "max"});
        for (const auto &[key, g] : s.gauges)
            gauges_out.addRow({key, formatDouble(g.min, 4),
                               formatDouble(g.mean, 4),
                               formatDouble(g.max, 4)});
        out += gauges_out.render();
    }
    return out;
}

namespace {

/** |b-a| / max(|a|,|b|): bounded, symmetric, 0 when both are 0. */
double
symmetricRel(double a, double b)
{
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return scale == 0.0 ? 0.0 : std::fabs(b - a) / scale;
}

void
diffSeries(const std::map<std::string, double> &a,
           const std::map<std::string, double> &b,
           const std::string &prefix, MetricsDiff &out)
{
    for (const auto &[key, va] : a) {
        MetricsDiffRow row;
        row.key = prefix + key;
        row.a = va;
        const auto it = b.find(key);
        if (it == b.end()) {
            ++out.only_a;
            row.rel = 1.0; // structural difference: full scale
        } else {
            row.b = it->second;
            row.rel = symmetricRel(va, it->second);
        }
        out.rows.push_back(row);
    }
    for (const auto &[key, vb] : b) {
        if (a.count(key))
            continue;
        MetricsDiffRow row;
        row.key = prefix + key;
        row.b = vb;
        row.rel = 1.0;
        ++out.only_b;
        out.rows.push_back(row);
    }
}

std::map<std::string, double>
gaugeMeans(const MetricsSummary &s)
{
    std::map<std::string, double> means;
    for (const auto &[key, g] : s.gauges)
        means[key] = g.mean;
    return means;
}

} // namespace

MetricsDiff
diffMetricsSummaries(const MetricsSummary &a, const MetricsSummary &b)
{
    MetricsDiff out;
    diffSeries(a.final_counters, b.final_counters, "", out);
    diffSeries(gaugeMeans(a), gaugeMeans(b), "mean:", out);
    for (const MetricsDiffRow &row : out.rows)
        out.max_rel = std::max(out.max_rel, row.rel);
    return out;
}

std::string
renderMetricsDiff(const MetricsDiff &d)
{
    TextTable out({"series", "A", "B", "delta", "rel"});
    for (const MetricsDiffRow &row : d.rows)
        out.addRow({row.key, formatDouble(row.a, 4),
                    formatDouble(row.b, 4), formatDouble(row.b - row.a, 4),
                    formatPercent(row.rel, 2)});
    std::string text = out.render();
    text += "max relative delta: " + formatPercent(d.max_rel, 2);
    if (d.only_a > 0 || d.only_b > 0)
        text += " (" + std::to_string(d.only_a) + " series only in A, " +
                std::to_string(d.only_b) + " only in B)";
    text += "\n";
    return text;
}

} // namespace mltc
