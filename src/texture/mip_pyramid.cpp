#include "texture/mip_pyramid.hpp"

namespace mltc {

namespace {

/** Average a 2x2 quad of texels channelwise (rounding to nearest). */
uint32_t
boxFilter(uint32_t a, uint32_t b, uint32_t c, uint32_t d)
{
    uint32_t out = 0;
    for (int ch = 0; ch < 4; ++ch) {
        uint32_t sum = static_cast<uint32_t>(channel(a, ch)) + channel(b, ch) +
                       channel(c, ch) + channel(d, ch);
        out |= ((sum + 2) / 4) << (8 * ch);
    }
    return out;
}

Image
downsample(const Image &src)
{
    uint32_t w = src.width() > 1 ? src.width() / 2 : 1;
    uint32_t h = src.height() > 1 ? src.height() / 2 : 1;
    Image dst(w, h);
    for (uint32_t y = 0; y < h; ++y) {
        for (uint32_t x = 0; x < w; ++x) {
            uint32_t sx = src.width() > 1 ? 2 * x : x;
            uint32_t sy = src.height() > 1 ? 2 * y : y;
            uint32_t sx1 = src.width() > 1 ? sx + 1 : sx;
            uint32_t sy1 = src.height() > 1 ? sy + 1 : sy;
            dst.setTexel(x, y,
                         boxFilter(src.texel(sx, sy), src.texel(sx1, sy),
                                   src.texel(sx, sy1), src.texel(sx1, sy1)));
        }
    }
    return dst;
}

} // namespace

MipPyramid::MipPyramid(Image base)
{
    levels_.push_back(std::move(base));
    while (levels_.back().width() > 1 || levels_.back().height() > 1)
        levels_.push_back(downsample(levels_.back()));
}

uint64_t
MipPyramid::totalTexels() const
{
    uint64_t total = 0;
    for (const auto &img : levels_)
        total += static_cast<uint64_t>(img.width()) * img.height();
    return total;
}

} // namespace mltc
