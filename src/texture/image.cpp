#include "texture/image.hpp"

#include <stdexcept>

namespace mltc {

Image::Image(uint32_t width, uint32_t height, uint32_t fill)
    : width_(width), height_(height),
      data_(static_cast<size_t>(width) * height, fill)
{
    if (!isPowerOfTwo(width) || !isPowerOfTwo(height))
        throw std::invalid_argument("Image: dimensions must be powers of two");
}

} // namespace mltc
