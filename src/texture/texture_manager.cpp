#include "texture/texture_manager.hpp"

#include <stdexcept>

namespace mltc {

TextureId
TextureManager::load(std::string name, MipPyramid pyramid,
                     uint32_t host_bytes_per_texel)
{
    if (pyramid.levels() == 0)
        throw std::invalid_argument("TextureManager: empty pyramid");
    TextureEntry e;
    e.tid = static_cast<TextureId>(entries_.size() + 1);
    e.name = std::move(name);
    e.pyramid = std::move(pyramid);
    e.host_bits_per_texel = host_bytes_per_texel * 8;
    e.loaded = true;
    entries_.push_back(std::move(e));
    return entries_.back().tid;
}

void
TextureManager::setHostBitsPerTexel(TextureId tid, uint32_t bits)
{
    if (tid == 0 || tid > entries_.size())
        throw std::out_of_range("TextureManager: bad tid");
    if (bits == 0 || bits > 32)
        throw std::invalid_argument("TextureManager: bad bit depth");
    entries_[tid - 1].host_bits_per_texel = bits;
}

void
TextureManager::unload(TextureId tid)
{
    if (tid == 0 || tid > entries_.size())
        throw std::out_of_range("TextureManager: bad tid");
    entries_[tid - 1].loaded = false;
}

bool
TextureManager::isLoaded(TextureId tid) const
{
    return tid != 0 && tid <= entries_.size() && entries_[tid - 1].loaded;
}

const TextureEntry &
TextureManager::texture(TextureId tid) const
{
    if (tid == 0 || tid > entries_.size())
        throw std::out_of_range("TextureManager: bad tid");
    return entries_[tid - 1];
}

uint64_t
TextureManager::totalHostBytes() const
{
    uint64_t total = 0;
    for (const auto &e : entries_)
        if (e.loaded)
            total += e.hostBytes();
    return total;
}

uint64_t
TextureManager::totalExpandedBytes() const
{
    uint64_t total = 0;
    for (const auto &e : entries_)
        if (e.loaded)
            total += e.pyramid.totalBytes();
    return total;
}

const TiledLayout &
TextureManager::layout(TextureId tid, TileSpec spec)
{
    const TextureEntry &e = texture(tid);
    uint64_t key = (static_cast<uint64_t>(tid) << 32) | spec.key();
    auto it = layouts_.find(key);
    if (it == layouts_.end()) {
        auto built = std::make_unique<TiledLayout>(
            e.pyramid.width(), e.pyramid.height(), e.pyramid.levels(), spec);
        it = layouts_.emplace(key, std::move(built)).first;
    }
    return *it->second;
}

} // namespace mltc
