/**
 * @file
 * Hierarchical texture tiling and the virtual texture block address
 * <tid, L2, L1> of the paper's Figure 2.
 *
 * Each MIP level of a texture is partitioned into L2 tiles; each L2 tile
 * into L1 sub-tiles. Within a texture, L2 block numbers are assigned
 * sequentially from the first block of the *lowest-resolution* MIP level
 * to the last block of the highest-resolution level, and each level
 * starts a new L2 block. L1 sub-blocks are numbered only within their
 * parent L2 block. Translation from <u, v, m> is a handful of shifts and
 * adds plus a per-level base-table lookup, exactly as §2.2 promises.
 */
#ifndef MLTC_TEXTURE_TILED_LAYOUT_HPP
#define MLTC_TEXTURE_TILED_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "texture/image.hpp"

namespace mltc {

/** Texture id assigned by TextureManager. */
using TextureId = uint32_t;

/** Tiling parameters: L2 and L1 tile edge lengths in texels. */
struct TileSpec
{
    uint32_t l2_tile = 16; ///< L2 tile edge (8, 16 or 32 in the paper)
    uint32_t l1_tile = 4;  ///< L1 tile edge (4 or 8 in the paper)
    /**
     * Morton (bit-interleaved) block numbering within each MIP level
     * instead of row-major. Combined with Morton L1 sub-block numbering
     * this realises Hakura's "6D blocked representation": the linearised
     * block index of a tile equals the Morton code of its global tile
     * coordinates, so 2D tile regions spread perfectly over cache sets.
     * Used for L1 tag/index computation; the L2 page table keeps dense
     * row-major numbering (per-level padding would waste table entries).
     */
    bool morton = false;

    /** L1 sub-blocks per L2 block. */
    constexpr uint32_t
    l1PerL2() const
    {
        uint32_t per_edge = l2_tile / l1_tile;
        return per_edge * per_edge;
    }

    /** Bytes of one L1 tile at 32-bit texels. */
    constexpr uint32_t l1TileBytes() const { return l1_tile * l1_tile * 4; }

    /** Bytes of one L2 tile at 32-bit texels. */
    constexpr uint32_t l2TileBytes() const { return l2_tile * l2_tile * 4; }

    /** Dense key for layout caching. */
    constexpr uint32_t
    key() const
    {
        return (static_cast<uint32_t>(morton) << 16) | (l2_tile << 8) |
               l1_tile;
    }

    constexpr bool
    operator==(const TileSpec &o) const
    {
        return l2_tile == o.l2_tile && l1_tile == o.l1_tile &&
               morton == o.morton;
    }
};

/** Interleave the low 16 bits of x and y (Morton/Z-order code). */
constexpr uint32_t
mortonInterleave(uint32_t x, uint32_t y)
{
    auto spread = [](uint32_t v) constexpr {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff00ff;
        v = (v | (v << 4)) & 0x0f0f0f0f;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        return v;
    };
    return spread(x) | (spread(y) << 1);
}

/** Virtual texture block address <tid, L2, L1>. */
struct VirtualBlock
{
    TextureId tid = 0;
    uint32_t l2_block = 0; ///< L2 block number within the texture
    uint32_t l1_sub = 0;   ///< L1 sub-block number within the L2 block

    constexpr bool
    operator==(const VirtualBlock &o) const
    {
        return tid == o.tid && l2_block == o.l2_block && l1_sub == o.l1_sub;
    }
};

/**
 * Pack a virtual block into a 64-bit key (tid:32 | L2:24 | L1:8) for use
 * as an L1 cache tag and in hash sets.
 */
constexpr uint64_t
packBlock(const VirtualBlock &b)
{
    return (static_cast<uint64_t>(b.tid) << 32) |
           (static_cast<uint64_t>(b.l2_block) << 8) |
           static_cast<uint64_t>(b.l1_sub);
}

/** Inverse of packBlock. */
constexpr VirtualBlock
unpackBlock(uint64_t key)
{
    return {static_cast<TextureId>(key >> 32),
            static_cast<uint32_t>((key >> 8) & 0xffffff),
            static_cast<uint32_t>(key & 0xff)};
}

/** Drop the L1 sub-block: key of the containing L2 block. */
constexpr uint64_t
l2KeyOf(uint64_t block_key)
{
    return block_key & ~0xffull;
}

/**
 * Precomputed tiling of one texture's MIP pyramid under one TileSpec.
 *
 * Immutable after construction; all per-texel queries are O(1).
 */
class TiledLayout
{
  public:
    /**
     * Build the layout for a @p width x @p height power-of-two texture
     * with @p levels MIP levels under @p spec.
     */
    TiledLayout(uint32_t width, uint32_t height, uint32_t levels,
                TileSpec spec);

    /** The tiling parameters this layout was built with. */
    const TileSpec &spec() const { return spec_; }

    /** Number of MIP levels covered. */
    uint32_t levels() const { return static_cast<uint32_t>(tiles_x_.size()); }

    /** Total number of L2 blocks across all levels (the paper's tlen). */
    uint32_t totalL2Blocks() const { return total_l2_blocks_; }

    /** First L2 block number of level @p m (0 = base level). */
    uint32_t
    levelBase(uint32_t m) const
    {
        return level_base_[m];
    }

    /**
     * The per-level base table itself (levels() entries). The batched
     * access path caches this pointer at bind time so its fused
     * translation loop avoids re-chasing the vector per texel.
     */
    const uint32_t *levelBases() const { return level_base_.data(); }

    /** L2 tiles across level @p m. */
    uint32_t tilesX(uint32_t m) const { return tiles_x_[m]; }

    /** L2 tiles down level @p m. */
    uint32_t tilesY(uint32_t m) const { return tiles_y_[m]; }

    /**
     * Virtual block containing texel (x, y) of MIP level @p m.
     * Coordinates must lie within the level.
     */
    VirtualBlock
    blockOf(TextureId tid, uint32_t x, uint32_t y, uint32_t m) const
    {
        uint32_t tx = x >> l2_shift_;
        uint32_t ty = y >> l2_shift_;
        uint32_t lx = (x & l2_mask_) >> l1_shift_;
        uint32_t ly = (y & l2_mask_) >> l1_shift_;
        uint32_t l2, l1;
        if (spec_.morton) {
            l2 = level_base_[m] + mortonInterleave(tx, ty);
            l1 = mortonInterleave(lx, ly);
        } else {
            l2 = level_base_[m] + ty * tiles_x_[m] + tx;
            l1 = (ly << sub_shift_) + lx;
        }
        return {tid, l2, l1};
    }

    /** Packed key form of blockOf (fast path for the simulator). */
    uint64_t
    blockKeyOf(TextureId tid, uint32_t x, uint32_t y, uint32_t m) const
    {
        VirtualBlock b = blockOf(tid, x, y, m);
        return (static_cast<uint64_t>(tid) << 32) |
               (static_cast<uint64_t>(b.l2_block) << 8) |
               static_cast<uint64_t>(b.l1_sub);
    }

  private:
    TileSpec spec_;
    uint32_t l2_shift_;  ///< log2(l2_tile)
    uint32_t l1_shift_;  ///< log2(l1_tile)
    uint32_t l2_mask_;   ///< l2_tile - 1
    uint32_t sub_shift_; ///< log2(l2_tile / l1_tile)
    uint32_t total_l2_blocks_ = 0;
    std::vector<uint32_t> level_base_; ///< first L2 block per level
    std::vector<uint32_t> tiles_x_;    ///< L2 tiles across, per level
    std::vector<uint32_t> tiles_y_;    ///< L2 tiles down, per level
};

} // namespace mltc

#endif // MLTC_TEXTURE_TILED_LAYOUT_HPP
