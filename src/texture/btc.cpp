#include "texture/btc.hpp"

#include <cmath>
#include <stdexcept>

namespace mltc {

namespace {

/** Integer luminance (Rec.601-ish weights scaled by 256). */
uint32_t
luminance(uint32_t texel)
{
    return 77u * channel(texel, 0) + 150u * channel(texel, 1) +
           29u * channel(texel, 2);
}

} // namespace

uint16_t
packRgb565(uint8_t r, uint8_t g, uint8_t b)
{
    return static_cast<uint16_t>(((r >> 3) << 11) | ((g >> 2) << 5) |
                                 (b >> 3));
}

uint32_t
unpackRgb565(uint16_t c)
{
    // Expand with bit replication so white stays white.
    uint32_t r5 = (c >> 11) & 0x1f;
    uint32_t g6 = (c >> 5) & 0x3f;
    uint32_t b5 = c & 0x1f;
    uint8_t r = static_cast<uint8_t>((r5 << 3) | (r5 >> 2));
    uint8_t g = static_cast<uint8_t>((g6 << 2) | (g6 >> 4));
    uint8_t b = static_cast<uint8_t>((b5 << 3) | (b5 >> 2));
    return packRgba(r, g, b);
}

BtcImage
encodeBtc(const Image &img)
{
    if (img.width() < 4 || img.height() < 4)
        throw std::invalid_argument("encodeBtc: image smaller than a block");

    BtcImage out;
    out.width = img.width();
    out.height = img.height();
    const uint32_t bw = img.width() / 4;
    const uint32_t bh = img.height() / 4;
    out.blocks.resize(static_cast<size_t>(bw) * bh);

    for (uint32_t by = 0; by < bh; ++by) {
        for (uint32_t bx = 0; bx < bw; ++bx) {
            // Threshold on the block's mean luminance.
            uint32_t texels[16];
            uint64_t lum_sum = 0;
            for (uint32_t i = 0; i < 16; ++i) {
                texels[i] = img.texel(bx * 4 + (i & 3), by * 4 + (i >> 2));
                lum_sum += luminance(texels[i]);
            }
            const uint64_t mean = lum_sum / 16;

            uint16_t mask = 0;
            uint32_t sum_lo[3] = {}, sum_hi[3] = {};
            uint32_t n_lo = 0, n_hi = 0;
            for (uint32_t i = 0; i < 16; ++i) {
                if (luminance(texels[i]) > mean) {
                    mask |= static_cast<uint16_t>(1u << i);
                    for (int ch = 0; ch < 3; ++ch)
                        sum_hi[ch] += channel(texels[i], ch);
                    ++n_hi;
                } else {
                    for (int ch = 0; ch < 3; ++ch)
                        sum_lo[ch] += channel(texels[i], ch);
                    ++n_lo;
                }
            }

            BtcBlock &blk = out.blocks[static_cast<size_t>(by) * bw + bx];
            blk.mask = mask;
            auto avg = [](uint32_t sum, uint32_t n) {
                return static_cast<uint8_t>(n ? (sum + n / 2) / n : 0);
            };
            blk.color_lo = packRgb565(avg(sum_lo[0], n_lo),
                                      avg(sum_lo[1], n_lo),
                                      avg(sum_lo[2], n_lo));
            blk.color_hi = n_hi ? packRgb565(avg(sum_hi[0], n_hi),
                                             avg(sum_hi[1], n_hi),
                                             avg(sum_hi[2], n_hi))
                                : blk.color_lo;
        }
    }
    return out;
}

Image
decodeBtc(const BtcImage &compressed)
{
    Image out(compressed.width, compressed.height);
    const uint32_t bw = compressed.width / 4;
    for (uint32_t by = 0; by < compressed.height / 4; ++by) {
        for (uint32_t bx = 0; bx < bw; ++bx) {
            const BtcBlock &blk =
                compressed.blocks[static_cast<size_t>(by) * bw + bx];
            uint32_t lo = unpackRgb565(blk.color_lo);
            uint32_t hi = unpackRgb565(blk.color_hi);
            for (uint32_t i = 0; i < 16; ++i)
                out.setTexel(bx * 4 + (i & 3), by * 4 + (i >> 2),
                             (blk.mask >> i) & 1 ? hi : lo);
        }
    }
    return out;
}

double
meanAbsoluteError(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument("meanAbsoluteError: size mismatch");
    uint64_t total = 0;
    for (uint32_t y = 0; y < a.height(); ++y)
        for (uint32_t x = 0; x < a.width(); ++x) {
            uint32_t ta = a.texel(x, y), tb = b.texel(x, y);
            for (int ch = 0; ch < 3; ++ch)
                total += static_cast<uint64_t>(
                    std::abs(static_cast<int>(channel(ta, ch)) -
                             static_cast<int>(channel(tb, ch))));
        }
    return static_cast<double>(total) /
           (3.0 * static_cast<double>(a.width()) *
            static_cast<double>(a.height()));
}

} // namespace mltc
