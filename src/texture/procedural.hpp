/**
 * @file
 * Procedural texture synthesis.
 *
 * The paper's workloads use proprietary artwork (E&S Village, UCLA City).
 * We substitute deterministic procedural textures with comparable sizes
 * and visual structure: brick, roof shingles, grass/dirt ground, roads,
 * building facades with window grids, wood, stone, foliage and sky. The
 * cache study only depends on texture *sizes and mappings*, not pixel
 * content, but real content keeps the rendered examples interpretable
 * (Figure 12 style snapshots).
 */
#ifndef MLTC_TEXTURE_PROCEDURAL_HPP
#define MLTC_TEXTURE_PROCEDURAL_HPP

#include <cstdint>

#include "texture/image.hpp"

namespace mltc {

/**
 * Deterministic 2D value noise with fractal octaves; output in [0, 1].
 * Tiles with period @p period (power of two).
 */
float fractalNoise(int32_t x, int32_t y, uint32_t period, uint64_t seed,
                   int octaves = 4);

/** Simple two-color checkerboard with @p cell texel squares. */
Image makeChecker(uint32_t size, uint32_t cell, uint32_t color_a,
                  uint32_t color_b);

/** Brick wall: staggered courses with mortar joints, color jitter. */
Image makeBrickWall(uint32_t size, uint64_t seed);

/** Roof shingles: overlapping rows with per-shingle shading. */
Image makeRoofShingles(uint32_t size, uint64_t seed);

/** Grass / meadow ground: green noise with patchiness. */
Image makeGrass(uint32_t size, uint64_t seed);

/** Packed dirt / gravel path. */
Image makeDirt(uint32_t size, uint64_t seed);

/** Asphalt road with center line markings. */
Image makeRoad(uint32_t size, uint64_t seed);

/**
 * Building facade: a grid of windows on a wall color; some windows lit.
 * @p stories and @p columns control the window grid.
 */
Image makeFacade(uint32_t size, uint64_t seed, uint32_t stories,
                 uint32_t columns);

/** Vertical sky gradient with noise clouds. */
Image makeSky(uint32_t size, uint64_t seed);

/** Wood planks with grain. */
Image makeWoodPlanks(uint32_t size, uint64_t seed);

/** Rough stone blocks. */
Image makeStone(uint32_t size, uint64_t seed);

/** Leafy foliage for tree billboards (alpha marks gaps). */
Image makeFoliage(uint32_t size, uint64_t seed);

/** Plastered wall with subtle stains. */
Image makePlaster(uint32_t size, uint64_t seed);

} // namespace mltc

#endif // MLTC_TEXTURE_PROCEDURAL_HPP
