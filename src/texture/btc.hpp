/**
 * @file
 * Block Truncation Coding (BTC) texture compression — an extension.
 *
 * The paper stores textures in host memory at their "original depth"
 * and expands to 32 bits in the cache (§3.2); contemporaries such as
 * Talisman [26] leaned on compressed textures to stretch exactly the
 * host-to-accelerator bandwidth this paper studies. This module
 * implements a classic BTC variant: each 4x4 texel block is encoded as
 * two RGB565 endpoint colors plus a 16-bit selector mask — 48 bits per
 * block, i.e. **3 bits per texel**, a 10.7x reduction over 32-bit
 * texels.
 *
 * The simulator only needs the *rate* (TextureManager tracks host bits
 * per texel); the codec here is complete anyway so examples can render
 * the decoded result and tests can bound the quality loss.
 */
#ifndef MLTC_TEXTURE_BTC_HPP
#define MLTC_TEXTURE_BTC_HPP

#include <cstdint>
#include <vector>

#include "texture/image.hpp"

namespace mltc {

/** Bits per texel of the BTC encoding ((2 x 16 + 16) bits / 16). */
constexpr uint32_t kBtcBitsPerTexel = 3;

/** One encoded 4x4 block. */
struct BtcBlock
{
    uint16_t color_lo = 0; ///< RGB565 endpoint for selector 0
    uint16_t color_hi = 0; ///< RGB565 endpoint for selector 1
    uint16_t mask = 0;     ///< one selector bit per texel, row-major
};

/** A BTC-compressed image (dimensions in texels, multiples of 4). */
struct BtcImage
{
    uint32_t width = 0;
    uint32_t height = 0;
    std::vector<BtcBlock> blocks; ///< (width/4) * (height/4), row-major

    /** Compressed size in bytes. */
    size_t bytes() const { return blocks.size() * sizeof(BtcBlock); }
};

/** Pack an RGB888 color to RGB565. */
uint16_t packRgb565(uint8_t r, uint8_t g, uint8_t b);

/** Expand RGB565 back to a packed 32-bit texel (alpha = 255). */
uint32_t unpackRgb565(uint16_t c);

/**
 * Encode @p img (power-of-two, >= 4x4) with per-block mean-threshold
 * BTC over luminance; endpoints are the mean colors of each partition.
 */
BtcImage encodeBtc(const Image &img);

/** Decode back to a 32-bit image. */
Image decodeBtc(const BtcImage &compressed);

/**
 * Mean absolute per-channel error between two equal-size images
 * (quality metric for tests).
 */
double meanAbsoluteError(const Image &a, const Image &b);

} // namespace mltc

#endif // MLTC_TEXTURE_BTC_HPP
