#include "texture/tiled_layout.hpp"

#include <stdexcept>

namespace mltc {

TiledLayout::TiledLayout(uint32_t width, uint32_t height, uint32_t levels,
                         TileSpec spec)
    : spec_(spec)
{
    if (!isPowerOfTwo(width) || !isPowerOfTwo(height))
        throw std::invalid_argument("TiledLayout: non-power-of-two texture");
    if (!isPowerOfTwo(spec.l2_tile) || !isPowerOfTwo(spec.l1_tile) ||
        spec.l1_tile == 0 || spec.l2_tile < spec.l1_tile)
        throw std::invalid_argument("TiledLayout: bad tile spec");
    if (levels == 0)
        throw std::invalid_argument("TiledLayout: zero levels");

    l2_shift_ = log2u(spec.l2_tile);
    l1_shift_ = log2u(spec.l1_tile);
    l2_mask_ = spec.l2_tile - 1;
    sub_shift_ = log2u(spec.l2_tile / spec.l1_tile);

    tiles_x_.resize(levels);
    tiles_y_.resize(levels);
    level_base_.resize(levels);

    for (uint32_t m = 0; m < levels; ++m) {
        uint32_t w = width >> m;
        uint32_t h = height >> m;
        if (w == 0) w = 1;
        if (h == 0) h = 1;
        tiles_x_[m] = (w + spec.l2_tile - 1) >> l2_shift_;
        tiles_y_[m] = (h + spec.l2_tile - 1) >> l2_shift_;
    }

    // L2 blocks are numbered from the lowest-resolution level upward
    // (Figure 2): the smallest level owns block 0. Morton layouts pad
    // each level to a power-of-two square grid so interleaved codes are
    // unique (sparse numbering is fine there: Morton layouts are used
    // for cache tags, not page-table allocation).
    uint32_t next = 0;
    for (uint32_t m = levels; m-- > 0;) {
        level_base_[m] = next;
        if (spec.morton) {
            uint32_t p = 1;
            while (p < tiles_x_[m] || p < tiles_y_[m])
                p <<= 1;
            next += p * p;
        } else {
            next += tiles_x_[m] * tiles_y_[m];
        }
    }
    total_l2_blocks_ = next;
}

} // namespace mltc
