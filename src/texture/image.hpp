/**
 * @file
 * In-memory 32-bit RGBA image, the storage unit for one MIP level.
 *
 * Texels are packed 0xAABBGGRR (R in the low byte) as the accelerator's
 * expanded 32-bit cache format (paper §3.2). The depth a texture occupies
 * in *host* memory (its "original depth") is tracked separately by
 * TextureManager.
 */
#ifndef MLTC_TEXTURE_IMAGE_HPP
#define MLTC_TEXTURE_IMAGE_HPP

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mltc {

/** Pack 8-bit channels into the texel format. */
constexpr uint32_t
packRgba(uint8_t r, uint8_t g, uint8_t b, uint8_t a = 255)
{
    return static_cast<uint32_t>(r) | (static_cast<uint32_t>(g) << 8) |
           (static_cast<uint32_t>(b) << 16) | (static_cast<uint32_t>(a) << 24);
}

/** Extract one channel (0=R,1=G,2=B,3=A) from a packed texel. */
constexpr uint8_t
channel(uint32_t texel, int c)
{
    return static_cast<uint8_t>((texel >> (8 * c)) & 0xff);
}

/** Power-of-two check used to validate texture dimensions. */
constexpr bool
isPowerOfTwo(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr uint32_t
log2u(uint32_t v)
{
    uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/**
 * Row-major 32-bit image. Dimensions must be powers of two so the MIP
 * chain and tiled addressing are exact.
 */
class Image
{
  public:
    /** Empty 0x0 image. */
    Image() = default;

    /** Allocate a width x height image filled with @p fill. */
    Image(uint32_t width, uint32_t height, uint32_t fill = 0);

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }

    /** Texel at (x, y); coordinates must be in range. */
    uint32_t
    texel(uint32_t x, uint32_t y) const
    {
        assert(x < width_ && y < height_);
        return data_[static_cast<size_t>(y) * width_ + x];
    }

    /** Texel at (x, y) with repeat wrapping (dims are powers of two). */
    uint32_t
    texelWrapped(int32_t x, int32_t y) const
    {
        uint32_t ux = static_cast<uint32_t>(x) & (width_ - 1);
        uint32_t uy = static_cast<uint32_t>(y) & (height_ - 1);
        return data_[static_cast<size_t>(uy) * width_ + ux];
    }

    /** Set texel at (x, y). */
    void
    setTexel(uint32_t x, uint32_t y, uint32_t value)
    {
        assert(x < width_ && y < height_);
        data_[static_cast<size_t>(y) * width_ + x] = value;
    }

    /** Raw texel storage (row-major). */
    const std::vector<uint32_t> &data() const { return data_; }

    /** Size in bytes at 32 bits per texel. */
    size_t
    bytes() const
    {
        return data_.size() * sizeof(uint32_t);
    }

  private:
    uint32_t width_ = 0;
    uint32_t height_ = 0;
    std::vector<uint32_t> data_;
};

} // namespace mltc

#endif // MLTC_TEXTURE_IMAGE_HPP
