#include "texture/procedural.hpp"

#include <algorithm>
#include <cmath>

#include "geom/vec.hpp"

namespace mltc {

namespace {

/** Stateless 2D lattice hash -> [0, 1). */
float
latticeHash(uint32_t x, uint32_t y, uint64_t seed)
{
    uint64_t h = seed;
    h ^= (static_cast<uint64_t>(x) << 32) | y;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return static_cast<float>(h >> 40) * 0x1.0p-24f;
}

float
smoothstep(float t)
{
    return t * t * (3.0f - 2.0f * t);
}

/** Single-octave tiling value noise at integer texel coords. */
float
valueNoise(float x, float y, uint32_t period, uint64_t seed)
{
    float fx = std::floor(x), fy = std::floor(y);
    uint32_t ix = static_cast<uint32_t>(static_cast<int64_t>(fx)) & (period - 1);
    uint32_t iy = static_cast<uint32_t>(static_cast<int64_t>(fy)) & (period - 1);
    uint32_t ix1 = (ix + 1) & (period - 1);
    uint32_t iy1 = (iy + 1) & (period - 1);
    float tx = smoothstep(x - fx);
    float ty = smoothstep(y - fy);
    float a = latticeHash(ix, iy, seed);
    float b = latticeHash(ix1, iy, seed);
    float c = latticeHash(ix, iy1, seed);
    float d = latticeHash(ix1, iy1, seed);
    return lerp(lerp(a, b, tx), lerp(c, d, tx), ty);
}

uint32_t
shade(Vec3 color, float scale, float alpha = 1.0f)
{
    auto to8 = [](float v) {
        return static_cast<uint8_t>(clampf(v, 0.0f, 1.0f) * 255.0f + 0.5f);
    };
    return packRgba(to8(color.x * scale), to8(color.y * scale),
                    to8(color.z * scale), to8(alpha));
}

} // namespace

float
fractalNoise(int32_t x, int32_t y, uint32_t period, uint64_t seed, int octaves)
{
    float sum = 0.0f, amp = 0.5f, total = 0.0f;
    float fx = static_cast<float>(x), fy = static_cast<float>(y);
    float freq = 1.0f / 32.0f;
    uint32_t p = std::max<uint32_t>(period / 32, 2);
    for (int o = 0; o < octaves; ++o) {
        sum += amp * valueNoise(fx * freq, fy * freq, p,
                                seed + static_cast<uint64_t>(o) * 0x9e37u);
        total += amp;
        amp *= 0.5f;
        freq *= 2.0f;
        p = std::min(p * 2, period);
    }
    return total > 0.0f ? sum / total : 0.0f;
}

Image
makeChecker(uint32_t size, uint32_t cell, uint32_t color_a, uint32_t color_b)
{
    Image img(size, size);
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x)
            img.setTexel(x, y,
                         (((x / cell) + (y / cell)) & 1) ? color_b : color_a);
    return img;
}

Image
makeBrickWall(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    const uint32_t brick_h = std::max(size / 16, 4u);
    const uint32_t brick_w = brick_h * 2;
    const uint32_t mortar = std::max(brick_h / 6, 1u);
    const Vec3 brick{0.62f, 0.27f, 0.20f};
    const Vec3 mortar_c{0.72f, 0.70f, 0.66f};
    for (uint32_t y = 0; y < size; ++y) {
        uint32_t row = y / brick_h;
        uint32_t stagger = (row & 1) ? brick_w / 2 : 0;
        for (uint32_t x = 0; x < size; ++x) {
            uint32_t bx = (x + stagger) % size;
            bool in_mortar =
                (y % brick_h) < mortar || (bx % brick_w) < mortar;
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed);
            if (in_mortar) {
                img.setTexel(x, y, shade(mortar_c, 0.8f + 0.2f * n));
            } else {
                // Per-brick color jitter keyed on the brick's lattice cell.
                float jitter =
                    latticeHash((x + stagger) / brick_w, row, seed ^ 0xb51cull);
                float s = 0.75f + 0.25f * jitter + 0.15f * (n - 0.5f);
                img.setTexel(x, y, shade(brick, s));
            }
        }
    }
    return img;
}

Image
makeRoofShingles(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    const uint32_t row_h = std::max(size / 12, 4u);
    const uint32_t shingle_w = row_h * 2;
    const Vec3 base{0.35f, 0.23f, 0.18f};
    for (uint32_t y = 0; y < size; ++y) {
        uint32_t row = y / row_h;
        uint32_t stagger = (row & 1) ? shingle_w / 2 : 0;
        float row_fade = 1.0f - 0.35f * (static_cast<float>(y % row_h) /
                                         static_cast<float>(row_h));
        for (uint32_t x = 0; x < size; ++x) {
            float jitter =
                latticeHash((x + stagger) / shingle_w, row, seed ^ 0x5511ull);
            bool gap = ((x + stagger) % shingle_w) <
                       std::max(shingle_w / 16, 1u);
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 3);
            float s = gap ? 0.4f : (0.7f + 0.3f * jitter) * row_fade +
                                       0.1f * (n - 0.5f);
            img.setTexel(x, y, shade(base, s + 0.3f));
        }
    }
    return img;
}

Image
makeGrass(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x) {
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 5);
            float patch = fractalNoise(static_cast<int32_t>(x),
                                       static_cast<int32_t>(y), size,
                                       seed ^ 0x6a5aull, 2);
            Vec3 green = lerp(Vec3{0.18f, 0.42f, 0.12f},
                              Vec3{0.35f, 0.52f, 0.20f}, patch);
            img.setTexel(x, y, shade(green, 0.75f + 0.5f * (n - 0.5f)));
        }
    return img;
}

Image
makeDirt(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x) {
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 5);
            Vec3 c = lerp(Vec3{0.45f, 0.35f, 0.22f}, Vec3{0.6f, 0.5f, 0.35f}, n);
            img.setTexel(x, y, shade(c, 1.0f));
        }
    return img;
}

Image
makeRoad(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    const uint32_t line_half = std::max(size / 64, 1u);
    const uint32_t dash = size / 8;
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x) {
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 4);
            uint32_t mid = size / 2;
            bool on_line = (x >= mid - line_half && x <= mid + line_half) &&
                           ((y / dash) & 1) == 0;
            Vec3 c = on_line ? Vec3{0.85f, 0.8f, 0.3f}
                             : Vec3{0.25f, 0.25f, 0.27f};
            img.setTexel(x, y, shade(c, 0.8f + 0.4f * (n - 0.5f)));
        }
    return img;
}

Image
makeFacade(uint32_t size, uint64_t seed, uint32_t stories, uint32_t columns)
{
    Image img(size, size);
    stories = std::max(stories, 1u);
    columns = std::max(columns, 1u);
    const uint32_t cell_h = size / stories;
    const uint32_t cell_w = size / columns;
    const Vec3 wall = lerp(Vec3{0.55f, 0.53f, 0.5f}, Vec3{0.7f, 0.65f, 0.55f},
                           latticeHash(0, 0, seed));
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x) {
            uint32_t cx = x / cell_w, cy = y / cell_h;
            uint32_t lx = x % cell_w, ly = y % cell_h;
            // Window occupies the middle ~55% of each grid cell.
            bool in_window = lx > cell_w / 4 && lx < cell_w * 3 / 4 &&
                             ly > cell_h / 4 && ly < cell_h * 3 / 4;
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 3);
            if (in_window) {
                bool lit = latticeHash(cx, cy, seed ^ 0x11full) > 0.7f;
                Vec3 c = lit ? Vec3{0.95f, 0.85f, 0.4f}
                             : Vec3{0.15f, 0.2f, 0.3f};
                img.setTexel(x, y, shade(c, 0.9f + 0.2f * (n - 0.5f)));
            } else {
                img.setTexel(x, y, shade(wall, 0.85f + 0.3f * (n - 0.5f)));
            }
        }
    return img;
}

Image
makeSky(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    for (uint32_t y = 0; y < size; ++y) {
        float t = static_cast<float>(y) / static_cast<float>(size);
        Vec3 grad = lerp(Vec3{0.35f, 0.55f, 0.9f}, Vec3{0.75f, 0.85f, 0.95f}, t);
        for (uint32_t x = 0; x < size; ++x) {
            float clouds = fractalNoise(static_cast<int32_t>(x),
                                        static_cast<int32_t>(y), size, seed, 5);
            float cloud_mask = clampf((clouds - 0.55f) * 4.0f, 0.0f, 1.0f);
            Vec3 c = lerp(grad, Vec3{1.0f, 1.0f, 1.0f}, cloud_mask);
            img.setTexel(x, y, shade(c, 1.0f));
        }
    }
    return img;
}

Image
makeWoodPlanks(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    const uint32_t plank_w = std::max(size / 8, 4u);
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x) {
            uint32_t plank = x / plank_w;
            float jitter = latticeHash(plank, 0, seed);
            // Grain: stretched noise along y.
            float grain = valueNoise(static_cast<float>(x) * 0.5f,
                                     static_cast<float>(y) * 0.04f,
                                     std::max(size / 8, 2u), seed ^ plank);
            bool joint = (x % plank_w) < std::max(plank_w / 12, 1u);
            Vec3 wood = lerp(Vec3{0.45f, 0.3f, 0.15f},
                             Vec3{0.6f, 0.42f, 0.22f}, jitter);
            float s = joint ? 0.5f : 0.8f + 0.3f * (grain - 0.5f);
            img.setTexel(x, y, shade(wood, s));
        }
    return img;
}

Image
makeStone(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    const uint32_t block = std::max(size / 8, 4u);
    for (uint32_t y = 0; y < size; ++y) {
        uint32_t row = y / block;
        uint32_t stagger = (row & 1) ? block / 2 : 0;
        for (uint32_t x = 0; x < size; ++x) {
            float jitter =
                latticeHash((x + stagger) / block, row, seed ^ 0x57ull);
            bool joint = (y % block) < std::max(block / 10, 1u) ||
                         ((x + stagger) % block) < std::max(block / 10, 1u);
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 4);
            Vec3 stone = lerp(Vec3{0.5f, 0.5f, 0.48f}, Vec3{0.65f, 0.62f, 0.58f},
                              jitter);
            float s = joint ? 0.45f : 0.8f + 0.4f * (n - 0.5f);
            img.setTexel(x, y, shade(stone, s));
        }
    }
    return img;
}

Image
makeFoliage(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    float half = static_cast<float>(size) * 0.5f;
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x) {
            float dx = (static_cast<float>(x) - half) / half;
            float dy = (static_cast<float>(y) - half) / half;
            float r = std::sqrt(dx * dx + dy * dy);
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 5);
            // Canopy: noisy disc; alpha = 0 outside.
            bool leaf = r + 0.4f * (n - 0.5f) < 0.85f;
            Vec3 green = lerp(Vec3{0.1f, 0.3f, 0.08f}, Vec3{0.3f, 0.5f, 0.15f},
                              n);
            img.setTexel(x, y,
                         leaf ? shade(green, 1.0f) : packRgba(0, 0, 0, 0));
        }
    return img;
}

Image
makePlaster(uint32_t size, uint64_t seed)
{
    Image img(size, size);
    Vec3 base = lerp(Vec3{0.85f, 0.8f, 0.7f}, Vec3{0.9f, 0.88f, 0.8f},
                     latticeHash(1, 1, seed));
    for (uint32_t y = 0; y < size; ++y)
        for (uint32_t x = 0; x < size; ++x) {
            float n = fractalNoise(static_cast<int32_t>(x),
                                   static_cast<int32_t>(y), size, seed, 5);
            float stain = fractalNoise(static_cast<int32_t>(x),
                                       static_cast<int32_t>(y), size,
                                       seed ^ 0xdeadull, 2);
            float s = 0.9f + 0.2f * (n - 0.5f) - 0.15f * stain * stain;
            img.setTexel(x, y, shade(base, s));
        }
    return img;
}

} // namespace mltc
