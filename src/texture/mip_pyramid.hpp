/**
 * @file
 * MIP pyramid (Williams [31]): a chain of images, each a 2x2 box-filtered
 * quarter of the previous, down to 1x1.
 */
#ifndef MLTC_TEXTURE_MIP_PYRAMID_HPP
#define MLTC_TEXTURE_MIP_PYRAMID_HPP

#include <cstdint>
#include <vector>

#include "texture/image.hpp"

namespace mltc {

/**
 * Full MIP chain for one texture. Level 0 is the base (highest
 * resolution); level levels()-1 is 1x1 (for square textures) or the
 * smallest level where the larger dimension reaches 1.
 */
class MipPyramid
{
  public:
    MipPyramid() = default;

    /** Build the chain from the base image by repeated box filtering. */
    explicit MipPyramid(Image base);

    /** Number of levels (>= 1). */
    uint32_t levels() const { return static_cast<uint32_t>(levels_.size()); }

    /** Image for level @p m (0 = base). */
    const Image &
    level(uint32_t m) const
    {
        assert(m < levels_.size());
        return levels_[m];
    }

    /** Base width. */
    uint32_t width() const { return levels_.empty() ? 0 : levels_[0].width(); }

    /** Base height. */
    uint32_t
    height() const
    {
        return levels_.empty() ? 0 : levels_[0].height();
    }

    /** Total texels summed over all levels. */
    uint64_t totalTexels() const;

    /** Total bytes at 32 bits per texel, summed over all levels. */
    uint64_t
    totalBytes() const
    {
        return totalTexels() * 4;
    }

  private:
    std::vector<Image> levels_;
};

} // namespace mltc

#endif // MLTC_TEXTURE_MIP_PYRAMID_HPP
