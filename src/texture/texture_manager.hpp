/**
 * @file
 * Texture registry: owns MIP pyramids, assigns texture ids, tracks
 * host-memory residency (the "texture loaded into main memory" curve of
 * Figure 4) and caches TiledLayouts per tile spec.
 *
 * This models the host driver machinery the paper leans on in §5.2:
 * the driver "keeps track of textures as the application loads and
 * deletes them" and allocates contiguous page-table entries per texture
 * (tstart / tlen).
 */
#ifndef MLTC_TEXTURE_TEXTURE_MANAGER_HPP
#define MLTC_TEXTURE_TEXTURE_MANAGER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "texture/mip_pyramid.hpp"
#include "texture/tiled_layout.hpp"

namespace mltc {

/** One registered texture. */
struct TextureEntry
{
    TextureId tid = 0;
    std::string name;
    MipPyramid pyramid;
    /**
     * Bits per texel in host memory (the texture's "original depth",
     * §3.2, e.g. 32/16/8; 4 for BTC-compressed storage); the cache
     * always stores 32-bit expanded texels.
     */
    uint32_t host_bits_per_texel = 32;
    bool loaded = false;

    /** Host-memory footprint of the whole pyramid at original depth. */
    uint64_t
    hostBytes() const
    {
        return pyramid.totalTexels() * host_bits_per_texel / 8;
    }
};

/**
 * Owner of all textures used by a scene. Texture ids start at 1 so 0 can
 * mean "untextured".
 */
class TextureManager
{
  public:
    TextureManager() = default;

    TextureManager(const TextureManager &) = delete;
    TextureManager &operator=(const TextureManager &) = delete;

    /**
     * Register and load a texture.
     * @return its texture id.
     */
    TextureId load(std::string name, MipPyramid pyramid,
                   uint32_t host_bytes_per_texel = 4);

    /**
     * Override a loaded texture's host storage depth in bits per texel
     * (e.g. 4 for BTC compression, 16 for RGB565 originals).
     */
    void setHostBitsPerTexel(TextureId tid, uint32_t bits);

    /** Unload (textures stay registered so ids remain stable). */
    void unload(TextureId tid);

    /** True when @p tid names a registered, loaded texture. */
    bool isLoaded(TextureId tid) const;

    /** Entry for @p tid; throws for unknown ids. */
    const TextureEntry &texture(TextureId tid) const;

    /** Number of registered textures (loaded or not). */
    size_t textureCount() const { return entries_.size(); }

    /** Sum of hostBytes() over loaded textures. */
    uint64_t totalHostBytes() const;

    /** Sum of 32-bit expanded bytes over loaded textures. */
    uint64_t totalExpandedBytes() const;

    /**
     * Tiled layout of @p tid under @p spec, built on first use and
     * cached. The reference stays valid for the manager's lifetime.
     */
    const TiledLayout &layout(TextureId tid, TileSpec spec);

    /** Apply @p fn to each loaded texture entry. */
    template <typename Fn>
    void
    forEachLoaded(Fn &&fn) const
    {
        for (const auto &e : entries_)
            if (e.loaded)
                fn(e);
    }

  private:
    std::vector<TextureEntry> entries_; ///< index = tid - 1
    std::map<uint64_t, std::unique_ptr<TiledLayout>> layouts_;
};

} // namespace mltc

#endif // MLTC_TEXTURE_TEXTURE_MANAGER_HPP
