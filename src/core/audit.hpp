/**
 * @file
 * Always-on state invariant auditor for the cache simulator.
 *
 * Long simulations (and checkpoint/resume) are only trustworthy if the
 * simulator's linked structures stay mutually consistent; a silent
 * corruption would skew every counter after it. The auditor checks the
 * structural invariants that the paper's design implies:
 *
 *  - sector bits only on allocated t_table entries, and only below the
 *    configured sectors-per-block;
 *  - prefetched bits are a subset of the sector bits;
 *  - BRL[] and t_table[] back-pointers are mutually consistent in both
 *    directions, and physical-block usage never exceeds capacity;
 *  - TLB entries translate to valid page-table indices;
 *  - L1 tags decode to valid <tid, L2 block, L1 sub-block> triples that
 *    hash back to the set holding them, with LRU stamps bounded by the
 *    global tick;
 *  - the exact-LRU recency list is a valid permutation of the blocks.
 *
 * Cheap checks are O(1)-ish and run at every frame boundary when
 * auditing is enabled; the Full sweep is O(state) and is meant for
 * checkpoint boundaries, `--audit=full` runs and tests. Violations
 * throw mltc::Exception (ErrorCode::AuditViolation) naming the
 * structure and index, so a failing run dies loudly at the first
 * inconsistency instead of producing plausible-looking garbage.
 */
#ifndef MLTC_CORE_AUDIT_HPP
#define MLTC_CORE_AUDIT_HPP

#include "core/cache_sim.hpp"

namespace mltc {

/** Parse an audit level name ("off", "cheap", "full"). */
AuditLevel parseAuditLevel(const char *name);

/** Stable name of @p level for reports. */
const char *auditLevelName(AuditLevel level);

/**
 * The auditor. Stateless; every entry point throws mltc::Exception
 * (AuditViolation) on the first violated invariant and returns normally
 * otherwise.
 */
class CacheAuditor
{
  public:
    /** Audit @p sim at @p level (Off returns immediately). */
    static void check(const CacheSim &sim, AuditLevel level);

    /** Cheap counter/cursor sanity only. */
    static void checkCheap(const CacheSim &sim);

    /** Exhaustive structural sweep (includes the cheap checks). */
    static void checkFull(const CacheSim &sim);

    /**
     * Audit a shared L2 that no simulator owns (multi-tenant serving:
     * the per-sim audit skips an attached L2 so the owner checks it
     * exactly once per round instead of K times).
     */
    static void checkL2(const L2TextureCache &l2, AuditLevel level);

  private:
    static void cheapL2(const L2TextureCache &l2);
    static void fullL1(const L1Cache &l1, uint32_t texture_count);
    static void fullL2(const L2TextureCache &l2);
    static void fullTlb(const TextureTlb &tlb, uint32_t table_entries);
    static void fullSelector(const VictimSelector &selector,
                             ReplacementPolicy policy, uint32_t blocks);
};

} // namespace mltc

#endif // MLTC_CORE_AUDIT_HPP
