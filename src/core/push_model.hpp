/**
 * @file
 * Push-architecture memory model (Figure 4's baseline).
 *
 * The paper charges the push architecture the *minimum* local memory it
 * could possibly need: whole textures (at original host depth) are
 * resident for every texture touched during a frame, replaced only at
 * frame boundaries by a perfect, oracular replacement algorithm (§4.2).
 * This is deliberately generous to the baseline — the measured L2 curves
 * beat even this oracle by 3-5x.
 */
#ifndef MLTC_CORE_PUSH_MODEL_HPP
#define MLTC_CORE_PUSH_MODEL_HPP

#include <cstdint>

#include "raster/access_sink.hpp"
#include "texture/texture_manager.hpp"
#include "trace/flat_set.hpp"

namespace mltc {

/**
 * Tracks the textures touched per frame and reports the oracle push
 * memory requirement.
 */
class PushArchitectureModel final : public TexelAccessSink
{
  public:
    explicit PushArchitectureModel(TextureManager &textures)
        : textures_(textures)
    {}

    void
    bindTexture(TextureId tid) override
    {
        if (touched_.insert(tid))
            frame_bytes_ += textures_.texture(tid).hostBytes();
    }

    void access(uint32_t, uint32_t, uint32_t) override {}

    void accessQuad(uint32_t, uint32_t, uint32_t, uint32_t,
                    uint32_t) override
    {
    }

    /**
     * Minimum local texture memory for the frame just rendered, then
     * reset for the next frame.
     */
    uint64_t
    endFrame()
    {
        uint64_t out = frame_bytes_;
        frame_bytes_ = 0;
        touched_.clear();
        return out;
    }

    /** Serialize the frame's touched-texture set and byte accumulator. */
    void
    save(SnapshotWriter &w) const
    {
        w.section(snapTag("PSH "));
        touched_.save(w);
        w.u64(frame_bytes_);
    }

    /** Restore state captured by save(). */
    void
    load(SnapshotReader &r)
    {
        r.expectSection(snapTag("PSH "), "PushArchitectureModel");
        touched_.load(r);
        frame_bytes_ = r.u64();
    }

  private:
    TextureManager &textures_;
    FlatSet64 touched_{256};
    uint64_t frame_bytes_ = 0;
};

} // namespace mltc

#endif // MLTC_CORE_PUSH_MODEL_HPP
