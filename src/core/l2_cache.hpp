/**
 * @file
 * The paper's L2 texture cache (§5): a fully-associative cache of L2
 * texture tiles held in local accelerator DRAM, organised like virtual
 * memory.
 *
 * A Texture Page Table (t_table[]) maps virtual blocks <tid, L2> to
 * physical blocks of L2 cache memory; each entry carries sector bits, one
 * per L1 sub-block, so only the missing L1 sub-block is downloaded from
 * host memory on each L1 miss (sector mapping — this keeps L2 host
 * bandwidth no worse than the pull architecture's). Replacement walks the
 * Block Replacement List (BRL[]) with the clock algorithm.
 *
 * Data payloads are not stored: this is the transaction-accurate
 * simulator of §3.3/§5.3, counting hits, downloads and bytes.
 */
#ifndef MLTC_CORE_L2_CACHE_HPP
#define MLTC_CORE_L2_CACHE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/replacement.hpp"
#include "texture/texture_manager.hpp"
#include "util/histogram.hpp"

namespace mltc {

/**
 * Sector prefetch policy — an extension of the paper's pure
 * demand-fetched sector mapping, modelling Hakura's observation that
 * fetching a tile's neighbours cuts miss rate at the cost of bandwidth.
 */
enum class PrefetchPolicy
{
    None,           ///< the paper's demand fetching
    AdjacentSector, ///< also fetch the next sector in the row
    WholeBlock      ///< fetch every sector of the block (no sectoring)
};

/** Name of a prefetch policy for reports. */
const char *prefetchPolicyName(PrefetchPolicy policy);

/** L2 cache geometry and policy. */
struct L2Config
{
    uint64_t size_bytes = 2ull << 20; ///< 2, 4 or 8 MB in the paper
    uint32_t l2_tile = 16;            ///< tile edge (8/16/32 in the paper)
    uint32_t l1_tile = 4;             ///< sector granularity = L1 tile edge
    ReplacementPolicy policy = ReplacementPolicy::Clock;
    PrefetchPolicy prefetch = PrefetchPolicy::None;

    /** Bytes of one L2 block at 32-bit texels. */
    constexpr uint64_t blockBytes() const { return l2_tile * l2_tile * 4ull; }

    /** Physical blocks in the cache. */
    constexpr uint64_t blocks() const { return size_bytes / blockBytes(); }

    /** Sectors (L1 sub-blocks) per L2 block. */
    constexpr uint32_t
    sectors() const
    {
        uint32_t per_edge = l2_tile / l1_tile;
        return per_edge * per_edge;
    }
};

/**
 * How K independent streams share one L2 (multi-tenant serving mode).
 *
 * Shared: no enforcement — every stream competes for every block (the
 * single-stream behaviour; with one stream this is byte-identical to
 * the pre-multi-tenant cache). Static: the block pool is split into K
 * contiguous partitions; each stream evicts only inside its own, so a
 * stream behaves exactly like a solo cache of its quota size. Utility:
 * one global pool with per-stream block quotas; an over-quota stream
 * funds its own allocations, an under-quota stream evicts from the
 * most-over-quota stream (quotas are retargeted online from the
 * reuse-distance miss-ratio curves).
 */
enum class L2SharePolicy { Shared, Static, Utility };

/** Parse a share-policy name ("shared", "static", "utility"). */
L2SharePolicy parseL2SharePolicy(const char *name);

/** Name of a share policy for reports. */
const char *l2SharePolicyName(L2SharePolicy policy);

/** Per-stream L2 counters (multi-tenant attribution). */
struct L2StreamStats
{
    uint64_t lookups = 0;
    uint64_t full_hits = 0;
    uint64_t partial_hits = 0;
    uint64_t full_misses = 0;
    uint64_t evictions_suffered = 0; ///< this stream's blocks evicted
    uint64_t cross_evictions = 0;    ///< evictions inflicted on others
    uint64_t host_bytes = 0;
    uint64_t l2_read_bytes = 0;

    /** Fraction of lookups that missed the full block (paper's L2 miss). */
    double
    missRate() const
    {
        return lookups == 0
                   ? 0.0
                   : static_cast<double>(partial_hits + full_misses) /
                         static_cast<double>(lookups);
    }
};

/** Outcome of an L2 access (conditional on an L1 miss). */
enum class L2Result
{
    FullHit,    ///< block allocated and sector present: read from L2
    PartialHit, ///< block allocated, sector absent: download one sector
    FullMiss    ///< no physical block: allocate (maybe evict) + download
};

/** Cumulative L2 counters. */
struct L2Stats
{
    uint64_t lookups = 0;
    uint64_t full_hits = 0;
    uint64_t partial_hits = 0;
    uint64_t full_misses = 0;
    uint64_t evictions = 0;
    uint64_t host_bytes = 0;    ///< downloaded from host memory
    uint64_t l2_read_bytes = 0; ///< served from L2 cache memory
    uint64_t victim_steps = 0;  ///< clock search steps, total
    uint32_t victim_steps_max = 0;
    uint64_t prefetch_sectors = 0; ///< sectors fetched speculatively
    uint64_t prefetch_useful = 0;  ///< prefetched sectors later demanded
};

/**
 * The L2 cache proper. Constructed over a TextureManager: the page table
 * allocates tstart..tstart+tlen contiguous entries per loaded texture
 * (host-driver behaviour, §5.2).
 */
class L2TextureCache
{
  public:
    L2TextureCache(TextureManager &textures, const L2Config &config);

    /**
     * Multi-tenant construction: one page-table region per stream, in
     * stream order, each covering that stream's TextureManager. The
     * share policy governs victim selection (see L2SharePolicy).
     * @throws std::invalid_argument for zero streams, more streams than
     *         blocks (every stream needs >= 1 block) or > 254 streams.
     */
    L2TextureCache(const std::vector<TextureManager *> &streams,
                   const L2Config &config, L2SharePolicy share);

    const L2Config &config() const { return cfg_; }

    /** First page-table entry of @p tid (stream 0). */
    uint32_t tstart(TextureId tid) const;

    /** First page-table entry of @p tid within @p stream's region. */
    uint32_t tstartFor(uint32_t stream, TextureId tid) const;

    /** Stream whose page-table region contains @p t_index. */
    uint32_t streamOfIndex(uint32_t t_index) const;

    /** Page-table index of <tid, l2_block> (what the TLB caches). */
    uint32_t
    tableIndex(TextureId tid, uint32_t l2_block) const
    {
        return tstart(tid) + l2_block;
    }

    /** Total page-table entries (for the Table 4 structure sizing). */
    uint32_t tableEntries() const
    {
        return static_cast<uint32_t>(table_.size());
    }

    /**
     * Service an L1 miss for sector @p l1_sub of the virtual block at
     * page-table index @p t_index. @p host_sector_bytes is the size of
     * one downloaded sector at the texture's original host depth.
     * @throws mltc::Exception (OutOfRange) for an index outside the
     *         page table — malformed traces must not scribble memory —
     *         or outside the issuing stream's region.
     */
    L2Result access(uint32_t t_index, uint32_t l1_sub,
                    uint64_t host_sector_bytes, uint32_t stream = 0);

    /**
     * Residency probe: true when the sector is resident, with no state
     * change. Used by tests and by CacheSim's graceful-degradation
     * fallback to find a coarser MIP level that is still sector-valid.
     * @throws mltc::Exception (OutOfRange) for a bad index.
     */
    bool probe(uint32_t t_index, uint32_t l1_sub) const;

    /** Physical blocks currently allocated. */
    uint64_t allocatedBlocks() const { return allocated_; }

    /** Victim-search steps of the most recent eviction (0 if none yet). */
    uint32_t lastVictimSteps() const { return last_victim_steps_; }

    /**
     * Sectors downloaded from host by the most recent access()
     * (0 on a full hit; > 1 when prefetching).
     */
    uint32_t lastDownloadSectors() const { return last_download_sectors_; }

    const L2Stats &stats() const { return stats_; }

    /** Number of tenant streams (1 for the single-stream ctor). */
    uint32_t streamCount() const { return stream_count_; }

    /** The configured share policy. */
    L2SharePolicy sharePolicy() const { return share_; }

    /** Attribution counters for @p stream. */
    const L2StreamStats &streamStats(uint32_t stream) const;

    /** Physical blocks currently owned by @p stream. */
    uint64_t streamAllocated(uint32_t stream) const;

    /** Per-stream block quotas (targets under Utility, hard under Static). */
    const std::vector<uint64_t> &quotas() const { return quota_; }

    /**
     * Retarget Utility quotas (lazy enforcement: over-quota streams lose
     * blocks at their next eviction, nothing is reclaimed eagerly).
     * @throws std::invalid_argument unless the policy is Utility, every
     *         quota is >= 1 and the quotas sum to blocks().
     */
    void setQuotas(const std::vector<uint64_t> &quotas);

    /**
     * Quarantine support: evict every block @p stream owns and return
     * them to the free pool. Survivor streams' cached state, recency
     * order and counters are untouched.
     */
    void releaseStream(uint32_t stream);

    /** Blocks currently parked on the free list (after releaseStream). */
    uint64_t freeBlocks() const { return free_list_.size(); }

    /**
     * Distribution of clock victim-search lengths, one sample per
     * eviction search (§5.3 replacement behaviour). Serialized with the
     * cache so resumed distributions match straight runs.
     */
    const Histogram &victimStepsHistogram() const { return victim_hist_; }

    void
    clearStats()
    {
        stats_ = {};
        for (auto &ss : stream_stats_)
            ss = {};
        victim_hist_.clear();
    }

    /** Drop all cached blocks and reset replacement state. */
    void reset();

    /** Serialize page table, BRL, selector and counters. */
    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) on geometry/policy skew,
     *         (Corrupt) on internally inconsistent snapshot content.
     */
    void load(SnapshotReader &r);

  private:
    friend class CacheAuditor;
    friend class AuditTestPeer;

    struct TableEntry
    {
        uint64_t sectors = 0;    ///< bit per L1 sub-block present
        uint64_t prefetched = 0; ///< present but not yet demanded
        uint32_t phys_plus1 = 0; ///< 0 = no physical block allocated
    };

    /** block_stream_ value for a physical block nobody owns. */
    static constexpr uint8_t kFreeBlock = 0xFF;

    /** Apply the configured prefetch policy after a demand download. */
    void prefetchAfterDemand(TableEntry &entry, uint32_t l1_sub,
                             uint64_t host_sector_bytes);

    /** access() minus the per-stream byte attribution wrapper. */
    L2Result accessImpl(uint32_t t_index, uint32_t l1_sub,
                        uint64_t host_sector_bytes, uint32_t stream);

    /** Report a touch to the selector that owns @p phys. */
    void touchBlock(uint32_t phys);

    /** Record the search cost of the eviction that just ran. */
    void noteVictimSteps(uint32_t steps);

    /**
     * Find (and if owned, evict with attribution) a physical block for
     * @p stream under the configured share policy.
     */
    uint32_t allocBlockFor(uint32_t stream);

    /** Stream that must fund an eviction requested by @p stream. */
    uint32_t victimStream(uint32_t stream) const;

    /** Evict whatever owns @p phys, attributing it to @p requester. */
    void evictPhys(uint32_t phys, uint32_t requester);

    std::vector<TextureManager *> streams_; ///< one manager per stream
    L2Config cfg_;
    L2SharePolicy share_ = L2SharePolicy::Shared;
    uint32_t stream_count_ = 1;
    std::vector<TableEntry> table_;
    std::vector<uint32_t> brl_owner_; ///< t_index+1 per physical block
    std::unique_ptr<VictimSelector> selector_;
    std::vector<std::vector<uint32_t>> tstarts_; ///< [stream][tid], 0 unused
    std::vector<uint32_t> region_start_; ///< K+1 page-table prefix sums
    std::vector<uint8_t> block_stream_;  ///< owner stream, kFreeBlock = none
    std::vector<uint64_t> stream_alloc_; ///< owned blocks per stream
    std::vector<uint64_t> quota_;        ///< block quota per stream
    std::vector<uint64_t> base_;         ///< Static: partition start block
    std::vector<std::unique_ptr<VictimSelector>>
        part_selector_;                  ///< Static: per-partition selector
    std::vector<uint32_t> free_list_;    ///< released blocks (LIFO reuse)
    std::vector<L2StreamStats> stream_stats_;
    uint64_t allocated_ = 0;
    uint64_t sector_read_bytes_;      ///< 32-bit bytes per sector read
    uint32_t last_victim_steps_ = 0;
    uint32_t last_download_sectors_ = 0;
    L2Stats stats_;
    Histogram victim_hist_{256}; ///< clock scan lengths, per eviction
};

} // namespace mltc

#endif // MLTC_CORE_L2_CACHE_HPP
