/**
 * @file
 * Block replacement policies for the L2 texture cache.
 *
 * The paper uses LRU approximated by the "clock" algorithm over the
 * Block Replacement List (§5.1-5.2) and calls out alternative
 * algorithms as future work (§6). We implement clock plus exact LRU,
 * FIFO and random for the ablation bench.
 */
#ifndef MLTC_CORE_REPLACEMENT_HPP
#define MLTC_CORE_REPLACEMENT_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/serializer.hpp"

namespace mltc {

/** Which victim-selection algorithm the L2 cache uses. */
enum class ReplacementPolicy { Clock, Lru, Fifo, Random };

/** Parse a policy name ("clock", "lru", "fifo", "random"). */
ReplacementPolicy parseReplacementPolicy(const char *name);

/** Name of a policy for reports. */
const char *replacementPolicyName(ReplacementPolicy policy);

/**
 * Victim selector over a fixed pool of physical blocks. Blocks are
 * identified by index in [0, blocks). The caller reports touches
 * (onAccess) and asks for victims (selectVictim); selection must only
 * return blocks that have been allocated (every block is allocated
 * before the pool is full, so victims are only requested when full).
 */
class VictimSelector
{
  public:
    virtual ~VictimSelector() = default;

    /** Physical block @p index was referenced. */
    virtual void onAccess(uint32_t index) = 0;

    /** Choose a victim; also counts the search cost in steps. */
    virtual uint32_t selectVictim() = 0;

    /**
     * Choose a victim restricted to blocks for which @p allowed returns
     * true (multi-tenant partition enforcement). The caller guarantees
     * at least one allowed block exists. Recency state of disallowed
     * blocks is left untouched so other partitions see no side effects.
     */
    virtual uint32_t
    selectVictimAmong(const std::function<bool(uint32_t)> &allowed) = 0;

    /** Steps expended by the last selectVictim() (clock "peskiness"). */
    virtual uint32_t lastSearchSteps() const { return 1; }

    /** Reset all state. */
    virtual void reset() = 0;

    /** Serialize the selector's state for a checkpoint. */
    virtual void save(SnapshotWriter &w) const = 0;

    /** Restore state captured by save() of the same policy and size. */
    virtual void load(SnapshotReader &r) = 0;
};

/**
 * The paper's clock approximation of LRU: a circular sweep over the
 * active bits of the BRL, clearing bits until an inactive entry is
 * found (§5.2 and Appendix).
 */
class ClockSelector final : public VictimSelector
{
  public:
    explicit ClockSelector(uint32_t blocks);

    void onAccess(uint32_t index) override { active_[index] = 1; }
    uint32_t selectVictim() override;
    uint32_t
    selectVictimAmong(const std::function<bool(uint32_t)> &allowed) override;
    uint32_t lastSearchSteps() const override { return last_steps_; }
    void reset() override;
    void save(SnapshotWriter &w) const override;
    void load(SnapshotReader &r) override;

  private:
    friend class CacheAuditor;
    friend class AuditTestPeer;

    std::vector<uint8_t> active_;
    uint32_t hand_ = 0;
    uint32_t last_steps_ = 0;
};

/** Exact LRU via an intrusive doubly-linked recency list (O(1)). */
class LruSelector final : public VictimSelector
{
  public:
    explicit LruSelector(uint32_t blocks);

    void onAccess(uint32_t index) override;
    uint32_t selectVictim() override;
    uint32_t
    selectVictimAmong(const std::function<bool(uint32_t)> &allowed) override;
    void reset() override;
    void save(SnapshotWriter &w) const override;
    void load(SnapshotReader &r) override;

  private:
    friend class CacheAuditor;
    friend class AuditTestPeer;

    void unlink(uint32_t index);
    void pushFront(uint32_t index);

    std::vector<uint32_t> prev_, next_;
    uint32_t head_; ///< most recently used
    uint32_t tail_; ///< least recently used
    uint32_t blocks_;
};

/** FIFO: evict in allocation order, ignoring touches. */
class FifoSelector final : public VictimSelector
{
  public:
    explicit FifoSelector(uint32_t blocks) : blocks_(blocks) {}

    void onAccess(uint32_t) override {}

    uint32_t
    selectVictim() override
    {
        uint32_t v = hand_;
        hand_ = (hand_ + 1) % blocks_;
        return v;
    }

    uint32_t
    selectVictimAmong(const std::function<bool(uint32_t)> &allowed) override;

    void reset() override { hand_ = 0; }
    void save(SnapshotWriter &w) const override;
    void load(SnapshotReader &r) override;

  private:
    uint32_t blocks_;
    uint32_t hand_ = 0;
};

/** Uniform random eviction. */
class RandomSelector final : public VictimSelector
{
  public:
    explicit RandomSelector(uint32_t blocks, uint64_t seed = 0x5eedull)
        : blocks_(blocks), rng_(seed)
    {}

    void onAccess(uint32_t) override {}

    uint32_t
    selectVictim() override
    {
        return static_cast<uint32_t>(rng_.below(blocks_));
    }

    uint32_t
    selectVictimAmong(const std::function<bool(uint32_t)> &allowed) override;

    void reset() override { rng_.reseed(0x5eedull); }
    void save(SnapshotWriter &w) const override;
    void load(SnapshotReader &r) override;

  private:
    uint32_t blocks_;
    Rng rng_;
};

/** Factory. */
std::unique_ptr<VictimSelector> makeVictimSelector(ReplacementPolicy policy,
                                                   uint32_t blocks);

} // namespace mltc

#endif // MLTC_CORE_REPLACEMENT_HPP
