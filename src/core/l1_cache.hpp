/**
 * @file
 * On-chip L1 texture cache (paper §2.3).
 *
 * Set-associative cache of L1 texture tiles. Tags are the full virtual
 * block address <tid, L2, L1> (packed), with the L2/L1 granulation fixed
 * at 16x16 L2 tiles regardless of the simulated L2 cache's tile size
 * (§3.3) — this realises Hakura's "6D blocked representation" and keeps
 * L1 behaviour identical across L2 parameter sweeps. Line size equals
 * the L1 tile size (the paper restricts itself to this, §2.3). The paper
 * studies a 2-way set-associative L1 following Hakura; associativity is
 * configurable here for the ablation benches (direct-mapped through
 * fully-associative).
 */
#ifndef MLTC_CORE_L1_CACHE_HPP
#define MLTC_CORE_L1_CACHE_HPP

#include <cstdint>
#include <vector>

#include "texture/tiled_layout.hpp"
#include "util/serializer.hpp"

namespace mltc {

/** L1 cache geometry. */
struct L1Config
{
    uint64_t size_bytes = 16 * 1024; ///< total data capacity
    uint32_t assoc = 2;              ///< ways per set (0 = fully associative)
    uint32_t l1_tile = 4;            ///< tile edge in texels (line = tile)

    /** Line size in bytes (32-bit texels). */
    constexpr uint64_t lineBytes() const { return l1_tile * l1_tile * 4ull; }

    /** Total lines. */
    constexpr uint64_t lines() const { return size_bytes / lineBytes(); }
};

/** Hit/miss counters. */
struct L1Stats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    double hitRate() const { return 1.0 - missRate(); }
};

/**
 * Set-associative tag store for L1 texture tiles. Data payloads are not
 * modelled (transaction-accurate, not cycle-accurate, §3.3).
 */
class L1Cache
{
  public:
    /** Build an empty cache; throws on inconsistent geometry. */
    explicit L1Cache(const L1Config &config);

    const L1Config &config() const { return cfg_; }

    /**
     * Look up the line holding @p block_key; on a hit update LRU and
     * return true. On a miss the caller decides what to do (the fill is
     * separate so the controller can model download paths).
     */
    bool lookup(uint64_t block_key);

    /** Install @p block_key, evicting the set's LRU line. */
    void fill(uint64_t block_key);

    /** True when the key is resident (no LRU update; for tests). */
    bool probe(uint64_t block_key) const;

    /** Invalidate everything (e.g. between animations). */
    void reset();

    const L1Stats &stats() const { return stats_; }

    /** Zero the counters (content is kept). */
    void clearStats() { stats_ = {}; }

    /** Number of sets. */
    uint32_t sets() const { return sets_; }

    /** Serialize content, LRU stamps and counters for a checkpoint. */
    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) when the snapshot was
     *         taken under a different cache geometry.
     */
    void load(SnapshotReader &r);

  private:
    friend class CacheAuditor;
    friend class AuditTestPeer;

    uint32_t setIndex(uint64_t key) const;

    L1Config cfg_;
    uint32_t sets_;
    uint32_t assoc_;
    uint32_t subs_per_block_; ///< L1 sub-blocks per (16x16) L2 block
    std::vector<uint64_t> tags_;    ///< sets_ x assoc_, 0 = invalid
    std::vector<uint64_t> stamps_;  ///< LRU stamps, parallel to tags_
    uint64_t tick_ = 0;
    L1Stats stats_;
};

} // namespace mltc

#endif // MLTC_CORE_L1_CACHE_HPP
