/**
 * @file
 * On-chip L1 texture cache (paper §2.3).
 *
 * Set-associative cache of L1 texture tiles. Tags are the full virtual
 * block address <tid, L2, L1> (packed), with the L2/L1 granulation fixed
 * at 16x16 L2 tiles regardless of the simulated L2 cache's tile size
 * (§3.3) — this realises Hakura's "6D blocked representation" and keeps
 * L1 behaviour identical across L2 parameter sweeps. Line size equals
 * the L1 tile size (the paper restricts itself to this, §2.3). The paper
 * studies a 2-way set-associative L1 following Hakura; associativity is
 * configurable here for the ablation benches (direct-mapped through
 * fully-associative).
 */
#ifndef MLTC_CORE_L1_CACHE_HPP
#define MLTC_CORE_L1_CACHE_HPP

#include <cstdint>
#include <vector>

#include "texture/tiled_layout.hpp"
#include "util/serializer.hpp"

namespace mltc {

/** L1 cache geometry. */
struct L1Config
{
    uint64_t size_bytes = 16 * 1024; ///< total data capacity
    uint32_t assoc = 2;              ///< ways per set (0 = fully associative)
    uint32_t l1_tile = 4;            ///< tile edge in texels (line = tile)

    /** Line size in bytes (32-bit texels). */
    constexpr uint64_t lineBytes() const { return l1_tile * l1_tile * 4ull; }

    /** Total lines. */
    constexpr uint64_t lines() const { return size_bytes / lineBytes(); }
};

/** Hit/miss counters. */
struct L1Stats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    double hitRate() const { return 1.0 - missRate(); }
};

/**
 * Set-associative tag store for L1 texture tiles. Data payloads are not
 * modelled (transaction-accurate, not cycle-accurate, §3.3).
 *
 * Tags and LRU stamps are stored way-major (one contiguous plane per
 * way, indexed by set): the batched access path probes a run of nearby
 * sets against way plane 0, then way plane 1, which keeps the common
 * 2-way scan in two cache lines and lets the compiler vectorize the
 * compare. Snapshots keep the original set-major byte order (save/load
 * permute), so checkpoint files are unchanged.
 */
class L1Cache
{
  public:
    /** Build an empty cache; throws on inconsistent geometry. */
    explicit L1Cache(const L1Config &config);

    const L1Config &config() const { return cfg_; }

    /**
     * Look up the line holding @p block_key; on a hit update LRU and
     * return true. On a miss the caller decides what to do (the fill is
     * separate so the controller can model download paths). Inline and
     * branch-free across the ways: the matching way is selected by
     * conditional moves, the only branch is hit-vs-miss itself.
     */
    bool
    lookup(uint64_t block_key)
    {
        ++stats_.accesses;
        const uint32_t set = setIndex(block_key);
        uint32_t way = kNoWay;
        for (uint32_t w = 0; w < assoc_; ++w)
            way = tags_[static_cast<size_t>(w) * sets_ + set] == block_key
                      ? w
                      : way;
        if (way == kNoWay) {
            ++stats_.misses;
            return false;
        }
        stamps_[static_cast<size_t>(way) * sets_ + set] = ++tick_;
        return true;
    }

    /**
     * Probe @p keys in order exactly as repeated lookup() calls would —
     * identical counters, LRU stamps and tick sequence — but with the
     * per-call statistics folded into one update. Stops at the first
     * miss so the caller can service it (a fill changes the tag state
     * later probes must observe) and resume with the tail.
     *
     * @return the number of leading hits h. When h < @p n, keys[h]
     *         missed (its access and miss are already counted, no LRU
     *         update — the same state lookup() leaves on a miss).
     */
    uint32_t
    lookupRun(const uint64_t *keys, uint32_t n)
    {
        uint32_t h = 0;
        if (assoc_ == 2) [[likely]] {
            // Two-way fast path: both way planes probed branch-free,
            // the only branch is hit-vs-miss (as in lookup()).
            const uint64_t *t0 = tags_.data();
            const uint64_t *t1 = t0 + sets_;
            for (; h < n; ++h) {
                const uint64_t key = keys[h];
                const uint32_t set = setIndex(key);
                uint32_t way = kNoWay;
                way = t0[set] == key ? 0u : way;
                way = t1[set] == key ? 1u : way;
                if (way == kNoWay)
                    break;
                stamps_[static_cast<size_t>(way) * sets_ + set] = ++tick_;
            }
        } else {
            for (; h < n; ++h) {
                const uint64_t key = keys[h];
                const uint32_t set = setIndex(key);
                uint32_t way = kNoWay;
                for (uint32_t w = 0; w < assoc_; ++w)
                    way = tags_[static_cast<size_t>(w) * sets_ + set] == key
                              ? w
                              : way;
                if (way == kNoWay)
                    break;
                stamps_[static_cast<size_t>(way) * sets_ + set] = ++tick_;
            }
        }
        if (h < n) {
            stats_.accesses += h + 1;
            ++stats_.misses;
        } else {
            stats_.accesses += n;
        }
        return h;
    }

    /** Install @p block_key, evicting the set's LRU line. */
    void fill(uint64_t block_key);

    /** True when the key is resident (no LRU update; for tests). */
    bool probe(uint64_t block_key) const;

    /** Invalidate everything (e.g. between animations). */
    void reset();

    const L1Stats &stats() const { return stats_; }

    /** Zero the counters (content is kept). */
    void clearStats() { stats_ = {}; }

    /** Number of sets. */
    uint32_t sets() const { return sets_; }

    /** Serialize content, LRU stamps and counters for a checkpoint. */
    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) when the snapshot was
     *         taken under a different cache geometry.
     */
    void load(SnapshotReader &r);

  private:
    friend class CacheAuditor;
    friend class AuditTestPeer;

    static constexpr uint32_t kNoWay = 0xffffffffu;

    /**
     * Bit-selection indexing, as real texture caches do: linearise the
     * virtual block coordinates so contiguous tile regions spread
     * perfectly over the sets (Hakura's "6D blocked representation").
     * The tid term staggers different textures' mappings. Pure bit
     * arithmetic — inline so the batched translation loop vectorizes.
     * (tid starts at 1 so a packed key is never 0; 0 marks invalid
     * tags.)
     */
    uint32_t
    setIndex(uint64_t key) const
    {
        const uint32_t tid = static_cast<uint32_t>(key >> 32);
        const uint32_t l2 = static_cast<uint32_t>((key >> 8) & 0xffffff);
        const uint32_t l1 = static_cast<uint32_t>(key & 0xff);
        const uint32_t linear =
            l2 * subs_per_block_ + l1 + tid * 0x9e3779b1u;
        return linear & (sets_ - 1);
    }

    L1Config cfg_;
    uint32_t sets_;
    uint32_t assoc_;
    uint32_t subs_per_block_; ///< L1 sub-blocks per (16x16) L2 block
    std::vector<uint64_t> tags_;   ///< way-major: assoc_ planes of sets_
    std::vector<uint64_t> stamps_; ///< LRU stamps, parallel to tags_
    uint64_t tick_ = 0;
    L1Stats stats_;
};

} // namespace mltc

#endif // MLTC_CORE_L1_CACHE_HPP
