/**
 * @file
 * Set-associative L2 texture cache — the organisation the paper
 * *considers and rejects* in §5.1.
 *
 * The paper argues that direct-mapped and set-associative L2 caches
 * suffer inter-texture collisions that a hashing function cannot easily
 * avoid, and chooses a fully-associative page-table organisation
 * instead. We implement the rejected design so the ablation bench
 * (`abl_set_assoc_l2`) can quantify that argument: same capacity, same
 * sector mapping, but placement restricted to a set indexed by a hash of
 * the virtual block address.
 */
#ifndef MLTC_CORE_SET_ASSOC_L2_HPP
#define MLTC_CORE_SET_ASSOC_L2_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/cache_sim.hpp"
#include "core/l1_cache.hpp"
#include "raster/access_sink.hpp"
#include "texture/texture_manager.hpp"

namespace mltc {

/** Configuration for the set-associative L2 comparison. */
struct SetAssocL2Config
{
    L1Config l1;
    uint64_t l2_size_bytes = 2ull << 20;
    uint32_t l2_tile = 16;
    uint32_t l2_assoc = 4; ///< ways per set
};

/**
 * Two-level simulator with a set-associative L2 (sectored lines, LRU
 * within a set). Interface mirrors CacheSim so the bench can drive both
 * through a FanoutSink.
 */
class SetAssocL2Sim final : public TexelAccessSink
{
  public:
    SetAssocL2Sim(TextureManager &textures, const SetAssocL2Config &config,
                  std::string label = {});

    const std::string &label() const { return label_; }

    void bindTexture(TextureId tid) override;
    void access(uint32_t x, uint32_t y, uint32_t mip) override;
    void accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                    uint32_t mip) override;

    /** Harvest per-frame deltas (same shape as CacheSim's). */
    CacheFrameStats endFrame();

    const CacheFrameStats &totals() const { return totals_; }

  private:
    /** Service one texel reference (shared by access/accessQuad). */
    void handleTexel(uint32_t x, uint32_t y, uint32_t mip);

    struct Line
    {
        uint64_t tag = 0;     ///< packed <tid, L2> key; 0 = invalid
        uint64_t sectors = 0; ///< valid L1 sub-blocks
        uint64_t stamp = 0;   ///< LRU
    };

    TextureManager &textures_;
    SetAssocL2Config cfg_;
    std::string label_;
    L1Cache l1_;
    std::vector<Line> lines_;
    uint32_t sets_;
    uint64_t tick_ = 0;

    const TiledLayout *l1_layout_ = nullptr;
    const TiledLayout *l2_layout_ = nullptr;
    TextureId bound_ = 0;
    uint64_t host_sector_bytes_ = 0;
    uint64_t last_hit_key_ = 0; ///< coalescing filter (0 = none)

    CacheFrameStats frame_;
    CacheFrameStats totals_;
};

} // namespace mltc

#endif // MLTC_CORE_SET_ASSOC_L2_HPP
