/**
 * @file
 * AVX-512 staging kernel for the batched access path.
 *
 * One vector step stages kStageGroup (16) TexelRefs. A TexelRef is 20
 * bytes — five dwords — so a group is five 64-byte loads, and each
 * field (x0, y0, mip|kind) is gathered from the AoS stream with three
 * masked two-source dword permutes. Pixel markers are compressed out
 * of the lane set before the coalescing-filter compare so the filter
 * sees consecutive *texels*, exactly as the scalar loop does (markers
 * never touch the filter). The filter itself is the shifted-neighbour
 * compare: each texel's (tx, ty, mip) against its predecessor's, with
 * the predecessor of lane 0 fed from the carry vector via valignd.
 * Survivors are compacted with vpcompressd and appended to the caller's
 * SoA arrays.
 *
 * Everything here is bookkeeping-identical to the scalar staging loop
 * in CacheSim::batchImpl(); tests/test_batch_equivalence.cpp runs both
 * (MLTC_BATCH_SIMD=0 forces scalar) and compares byte-for-byte.
 */
#include "core/batch_stage.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define MLTC_HAVE_AVX512_KERNEL 1
#include <immintrin.h>
#else
#define MLTC_HAVE_AVX512_KERNEL 0
#endif

namespace mltc::detail {

#if MLTC_HAVE_AVX512_KERNEL

static_assert(sizeof(TexelRef) == 20, "kernel assumes 5-dword refs");
static_assert(offsetof(TexelRef, x0) == 0 && offsetof(TexelRef, y0) == 4 &&
                  offsetof(TexelRef, mip) == 16 &&
                  offsetof(TexelRef, kind) == 18,
              "kernel assumes the TexelRef field order");

namespace {

// GCC implements the maskz intrinsics on top of _mm512_undefined_epi32,
// which -W(maybe-)uninitialized flags at every expansion site.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/**
 * Gather one dword field (at dword offset encoded in the index
 * vectors) of 16 consecutive TexelRefs from the five loaded dword
 * vectors: three zero-masked permutes ORed together.
 */
__attribute__((target("avx512f"))) inline __m512i
gatherField(__m512i z0, __m512i z1, __m512i z2, __m512i z3, __m512i z4,
            __m512i ia, __mmask16 ma, __m512i ib, __mmask16 mb,
            __m512i ic, __mmask16 mc)
{
    const __m512i va = _mm512_maskz_permutex2var_epi32(ma, z0, ia, z1);
    const __m512i vb = _mm512_maskz_permutex2var_epi32(mb, z2, ib, z3);
    const __m512i vc = _mm512_maskz_permutexvar_epi32(mc, ic, z4);
    return _mm512_or_si512(_mm512_or_si512(va, vb), vc);
}

__attribute__((target("avx512f"))) StageResult
stageRunAvx512(const TexelRef *refs, size_t n, uint32_t shift,
               BatchStageCarry &carry, uint32_t *sxs, uint32_t *sys,
               uint32_t *stx, uint32_t *sty, uint32_t *sms, size_t &ns,
               size_t cap)
{
    // Field gather indices: ref r's field at dword offset o sits at
    // dword position 5*r + o of the group; positions 0-31 come from
    // (z0, z1), 32-63 from (z2, z3), 64-79 from z4.
    const __m512i xa = _mm512_setr_epi32(0, 5, 10, 15, 20, 25, 30, 0, 0,
                                         0, 0, 0, 0, 0, 0, 0);
    const __m512i xb = _mm512_setr_epi32(0, 0, 0, 0, 0, 0, 0, 3, 8, 13,
                                         18, 23, 28, 0, 0, 0);
    const __m512i xc = _mm512_setr_epi32(0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                         0, 0, 0, 1, 6, 11);
    const __m512i ya = _mm512_setr_epi32(1, 6, 11, 16, 21, 26, 31, 0, 0,
                                         0, 0, 0, 0, 0, 0, 0);
    const __m512i yb = _mm512_setr_epi32(0, 0, 0, 0, 0, 0, 0, 4, 9, 14,
                                         19, 24, 29, 0, 0, 0);
    const __m512i yc = _mm512_setr_epi32(0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                         0, 0, 0, 2, 7, 12);
    const __m512i ka = _mm512_setr_epi32(4, 9, 14, 19, 24, 29, 0, 0, 0,
                                         0, 0, 0, 0, 0, 0, 0);
    const __m512i kb = _mm512_setr_epi32(0, 0, 0, 0, 0, 0, 2, 7, 12, 17,
                                         22, 27, 0, 0, 0, 0);
    const __m512i kc = _mm512_setr_epi32(0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                         0, 0, 0, 5, 10, 15);

    const __m512i low16 = _mm512_set1_epi32(0xffff);
    const __m512i quad = _mm512_set1_epi32(TexelRef::kQuad);
    const __m512i zero = _mm512_setzero_si512();
    const __m128i shcnt = _mm_cvtsi32_si128(static_cast<int>(shift));

    // Carry vectors: every lane holds the running filter tile, so both
    // the valignd feed (lane 15) and the exit extraction (lane 0) read
    // the same value.
    __m512i ctx = _mm512_set1_epi32(static_cast<int>(carry.ptx));
    __m512i cty = _mm512_set1_epi32(static_cast<int>(carry.pty));
    __m512i cm = _mm512_set1_epi32(static_cast<int>(carry.pm));

    StageResult r;
    size_t done = 0;
    while (done + kStageGroup <= n && ns + kStageGroup <= cap) {
        const auto *base =
            reinterpret_cast<const uint32_t *>(refs + done);
        const __m512i z0 = _mm512_loadu_si512(base);
        const __m512i z1 = _mm512_loadu_si512(base + 16);
        const __m512i z2 = _mm512_loadu_si512(base + 32);
        const __m512i z3 = _mm512_loadu_si512(base + 48);
        const __m512i z4 = _mm512_loadu_si512(base + 64);

        const __m512i mk = gatherField(z0, z1, z2, z3, z4, ka, 0x003f,
                                       kb, 0x0fc0, kc, 0xf000);
        const __m512i kinds = _mm512_srli_epi32(mk, 16);
        // A quad needs the scalar corner expansion: stop before this
        // group and let the caller take over.
        if (_mm512_cmpeq_epi32_mask(kinds, quad) != 0)
            break;
        const __mmask16 tm = _mm512_cmpeq_epi32_mask(kinds, zero);
        done += kStageGroup;
        const unsigned len = static_cast<unsigned>(__builtin_popcount(tm));
        if (len == 0)
            continue; // markers only: no texels, filter untouched
        r.texels += len;

        const __m512i xs = gatherField(z0, z1, z2, z3, z4, xa, 0x007f,
                                       xb, 0x1f80, xc, 0xe000);
        const __m512i ys = gatherField(z0, z1, z2, z3, z4, ya, 0x007f,
                                       yb, 0x1f80, yc, 0xe000);
        // Compress the texels together (markers drop out) so the
        // neighbour compare below relates consecutive texels.
        const __m512i px = _mm512_maskz_compress_epi32(tm, xs);
        const __m512i py = _mm512_maskz_compress_epi32(tm, ys);
        const __m512i pm =
            _mm512_maskz_compress_epi32(tm, _mm512_and_si512(mk, low16));
        const __m512i tx = _mm512_srl_epi32(px, shcnt);
        const __m512i ty = _mm512_srl_epi32(py, shcnt);

        // Predecessor vectors: lane j-1's tile, lane 0 fed by carry.
        const __m512i qx = _mm512_alignr_epi32(tx, ctx, 15);
        const __m512i qy = _mm512_alignr_epi32(ty, cty, 15);
        const __m512i qm = _mm512_alignr_epi32(pm, cm, 15);
        const __mmask16 lanes =
            static_cast<__mmask16>(0xffffu >> (16 - len));
        const __mmask16 keep =
            static_cast<__mmask16>(
                (_mm512_cmpneq_epi32_mask(tx, qx) |
                 _mm512_cmpneq_epi32_mask(ty, qy) |
                 _mm512_cmpneq_epi32_mask(pm, qm)) &
                lanes);
        if (keep != 0) {
            _mm512_storeu_si512(sxs + ns,
                                _mm512_maskz_compress_epi32(keep, px));
            _mm512_storeu_si512(sys + ns,
                                _mm512_maskz_compress_epi32(keep, py));
            _mm512_storeu_si512(stx + ns,
                                _mm512_maskz_compress_epi32(keep, tx));
            _mm512_storeu_si512(sty + ns,
                                _mm512_maskz_compress_epi32(keep, ty));
            _mm512_storeu_si512(sms + ns,
                                _mm512_maskz_compress_epi32(keep, pm));
            ns += static_cast<unsigned>(__builtin_popcount(keep));
        }
        // New carry: the last texel of the group, broadcast.
        const __m512i last = _mm512_set1_epi32(static_cast<int>(len - 1));
        ctx = _mm512_permutexvar_epi32(last, tx);
        cty = _mm512_permutexvar_epi32(last, ty);
        cm = _mm512_permutexvar_epi32(last, pm);
    }
    r.refs = static_cast<uint32_t>(done);
    carry.ptx = static_cast<uint32_t>(
        _mm_cvtsi128_si32(_mm512_castsi512_si128(ctx)));
    carry.pty = static_cast<uint32_t>(
        _mm_cvtsi128_si32(_mm512_castsi512_si128(cty)));
    carry.pm = static_cast<uint32_t>(
        _mm_cvtsi128_si32(_mm512_castsi512_si128(cm)));
    return r;
}

#pragma GCC diagnostic pop

} // namespace

#endif // MLTC_HAVE_AVX512_KERNEL

StageRunFn
resolveStageRun()
{
#if MLTC_HAVE_AVX512_KERNEL
    const char *env = std::getenv("MLTC_BATCH_SIMD");
    if (env && *env &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
         std::strcmp(env, "off") == 0))
        return nullptr;
    if (__builtin_cpu_supports("avx512f"))
        return &stageRunAvx512;
#endif
    return nullptr;
}

} // namespace mltc::detail
