#include "core/set_assoc_l2.hpp"

#include <stdexcept>

namespace mltc {

namespace {

uint64_t
mix(uint64_t key)
{
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ull;
    key ^= key >> 29;
    return key;
}

} // namespace

SetAssocL2Sim::SetAssocL2Sim(TextureManager &textures,
                             const SetAssocL2Config &config,
                             std::string label)
    : textures_(textures), cfg_(config), label_(std::move(label)),
      l1_(config.l1)
{
    uint64_t block_bytes =
        static_cast<uint64_t>(config.l2_tile) * config.l2_tile * 4;
    uint64_t blocks = config.l2_size_bytes / block_bytes;
    if (blocks == 0 || blocks % config.l2_assoc != 0)
        throw std::invalid_argument("SetAssocL2Sim: bad geometry");
    sets_ = static_cast<uint32_t>(blocks / config.l2_assoc);
    if (!isPowerOfTwo(sets_))
        throw std::invalid_argument("SetAssocL2Sim: sets not power of two");
    lines_.assign(blocks, {});
}

void
SetAssocL2Sim::bindTexture(TextureId tid)
{
    bound_ = tid;
    TileSpec l1_spec{std::max(16u, cfg_.l1.l1_tile), cfg_.l1.l1_tile,
                     /*morton=*/true};
    l1_layout_ = &textures_.layout(tid, l1_spec);
    TileSpec l2_spec{cfg_.l2_tile, cfg_.l1.l1_tile};
    l2_layout_ = &textures_.layout(tid, l2_spec);
    const TextureEntry &tex = textures_.texture(tid);
    host_sector_bytes_ = static_cast<uint64_t>(cfg_.l1.l1_tile) *
                         cfg_.l1.l1_tile * tex.host_bits_per_texel / 8;
}

void
SetAssocL2Sim::access(uint32_t x, uint32_t y, uint32_t mip)
{
    ++frame_.accesses;
    handleTexel(x, y, mip);
}

void
SetAssocL2Sim::accessQuad(uint32_t x0, uint32_t y0, uint32_t x1,
                          uint32_t y1, uint32_t mip)
{
    frame_.accesses += 4;
    const uint32_t sh = log2u(cfg_.l1.l1_tile);
    const bool dx = (x0 >> sh) != (x1 >> sh);
    const bool dy = (y0 >> sh) != (y1 >> sh);
    handleTexel(x0, y0, mip);
    if (dx)
        handleTexel(x1, y0, mip);
    if (dy) {
        handleTexel(x0, y1, mip);
        if (dx)
            handleTexel(x1, y1, mip);
    }
}

void
SetAssocL2Sim::handleTexel(uint32_t x, uint32_t y, uint32_t mip)
{
    const uint64_t l1_key = l1_layout_->blockKeyOf(bound_, x, y, mip);
    // One-entry coalescing filter (see CacheSim::access).
    if (l1_key == last_hit_key_)
        return;
    if (l1_.lookup(l1_key)) {
        last_hit_key_ = l1_key;
        return;
    }
    ++frame_.l1_misses;

    const uint64_t full_key = l2_layout_->blockKeyOf(bound_, x, y, mip);
    const uint64_t l2_tag = l2KeyOf(full_key);
    const uint32_t l1_sub = static_cast<uint32_t>(full_key & 0xff);
    const uint64_t sector_bit = 1ull << l1_sub;

    const size_t base =
        (static_cast<size_t>(mix(l2_tag)) & (sets_ - 1)) * cfg_.l2_assoc;

    // Search the set.
    size_t victim = base;
    uint64_t oldest = ~0ull;
    for (uint32_t w = 0; w < cfg_.l2_assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.tag == l2_tag) {
            line.stamp = ++tick_;
            if (line.sectors & sector_bit) {
                ++frame_.l2_full_hits;
                frame_.l2_read_bytes += cfg_.l1.lineBytes();
            } else {
                ++frame_.l2_partial_hits;
                line.sectors |= sector_bit;
                frame_.host_bytes += host_sector_bytes_;
            }
            l1_.fill(l1_key);
            last_hit_key_ = l1_key;
            return;
        }
        if (line.tag == 0) { // free way wins immediately
            victim = base + w;
            oldest = 0;
            break;
        }
        if (line.stamp < oldest) {
            oldest = line.stamp;
            victim = base + w;
        }
    }

    // Full miss: (re)allocate the victim line for this block.
    ++frame_.l2_full_misses;
    Line &line = lines_[victim];
    line.tag = l2_tag;
    line.sectors = sector_bit;
    line.stamp = ++tick_;
    frame_.host_bytes += host_sector_bytes_;
    l1_.fill(l1_key);
    last_hit_key_ = l1_key;
}

CacheFrameStats
SetAssocL2Sim::endFrame()
{
    CacheFrameStats out = frame_;
    totals_.add(out);
    frame_ = {};
    return out;
}

} // namespace mltc
