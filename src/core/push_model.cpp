// PushArchitectureModel is header-only; this TU anchors the library.
#include "core/push_model.hpp"
