#include "core/l2_cache.hpp"

#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace mltc {

namespace {

/** Bounds guard shared by access()/probe(). */
void
checkTableIndex(uint32_t t_index, size_t entries)
{
    if (t_index >= entries)
        throw Exception(ErrorCode::OutOfRange,
                        "L2TextureCache: page-table index " +
                            std::to_string(t_index) + " out of range (" +
                            std::to_string(entries) + " entries)");
}

} // namespace

const char *
prefetchPolicyName(PrefetchPolicy policy)
{
    switch (policy) {
      case PrefetchPolicy::None: return "none";
      case PrefetchPolicy::AdjacentSector: return "adjacent";
      case PrefetchPolicy::WholeBlock: return "whole-block";
    }
    return "?";
}

L2TextureCache::L2TextureCache(TextureManager &textures,
                               const L2Config &config)
    : textures_(textures), cfg_(config)
{
    if (config.blocks() == 0)
        throw std::invalid_argument("L2TextureCache: zero blocks");
    if (config.sectors() > 64)
        throw std::invalid_argument(
            "L2TextureCache: more than 64 sectors per block");

    // Host-driver page-table allocation: contiguous tlen entries per
    // loaded texture, in tid order.
    tstart_.assign(textures.textureCount() + 1, 0);
    uint32_t next = 0;
    TileSpec spec{cfg_.l2_tile, cfg_.l1_tile};
    for (TextureId tid = 1; tid <= textures.textureCount(); ++tid) {
        if (!textures.isLoaded(tid))
            continue;
        const TiledLayout &layout = textures.layout(tid, spec);
        tstart_[tid] = next;
        next += layout.totalL2Blocks();
    }
    table_.assign(next, {});
    brl_owner_.assign(config.blocks(), 0);
    selector_ = makeVictimSelector(config.policy,
                                   static_cast<uint32_t>(config.blocks()));
    sector_read_bytes_ = cfg_.l1_tile * cfg_.l1_tile * 4ull;
}

uint32_t
L2TextureCache::tstart(TextureId tid) const
{
    if (tid == 0 || tid >= tstart_.size())
        throw std::out_of_range("L2TextureCache: bad tid");
    return tstart_[tid];
}

L2Result
L2TextureCache::access(uint32_t t_index, uint32_t l1_sub,
                       uint64_t host_sector_bytes)
{
    checkTableIndex(t_index, table_.size());
    ++stats_.lookups;
    TableEntry &entry = table_[t_index];
    const uint64_t sector_bit = 1ull << l1_sub;

    if (entry.phys_plus1 != 0) {
        uint32_t phys = entry.phys_plus1 - 1;
        selector_->onAccess(phys);
        if (entry.sectors & sector_bit) {
            // Step D yes: the sub-block is resident in L2.
            ++stats_.full_hits;
            stats_.l2_read_bytes += sector_read_bytes_;
            last_download_sectors_ = 0;
            if (entry.prefetched & sector_bit) {
                ++stats_.prefetch_useful;
                entry.prefetched &= ~sector_bit;
            }
            return L2Result::FullHit;
        }
        // Step F: download just the missing sector (sector mapping),
        // into L2 and, in parallel, into L1.
        ++stats_.partial_hits;
        entry.sectors |= sector_bit;
        stats_.host_bytes += host_sector_bytes;
        last_download_sectors_ = 1;
        prefetchAfterDemand(entry, l1_sub, host_sector_bytes);
        return L2Result::PartialHit;
    }

    // Step E: full miss — allocate a physical block, evicting if full.
    ++stats_.full_misses;
    uint32_t phys;
    if (allocated_ < cfg_.blocks()) {
        phys = static_cast<uint32_t>(allocated_++);
        last_victim_steps_ = 0;
    } else {
        phys = selector_->selectVictim();
        uint32_t steps = selector_->lastSearchSteps();
        last_victim_steps_ = steps;
        stats_.victim_steps += steps;
        if (steps > stats_.victim_steps_max)
            stats_.victim_steps_max = steps;
        victim_hist_.add(steps);
        uint32_t old_owner = brl_owner_[phys];
        if (old_owner != 0) {
            // Notify the victim: clear the virtual block's ownership.
            table_[old_owner - 1].phys_plus1 = 0;
            table_[old_owner - 1].sectors = 0;
            table_[old_owner - 1].prefetched = 0;
            ++stats_.evictions;
        }
    }
    brl_owner_[phys] = t_index + 1;
    entry.phys_plus1 = phys + 1;
    entry.sectors = sector_bit;
    entry.prefetched = 0;
    selector_->onAccess(phys);
    stats_.host_bytes += host_sector_bytes;
    last_download_sectors_ = 1;
    prefetchAfterDemand(entry, l1_sub, host_sector_bytes);
    return L2Result::FullMiss;
}

void
L2TextureCache::prefetchAfterDemand(TableEntry &entry, uint32_t l1_sub,
                                    uint64_t host_sector_bytes)
{
    switch (cfg_.prefetch) {
      case PrefetchPolicy::None:
        return;
      case PrefetchPolicy::AdjacentSector: {
        // Fetch the next sector along the scan direction within the
        // same block row (rasterization order is left-to-right).
        const uint32_t row = cfg_.l2_tile / cfg_.l1_tile;
        if ((l1_sub % row) + 1 < row) {
            uint64_t bit = 1ull << (l1_sub + 1);
            if (!(entry.sectors & bit)) {
                entry.sectors |= bit;
                entry.prefetched |= bit;
                stats_.host_bytes += host_sector_bytes;
                ++stats_.prefetch_sectors;
                ++last_download_sectors_;
            }
        }
        return;
      }
      case PrefetchPolicy::WholeBlock: {
        const uint32_t n = cfg_.sectors();
        for (uint32_t s = 0; s < n; ++s) {
            uint64_t bit = 1ull << s;
            if (!(entry.sectors & bit)) {
                entry.sectors |= bit;
                entry.prefetched |= bit;
                stats_.host_bytes += host_sector_bytes;
                ++stats_.prefetch_sectors;
                ++last_download_sectors_;
            }
        }
        return;
      }
    }
}

bool
L2TextureCache::probe(uint32_t t_index, uint32_t l1_sub) const
{
    checkTableIndex(t_index, table_.size());
    const TableEntry &entry = table_[t_index];
    return entry.phys_plus1 != 0 && (entry.sectors & (1ull << l1_sub));
}

void
L2TextureCache::reset()
{
    std::fill(table_.begin(), table_.end(), TableEntry{});
    std::fill(brl_owner_.begin(), brl_owner_.end(), 0);
    selector_->reset();
    allocated_ = 0;
}

namespace {
constexpr uint32_t kL2Tag = snapTag("L2C ");
} // namespace

void
L2TextureCache::save(SnapshotWriter &w) const
{
    w.section(kL2Tag);
    w.u64(cfg_.size_bytes);
    w.u32(cfg_.l2_tile);
    w.u32(cfg_.l1_tile);
    w.u8(static_cast<uint8_t>(cfg_.policy));
    w.u8(static_cast<uint8_t>(cfg_.prefetch));
    w.u32(static_cast<uint32_t>(table_.size()));

    // Page table as parallel columns (cheaper than per-entry framing).
    std::vector<uint64_t> sectors(table_.size()), prefetched(table_.size());
    std::vector<uint32_t> phys(table_.size());
    for (size_t i = 0; i < table_.size(); ++i) {
        sectors[i] = table_[i].sectors;
        prefetched[i] = table_[i].prefetched;
        phys[i] = table_[i].phys_plus1;
    }
    w.u64Vec(sectors);
    w.u64Vec(prefetched);
    w.u32Vec(phys);
    w.u32Vec(brl_owner_);
    selector_->save(w);
    w.u64(allocated_);
    w.u32(last_victim_steps_);
    w.u32(last_download_sectors_);
    w.u64(stats_.lookups);
    w.u64(stats_.full_hits);
    w.u64(stats_.partial_hits);
    w.u64(stats_.full_misses);
    w.u64(stats_.evictions);
    w.u64(stats_.host_bytes);
    w.u64(stats_.l2_read_bytes);
    w.u64(stats_.victim_steps);
    w.u32(stats_.victim_steps_max);
    w.u64(stats_.prefetch_sectors);
    w.u64(stats_.prefetch_useful);
    victim_hist_.save(w);
}

void
L2TextureCache::load(SnapshotReader &r)
{
    r.expectSection(kL2Tag, "L2TextureCache");
    const uint64_t size_bytes = r.u64();
    const uint32_t l2_tile = r.u32();
    const uint32_t l1_tile = r.u32();
    const uint8_t policy = r.u8();
    const uint8_t prefetch = r.u8();
    if (size_bytes != cfg_.size_bytes || l2_tile != cfg_.l2_tile ||
        l1_tile != cfg_.l1_tile ||
        policy != static_cast<uint8_t>(cfg_.policy) ||
        prefetch != static_cast<uint8_t>(cfg_.prefetch))
        throw Exception(ErrorCode::VersionMismatch,
                        "L2TextureCache: snapshot geometry/policy does not "
                        "match the configured cache");
    const uint32_t entries = r.u32();
    if (entries != table_.size())
        throw Exception(ErrorCode::VersionMismatch,
                        "L2TextureCache: snapshot page table has " +
                            std::to_string(entries) + " entries, expected " +
                            std::to_string(table_.size()) +
                            " (different texture set?)");

    std::vector<uint64_t> sectors, prefetched;
    std::vector<uint32_t> phys;
    r.u64Vec(sectors);
    r.u64Vec(prefetched);
    r.u32Vec(phys);
    if (sectors.size() != table_.size() || prefetched.size() != table_.size() ||
        phys.size() != table_.size())
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot page-table columns "
                        "disagree on entry count");
    std::vector<uint32_t> brl;
    r.u32Vec(brl);
    if (brl.size() != brl_owner_.size())
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot BRL size mismatch");

    for (size_t i = 0; i < table_.size(); ++i) {
        table_[i].sectors = sectors[i];
        table_[i].prefetched = prefetched[i];
        table_[i].phys_plus1 = phys[i];
    }
    brl_owner_ = std::move(brl);
    selector_->load(r);
    allocated_ = r.u64();
    if (allocated_ > cfg_.blocks())
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot allocated block count "
                        "exceeds capacity");
    last_victim_steps_ = r.u32();
    last_download_sectors_ = r.u32();
    stats_.lookups = r.u64();
    stats_.full_hits = r.u64();
    stats_.partial_hits = r.u64();
    stats_.full_misses = r.u64();
    stats_.evictions = r.u64();
    stats_.host_bytes = r.u64();
    stats_.l2_read_bytes = r.u64();
    stats_.victim_steps = r.u64();
    stats_.victim_steps_max = r.u32();
    stats_.prefetch_sectors = r.u64();
    stats_.prefetch_useful = r.u64();
    victim_hist_.load(r);
}

} // namespace mltc
