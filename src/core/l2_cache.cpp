#include "core/l2_cache.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace mltc {

namespace {

/** Bounds guard shared by access()/probe(). */
void
checkTableIndex(uint32_t t_index, size_t entries)
{
    if (t_index >= entries)
        throw Exception(ErrorCode::OutOfRange,
                        "L2TextureCache: page-table index " +
                            std::to_string(t_index) + " out of range (" +
                            std::to_string(entries) + " entries)");
}

} // namespace

const char *
prefetchPolicyName(PrefetchPolicy policy)
{
    switch (policy) {
      case PrefetchPolicy::None: return "none";
      case PrefetchPolicy::AdjacentSector: return "adjacent";
      case PrefetchPolicy::WholeBlock: return "whole-block";
    }
    return "?";
}

L2SharePolicy
parseL2SharePolicy(const char *name)
{
    if (std::strcmp(name, "shared") == 0)
        return L2SharePolicy::Shared;
    if (std::strcmp(name, "static") == 0)
        return L2SharePolicy::Static;
    if (std::strcmp(name, "utility") == 0)
        return L2SharePolicy::Utility;
    throw std::invalid_argument(std::string("unknown share policy: ") + name);
}

const char *
l2SharePolicyName(L2SharePolicy policy)
{
    switch (policy) {
      case L2SharePolicy::Shared: return "shared";
      case L2SharePolicy::Static: return "static";
      case L2SharePolicy::Utility: return "utility";
    }
    return "?";
}

L2TextureCache::L2TextureCache(TextureManager &textures,
                               const L2Config &config)
    : L2TextureCache(std::vector<TextureManager *>{&textures}, config,
                     L2SharePolicy::Shared)
{}

L2TextureCache::L2TextureCache(const std::vector<TextureManager *> &streams,
                               const L2Config &config, L2SharePolicy share)
    : streams_(streams), cfg_(config), share_(share)
{
    if (config.blocks() == 0)
        throw std::invalid_argument("L2TextureCache: zero blocks");
    if (config.sectors() > 64)
        throw std::invalid_argument(
            "L2TextureCache: more than 64 sectors per block");
    if (streams_.empty())
        throw std::invalid_argument("L2TextureCache: zero streams");
    if (streams_.size() > 254)
        throw std::invalid_argument("L2TextureCache: more than 254 streams");
    if (streams_.size() > config.blocks())
        throw std::invalid_argument(
            "L2TextureCache: more streams than blocks (every stream needs "
            "at least one block)");

    stream_count_ = static_cast<uint32_t>(streams_.size());

    // Host-driver page-table allocation: one contiguous region per
    // stream, inside it contiguous tlen entries per loaded texture, in
    // tid order.
    tstarts_.resize(stream_count_);
    region_start_.assign(stream_count_ + 1, 0);
    uint32_t next = 0;
    TileSpec spec{cfg_.l2_tile, cfg_.l1_tile};
    for (uint32_t s = 0; s < stream_count_; ++s) {
        region_start_[s] = next;
        TextureManager &textures = *streams_[s];
        tstarts_[s].assign(textures.textureCount() + 1, 0);
        for (TextureId tid = 1; tid <= textures.textureCount(); ++tid) {
            if (!textures.isLoaded(tid))
                continue;
            const TiledLayout &layout = textures.layout(tid, spec);
            tstarts_[s][tid] = next;
            next += layout.totalL2Blocks();
        }
    }
    region_start_[stream_count_] = next;
    table_.assign(next, {});
    brl_owner_.assign(config.blocks(), 0);
    selector_ = makeVictimSelector(config.policy,
                                   static_cast<uint32_t>(config.blocks()));
    sector_read_bytes_ = cfg_.l1_tile * cfg_.l1_tile * 4ull;

    // Equal block split: remainder blocks go to the low stream ids.
    // Under Shared the quotas are reporting-only fair shares; under
    // Static they are hard partition sizes; under Utility they are the
    // initial targets the online repartitioner adjusts.
    const uint64_t blocks = config.blocks();
    quota_.assign(stream_count_, blocks / stream_count_);
    for (uint32_t s = 0; s < blocks % stream_count_; ++s)
        ++quota_[s];
    base_.assign(stream_count_, 0);
    for (uint32_t s = 1; s < stream_count_; ++s)
        base_[s] = base_[s - 1] + quota_[s - 1];
    if (share_ == L2SharePolicy::Static)
        for (uint32_t s = 0; s < stream_count_; ++s)
            part_selector_.push_back(makeVictimSelector(
                config.policy, static_cast<uint32_t>(quota_[s])));

    block_stream_.assign(blocks, kFreeBlock);
    stream_alloc_.assign(stream_count_, 0);
    stream_stats_.resize(stream_count_);
}

uint32_t
L2TextureCache::tstart(TextureId tid) const
{
    return tstartFor(0, tid);
}

uint32_t
L2TextureCache::tstartFor(uint32_t stream, TextureId tid) const
{
    if (stream >= stream_count_)
        throw std::out_of_range("L2TextureCache: bad stream");
    if (tid == 0 || tid >= tstarts_[stream].size())
        throw std::out_of_range("L2TextureCache: bad tid");
    return tstarts_[stream][tid];
}

uint32_t
L2TextureCache::streamOfIndex(uint32_t t_index) const
{
    checkTableIndex(t_index, table_.size());
    for (uint32_t s = 0; s < stream_count_; ++s)
        if (t_index < region_start_[s + 1])
            return s;
    return stream_count_ - 1; // unreachable: the index bound is checked
}

L2Result
L2TextureCache::access(uint32_t t_index, uint32_t l1_sub,
                       uint64_t host_sector_bytes, uint32_t stream)
{
    checkTableIndex(t_index, table_.size());
    if (stream >= stream_count_)
        throw Exception(ErrorCode::OutOfRange,
                        "L2TextureCache: stream " + std::to_string(stream) +
                            " out of range (" +
                            std::to_string(stream_count_) + " streams)");
    if (stream_count_ > 1 &&
        (t_index < region_start_[stream] || t_index >= region_start_[stream + 1]))
        throw Exception(ErrorCode::OutOfRange,
                        "L2TextureCache: page-table index " +
                            std::to_string(t_index) +
                            " outside the region of stream " +
                            std::to_string(stream));

    const uint64_t host0 = stats_.host_bytes;
    const uint64_t read0 = stats_.l2_read_bytes;
    const L2Result res = accessImpl(t_index, l1_sub, host_sector_bytes, stream);

    L2StreamStats &ss = stream_stats_[stream];
    ++ss.lookups;
    switch (res) {
      case L2Result::FullHit: ++ss.full_hits; break;
      case L2Result::PartialHit: ++ss.partial_hits; break;
      case L2Result::FullMiss: ++ss.full_misses; break;
    }
    ss.host_bytes += stats_.host_bytes - host0;
    ss.l2_read_bytes += stats_.l2_read_bytes - read0;
    return res;
}

L2Result
L2TextureCache::accessImpl(uint32_t t_index, uint32_t l1_sub,
                           uint64_t host_sector_bytes, uint32_t stream)
{
    ++stats_.lookups;
    TableEntry &entry = table_[t_index];
    const uint64_t sector_bit = 1ull << l1_sub;

    if (entry.phys_plus1 != 0) {
        uint32_t phys = entry.phys_plus1 - 1;
        touchBlock(phys);
        if (entry.sectors & sector_bit) {
            // Step D yes: the sub-block is resident in L2.
            ++stats_.full_hits;
            stats_.l2_read_bytes += sector_read_bytes_;
            last_download_sectors_ = 0;
            if (entry.prefetched & sector_bit) {
                ++stats_.prefetch_useful;
                entry.prefetched &= ~sector_bit;
            }
            return L2Result::FullHit;
        }
        // Step F: download just the missing sector (sector mapping),
        // into L2 and, in parallel, into L1.
        ++stats_.partial_hits;
        entry.sectors |= sector_bit;
        stats_.host_bytes += host_sector_bytes;
        last_download_sectors_ = 1;
        prefetchAfterDemand(entry, l1_sub, host_sector_bytes);
        return L2Result::PartialHit;
    }

    // Step E: full miss — allocate a physical block, evicting if full.
    ++stats_.full_misses;
    uint32_t phys = allocBlockFor(stream);
    brl_owner_[phys] = t_index + 1;
    block_stream_[phys] = static_cast<uint8_t>(stream);
    ++stream_alloc_[stream];
    entry.phys_plus1 = phys + 1;
    entry.sectors = sector_bit;
    entry.prefetched = 0;
    touchBlock(phys);
    stats_.host_bytes += host_sector_bytes;
    last_download_sectors_ = 1;
    prefetchAfterDemand(entry, l1_sub, host_sector_bytes);
    return L2Result::FullMiss;
}

void
L2TextureCache::touchBlock(uint32_t phys)
{
    if (share_ == L2SharePolicy::Static) {
        uint8_t s = block_stream_[phys];
        if (s != kFreeBlock)
            part_selector_[s]->onAccess(
                phys - static_cast<uint32_t>(base_[s]));
        return;
    }
    selector_->onAccess(phys);
}

void
L2TextureCache::noteVictimSteps(uint32_t steps)
{
    last_victim_steps_ = steps;
    stats_.victim_steps += steps;
    if (steps > stats_.victim_steps_max)
        stats_.victim_steps_max = steps;
    victim_hist_.add(steps);
}

uint32_t
L2TextureCache::victimStream(uint32_t stream) const
{
    // An over-quota stream funds its own allocation; otherwise take a
    // block back from the most-over-quota stream (ties: lowest id).
    if (stream_alloc_[stream] >= quota_[stream])
        return stream;
    uint32_t best = stream;
    int64_t best_over = INT64_MIN;
    for (uint32_t s = 0; s < stream_count_; ++s) {
        if (stream_alloc_[s] == 0)
            continue;
        int64_t over = static_cast<int64_t>(stream_alloc_[s]) -
                       static_cast<int64_t>(quota_[s]);
        if (over > best_over) {
            best_over = over;
            best = s;
        }
    }
    return best;
}

uint32_t
L2TextureCache::allocBlockFor(uint32_t stream)
{
    if (share_ == L2SharePolicy::Static) {
        // A stream only ever allocates and evicts inside its own
        // contiguous partition, replaying exactly what a solo cache of
        // quota_[stream] blocks would do.
        if (stream_alloc_[stream] < quota_[stream]) {
            last_victim_steps_ = 0;
            ++allocated_;
            return static_cast<uint32_t>(base_[stream] +
                                         stream_alloc_[stream]);
        }
        VictimSelector &sel = *part_selector_[stream];
        uint32_t local = sel.selectVictim();
        noteVictimSteps(sel.lastSearchSteps());
        uint32_t phys = static_cast<uint32_t>(base_[stream]) + local;
        evictPhys(phys, stream);
        return phys;
    }

    // Shared/Utility: one global pool. Blocks released by a quarantined
    // stream are reused first (LIFO), then cold fill, then eviction.
    if (!free_list_.empty()) {
        uint32_t phys = free_list_.back();
        free_list_.pop_back();
        last_victim_steps_ = 0;
        return phys;
    }
    if (allocated_ < cfg_.blocks()) {
        last_victim_steps_ = 0;
        return static_cast<uint32_t>(allocated_++);
    }

    uint32_t phys;
    if (share_ == L2SharePolicy::Shared) {
        phys = selector_->selectVictim();
    } else {
        uint32_t vs = victimStream(stream);
        if (stream_alloc_[vs] == 0) {
            // Defensive: no owned block in the chosen stream (cannot
            // happen when the pool is full) — fall back to global LRU.
            phys = selector_->selectVictim();
        } else {
            const uint8_t want = static_cast<uint8_t>(vs);
            phys = selector_->selectVictimAmong(
                [&](uint32_t i) { return block_stream_[i] == want; });
        }
    }
    noteVictimSteps(selector_->lastSearchSteps());
    evictPhys(phys, stream);
    return phys;
}

void
L2TextureCache::evictPhys(uint32_t phys, uint32_t requester)
{
    uint32_t old_owner = brl_owner_[phys];
    if (old_owner != 0) {
        // Notify the victim: clear the virtual block's ownership.
        table_[old_owner - 1].phys_plus1 = 0;
        table_[old_owner - 1].sectors = 0;
        table_[old_owner - 1].prefetched = 0;
        ++stats_.evictions;
    }
    uint8_t os = block_stream_[phys];
    if (os != kFreeBlock) {
        --stream_alloc_[os];
        ++stream_stats_[os].evictions_suffered;
        if (os != requester)
            ++stream_stats_[requester].cross_evictions;
        block_stream_[phys] = kFreeBlock;
    }
}

void
L2TextureCache::prefetchAfterDemand(TableEntry &entry, uint32_t l1_sub,
                                    uint64_t host_sector_bytes)
{
    switch (cfg_.prefetch) {
      case PrefetchPolicy::None:
        return;
      case PrefetchPolicy::AdjacentSector: {
        // Fetch the next sector along the scan direction within the
        // same block row (rasterization order is left-to-right).
        const uint32_t row = cfg_.l2_tile / cfg_.l1_tile;
        if ((l1_sub % row) + 1 < row) {
            uint64_t bit = 1ull << (l1_sub + 1);
            if (!(entry.sectors & bit)) {
                entry.sectors |= bit;
                entry.prefetched |= bit;
                stats_.host_bytes += host_sector_bytes;
                ++stats_.prefetch_sectors;
                ++last_download_sectors_;
            }
        }
        return;
      }
      case PrefetchPolicy::WholeBlock: {
        const uint32_t n = cfg_.sectors();
        for (uint32_t s = 0; s < n; ++s) {
            uint64_t bit = 1ull << s;
            if (!(entry.sectors & bit)) {
                entry.sectors |= bit;
                entry.prefetched |= bit;
                stats_.host_bytes += host_sector_bytes;
                ++stats_.prefetch_sectors;
                ++last_download_sectors_;
            }
        }
        return;
      }
    }
}

bool
L2TextureCache::probe(uint32_t t_index, uint32_t l1_sub) const
{
    checkTableIndex(t_index, table_.size());
    const TableEntry &entry = table_[t_index];
    return entry.phys_plus1 != 0 && (entry.sectors & (1ull << l1_sub));
}

const L2StreamStats &
L2TextureCache::streamStats(uint32_t stream) const
{
    if (stream >= stream_count_)
        throw std::out_of_range("L2TextureCache: bad stream");
    return stream_stats_[stream];
}

uint64_t
L2TextureCache::streamAllocated(uint32_t stream) const
{
    if (stream >= stream_count_)
        throw std::out_of_range("L2TextureCache: bad stream");
    return stream_alloc_[stream];
}

void
L2TextureCache::setQuotas(const std::vector<uint64_t> &quotas)
{
    if (share_ != L2SharePolicy::Utility)
        throw std::invalid_argument(
            "L2TextureCache: quotas are only adjustable under the utility "
            "share policy");
    if (quotas.size() != stream_count_)
        throw std::invalid_argument(
            "L2TextureCache: quota count does not match stream count");
    uint64_t sum = 0;
    for (uint64_t q : quotas) {
        if (q == 0)
            throw std::invalid_argument(
                "L2TextureCache: every stream needs a quota of >= 1 block");
        sum += q;
    }
    if (sum != cfg_.blocks())
        throw std::invalid_argument(
            "L2TextureCache: quotas must sum to the block count");
    quota_ = quotas;
}

void
L2TextureCache::releaseStream(uint32_t stream)
{
    if (stream >= stream_count_)
        throw std::out_of_range("L2TextureCache: bad stream");
    const uint64_t blocks = cfg_.blocks();
    for (uint32_t phys = 0; phys < blocks; ++phys) {
        if (block_stream_[phys] != stream)
            continue;
        uint32_t owner = brl_owner_[phys];
        if (owner != 0) {
            table_[owner - 1].phys_plus1 = 0;
            table_[owner - 1].sectors = 0;
            table_[owner - 1].prefetched = 0;
            brl_owner_[phys] = 0;
        }
        block_stream_[phys] = kFreeBlock;
        if (share_ == L2SharePolicy::Static)
            --allocated_; // partition refills from its base when reused
        else
            free_list_.push_back(phys);
    }
    stream_alloc_[stream] = 0;
    if (share_ == L2SharePolicy::Static)
        part_selector_[stream]->reset();
}

void
L2TextureCache::reset()
{
    std::fill(table_.begin(), table_.end(), TableEntry{});
    std::fill(brl_owner_.begin(), brl_owner_.end(), 0);
    selector_->reset();
    for (auto &sel : part_selector_)
        sel->reset();
    std::fill(block_stream_.begin(), block_stream_.end(), kFreeBlock);
    std::fill(stream_alloc_.begin(), stream_alloc_.end(), 0);
    free_list_.clear();
    allocated_ = 0;
}

namespace {
constexpr uint32_t kL2Tag = snapTag("L2C ");
} // namespace

void
L2TextureCache::save(SnapshotWriter &w) const
{
    w.section(kL2Tag);
    w.u64(cfg_.size_bytes);
    w.u32(cfg_.l2_tile);
    w.u32(cfg_.l1_tile);
    w.u8(static_cast<uint8_t>(cfg_.policy));
    w.u8(static_cast<uint8_t>(cfg_.prefetch));
    w.u32(static_cast<uint32_t>(table_.size()));

    // Page table as parallel columns (cheaper than per-entry framing).
    std::vector<uint64_t> sectors(table_.size()), prefetched(table_.size());
    std::vector<uint32_t> phys(table_.size());
    for (size_t i = 0; i < table_.size(); ++i) {
        sectors[i] = table_[i].sectors;
        prefetched[i] = table_[i].prefetched;
        phys[i] = table_[i].phys_plus1;
    }
    w.u64Vec(sectors);
    w.u64Vec(prefetched);
    w.u32Vec(phys);
    w.u32Vec(brl_owner_);
    selector_->save(w);
    w.u64(allocated_);
    w.u32(last_victim_steps_);
    w.u32(last_download_sectors_);
    w.u64(stats_.lookups);
    w.u64(stats_.full_hits);
    w.u64(stats_.partial_hits);
    w.u64(stats_.full_misses);
    w.u64(stats_.evictions);
    w.u64(stats_.host_bytes);
    w.u64(stats_.l2_read_bytes);
    w.u64(stats_.victim_steps);
    w.u32(stats_.victim_steps_max);
    w.u64(stats_.prefetch_sectors);
    w.u64(stats_.prefetch_useful);
    victim_hist_.save(w);

    // Multi-tenant state (snapshot v4). Region starts and partition
    // bases are re-derived by the constructor, so only dynamic state is
    // written.
    w.u8(static_cast<uint8_t>(share_));
    w.u32(stream_count_);
    w.u8Vec(block_stream_);
    w.u64Vec(stream_alloc_);
    w.u64Vec(quota_);
    w.u32Vec(free_list_);
    for (const L2StreamStats &ss : stream_stats_) {
        w.u64(ss.lookups);
        w.u64(ss.full_hits);
        w.u64(ss.partial_hits);
        w.u64(ss.full_misses);
        w.u64(ss.evictions_suffered);
        w.u64(ss.cross_evictions);
        w.u64(ss.host_bytes);
        w.u64(ss.l2_read_bytes);
    }
    if (share_ == L2SharePolicy::Static)
        for (const auto &sel : part_selector_)
            sel->save(w);
}

void
L2TextureCache::load(SnapshotReader &r)
{
    r.expectSection(kL2Tag, "L2TextureCache");
    const uint64_t size_bytes = r.u64();
    const uint32_t l2_tile = r.u32();
    const uint32_t l1_tile = r.u32();
    const uint8_t policy = r.u8();
    const uint8_t prefetch = r.u8();
    if (size_bytes != cfg_.size_bytes || l2_tile != cfg_.l2_tile ||
        l1_tile != cfg_.l1_tile ||
        policy != static_cast<uint8_t>(cfg_.policy) ||
        prefetch != static_cast<uint8_t>(cfg_.prefetch))
        throw Exception(ErrorCode::VersionMismatch,
                        "L2TextureCache: snapshot geometry/policy does not "
                        "match the configured cache");
    const uint32_t entries = r.u32();
    if (entries != table_.size())
        throw Exception(ErrorCode::VersionMismatch,
                        "L2TextureCache: snapshot page table has " +
                            std::to_string(entries) + " entries, expected " +
                            std::to_string(table_.size()) +
                            " (different texture set?)");

    std::vector<uint64_t> sectors, prefetched;
    std::vector<uint32_t> phys;
    r.u64Vec(sectors);
    r.u64Vec(prefetched);
    r.u32Vec(phys);
    if (sectors.size() != table_.size() || prefetched.size() != table_.size() ||
        phys.size() != table_.size())
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot page-table columns "
                        "disagree on entry count");
    std::vector<uint32_t> brl;
    r.u32Vec(brl);
    if (brl.size() != brl_owner_.size())
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot BRL size mismatch");

    for (size_t i = 0; i < table_.size(); ++i) {
        table_[i].sectors = sectors[i];
        table_[i].prefetched = prefetched[i];
        table_[i].phys_plus1 = phys[i];
    }
    brl_owner_ = std::move(brl);
    selector_->load(r);
    allocated_ = r.u64();
    if (allocated_ > cfg_.blocks())
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot allocated block count "
                        "exceeds capacity");
    last_victim_steps_ = r.u32();
    last_download_sectors_ = r.u32();
    stats_.lookups = r.u64();
    stats_.full_hits = r.u64();
    stats_.partial_hits = r.u64();
    stats_.full_misses = r.u64();
    stats_.evictions = r.u64();
    stats_.host_bytes = r.u64();
    stats_.l2_read_bytes = r.u64();
    stats_.victim_steps = r.u64();
    stats_.victim_steps_max = r.u32();
    stats_.prefetch_sectors = r.u64();
    stats_.prefetch_useful = r.u64();
    victim_hist_.load(r);

    const uint8_t share = r.u8();
    const uint32_t stream_count = r.u32();
    if (share != static_cast<uint8_t>(share_) ||
        stream_count != stream_count_)
        throw Exception(ErrorCode::VersionMismatch,
                        "L2TextureCache: snapshot share policy/stream count "
                        "does not match the configured cache");
    std::vector<uint8_t> block_stream;
    std::vector<uint64_t> stream_alloc, quota;
    std::vector<uint32_t> free_list;
    r.u8Vec(block_stream);
    r.u64Vec(stream_alloc);
    r.u64Vec(quota);
    r.u32Vec(free_list);
    if (block_stream.size() != block_stream_.size() ||
        stream_alloc.size() != stream_count_ ||
        quota.size() != stream_count_ || free_list.size() > cfg_.blocks())
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot multi-tenant columns have "
                        "inconsistent sizes");
    for (uint8_t owner : block_stream)
        if (owner != kFreeBlock && owner >= stream_count_)
            throw Exception(ErrorCode::Corrupt,
                            "L2TextureCache: snapshot block owner out of "
                            "range");
    for (uint32_t free_phys : free_list)
        if (free_phys >= cfg_.blocks())
            throw Exception(ErrorCode::Corrupt,
                            "L2TextureCache: snapshot free-list entry out of "
                            "range");
    if (share_ == L2SharePolicy::Static && quota != quota_)
        throw Exception(ErrorCode::Corrupt,
                        "L2TextureCache: snapshot static partition sizes "
                        "disagree with the configured split");
    block_stream_ = std::move(block_stream);
    stream_alloc_ = std::move(stream_alloc);
    quota_ = std::move(quota);
    free_list_ = std::move(free_list);
    for (L2StreamStats &ss : stream_stats_) {
        ss.lookups = r.u64();
        ss.full_hits = r.u64();
        ss.partial_hits = r.u64();
        ss.full_misses = r.u64();
        ss.evictions_suffered = r.u64();
        ss.cross_evictions = r.u64();
        ss.host_bytes = r.u64();
        ss.l2_read_bytes = r.u64();
    }
    if (share_ == L2SharePolicy::Static) {
        base_.assign(stream_count_, 0);
        for (uint32_t s = 1; s < stream_count_; ++s)
            base_[s] = base_[s - 1] + quota_[s - 1];
        for (auto &sel : part_selector_)
            sel->load(r);
    }
}

} // namespace mltc
