#include "core/cache_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/profiler.hpp"
#include "obs/reuse_profiler.hpp"
#include "obs/trace_event.hpp"
#include "util/error.hpp"

namespace mltc {

void
CacheFrameStats::add(const CacheFrameStats &o)
{
    accesses += o.accesses;
    l1_misses += o.l1_misses;
    l2_full_hits += o.l2_full_hits;
    l2_partial_hits += o.l2_partial_hits;
    l2_full_misses += o.l2_full_misses;
    host_bytes += o.host_bytes;
    l2_read_bytes += o.l2_read_bytes;
    tlb_probes += o.tlb_probes;
    tlb_hits += o.tlb_hits;
    victim_steps_max = std::max(victim_steps_max, o.victim_steps_max);
    host_retries += o.host_retries;
    host_failures += o.host_failures;
    degraded_accesses += o.degraded_accesses;
    degraded_mip_bias += o.degraded_mip_bias;
    l1_compulsory += o.l1_compulsory;
    l1_capacity += o.l1_capacity;
    l1_conflict += o.l1_conflict;
    l2_compulsory += o.l2_compulsory;
    l2_capacity += o.l2_capacity;
    l2_conflict += o.l2_conflict;
}

CacheSim::CacheSim(TextureManager &textures, const CacheSimConfig &config,
                   std::string label)
    : textures_(textures), cfg_(config), label_(std::move(label)),
      l1_(config.l1)
{
    if (cfg_.l2_enabled) {
        // The sector granularity always matches the L1 tile.
        cfg_.l2.l1_tile = cfg_.l1.l1_tile;
        l2_ = std::make_unique<L2TextureCache>(textures, cfg_.l2);
        l2p_ = l2_.get();
    }
    if (cfg_.tlb_entries > 0)
        tlb_ = std::make_unique<TextureTlb>(cfg_.tlb_entries);
    if (cfg_.host.fault_injection) {
        auto backend = std::make_unique<FaultyHostBackend>(cfg_.host.faults);
        faulty_ = backend.get();
        host_ = std::make_unique<HostFetchPath>(std::move(backend),
                                                cfg_.host.retry);
    }
    if (cfg_.classify_misses) {
        // Shadow capacities are the real caches' capacities in their
        // allocation units: L1 lines, L2 blocks.
        l1_class_ = std::make_unique<MissClassifier>(cfg_.l1.lines());
        if (cfg_.l2_enabled)
            l2_class_ = std::make_unique<MissClassifier>(cfg_.l2.blocks());
    }
    l1_shift_ = log2u(cfg_.l1.l1_tile);
    stage_run_ = detail::resolveStageRun();
}

void
CacheSim::attachSharedL2(L2TextureCache *l2, uint32_t stream)
{
    if (l2_)
        throw std::logic_error(
            "CacheSim: attachSharedL2 on a simulator that owns an L2");
    if (bound_ != 0)
        throw std::logic_error(
            "CacheSim: attachSharedL2 after a texture was bound");
    l2p_ = l2;
    l2_stream_ = l2 ? stream : 0;
    if (l2 != nullptr) {
        // Adopt the shared geometry so layout derivation and byte
        // accounting match the cache actually being driven.
        cfg_.l2 = l2->config();
        if (cfg_.classify_misses && !l2_class_)
            l2_class_ = std::make_unique<MissClassifier>(cfg_.l2.blocks());
    }
}

void
CacheSim::bindTexture(TextureId tid)
{
    bound_ = tid;
    // L1 tags use the fixed 16x16 L2 granulation (§3.3) so L1 behaviour
    // is identical across all simulated L2 tile sizes, with Morton
    // numbering (the "6D blocked representation") for conflict-free set
    // indexing of 2D tile regions.
    TileSpec l1_spec{std::max(16u, cfg_.l1.l1_tile), cfg_.l1.l1_tile,
                     /*morton=*/true};
    l1_layout_ = &textures_.layout(tid, l1_spec);
    {
        // Fused-translation constants for the batched fast loop (see
        // the member comment in cache_sim.hpp).
        const uint32_t per_edge = l1_spec.l2_tile / l1_spec.l1_tile;
        l1_level_base_ = l1_layout_->levelBases();
        l1_tid_hi_ = static_cast<uint64_t>(tid) << 32;
        l1_sub_bits_ = 2 * log2u(per_edge);
        l1_sub_mask_ = (1u << l1_sub_bits_) - 1;
        l1_fast_key_ = l1_spec.morton;
    }
    if (l2p_) {
        TileSpec l2_spec{cfg_.l2.l2_tile, cfg_.l2.l1_tile};
        l2_layout_ = &textures_.layout(tid, l2_spec);
        tstart_ = l2p_->tstartFor(l2_stream_, tid);
    }
    const TextureEntry &tex = textures_.texture(tid);
    host_sector_bytes_ = static_cast<uint64_t>(cfg_.l1.l1_tile) *
                         cfg_.l1.l1_tile * tex.host_bits_per_texel / 8;
    if (profiler_) [[unlikely]]
        profiler_->bindTexture(tid, tex.pyramid.level(0).width(),
                               tex.pyramid.level(0).height());
    // The coalescing filter caches raw tile coordinates, which do not
    // encode the texture id — invalidate it across binds.
    last_tile_ = 0;
}

void
CacheSim::access(uint32_t x, uint32_t y, uint32_t mip)
{
    // The SelfTimer/profiler scopes live only on the observed branch:
    // their destructors would otherwise force cleanup codegen onto the
    // unobserved hot path (measured ~3 ns/access). Disabled-mode cost
    // is two inline atomic loads + one branch, bounded by the <5%
    // microbench gate (BM_CacheSimAccess).
    if (globalTracer() != nullptr || stageProfiler() != nullptr)
        [[unlikely]] {
        SelfTimer timer(&access_ns_);
        ScopedProfileStage prof("cachesim.access");
        ++frame_.accesses;
        handleTexel(x, y, mip);
        return;
    }
    ++frame_.accesses;
    handleTexel(x, y, mip);
}

void
CacheSim::accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                     uint32_t mip)
{
    if (globalTracer() != nullptr || stageProfiler() != nullptr)
        [[unlikely]] {
        SelfTimer timer(&access_ns_);
        ScopedProfileStage prof("cachesim.access");
        quadImpl(x0, y0, x1, y1, mip);
        return;
    }
    quadImpl(x0, y0, x1, y1, mip);
}

void
CacheSim::quadImpl(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                   uint32_t mip)
{
    frame_.accesses += 4;
    // The bilinear footprint spans at most 2x2 L1 tiles, and usually
    // just one: process each distinct tile corner once.
    const uint32_t sh = l1_shift_;
    const bool dx = (x0 >> sh) != (x1 >> sh);
    const bool dy = (y0 >> sh) != (y1 >> sh);
    handleTexel(x0, y0, mip);
    if (dx)
        handleTexel(x1, y0, mip);
    if (dy) {
        handleTexel(x0, y1, mip);
        if (dx)
            handleTexel(x1, y1, mip);
    }
}

void
CacheSim::accessBatch(std::span<const TexelRef> refs)
{
    if (refs.empty())
        return;
    // One hook crossing per batch: the tracer/profiler presence check,
    // the self-timer and the profile stage cover the whole span (the
    // flight recorder and metrics planes read the per-frame counters
    // this path increments, so they too see one update per batch).
    if (globalTracer() != nullptr || stageProfiler() != nullptr)
        [[unlikely]] {
        SelfTimer timer(&access_ns_);
        ScopedProfileStage prof("cachesim.access");
        batchImpl(refs);
        return;
    }
    batchImpl(refs);
}

void
CacheSim::batchImpl(std::span<const TexelRef> refs)
{
    // The reuse profiler and the L1 3C classifier observe hits as well
    // as misses, so the fast loop below (which skips filtered and hit
    // texels' side-band work) cannot run under them: replay the span
    // through the scalar per-texel path instead. The batch still
    // amortizes the virtual call and the observability check above.
    if (profiler_ || l1_class_) {
        for (const TexelRef &r : refs) {
            switch (r.kind) {
              case TexelRef::kTexel:
                ++frame_.accesses;
                handleTexel(r.x0, r.y0, r.mip);
                break;
              case TexelRef::kQuad:
                quadImpl(r.x0, r.y0, r.x1, r.y1, r.mip);
                break;
              default:
                if (profiler_) [[unlikely]]
                    profiler_->beginPixel(r.x0, r.y0);
                break;
            }
        }
        return;
    }

    // Fast loop, three phases per chunk:
    //   1. staging: expand quads to their distinct tile corners (the
    //      same dx/dy dedup quadImpl performs), drop the
    //      coalescing-filter non-survivors — a corner whose
    //      (tx, ty, mip) equals its predecessor's is a guaranteed hit
    //      (the scalar one-entry filter: after any serviced texel
    //      last_tile_ is exactly its tile, so "equals predecessor" is
    //      the same predicate) — and compact the survivors into SoA
    //      arrays. Runs of plain texel refs go through the AVX-512
    //      kernel (batch_stage.cpp) 16 at a time when the machine has
    //      one; quads, markers, short runs and non-AVX-512 machines
    //      use the scalar corner loop below. Both stagings produce the
    //      same survivors and the same filter carry by contract. The
    //      access count folds into one frame-counter update per chunk;
    //   2. run the fused <tid, L2blk, L1blk> translation over the
    //      survivors (one Morton interleave each, see l1_fast_key_ in
    //      cache_sim.hpp);
    //   3. probe the L1 tag planes over the survivor run with
    //      lookupRun() — bookkeeping-identical to per-texel lookup()
    //      calls — and drop each miss out to the scalar slow path
    //      handleMiss() before resuming the run behind it.
    constexpr size_t kChunk = 256;
    uint32_t sxs[kChunk], sys[kChunk];
    uint32_t stx[kChunk], sty[kChunk], sms[kChunk];
    uint64_t skeys[kChunk];
    // Tile key of survivor s, built on demand (miss bookkeeping and
    // the filter carry only — the common all-hit case never packs it).
    const auto tileAt = [&](size_t s) {
        return (static_cast<uint64_t>(sms[s]) << 58) |
               (static_cast<uint64_t>(sty[s]) << 29) |
               static_cast<uint64_t>(stx[s]) | (1ull << 57);
    };

    const uint32_t sh = l1_shift_;
    // Unpack the filter tile into comparable components; when empty
    // (after a bind) the sentinels are unmatchable, forcing the first
    // corner through exactly as tileKeyOf() != 0 always does.
    uint32_t ptx = 0xffffffffu, pty = 0xffffffffu, pm = 0xffffffffu;
    if (last_tile_ != 0) {
        ptx = static_cast<uint32_t>(last_tile_ & 0x1fffffffu);
        pty = static_cast<uint32_t>((last_tile_ >> 29) & 0x0fffffffu);
        pm = static_cast<uint32_t>(last_tile_ >> 58);
    }
    uint64_t prev = last_tile_;
    const uint32_t *lb = l1_level_base_;
    const uint64_t hi = l1_tid_hi_;
    const uint32_t sb = l1_sub_bits_, smask = l1_sub_mask_;
    const bool fast_key = l1_fast_key_;
    size_t i = 0;
    while (i < refs.size()) {
        size_t ns = 0;
        uint64_t acc = 0;
        // Filter one corner; appends a survivor.
        const auto corner = [&](uint32_t x, uint32_t y,
                                uint32_t mip) __attribute__((always_inline)) {
            const uint32_t tx = x >> sh, ty = y >> sh;
            if (((tx ^ ptx) | (ty ^ pty) | (mip ^ pm)) == 0)
                return;
            ptx = tx;
            pty = ty;
            pm = mip;
            sxs[ns] = x;
            sys[ns] = y;
            stx[ns] = tx;
            sty[ns] = ty;
            sms[ns] = mip;
            ++ns;
        };
        // A vector-kernel step needs a full group of refs starting and
        // ending on a texel (quads inside make it bail to scalar: the
        // rearm-on-quad flag below keeps that bail from re-probing the
        // same group per ref). The scalar loop stages everything else
        // and hands texel runs back to the kernel.
        bool simd = stage_run_ != nullptr;
        for (;;) {
            if (simd && i + detail::kStageGroup <= refs.size() &&
                ns + detail::kStageGroup <= kChunk &&
                refs[i].kind == TexelRef::kTexel &&
                refs[i + detail::kStageGroup - 1].kind ==
                    TexelRef::kTexel) {
                detail::BatchStageCarry c{ptx, pty, pm};
                const detail::StageResult run =
                    stage_run_(refs.data() + i, refs.size() - i, sh, c,
                               sxs, sys, stx, sty, sms, ns, kChunk);
                if (run.refs != 0) {
                    i += run.refs;
                    acc += run.texels;
                    ptx = c.ptx;
                    pty = c.pty;
                    pm = c.pm;
                    continue;
                }
                simd = false; // quad in the first group: stage scalar
            }
            if (i >= refs.size() || ns + 4 > kChunk)
                break;
            const TexelRef &r = refs[i++];
            if (r.kind == TexelRef::kTexel) {
                ++acc;
                corner(r.x0, r.y0, r.mip);
            } else if (r.kind == TexelRef::kQuad) {
                acc += 4;
                const bool dx = (r.x0 >> sh) != (r.x1 >> sh);
                const bool dy = (r.y0 >> sh) != (r.y1 >> sh);
                corner(r.x0, r.y0, r.mip);
                if (dx)
                    corner(r.x1, r.y0, r.mip);
                if (dy) {
                    corner(r.x0, r.y1, r.mip);
                    if (dx)
                        corner(r.x1, r.y1, r.mip);
                }
                simd = stage_run_ != nullptr; // group boundary passed
            }
            // Pixel markers carry no texel work; without a profiler
            // attached (checked above) they are no-ops here, exactly
            // like scalar beginPixel().
        }
        frame_.accesses += acc;
        if (ns == 0)
            continue;

        if (fast_key) [[likely]] {
            for (size_t s = 0; s < ns; ++s) {
                const uint32_t code = mortonInterleave(stx[s], sty[s]);
                skeys[s] =
                    hi |
                    (static_cast<uint64_t>(lb[sms[s]] + (code >> sb))
                     << 8) |
                    (code & smask);
            }
        } else {
            for (size_t s = 0; s < ns; ++s)
                skeys[s] =
                    l1_layout_->blockKeyOf(bound_, sxs[s], sys[s], sms[s]);
        }

        size_t p = 0;
        while (p < ns) {
            p += l1_.lookupRun(skeys + p,
                               static_cast<uint32_t>(ns - p));
            if (p == ns)
                break;
            ++frame_.l1_misses;
            // Exception contract: should handleMiss throw, leave the
            // filter where the scalar path would — on the previous
            // serviced texel's tile.
            last_tile_ = p ? tileAt(p - 1) : prev;
            handleMiss(sxs[p], sys[p], sms[p], skeys[p], tileAt(p));
            ++p;
        }
        prev = tileAt(ns - 1);
    }
    last_tile_ = prev;
}

void
CacheSim::handleTexel(uint32_t x, uint32_t y, uint32_t mip)
{
    // One-entry coalescing filter: consecutive references to the same
    // L1 tile (the common case — filter footprints and scanline
    // neighbours share tiles) are guaranteed hits, since nothing can
    // have evicted the line in between. This is what real hardware's
    // quad coalescing does; the only approximation is that repeats do
    // not refresh the line's LRU stamp. Filtering on raw tile
    // coordinates also skips the address translation itself.
    const uint64_t tile = tileKeyOf(x, y, mip);
    if (tile == last_tile_)
        return;
    const uint64_t key = l1_layout_->blockKeyOf(bound_, x, y, mip);
    const bool l1_hit = l1_.lookup(key);
    if (profiler_) [[unlikely]]
        profiler_->onL1Access(key, l1_hit, x, y, mip);
    if (l1_class_) {
        // The classifier sees the same post-coalescing stream the real
        // L1 sees; a miss is attributed the L1 fill traffic it causes.
        const auto c = l1_class_->access(key, key, l1_hit, bound_, mip,
                                         l2p_ ? cfg_.l1.lineBytes()
                                              : host_sector_bytes_);
        if (c) {
            switch (*c) {
              case MissClass::Compulsory: ++frame_.l1_compulsory; break;
              case MissClass::Capacity: ++frame_.l1_capacity; break;
              case MissClass::Conflict: ++frame_.l1_conflict; break;
            }
        }
    }
    if (l1_hit) {
        last_tile_ = tile;
        return; // step B: L1 hit
    }

    ++frame_.l1_misses;
    handleMiss(x, y, mip, key, tile);
}

void
CacheSim::handleMiss(uint32_t x, uint32_t y, uint32_t mip, uint64_t key,
                     uint64_t tile)
{
    if (!l2p_) {
        // Pull architecture: download one L1 tile from host memory.
        if (host_ && !fetchFromHost(0)) {
            degradeToResidentMip(x, y, mip);
            last_tile_ = tile;
            return;
        }
        frame_.host_bytes += host_sector_bytes_;
        l1_.fill(key);
        last_tile_ = tile;
        return;
    }

    // Steps C-F: consult the texture page table (through the TLB when
    // modelled), then service from L2 or download the missing sector.
    const VirtualBlock vb = l2_layout_->blockOf(bound_, x, y, mip);
    const uint32_t t_index = tstart_ + vb.l2_block;
    if (l2_tracker_) [[unlikely]]
        l2_tracker_->record(t_index);
    if (tlb_) {
        ++frame_.tlb_probes;
        if (tlb_->probe(t_index))
            ++frame_.tlb_hits;
    }

    // Under fault injection, any access that needs a download (partial
    // hit or full miss) must survive the fallible host channel before
    // the L2 may mutate: on retry exhaustion no block is allocated, no
    // sector bit is set, and the access degrades to a coarser resident
    // level instead.
    if (host_ && !l2p_->probe(t_index, vb.l1_sub) && !fetchFromHost(t_index)) {
        degradeToResidentMip(x, y, mip);
        last_tile_ = tile;
        return;
    }

    const L2Result res =
        l2p_->access(t_index, vb.l1_sub, host_sector_bytes_, l2_stream_);
    switch (res) {
      case L2Result::FullHit:
        ++frame_.l2_full_hits;
        frame_.l2_read_bytes += cfg_.l1.lineBytes();
        break;
      case L2Result::PartialHit:
        ++frame_.l2_partial_hits;
        frame_.host_bytes +=
            host_sector_bytes_ * l2p_->lastDownloadSectors();
        break;
      case L2Result::FullMiss:
        ++frame_.l2_full_misses;
        frame_.host_bytes +=
            host_sector_bytes_ * l2p_->lastDownloadSectors();
        frame_.victim_steps_max = std::max(frame_.victim_steps_max,
                                           l2p_->lastVictimSteps());
        break;
    }
    if (profiler_) [[unlikely]]
        profiler_->onL2Sector(
            (static_cast<uint64_t>(t_index) << 16) | vb.l1_sub,
            res == L2Result::FullHit, x, y, mip);
    if (l2_class_) {
        // Sector-granular classification over a block-granular shadow:
        // the unit of "seen" is the (block, sector) pair, while the
        // fully-associative LRU shadows whole blocks (the allocation
        // unit), so conflict = a clock-vs-LRU replacement loss.
        const uint64_t sector_key =
            (static_cast<uint64_t>(t_index) << 16) | vb.l1_sub;
        const bool full_hit = res == L2Result::FullHit;
        const auto c = l2_class_->access(
            sector_key, t_index, full_hit, bound_, mip,
            full_hit ? 0
                     : host_sector_bytes_ * l2p_->lastDownloadSectors());
        if (c) {
            switch (*c) {
              case MissClass::Compulsory: ++frame_.l2_compulsory; break;
              case MissClass::Capacity: ++frame_.l2_capacity; break;
              case MissClass::Conflict: ++frame_.l2_conflict; break;
            }
        }
    }

    // Step F downloads into L1 in parallel with L2.
    l1_.fill(key);
    last_tile_ = tile;
}

bool
CacheSim::fetchFromHost(uint32_t t_index)
{
    const HostFetchResult r = host_->fetch({t_index, host_sector_bytes_});
    frame_.host_retries += r.retries;
    // Corrupted payloads crossed the bus before being discarded.
    frame_.host_bytes += host_sector_bytes_ * r.corrupt_transfers;
    if (!r.success)
        ++frame_.host_failures;
    if (ChromeTraceWriter *t = globalTracer()) {
        // Rare occurrences only — a healthy fetch emits nothing.
        if (!r.success)
            t->instant("host.fetch.failed", "host");
        else if (r.retries)
            t->instant("host.fetch.retried", "host");
    }
    return r.success;
}

void
CacheSim::degradeToResidentMip(uint32_t x, uint32_t y, uint32_t mip)
{
    const TiledLayout *layout = l2p_ ? l2_layout_ : l1_layout_;
    const uint32_t levels = layout->levels();
    for (uint32_t m = mip + 1; m < levels; ++m) {
        const uint32_t shift = m - mip;
        const uint32_t cx = x >> shift;
        const uint32_t cy = y >> shift;
        bool resident;
        if (l2p_) {
            const VirtualBlock vb = l2_layout_->blockOf(bound_, cx, cy, m);
            resident = l2p_->probe(tstart_ + vb.l2_block, vb.l1_sub);
        } else {
            resident = l1_.probe(l1_layout_->blockKeyOf(bound_, cx, cy, m));
        }
        if (!resident)
            continue;
        ++frame_.degraded_accesses;
        frame_.degraded_mip_bias += shift;
        if (l2p_) {
            // The coarse sector is read from L2 and parked in L1 so an
            // immediate repeat hits on-chip.
            frame_.l2_read_bytes += cfg_.l1.lineBytes();
            const uint64_t ck = l1_layout_->blockKeyOf(bound_, cx, cy, m);
            if (!l1_.probe(ck))
                l1_.fill(ck);
        }
        return;
    }
    // Hard failure: nothing coarser is resident either. The fetch was
    // already counted in host_failures; the gap host_failures -
    // degraded_accesses is the hard-failure count.
}

void
CacheSim::beginPixel(uint32_t px, uint32_t py)
{
    if (profiler_) [[unlikely]]
        profiler_->beginPixel(px, py);
}

CacheFrameStats
CacheSim::endFrame()
{
    if (profiler_) [[unlikely]]
        profiler_->endFrame(frame_.accesses);
    CacheFrameStats out = frame_;
    totals_.add(out);
    frame_ = {};
    ++frames_;
    return out;
}

void
CacheFrameStats::save(SnapshotWriter &w) const
{
    w.u64(accesses);
    w.u64(l1_misses);
    w.u64(l2_full_hits);
    w.u64(l2_partial_hits);
    w.u64(l2_full_misses);
    w.u64(host_bytes);
    w.u64(l2_read_bytes);
    w.u64(tlb_probes);
    w.u64(tlb_hits);
    w.u32(victim_steps_max);
    w.u64(host_retries);
    w.u64(host_failures);
    w.u64(degraded_accesses);
    w.u64(degraded_mip_bias);
    w.u64(l1_compulsory);
    w.u64(l1_capacity);
    w.u64(l1_conflict);
    w.u64(l2_compulsory);
    w.u64(l2_capacity);
    w.u64(l2_conflict);
}

void
CacheFrameStats::load(SnapshotReader &r)
{
    accesses = r.u64();
    l1_misses = r.u64();
    l2_full_hits = r.u64();
    l2_partial_hits = r.u64();
    l2_full_misses = r.u64();
    host_bytes = r.u64();
    l2_read_bytes = r.u64();
    tlb_probes = r.u64();
    tlb_hits = r.u64();
    victim_steps_max = r.u32();
    host_retries = r.u64();
    host_failures = r.u64();
    degraded_accesses = r.u64();
    degraded_mip_bias = r.u64();
    l1_compulsory = r.u64();
    l1_capacity = r.u64();
    l1_conflict = r.u64();
    l2_compulsory = r.u64();
    l2_capacity = r.u64();
    l2_conflict = r.u64();
}

namespace {
constexpr uint32_t kSimTag = snapTag("SIM ");
} // namespace

void
CacheSim::save(SnapshotWriter &w) const
{
    w.section(kSimTag);
    // Component-presence flags: a snapshot taken under a different
    // architecture (pull vs L2, TLB on/off, faults on/off) must fail
    // typed, not misparse.
    uint8_t flags = 0;
    if (l2_)
        flags |= 1u;
    if (tlb_)
        flags |= 2u;
    if (host_)
        flags |= 4u;
    if (l1_class_)
        flags |= 8u;
    if (profiler_)
        flags |= 16u;
    w.u8(flags);
    l1_.save(w);
    if (l2_)
        l2_->save(w);
    if (tlb_)
        tlb_->save(w);
    if (host_) {
        host_->save(w);
        faulty_->injector().save(w);
    }
    if (l1_class_) {
        l1_class_->save(w);
        if (l2_class_)
            l2_class_->save(w);
    }
    if (profiler_)
        profiler_->save(w);
    w.u32(bound_);
    w.u64(last_tile_);
    frame_.save(w);
    totals_.save(w);
    w.u32(frames_);
}

void
CacheSim::load(SnapshotReader &r)
{
    r.expectSection(kSimTag, "CacheSim");
    uint8_t expect = 0;
    if (l2_)
        expect |= 1u;
    if (tlb_)
        expect |= 2u;
    if (host_)
        expect |= 4u;
    if (l1_class_)
        expect |= 8u;
    if (profiler_)
        expect |= 16u;
    const uint8_t flags = r.u8();
    if (flags != expect)
        throw Exception(ErrorCode::VersionMismatch,
                        "CacheSim '" + label_ +
                            "': snapshot architecture flags " +
                            std::to_string(flags) + " do not match the "
                            "configured simulator (" +
                            std::to_string(expect) + ")");
    l1_.load(r);
    if (l2_)
        l2_->load(r);
    if (tlb_)
        tlb_->load(r);
    if (host_) {
        host_->load(r);
        faulty_->injector().load(r);
    }
    if (l1_class_) {
        l1_class_->load(r);
        if (l2_class_)
            l2_class_->load(r);
    }
    if (profiler_)
        profiler_->load(r);
    const TextureId bound = r.u32();
    const uint64_t last_tile = r.u64();
    if (bound != 0) {
        // Re-derive the cached layout pointers / tstart / sector size
        // from the texture registry (bindTexture clears the coalescing
        // filter, so restore it afterwards).
        if (bound > textures_.textureCount())
            throw Exception(ErrorCode::Corrupt,
                            "CacheSim '" + label_ +
                                "': snapshot bound texture id " +
                                std::to_string(bound) + " out of range");
        bindTexture(bound);
        last_tile_ = last_tile;
    }
    frame_.load(r);
    totals_.load(r);
    frames_ = r.u32();
}

} // namespace mltc
