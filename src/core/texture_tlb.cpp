#include "core/texture_tlb.hpp"

#include <algorithm>
#include <stdexcept>

namespace mltc {

TextureTlb::TextureTlb(uint32_t entries)
{
    if (entries == 0)
        throw std::invalid_argument("TextureTlb: zero entries");
    slots_.assign(entries, 0);
}

void
TextureTlb::reset()
{
    std::fill(slots_.begin(), slots_.end(), 0);
    hand_ = 0;
}

} // namespace mltc
