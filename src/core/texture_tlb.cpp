#include "core/texture_tlb.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace mltc {

TextureTlb::TextureTlb(uint32_t entries)
{
    if (entries == 0)
        throw std::invalid_argument("TextureTlb: zero entries");
    slots_.assign(entries, 0);
}

void
TextureTlb::reset()
{
    std::fill(slots_.begin(), slots_.end(), 0);
    hand_ = 0;
}

namespace {
constexpr uint32_t kTlbTag = snapTag("TLB ");
} // namespace

void
TextureTlb::save(SnapshotWriter &w) const
{
    w.section(kTlbTag);
    w.u32Vec(slots_);
    w.u32(hand_);
    w.u64(stats_.probes);
    w.u64(stats_.hits);
}

void
TextureTlb::load(SnapshotReader &r)
{
    r.expectSection(kTlbTag, "TextureTlb");
    std::vector<uint32_t> slots;
    r.u32Vec(slots);
    if (slots.size() != slots_.size())
        throw Exception(ErrorCode::VersionMismatch,
                        "TextureTlb: snapshot has " +
                            std::to_string(slots.size()) +
                            " entries, configured " +
                            std::to_string(slots_.size()));
    slots_ = std::move(slots);
    hand_ = r.u32();
    if (hand_ >= slots_.size())
        throw Exception(ErrorCode::Corrupt,
                        "TextureTlb: snapshot hand out of range");
    stats_.probes = r.u64();
    stats_.hits = r.u64();
}

} // namespace mltc
