/**
 * @file
 * Translation Lookaside Buffer for the Texture Page Table (§5.4.3).
 *
 * Because the page table lives in external DRAM alongside the L2 cache
 * blocks, every L1 miss would pay a table access; a tiny on-chip TLB of
 * recent <tid, L2>-entry translations hides that latency. The paper
 * studies 1-16 entries with round-robin replacement — replicated here.
 */
#ifndef MLTC_CORE_TEXTURE_TLB_HPP
#define MLTC_CORE_TEXTURE_TLB_HPP

#include <cstdint>
#include <vector>

#include "util/serializer.hpp"

namespace mltc {

/** TLB hit/miss counters. */
struct TlbStats
{
    uint64_t probes = 0;
    uint64_t hits = 0;

    double
    hitRate() const
    {
        return probes ? static_cast<double>(hits) /
                            static_cast<double>(probes)
                      : 0.0;
    }
};

/** Fully-associative TLB over page-table indices, round-robin refill. */
class TextureTlb
{
  public:
    /** @param entries capacity; the paper studies 1, 2, 4, 8, 16. */
    explicit TextureTlb(uint32_t entries);

    uint32_t entries() const
    {
        return static_cast<uint32_t>(slots_.size());
    }

    /**
     * Probe for page-table index @p t_index; on a miss the translation
     * is installed over the round-robin victim.
     * @return true on a hit.
     */
    bool
    probe(uint32_t t_index)
    {
        ++stats_.probes;
        for (uint32_t slot : slots_) {
            if (slot == t_index + 1) {
                ++stats_.hits;
                return true;
            }
        }
        slots_[hand_] = t_index + 1;
        hand_ = (hand_ + 1) % static_cast<uint32_t>(slots_.size());
        return false;
    }

    const TlbStats &stats() const { return stats_; }

    void clearStats() { stats_ = {}; }

    /** Invalidate all entries. */
    void reset();

    /** Serialize slots, hand and counters. */
    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) on capacity skew.
     */
    void load(SnapshotReader &r);

  private:
    friend class CacheAuditor;
    friend class AuditTestPeer;

    std::vector<uint32_t> slots_; ///< t_index + 1; 0 = empty
    uint32_t hand_ = 0;
    TlbStats stats_;
};

} // namespace mltc

#endif // MLTC_CORE_TEXTURE_TLB_HPP
