/**
 * @file
 * Multi-level texture cache controller: the Figure 7 / Appendix control
 * flow, wired as a TexelAccessSink so it can be driven directly by the
 * rasterizer (or a trace).
 *
 * Configured with the L2 disabled, it models the plain *pull*
 * architecture: every L1 miss downloads one L1 tile from host memory
 * over AGP. With the L2 enabled, L1 misses are serviced by the L2 per
 * the paper's algorithm (full hit from local DRAM; partial hit / full
 * miss download exactly one L1-tile-sized sector from host, filling L1
 * in parallel). An optional TLB models page-table translation caching.
 */
#ifndef MLTC_CORE_CACHE_SIM_HPP
#define MLTC_CORE_CACHE_SIM_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/batch_stage.hpp"
#include "core/l1_cache.hpp"
#include "core/l2_cache.hpp"
#include "core/texture_tlb.hpp"
#include "host/host_backend.hpp"
#include "obs/miss_classify.hpp"
#include "raster/access_sink.hpp"
#include "texture/texture_manager.hpp"

namespace mltc {

class ReuseProfiler;
class ReuseDistanceTracker;

/** Full simulator configuration. */
struct CacheSimConfig
{
    L1Config l1;
    bool l2_enabled = true;
    L2Config l2;
    uint32_t tlb_entries = 0; ///< 0 disables TLB modelling
    /**
     * Run 3C (compulsory/capacity/conflict) miss classification beside
     * the real caches (--miss-classes). The shadow models are simulator
     * state: they are serialized in checkpoints and never perturb the
     * real caches, so every seed counter stays bit-identical.
     */
    bool classify_misses = false;
    /**
     * Host download path robustness model. With fault_injection off
     * (the default) downloads are the seed's infallible byte counter
     * and every counter is bit-identical to the seed simulator.
     */
    HostPathConfig host;

    /** Pull architecture (L1 only) with the given L1 size. */
    static CacheSimConfig
    pull(uint64_t l1_bytes, uint32_t l1_tile = 4)
    {
        CacheSimConfig c;
        c.l1.size_bytes = l1_bytes;
        c.l1.l1_tile = l1_tile;
        c.l2_enabled = false;
        return c;
    }

    /** L2 caching architecture with the paper's default tiles. */
    static CacheSimConfig
    twoLevel(uint64_t l1_bytes, uint64_t l2_bytes, uint32_t l2_tile = 16,
             uint32_t l1_tile = 4)
    {
        CacheSimConfig c;
        c.l1.size_bytes = l1_bytes;
        c.l1.l1_tile = l1_tile;
        c.l2_enabled = true;
        c.l2.size_bytes = l2_bytes;
        c.l2.l2_tile = l2_tile;
        c.l2.l1_tile = l1_tile;
        return c;
    }
};

/** Per-frame deltas of every counter the experiments need. */
struct CacheFrameStats
{
    uint64_t accesses = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_full_hits = 0;
    uint64_t l2_partial_hits = 0;
    uint64_t l2_full_misses = 0;
    uint64_t host_bytes = 0;    ///< AGP / system-memory download bytes
    uint64_t l2_read_bytes = 0; ///< local L2 memory read bytes
    uint64_t tlb_probes = 0;
    uint64_t tlb_hits = 0;
    uint32_t victim_steps_max = 0; ///< worst clock search this frame

    // Host-path robustness counters (all zero with faults disabled).
    uint64_t host_retries = 0;  ///< transfer attempts beyond the first
    uint64_t host_failures = 0; ///< fetches that exhausted their retries
    /**
     * Failed fetches served from a coarser resident MIP level instead.
     * host_failures - degraded_accesses = hard failures (nothing
     * coarser was resident either).
     */
    uint64_t degraded_accesses = 0;
    uint64_t degraded_mip_bias = 0; ///< sum of (fallback mip - wanted mip)

    // 3C miss-class deltas (all zero unless classify_misses is set).
    // L1 classes partition l1_misses; L2 classes partition the sector
    // misses (l2_partial_hits + l2_full_misses) that reached the L2.
    uint64_t l1_compulsory = 0;
    uint64_t l1_capacity = 0;
    uint64_t l1_conflict = 0;
    uint64_t l2_compulsory = 0;
    uint64_t l2_capacity = 0;
    uint64_t l2_conflict = 0;

    double
    l1HitRate() const
    {
        return accesses ? 1.0 - static_cast<double>(l1_misses) /
                                    static_cast<double>(accesses)
                        : 0.0;
    }

    /** Conditional L2 full-hit rate given an L1 miss (paper fn. 5). */
    double
    l2FullHitRate() const
    {
        return l1_misses ? static_cast<double>(l2_full_hits) /
                               static_cast<double>(l1_misses)
                         : 0.0;
    }

    /** Conditional L2 partial-hit rate given an L1 miss. */
    double
    l2PartialHitRate() const
    {
        return l1_misses ? static_cast<double>(l2_partial_hits) /
                               static_cast<double>(l1_misses)
                         : 0.0;
    }

    double
    tlbHitRate() const
    {
        return tlb_probes ? static_cast<double>(tlb_hits) /
                                static_cast<double>(tlb_probes)
                          : 0.0;
    }

    /** Mean MIP-level penalty over degraded accesses. */
    double
    meanDegradedMipBias() const
    {
        return degraded_accesses
                   ? static_cast<double>(degraded_mip_bias) /
                         static_cast<double>(degraded_accesses)
                   : 0.0;
    }

    /** Accumulate another frame's counters (for whole-run averages). */
    void add(const CacheFrameStats &o);

    /** Serialize all counters for a checkpoint. */
    void save(SnapshotWriter &w) const;

    /** Restore counters captured by save(). */
    void load(SnapshotReader &r);
};

/** How much of the state invariants to check (see core/audit.hpp). */
enum class AuditLevel : uint8_t
{
    Off,   ///< no checking
    Cheap, ///< O(1)-ish sanity checks, safe at every frame boundary
    Full,  ///< exhaustive structural sweep (tests, --audit=full)
};

/**
 * The simulator. Attach as the rasterizer's sink (or behind a
 * FanoutSink for multi-configuration runs), call endFrame() at each
 * frame boundary.
 */
class CacheSim final : public TexelAccessSink
{
  public:
    /**
     * @param textures texture registry (page table sized from it)
     * @param config cache configuration
     * @param label name used in reports
     */
    CacheSim(TextureManager &textures, const CacheSimConfig &config,
             std::string label = {});

    const std::string &label() const { return label_; }
    const CacheSimConfig &config() const { return cfg_; }

    void bindTexture(TextureId tid) override;
    void access(uint32_t x, uint32_t y, uint32_t mip) override;
    void accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                    uint32_t mip) override;
    void beginPixel(uint32_t px, uint32_t py) override;

    /**
     * Batched access path (docs/batched_access.md): one observability
     * hook crossing (tracer/self-timer/profiler-stage check) per span
     * instead of per texel, SoA address translation over the span, and
     * a branch-free L1 probe. Misses fall out to the same scalar slow
     * path access() uses, so fault injection, MIP degradation, 3C
     * classification and reuse profiling are untouched semantically;
     * every counter, snapshot and CSV is bit-identical to replaying
     * the span through the scalar entry points.
     */
    void accessBatch(std::span<const TexelRef> refs) override;

    /** Harvest this frame's counter deltas and mark the boundary. */
    CacheFrameStats endFrame();

    /** Counters accumulated since construction (all frames). */
    const CacheFrameStats &totals() const { return totals_; }

    /** Frames completed. */
    uint32_t frames() const { return frames_; }

    const L1Cache &l1() const { return l1_; }

    /** The L2 cache (owned or attached shared), null in pull mode. */
    const L2TextureCache *l2() const { return l2p_; }

    /**
     * Multi-tenant serving: route this simulator's L1 misses through a
     * shared L2 it does not own, as tenant @p stream. Must be called on
     * a simulator constructed with l2_enabled = false, before any
     * texture is bound. The shared cache is NOT serialized by this
     * simulator's save() — the owner (the multi-stream runner)
     * checkpoints it exactly once.
     */
    void attachSharedL2(L2TextureCache *l2, uint32_t stream);

    /** Tenant stream id used on the attached shared L2. */
    uint32_t l2Stream() const { return l2_stream_; }

    /**
     * Attach a reuse-distance tracker fed with the page-table index of
     * every L2 block this simulator references on an L1 miss (null
     * detaches). Not owned, not serialized here: the multi-stream
     * runner persists it beside its own state. The per-stream
     * miss-ratio curve it yields is the input to utility repartitioning.
     */
    void setL2BlockTracker(ReuseDistanceTracker *tracker)
    {
        l2_tracker_ = tracker;
    }

    const TextureTlb *tlb() const { return tlb_.get(); }

    /** The host fetch path, present only under fault injection. */
    const HostFetchPath *hostPath() const { return host_.get(); }

    /**
     * Attach a reuse-distance profiler (null detaches). Not owned; the
     * caller keeps it alive for the simulator's lifetime. While
     * attached the profiler is simulator state: it is fed from the
     * access path and serialized into snapshots, so attach it before
     * load() when resuming a profiled run.
     */
    void setReuseProfiler(ReuseProfiler *profiler) { profiler_ = profiler; }

    /** The attached profiler, or null. */
    ReuseProfiler *reuseProfiler() const { return profiler_; }

    /** L1 3C classifier, present only with classify_misses. */
    const MissClassifier *l1Classifier() const { return l1_class_.get(); }

    /** L2 3C classifier, present with classify_misses + an L2. */
    const MissClassifier *l2Classifier() const { return l2_class_.get(); }

    /**
     * Harvest (and reset) wall time accumulated inside the texel access
     * path while a global tracer was installed. Observability-derived,
     * not simulator state: never serialized.
     */
    uint64_t
    takeAccessNs()
    {
        const uint64_t ns = access_ns_;
        access_ns_ = 0;
        return ns;
    }

    /**
     * The fault injector, present only under fault injection. Non-const
     * so benches/tests can reconfigure the scenario mid-run.
     */
    FaultInjector *faultInjector()
    {
        return faulty_ ? &faulty_->injector() : nullptr;
    }

    /**
     * Serialize the complete simulator state (caches, TLB, host path,
     * bound-texture hot state, per-frame and total counters) so a
     * resumed run continues bit-identically.
     */
    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save() into a simulator constructed
     * with the same configuration over the same texture set.
     * @throws mltc::Exception (VersionMismatch) on configuration skew,
     *         (Corrupt/Truncated) on damaged snapshots.
     */
    void load(SnapshotReader &r);

    /**
     * Check state invariants at the given level (see CacheAuditor).
     * @throws mltc::Exception (AuditViolation) naming the structure and
     *         index of the first violated invariant.
     */
    void audit(AuditLevel level) const;

  private:
    friend class CacheAuditor;
    friend class AuditTestPeer;
    /** Service one texel reference (shared by access/accessQuad). */
    void handleTexel(uint32_t x, uint32_t y, uint32_t mip);

    /**
     * Service an L1 miss already counted by the caller: pull download
     * or L2 lookup, fault handling, degradation, classification, L1
     * fill. Shared verbatim by the scalar and batched paths (the
     * batched fast loop only replaces the filter + L1 probe in front
     * of it). Every exit leaves last_tile_ == @p tile.
     */
    void handleMiss(uint32_t x, uint32_t y, uint32_t mip, uint64_t key,
                    uint64_t tile);

    /** accessQuad body, shared by the traced and untraced branches. */
    void quadImpl(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
                  uint32_t mip);

    /** accessBatch body, shared by the traced and untraced branches. */
    void batchImpl(std::span<const TexelRef> refs);

    /**
     * Coalescing-filter key of the L1 tile containing (x, y, mip); bit
     * 57 distinguishes every real tile from the "no tile" value 0.
     */
    uint64_t
    tileKeyOf(uint32_t x, uint32_t y, uint32_t mip) const
    {
        return (static_cast<uint64_t>(mip) << 58) |
               (static_cast<uint64_t>(y >> l1_shift_) << 29) |
               static_cast<uint64_t>(x >> l1_shift_) | (1ull << 57);
    }

    /**
     * Issue one host sector download through the fallible path,
     * accounting retries and wasted (corrupt) bus traffic.
     * @return true when the sector arrived intact.
     */
    bool fetchFromHost(uint32_t t_index);

    /**
     * Retry exhaustion: serve the access from the nearest coarser MIP
     * level whose block is still resident (L2 sector-valid, or L1 in
     * the pull architecture), counting the degradation; a hard failure
     * (nothing coarser resident) only bumps host_failures.
     */
    void degradeToResidentMip(uint32_t x, uint32_t y, uint32_t mip);

    TextureManager &textures_;
    CacheSimConfig cfg_;
    std::string label_;
    L1Cache l1_;
    std::unique_ptr<L2TextureCache> l2_;
    L2TextureCache *l2p_ = nullptr; ///< hot-path L2: owned or shared
    uint32_t l2_stream_ = 0;        ///< tenant id on a shared L2
    ReuseDistanceTracker *l2_tracker_ = nullptr; ///< not owned
    std::unique_ptr<TextureTlb> tlb_;
    std::unique_ptr<HostFetchPath> host_; ///< null = infallible host
    FaultyHostBackend *faulty_ = nullptr;  ///< owned by host_
    std::unique_ptr<MissClassifier> l1_class_; ///< null unless classifying
    std::unique_ptr<MissClassifier> l2_class_; ///< null unless L2 + classify
    ReuseProfiler *profiler_ = nullptr; ///< not owned; null = disabled
    uint64_t access_ns_ = 0; ///< SelfTimer accumulator (tracing only)

    // Per-bound-texture cached state (hot path).
    const TiledLayout *l1_layout_ = nullptr;
    const TiledLayout *l2_layout_ = nullptr;
    TextureId bound_ = 0;
    uint32_t tstart_ = 0;
    uint64_t host_sector_bytes_ = 0; ///< one L1 tile at original depth
    uint64_t last_tile_ = 0;         ///< coalescing filter (0 = none)
    uint32_t l1_shift_ = 2;          ///< log2(L1 tile edge)

    // Fused L1 address translation for the batched fast loop. With the
    // Morton L1 layout the packed block key of a texel reduces to one
    // interleave of its global tile coordinates plus bit surgery:
    //   code = morton(x >> l1_shift_, y >> l1_shift_)
    //   key  = tid<<32 | (level_base[mip] + (code >> sub_bits)) << 8
    //        | (code & sub_mask)
    // because the low 2*log2(l2_tile/l1_tile) interleaved bits are
    // exactly the Morton L1 sub-block number (bit-homomorphism of the
    // interleave over the tile/sub-tile split). Cached per bind;
    // l1_fast_key_ gates the identity on the layout being Morton.
    const uint32_t *l1_level_base_ = nullptr; ///< per-mip L2 block base
    uint64_t l1_tid_hi_ = 0;                  ///< bound_ << 32
    uint32_t l1_sub_bits_ = 4;  ///< 2*log2(l2_tile/l1_tile)
    uint32_t l1_sub_mask_ = 15; ///< (1 << l1_sub_bits_) - 1
    bool l1_fast_key_ = false;  ///< layout is Morton: identity valid

    /// SIMD staging kernel for batchImpl(), resolved once at
    /// construction (nullptr = scalar staging; see batch_stage.hpp).
    detail::StageRunFn stage_run_ = nullptr;

    CacheFrameStats frame_; ///< counters for the current frame
    CacheFrameStats totals_;
    uint32_t frames_ = 0;
};

} // namespace mltc

#endif // MLTC_CORE_CACHE_SIM_HPP
