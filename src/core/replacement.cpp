#include "core/replacement.hpp"

#include <cstring>
#include <stdexcept>

#include "util/error.hpp"

namespace mltc {

namespace {

constexpr uint32_t kSelTag = snapTag("SEL ");

/// Shared section framing: every selector writes its policy byte so a
/// snapshot taken under a different policy fails typed, not garbled.
void
writeSelectorHeader(SnapshotWriter &w, ReplacementPolicy policy)
{
    w.section(kSelTag);
    w.u8(static_cast<uint8_t>(policy));
}

void
readSelectorHeader(SnapshotReader &r, ReplacementPolicy policy)
{
    r.expectSection(kSelTag, "VictimSelector");
    const uint8_t got = r.u8();
    if (got != static_cast<uint8_t>(policy))
        throw Exception(ErrorCode::VersionMismatch,
                        std::string("VictimSelector: snapshot uses policy #") +
                            std::to_string(got) + ", configured policy is " +
                            replacementPolicyName(policy));
}

} // namespace

ReplacementPolicy
parseReplacementPolicy(const char *name)
{
    if (std::strcmp(name, "clock") == 0)
        return ReplacementPolicy::Clock;
    if (std::strcmp(name, "lru") == 0)
        return ReplacementPolicy::Lru;
    if (std::strcmp(name, "fifo") == 0)
        return ReplacementPolicy::Fifo;
    if (std::strcmp(name, "random") == 0)
        return ReplacementPolicy::Random;
    throw std::invalid_argument(std::string("unknown policy: ") + name);
}

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Clock: return "clock";
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::Fifo: return "fifo";
      case ReplacementPolicy::Random: return "random";
    }
    return "?";
}

ClockSelector::ClockSelector(uint32_t blocks) : active_(blocks, 0) {}

uint32_t
ClockSelector::selectVictim()
{
    // March around the BRL clearing active bits until an inactive entry
    // is found. Guaranteed to terminate within two sweeps.
    last_steps_ = 0;
    const uint32_t n = static_cast<uint32_t>(active_.size());
    for (uint32_t step = 0; step < 2 * n; ++step) {
        ++last_steps_;
        uint32_t i = hand_;
        hand_ = (hand_ + 1) % n;
        if (!active_[i])
            return i;
        active_[i] = 0;
    }
    return hand_; // unreachable: all bits were cleared in the first sweep
}

uint32_t
ClockSelector::selectVictimAmong(const std::function<bool(uint32_t)> &allowed)
{
    // Same sweep as selectVictim(), but disallowed blocks are skipped
    // *without* clearing their active bits: a partition-constrained
    // eviction must not age other partitions' recency state. After one
    // full revolution every allowed block's bit is clear, so the second
    // revolution returns the first allowed block encountered.
    last_steps_ = 0;
    const uint32_t n = static_cast<uint32_t>(active_.size());
    for (uint32_t step = 0; step < 2 * n; ++step) {
        ++last_steps_;
        uint32_t i = hand_;
        hand_ = (hand_ + 1) % n;
        if (!allowed(i))
            continue;
        if (!active_[i])
            return i;
        active_[i] = 0;
    }
    // Unreachable when the caller guarantees an allowed block exists;
    // fall back to a plain scan so the invariant failure stays local.
    for (uint32_t i = 0; i < n; ++i)
        if (allowed(i))
            return i;
    return hand_;
}

void
ClockSelector::reset()
{
    std::fill(active_.begin(), active_.end(), 0);
    hand_ = 0;
    last_steps_ = 0;
}

LruSelector::LruSelector(uint32_t blocks) : blocks_(blocks)
{
    reset();
}

void
LruSelector::reset()
{
    // Initial recency order: 0 (MRU) .. blocks-1 (LRU); victims start
    // from the tail, matching an empty cache being filled in order.
    prev_.assign(blocks_, 0);
    next_.assign(blocks_, 0);
    for (uint32_t i = 0; i < blocks_; ++i) {
        prev_[i] = i == 0 ? blocks_ : i - 1;
        next_[i] = i + 1 == blocks_ ? blocks_ : i + 1;
    }
    head_ = 0;
    tail_ = blocks_ - 1;
}

void
LruSelector::unlink(uint32_t index)
{
    uint32_t p = prev_[index];
    uint32_t n = next_[index];
    if (p == blocks_)
        head_ = n;
    else
        next_[p] = n;
    if (n == blocks_)
        tail_ = p;
    else
        prev_[n] = p;
}

void
LruSelector::pushFront(uint32_t index)
{
    prev_[index] = blocks_;
    next_[index] = head_;
    if (head_ != blocks_)
        prev_[head_] = index;
    head_ = index;
    if (tail_ == blocks_)
        tail_ = index;
}

void
LruSelector::onAccess(uint32_t index)
{
    if (head_ == index)
        return;
    unlink(index);
    pushFront(index);
}

uint32_t
LruSelector::selectVictim()
{
    return tail_;
}

uint32_t
LruSelector::selectVictimAmong(const std::function<bool(uint32_t)> &allowed)
{
    // Walk from coldest toward hottest until an allowed block appears.
    for (uint32_t i = tail_; i != blocks_; i = prev_[i])
        if (allowed(i))
            return i;
    return tail_;
}

uint32_t
FifoSelector::selectVictimAmong(const std::function<bool(uint32_t)> &allowed)
{
    // Advance the hand past disallowed blocks without disturbing their
    // queue position relative to each other.
    for (uint32_t k = 0; k < blocks_; ++k) {
        uint32_t i = (hand_ + k) % blocks_;
        if (allowed(i)) {
            hand_ = (i + 1) % blocks_;
            return i;
        }
    }
    return hand_;
}

uint32_t
RandomSelector::selectVictimAmong(const std::function<bool(uint32_t)> &allowed)
{
    // One RNG draw (keeps the stream aligned with selectVictim), then
    // the nearest allowed block scanning forward with wraparound.
    uint32_t start = static_cast<uint32_t>(rng_.below(blocks_));
    for (uint32_t k = 0; k < blocks_; ++k) {
        uint32_t i = (start + k) % blocks_;
        if (allowed(i))
            return i;
    }
    return start;
}

void
ClockSelector::save(SnapshotWriter &w) const
{
    writeSelectorHeader(w, ReplacementPolicy::Clock);
    w.u8Vec(active_);
    w.u32(hand_);
    w.u32(last_steps_);
}

void
ClockSelector::load(SnapshotReader &r)
{
    readSelectorHeader(r, ReplacementPolicy::Clock);
    std::vector<uint8_t> active;
    r.u8Vec(active);
    if (active.size() != active_.size())
        throw Exception(ErrorCode::Corrupt,
                        "ClockSelector: snapshot block count mismatch");
    active_ = std::move(active);
    hand_ = r.u32();
    last_steps_ = r.u32();
    if (hand_ >= active_.size())
        throw Exception(ErrorCode::Corrupt,
                        "ClockSelector: snapshot hand out of range");
}

void
LruSelector::save(SnapshotWriter &w) const
{
    writeSelectorHeader(w, ReplacementPolicy::Lru);
    w.u32Vec(prev_);
    w.u32Vec(next_);
    w.u32(head_);
    w.u32(tail_);
}

void
LruSelector::load(SnapshotReader &r)
{
    readSelectorHeader(r, ReplacementPolicy::Lru);
    std::vector<uint32_t> prev, next;
    r.u32Vec(prev);
    r.u32Vec(next);
    if (prev.size() != blocks_ || next.size() != blocks_)
        throw Exception(ErrorCode::Corrupt,
                        "LruSelector: snapshot block count mismatch");
    prev_ = std::move(prev);
    next_ = std::move(next);
    head_ = r.u32();
    tail_ = r.u32();
    if (head_ > blocks_ || tail_ > blocks_)
        throw Exception(ErrorCode::Corrupt,
                        "LruSelector: snapshot list heads out of range");
}

void
FifoSelector::save(SnapshotWriter &w) const
{
    writeSelectorHeader(w, ReplacementPolicy::Fifo);
    w.u32(hand_);
}

void
FifoSelector::load(SnapshotReader &r)
{
    readSelectorHeader(r, ReplacementPolicy::Fifo);
    hand_ = r.u32();
    if (hand_ >= blocks_)
        throw Exception(ErrorCode::Corrupt,
                        "FifoSelector: snapshot hand out of range");
}

void
RandomSelector::save(SnapshotWriter &w) const
{
    writeSelectorHeader(w, ReplacementPolicy::Random);
    uint64_t state[4];
    rng_.saveState(state);
    for (uint64_t word : state)
        w.u64(word);
}

void
RandomSelector::load(SnapshotReader &r)
{
    readSelectorHeader(r, ReplacementPolicy::Random);
    uint64_t state[4];
    for (auto &word : state)
        word = r.u64();
    rng_.loadState(state);
}

std::unique_ptr<VictimSelector>
makeVictimSelector(ReplacementPolicy policy, uint32_t blocks)
{
    switch (policy) {
      case ReplacementPolicy::Clock:
        return std::make_unique<ClockSelector>(blocks);
      case ReplacementPolicy::Lru:
        return std::make_unique<LruSelector>(blocks);
      case ReplacementPolicy::Fifo:
        return std::make_unique<FifoSelector>(blocks);
      case ReplacementPolicy::Random:
        return std::make_unique<RandomSelector>(blocks);
    }
    throw std::invalid_argument("bad policy");
}

} // namespace mltc
