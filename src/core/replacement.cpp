#include "core/replacement.hpp"

#include <cstring>
#include <stdexcept>

namespace mltc {

ReplacementPolicy
parseReplacementPolicy(const char *name)
{
    if (std::strcmp(name, "clock") == 0)
        return ReplacementPolicy::Clock;
    if (std::strcmp(name, "lru") == 0)
        return ReplacementPolicy::Lru;
    if (std::strcmp(name, "fifo") == 0)
        return ReplacementPolicy::Fifo;
    if (std::strcmp(name, "random") == 0)
        return ReplacementPolicy::Random;
    throw std::invalid_argument(std::string("unknown policy: ") + name);
}

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Clock: return "clock";
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::Fifo: return "fifo";
      case ReplacementPolicy::Random: return "random";
    }
    return "?";
}

ClockSelector::ClockSelector(uint32_t blocks) : active_(blocks, 0) {}

uint32_t
ClockSelector::selectVictim()
{
    // March around the BRL clearing active bits until an inactive entry
    // is found. Guaranteed to terminate within two sweeps.
    last_steps_ = 0;
    const uint32_t n = static_cast<uint32_t>(active_.size());
    for (uint32_t step = 0; step < 2 * n; ++step) {
        ++last_steps_;
        uint32_t i = hand_;
        hand_ = (hand_ + 1) % n;
        if (!active_[i])
            return i;
        active_[i] = 0;
    }
    return hand_; // unreachable: all bits were cleared in the first sweep
}

void
ClockSelector::reset()
{
    std::fill(active_.begin(), active_.end(), 0);
    hand_ = 0;
    last_steps_ = 0;
}

LruSelector::LruSelector(uint32_t blocks) : blocks_(blocks)
{
    reset();
}

void
LruSelector::reset()
{
    // Initial recency order: 0 (MRU) .. blocks-1 (LRU); victims start
    // from the tail, matching an empty cache being filled in order.
    prev_.assign(blocks_, 0);
    next_.assign(blocks_, 0);
    for (uint32_t i = 0; i < blocks_; ++i) {
        prev_[i] = i == 0 ? blocks_ : i - 1;
        next_[i] = i + 1 == blocks_ ? blocks_ : i + 1;
    }
    head_ = 0;
    tail_ = blocks_ - 1;
}

void
LruSelector::unlink(uint32_t index)
{
    uint32_t p = prev_[index];
    uint32_t n = next_[index];
    if (p == blocks_)
        head_ = n;
    else
        next_[p] = n;
    if (n == blocks_)
        tail_ = p;
    else
        prev_[n] = p;
}

void
LruSelector::pushFront(uint32_t index)
{
    prev_[index] = blocks_;
    next_[index] = head_;
    if (head_ != blocks_)
        prev_[head_] = index;
    head_ = index;
    if (tail_ == blocks_)
        tail_ = index;
}

void
LruSelector::onAccess(uint32_t index)
{
    if (head_ == index)
        return;
    unlink(index);
    pushFront(index);
}

uint32_t
LruSelector::selectVictim()
{
    return tail_;
}

std::unique_ptr<VictimSelector>
makeVictimSelector(ReplacementPolicy policy, uint32_t blocks)
{
    switch (policy) {
      case ReplacementPolicy::Clock:
        return std::make_unique<ClockSelector>(blocks);
      case ReplacementPolicy::Lru:
        return std::make_unique<LruSelector>(blocks);
      case ReplacementPolicy::Fifo:
        return std::make_unique<FifoSelector>(blocks);
      case ReplacementPolicy::Random:
        return std::make_unique<RandomSelector>(blocks);
    }
    throw std::invalid_argument("bad policy");
}

} // namespace mltc
