#include "core/l1_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace mltc {

L1Cache::L1Cache(const L1Config &config) : cfg_(config)
{
    if (config.size_bytes % config.lineBytes() != 0)
        throw std::invalid_argument("L1Cache: size not a multiple of line");
    uint64_t lines = config.lines();
    if (lines == 0)
        throw std::invalid_argument("L1Cache: zero lines");

    assoc_ = config.assoc == 0 ? static_cast<uint32_t>(lines) : config.assoc;
    if (lines % assoc_ != 0)
        throw std::invalid_argument("L1Cache: lines not divisible by assoc");
    sets_ = static_cast<uint32_t>(lines / assoc_);
    if (!isPowerOfTwo(sets_))
        throw std::invalid_argument("L1Cache: set count must be power of two");

    tags_.assign(lines, 0);
    stamps_.assign(lines, 0);

    // L1 sub-blocks per L2 block under the fixed 16x16 tag granulation
    // (§3.3); used to linearise <L2, L1> into consecutive set indices.
    uint32_t span = std::max(16u, config.l1_tile);
    uint32_t per_edge = span / config.l1_tile;
    subs_per_block_ = per_edge * per_edge;
}

void
L1Cache::fill(uint64_t block_key)
{
    const uint32_t set = setIndex(block_key);
    uint32_t victim = 0;
    uint64_t oldest = ~0ull;
    for (uint32_t w = 0; w < assoc_; ++w) {
        const size_t at = static_cast<size_t>(w) * sets_ + set;
        if (tags_[at] == 0) { // free way
            victim = w;
            break;
        }
        if (stamps_[at] < oldest) {
            oldest = stamps_[at];
            victim = w;
        }
    }
    const size_t at = static_cast<size_t>(victim) * sets_ + set;
    tags_[at] = block_key;
    stamps_[at] = ++tick_;
}

bool
L1Cache::probe(uint64_t block_key) const
{
    const uint32_t set = setIndex(block_key);
    for (uint32_t w = 0; w < assoc_; ++w)
        if (tags_[static_cast<size_t>(w) * sets_ + set] == block_key)
            return true;
    return false;
}

void
L1Cache::reset()
{
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    tick_ = 0;
}

namespace {
constexpr uint32_t kL1Tag = snapTag("L1C ");
} // namespace

void
L1Cache::save(SnapshotWriter &w) const
{
    w.section(kL1Tag);
    w.u64(cfg_.size_bytes);
    w.u32(cfg_.assoc);
    w.u32(cfg_.l1_tile);
    // Snapshots predate the way-major (SoA) storage and keep the
    // original set-major order on disk: permute on the way out so the
    // checkpoint byte format is invariant under the in-memory layout.
    std::vector<uint64_t> tags(tags_.size()), stamps(stamps_.size());
    for (uint32_t s = 0; s < sets_; ++s)
        for (uint32_t wy = 0; wy < assoc_; ++wy) {
            const size_t disk = static_cast<size_t>(s) * assoc_ + wy;
            const size_t mem = static_cast<size_t>(wy) * sets_ + s;
            tags[disk] = tags_[mem];
            stamps[disk] = stamps_[mem];
        }
    w.u64Vec(tags);
    w.u64Vec(stamps);
    w.u64(tick_);
    w.u64(stats_.accesses);
    w.u64(stats_.misses);
}

void
L1Cache::load(SnapshotReader &r)
{
    r.expectSection(kL1Tag, "L1Cache");
    const uint64_t size_bytes = r.u64();
    const uint32_t assoc = r.u32();
    const uint32_t l1_tile = r.u32();
    if (size_bytes != cfg_.size_bytes || assoc != cfg_.assoc ||
        l1_tile != cfg_.l1_tile)
        throw Exception(ErrorCode::VersionMismatch,
                        "L1Cache: snapshot geometry (" +
                            std::to_string(size_bytes) + " B, assoc " +
                            std::to_string(assoc) + ", tile " +
                            std::to_string(l1_tile) +
                            ") does not match the configured cache");
    std::vector<uint64_t> tags, stamps;
    r.u64Vec(tags);
    r.u64Vec(stamps);
    if (tags.size() != tags_.size() || stamps.size() != stamps_.size())
        throw Exception(ErrorCode::Corrupt,
                        "L1Cache: snapshot line count mismatch");
    // Inverse of the save() permutation: set-major on disk, way-major
    // in memory.
    for (uint32_t s = 0; s < sets_; ++s)
        for (uint32_t wy = 0; wy < assoc_; ++wy) {
            const size_t disk = static_cast<size_t>(s) * assoc_ + wy;
            const size_t mem = static_cast<size_t>(wy) * sets_ + s;
            tags_[mem] = tags[disk];
            stamps_[mem] = stamps[disk];
        }
    tick_ = r.u64();
    stats_.accesses = r.u64();
    stats_.misses = r.u64();
}

} // namespace mltc
