/**
 * @file
 * SIMD staging kernel for the batched access path (runtime-dispatched).
 *
 * CacheSim::batchImpl() stages a TexelRef span into compacted
 * coalescing-filter survivors before probing the L1 tag planes. That
 * staging — field extraction from the AoS TexelRef stream, the tile
 * shift, the "same tile as predecessor" filter and the survivor
 * compaction — is data-parallel, so on machines with AVX-512F it runs
 * 16 refs per step in one vector kernel. The kernel is semantically
 * identical to the scalar staging loop: it produces the same survivor
 * sequence, the same filter carry, and the same access count, so the
 * probe phase downstream cannot tell which one ran (the differential
 * suite in tests/test_batch_equivalence.cpp pins this down by running
 * both).
 *
 * The kernel lives in its own translation unit built for the baseline
 * ISA; the AVX-512 body carries a function-level target attribute and
 * is only ever called behind a __builtin_cpu_supports("avx512f") check
 * (resolveStageRun() returns nullptr elsewhere, and the scalar loop is
 * the permanent fallback). Setting MLTC_BATCH_SIMD=0/false/off in the
 * environment forces the scalar path, which is how the equivalence
 * tests difference the two kernels on the same machine.
 */
#ifndef MLTC_CORE_BATCH_STAGE_HPP
#define MLTC_CORE_BATCH_STAGE_HPP

#include <cstddef>
#include <cstdint>

#include "raster/access_sink.hpp"

namespace mltc::detail {

/** Refs per vector step; runs shorter than this stage scalar. */
inline constexpr size_t kStageGroup = 16;

/**
 * Coalescing-filter carry across staging calls: the tile coordinates
 * and MIP level of the last staged texel (the components of CacheSim's
 * last_tile_, kept unpacked while a batch is in flight).
 */
struct BatchStageCarry
{
    uint32_t ptx;
    uint32_t pty;
    uint32_t pm;
};

/** What one staging call consumed. */
struct StageResult
{
    uint32_t refs = 0;   ///< TexelRefs consumed from the span
    uint32_t texels = 0; ///< texel references among them (for counters)
};

/**
 * Stage up to @p n leading refs of a span: texel refs are filtered
 * against the carry and survivors appended (coordinates, tile
 * coordinates and MIP, all zero-extended to 32 bits) at @p ns, which
 * is advanced in place. Pixel markers (and unknown kinds, which the
 * scalar path also treats as markers) are consumed and ignored; a
 * quad stops the run before its group so the scalar staging loop can
 * expand it. Consumes whole groups of kStageGroup refs only and stops
 * while @p ns has less than kStageGroup slots below @p cap.
 */
using StageRunFn = StageResult (*)(const TexelRef *refs, size_t n,
                                   uint32_t shift, BatchStageCarry &carry,
                                   uint32_t *sxs, uint32_t *sys,
                                   uint32_t *stx, uint32_t *sty,
                                   uint32_t *sms, size_t &ns, size_t cap);

/**
 * The staging kernel for this machine: the AVX-512F kernel when the
 * CPU supports it and MLTC_BATCH_SIMD does not veto it, else nullptr
 * (callers keep their scalar staging loop).
 */
StageRunFn resolveStageRun();

} // namespace mltc::detail

#endif // MLTC_CORE_BATCH_STAGE_HPP
