#include "core/audit.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mltc {

AuditLevel
parseAuditLevel(const char *name)
{
    if (std::strcmp(name, "off") == 0)
        return AuditLevel::Off;
    if (std::strcmp(name, "cheap") == 0)
        return AuditLevel::Cheap;
    if (std::strcmp(name, "full") == 0)
        return AuditLevel::Full;
    throw Exception(ErrorCode::BadArgument,
                    std::string("unknown audit level: '") + name +
                        "' (expected off, cheap or full)");
}

const char *
auditLevelName(AuditLevel level)
{
    switch (level) {
      case AuditLevel::Off: return "off";
      case AuditLevel::Cheap: return "cheap";
      case AuditLevel::Full: return "full";
    }
    return "?";
}

namespace {

[[noreturn]] void
violation(const std::string &structure, uint64_t index,
          const std::string &what)
{
    throw Exception(ErrorCode::AuditViolation,
                    structure + "[" + std::to_string(index) + "]: " + what);
}

[[noreturn]] void
violation(const std::string &structure, const std::string &what)
{
    throw Exception(ErrorCode::AuditViolation, structure + ": " + what);
}

void
checkStats(const CacheFrameStats &s, const char *which)
{
    if (s.l1_misses > s.accesses)
        violation(std::string(which),
                  "more L1 misses than accesses (" +
                      std::to_string(s.l1_misses) + " > " +
                      std::to_string(s.accesses) + ")");
    if (s.l2_full_hits + s.l2_partial_hits + s.l2_full_misses > s.l1_misses)
        violation(std::string(which),
                  "L2 outcome count exceeds L1 miss count");
    if (s.tlb_hits > s.tlb_probes)
        violation(std::string(which), "more TLB hits than probes");
}

} // namespace

void
CacheAuditor::check(const CacheSim &sim, AuditLevel level)
{
    switch (level) {
      case AuditLevel::Off:
        return;
      case AuditLevel::Cheap:
        checkCheap(sim);
        return;
      case AuditLevel::Full:
        checkFull(sim);
        return;
    }
}

void
CacheAuditor::checkCheap(const CacheSim &sim)
{
    const L1Cache &l1 = sim.l1_;
    if (l1.stats_.misses > l1.stats_.accesses)
        violation("L1Cache.stats", "more misses than accesses");
    if (l1.tags_.size() != static_cast<size_t>(l1.sets_) * l1.assoc_ ||
        l1.stamps_.size() != l1.tags_.size())
        violation("L1Cache", "tag/stamp store size disagrees with geometry");

    checkStats(sim.frame_, "CacheSim.frame");
    checkStats(sim.totals_, "CacheSim.totals");

    if (sim.l2_)
        cheapL2(*sim.l2_);

    if (sim.tlb_) {
        const TextureTlb &tlb = *sim.tlb_;
        if (tlb.stats_.hits > tlb.stats_.probes)
            violation("TextureTlb.stats", "more hits than probes");
        if (tlb.hand_ >= tlb.slots_.size())
            violation("TextureTlb", tlb.hand_, "refill hand out of range");
    }
}

void
CacheAuditor::cheapL2(const L2TextureCache &l2)
{
    if (l2.allocated_ > l2.cfg_.blocks())
        violation("L2TextureCache",
                  "allocated " + std::to_string(l2.allocated_) +
                      " physical blocks, capacity " +
                      std::to_string(l2.cfg_.blocks()));
    if (l2.brl_owner_.size() != l2.cfg_.blocks())
        violation("BRL", "size disagrees with block capacity");
    const L2Stats &s = l2.stats_;
    if (s.full_hits + s.partial_hits + s.full_misses != s.lookups)
        violation("L2TextureCache.stats",
                  "hit/miss breakdown does not sum to lookups");
    if (s.evictions > s.full_misses)
        violation("L2TextureCache.stats", "more evictions than full misses");
    if (s.prefetch_useful > s.prefetch_sectors)
        violation("L2TextureCache.stats",
                  "more useful prefetches than prefetched sectors");

    uint64_t stream_lookups = 0, stream_alloc = 0, quota_sum = 0;
    for (uint32_t t = 0; t < l2.stream_count_; ++t) {
        const L2StreamStats &ss = l2.stream_stats_[t];
        if (ss.full_hits + ss.partial_hits + ss.full_misses != ss.lookups)
            violation("L2StreamStats", t,
                      "hit/miss breakdown does not sum to lookups");
        stream_lookups += ss.lookups;
        stream_alloc += l2.stream_alloc_[t];
        if (l2.quota_[t] == 0)
            violation("L2TextureCache.quota", t, "zero-block quota");
        quota_sum += l2.quota_[t];
    }
    if (stream_lookups != s.lookups)
        violation("L2StreamStats",
                  "per-stream lookups sum to " +
                      std::to_string(stream_lookups) + ", global count is " +
                      std::to_string(s.lookups));
    if (stream_alloc + l2.free_list_.size() >
        (l2.share_ == L2SharePolicy::Static ? l2.cfg_.blocks()
                                            : l2.allocated_))
        violation("L2TextureCache",
                  "per-stream ownership plus free list exceeds the "
                  "allocated pool");
    if (quota_sum != l2.cfg_.blocks())
        violation("L2TextureCache",
                  "stream quotas sum to " + std::to_string(quota_sum) +
                      ", capacity is " + std::to_string(l2.cfg_.blocks()));
    if (l2.share_ == L2SharePolicy::Static && !l2.free_list_.empty())
        violation("L2TextureCache",
                  "static partitioning must keep the free list empty");
}

void
CacheAuditor::checkL2(const L2TextureCache &l2, AuditLevel level)
{
    switch (level) {
      case AuditLevel::Off:
        return;
      case AuditLevel::Cheap:
        cheapL2(l2);
        return;
      case AuditLevel::Full:
        cheapL2(l2);
        fullL2(l2);
        return;
    }
}

void
CacheAuditor::checkFull(const CacheSim &sim)
{
    checkCheap(sim);
    fullL1(sim.l1_, static_cast<uint32_t>(sim.textures_.textureCount()));
    if (sim.l2_) {
        fullL2(*sim.l2_);
        if (sim.tlb_)
            fullTlb(*sim.tlb_, sim.l2_->tableEntries());
    }
}

void
CacheAuditor::fullL1(const L1Cache &l1, uint32_t texture_count)
{
    for (size_t i = 0; i < l1.tags_.size(); ++i) {
        const uint64_t tag = l1.tags_[i];
        if (tag == 0) {
            if (l1.stamps_[i] > l1.tick_)
                violation("L1Cache.stamps", i, "stamp beyond global tick");
            continue;
        }
        const uint32_t tid = static_cast<uint32_t>(tag >> 32);
        const uint32_t l1_sub = static_cast<uint32_t>(tag & 0xff);
        if (tid == 0 || tid > texture_count)
            violation("L1Cache.tags", i,
                      "tag decodes to texture id " + std::to_string(tid) +
                          " outside [1, " + std::to_string(texture_count) +
                          "]");
        if (l1_sub >= l1.subs_per_block_)
            violation("L1Cache.tags", i,
                      "tag decodes to L1 sub-block " + std::to_string(l1_sub) +
                          " >= " + std::to_string(l1.subs_per_block_));
        // Way-major storage: index i lives in way i / sets_, set
        // i % sets_.
        const uint32_t set = static_cast<uint32_t>(i % l1.sets_);
        if (l1.setIndex(tag) != set)
            violation("L1Cache.tags", i,
                      "tag hashes to set " + std::to_string(l1.setIndex(tag)) +
                          " but is stored in set " + std::to_string(set));
        if (l1.stamps_[i] == 0 || l1.stamps_[i] > l1.tick_)
            violation("L1Cache.stamps", i,
                      "valid line with stamp outside (0, tick]");
    }
}

void
CacheAuditor::fullL2(const L2TextureCache &l2)
{
    const uint32_t sectors = l2.cfg_.sectors();
    // Mask of legal sector bits; sectors == 64 would make `1 << 64` UB,
    // so build the mask from the top.
    const uint64_t legal =
        sectors >= 64 ? ~0ull : (1ull << sectors) - 1;

    uint64_t mapped_entries = 0;
    for (size_t t = 0; t < l2.table_.size(); ++t) {
        const auto &entry = l2.table_[t];
        if (entry.phys_plus1 == 0) {
            if (entry.sectors != 0)
                violation("t_table", t,
                          "sector bits set on an entry with no physical "
                          "block");
            if (entry.prefetched != 0)
                violation("t_table", t,
                          "prefetched bits set on an entry with no physical "
                          "block");
            continue;
        }
        ++mapped_entries;
        const uint32_t phys = entry.phys_plus1 - 1;
        if (phys >= l2.brl_owner_.size())
            violation("t_table", t,
                      "physical block " + std::to_string(phys) +
                          " out of range");
        if (l2.brl_owner_[phys] != t + 1)
            violation("t_table", t,
                      "physical block " + std::to_string(phys) +
                          " is owned by BRL entry " +
                          std::to_string(l2.brl_owner_[phys]) +
                          " (expected " + std::to_string(t + 1) + ")");
        if (entry.sectors == 0)
            violation("t_table", t,
                      "allocated physical block with no resident sectors");
        if (entry.sectors & ~legal)
            violation("t_table", t,
                      "sector bits beyond the configured " +
                          std::to_string(sectors) + " sectors per block");
        if (entry.prefetched & ~entry.sectors)
            violation("t_table", t,
                      "prefetched bits are not a subset of the sector bits");
    }

    // Free-listed blocks are below the watermark but legitimately
    // unowned (released by a quarantined stream), so index them first.
    std::vector<uint8_t> on_free_list(l2.brl_owner_.size(), 0);
    for (uint32_t phys : l2.free_list_) {
        if (phys >= l2.brl_owner_.size())
            violation("L2TextureCache.free_list", phys,
                      "free-list entry out of range");
        if (on_free_list[phys])
            violation("L2TextureCache.free_list", phys,
                      "block appears on the free list twice");
        on_free_list[phys] = 1;
    }

    const bool is_static = l2.share_ == L2SharePolicy::Static;
    std::vector<uint64_t> per_stream_owned(l2.stream_count_, 0);
    uint64_t owned_blocks = 0;
    for (size_t p = 0; p < l2.brl_owner_.size(); ++p) {
        const uint32_t owner = l2.brl_owner_[p];
        const uint8_t owner_stream = l2.block_stream_[p];
        if (owner == 0) {
            if (owner_stream != L2TextureCache::kFreeBlock)
                violation("BRL", p,
                          "unowned block is attributed to stream " +
                              std::to_string(owner_stream));
            if (!is_static && p < l2.allocated_ && !on_free_list[p])
                violation("BRL", p,
                          "block below the allocation watermark has no "
                          "owner and is not on the free list");
            continue;
        }
        ++owned_blocks;
        if (owner_stream == L2TextureCache::kFreeBlock)
            violation("BRL", p, "owned block is attributed to no stream");
        if (owner_stream >= l2.stream_count_)
            violation("BRL", p,
                      "block attributed to stream " +
                          std::to_string(owner_stream) + " of " +
                          std::to_string(l2.stream_count_));
        ++per_stream_owned[owner_stream];
        if (on_free_list[p])
            violation("BRL", p, "owned block appears on the free list");
        if (!is_static && p >= l2.allocated_)
            violation("BRL", p,
                      "block above the allocation watermark has owner " +
                          std::to_string(owner));
        if (is_static &&
            (p < l2.base_[owner_stream] ||
             p >= l2.base_[owner_stream] + l2.quota_[owner_stream]))
            violation("BRL", p,
                      "block owned by stream " +
                          std::to_string(owner_stream) +
                          " lies outside its static partition");
        if (owner - 1 >= l2.table_.size())
            violation("BRL", p,
                      "owner t_index " + std::to_string(owner - 1) +
                          " out of range");
        if (l2.streamOfIndex(owner - 1) != owner_stream)
            violation("BRL", p,
                      "owner t_index " + std::to_string(owner - 1) +
                          " lies in the page-table region of stream " +
                          std::to_string(l2.streamOfIndex(owner - 1)) +
                          ", but the block is attributed to stream " +
                          std::to_string(owner_stream));
        if (l2.table_[owner - 1].phys_plus1 != p + 1)
            violation("BRL", p,
                      "owner t_table[" + std::to_string(owner - 1) +
                          "] maps to physical block " +
                          std::to_string(l2.table_[owner - 1].phys_plus1) +
                          "-1 (expected " + std::to_string(p) + ")");
    }
    const uint64_t expected_owned =
        is_static ? l2.allocated_ : l2.allocated_ - l2.free_list_.size();
    if (mapped_entries != owned_blocks || owned_blocks != expected_owned)
        violation("L2TextureCache",
                  "mapped t_table entries (" + std::to_string(mapped_entries) +
                      "), owned BRL blocks (" + std::to_string(owned_blocks) +
                      ") and the allocation watermark (" +
                      std::to_string(l2.allocated_) + " minus " +
                      std::to_string(l2.free_list_.size()) +
                      " free-listed) disagree");
    for (uint32_t t = 0; t < l2.stream_count_; ++t)
        if (per_stream_owned[t] != l2.stream_alloc_[t])
            violation("L2TextureCache.stream_alloc", t,
                      "records " + std::to_string(l2.stream_alloc_[t]) +
                          " owned blocks, BRL attribution counts " +
                          std::to_string(per_stream_owned[t]));

    if (is_static)
        for (uint32_t t = 0; t < l2.stream_count_; ++t)
            fullSelector(*l2.part_selector_[t], l2.cfg_.policy,
                         static_cast<uint32_t>(l2.quota_[t]));
    else
        fullSelector(*l2.selector_, l2.cfg_.policy,
                     static_cast<uint32_t>(l2.cfg_.blocks()));
}

void
CacheAuditor::fullTlb(const TextureTlb &tlb, uint32_t table_entries)
{
    for (size_t i = 0; i < tlb.slots_.size(); ++i) {
        const uint32_t slot = tlb.slots_[i];
        if (slot != 0 && slot - 1 >= table_entries)
            violation("TextureTlb.slots", i,
                      "translation to t_index " + std::to_string(slot - 1) +
                          " out of range (" + std::to_string(table_entries) +
                          " entries)");
    }
}

void
CacheAuditor::fullSelector(const VictimSelector &selector,
                           ReplacementPolicy policy, uint32_t blocks)
{
    if (policy == ReplacementPolicy::Clock) {
        const auto &clock = static_cast<const ClockSelector &>(selector);
        if (clock.active_.size() != blocks)
            violation("ClockSelector", "active-bit count disagrees with "
                                       "block capacity");
        if (clock.hand_ >= blocks)
            violation("ClockSelector", clock.hand_, "hand out of range");
        return;
    }
    if (policy == ReplacementPolicy::Lru) {
        const auto &lru = static_cast<const LruSelector &>(selector);
        if (lru.prev_.size() != blocks || lru.next_.size() != blocks)
            violation("LruSelector", "link array size disagrees with block "
                                     "capacity");
        // Walk head -> tail: must visit every block exactly once with
        // mutually consistent prev/next links (a valid permutation).
        std::vector<uint8_t> seen(blocks, 0);
        uint32_t node = lru.head_;
        uint32_t prev = blocks; // sentinel
        uint32_t visited = 0;
        while (node != blocks) {
            if (node >= blocks)
                violation("LruSelector.next", prev, "link out of range");
            if (seen[node])
                violation("LruSelector", node, "recency list revisits block");
            seen[node] = 1;
            ++visited;
            if (lru.prev_[node] != prev)
                violation("LruSelector.prev", node,
                          "back link does not match walk order");
            prev = node;
            node = lru.next_[node];
        }
        if (visited != blocks)
            violation("LruSelector",
                      "recency list covers " + std::to_string(visited) +
                          " of " + std::to_string(blocks) + " blocks");
        if (lru.tail_ != prev)
            violation("LruSelector", lru.tail_,
                      "tail does not terminate the recency list");
    }
    // FIFO and random selectors hold no cross-linked state to audit.
}

void
CacheSim::audit(AuditLevel level) const
{
    CacheAuditor::check(*this, level);
}

} // namespace mltc
