#include "host/bandwidth.hpp"

#include "util/error.hpp"
#include "util/serializer.hpp"

namespace mltc {

namespace {
constexpr uint32_t kBwgTag = snapTag("BWG ");
} // namespace

BandwidthGovernor::BandwidthGovernor(uint32_t streams,
                                     const BandwidthGovernorConfig &config)
    : cfg_(config), bias_(streams, 0), calm_streak_(streams, 0),
      over_rounds_(streams, 0), total_bytes_(streams, 0)
{
}

uint32_t
BandwidthGovernor::observe(uint32_t stream, uint64_t bytes)
{
    total_bytes_[stream] += bytes;
    if (cfg_.budget_bytes_per_round == 0)
        return bias_[stream];

    if (bytes > cfg_.budget_bytes_per_round) {
        ++over_rounds_[stream];
        calm_streak_[stream] = 0;
        if (bias_[stream] < cfg_.max_bias)
            ++bias_[stream];
    } else if (bytes * 2 <= cfg_.budget_bytes_per_round) {
        if (++calm_streak_[stream] >= 2) {
            calm_streak_[stream] = 0;
            if (bias_[stream] > 0)
                --bias_[stream];
        }
    } else {
        calm_streak_[stream] = 0;
    }
    return bias_[stream];
}

void
BandwidthGovernor::save(SnapshotWriter &w) const
{
    w.section(kBwgTag);
    w.u64(cfg_.budget_bytes_per_round);
    w.u32(cfg_.max_bias);
    w.u32(streamCount());
    w.u32Vec(bias_);
    w.u32Vec(calm_streak_);
    w.u32Vec(over_rounds_);
    w.u64Vec(total_bytes_);
}

void
BandwidthGovernor::load(SnapshotReader &r)
{
    r.expectSection(kBwgTag, "BandwidthGovernor");
    if (r.u64() != cfg_.budget_bytes_per_round)
        throw Exception(ErrorCode::VersionMismatch,
                        "BandwidthGovernor: snapshot budget differs from "
                        "configured budget");
    if (r.u32() != cfg_.max_bias)
        throw Exception(ErrorCode::VersionMismatch,
                        "BandwidthGovernor: snapshot max bias differs from "
                        "configured max bias");
    if (r.u32() != streamCount())
        throw Exception(ErrorCode::VersionMismatch,
                        "BandwidthGovernor: snapshot stream count differs "
                        "from configured stream count");
    r.u32Vec(bias_);
    r.u32Vec(calm_streak_);
    r.u32Vec(over_rounds_);
    r.u64Vec(total_bytes_);
    if (bias_.size() != calm_streak_.size() ||
        bias_.size() != over_rounds_.size() ||
        bias_.size() != total_bytes_.size())
        throw Exception(ErrorCode::Corrupt,
                        "BandwidthGovernor: column sizes disagree");
    for (uint32_t b : bias_)
        if (b > cfg_.max_bias)
            throw Exception(ErrorCode::Corrupt,
                            "BandwidthGovernor: bias beyond configured max");
}

} // namespace mltc
