#include "host/host_backend.hpp"

#include <string>

namespace mltc {

HostTransfer
FaultyHostBackend::transfer(const HostRequest &)
{
    const FaultDecision d = injector_.decide();
    switch (d.kind) {
      case FaultKind::None:
      case FaultKind::LatencySpike:
        return {HostTransferStatus::Ok, d.latency_us};
      case FaultKind::Drop:
      case FaultKind::BurstOutage:
        return {HostTransferStatus::Dropped, d.latency_us};
      case FaultKind::Corrupt:
        return {HostTransferStatus::Corrupt, d.latency_us};
    }
    return {HostTransferStatus::Ok, d.latency_us};
}

HostFetchPath::HostFetchPath(std::unique_ptr<HostMemoryBackend> backend,
                             const RetryConfig &retry)
    : backend_(std::move(backend)), policy_(retry)
{
}

HostFetchResult
HostFetchPath::fetch(const HostRequest &request)
{
    ++stats_.requests;
    HostFetchResult r;
    const RetryConfig &cfg = policy_.config();

    while (policy_.attemptAllowed(r.attempts + 1, r.elapsed_us)) {
        const HostTransfer t = backend_->transfer(request);
        ++r.attempts;
        ++stats_.attempts;
        r.elapsed_us += t.latency_us;

        HostTransferStatus status = t.status;
        // A nominally successful transfer that blew the per-attempt
        // timeout was already abandoned by the requester: retryable.
        if (status == HostTransferStatus::Ok &&
            t.latency_us > cfg.attempt_timeout_us) {
            ++stats_.timeouts;
            status = HostTransferStatus::Dropped;
        }
        if (status == HostTransferStatus::Corrupt)
            ++r.corrupt_transfers;
        if (status == HostTransferStatus::Ok) {
            r.success = true;
            r.retries = r.attempts - 1;
            stats_.retries += r.retries;
            stats_.elapsed_us += r.elapsed_us;
            latency_hist_.add(r.elapsed_us);
            return r;
        }
        // Failed attempt: back off before the next one, unless the
        // backoff itself would exhaust the request's time budget.
        const uint32_t backoff = policy_.backoffAfter(r.attempts);
        if (!policy_.attemptAllowed(r.attempts + 1, r.elapsed_us + backoff))
            break;
        r.elapsed_us += backoff;
    }

    r.retries = r.attempts ? r.attempts - 1 : 0;
    stats_.retries += r.retries;
    stats_.elapsed_us += r.elapsed_us;
    latency_hist_.add(r.elapsed_us);
    ++stats_.failures;
    r.error = {ErrorCode::RetryExhausted,
               "host fetch failed after " + std::to_string(r.attempts) +
                   " attempts (t_index " + std::to_string(request.t_index) +
                   ", " + std::to_string(r.elapsed_us) + "us elapsed)"};
    return r;
}

namespace {
constexpr uint32_t kHostTag = snapTag("HST ");
} // namespace

void
HostFetchPath::save(SnapshotWriter &w) const
{
    w.section(kHostTag);
    w.u64(stats_.requests);
    w.u64(stats_.attempts);
    w.u64(stats_.retries);
    w.u64(stats_.timeouts);
    w.u64(stats_.failures);
    w.u64(stats_.elapsed_us);
    latency_hist_.save(w);
}

void
HostFetchPath::load(SnapshotReader &r)
{
    r.expectSection(kHostTag, "HostFetchPath");
    stats_.requests = r.u64();
    stats_.attempts = r.u64();
    stats_.retries = r.u64();
    stats_.timeouts = r.u64();
    stats_.failures = r.u64();
    stats_.elapsed_us = r.u64();
    latency_hist_.load(r);
}

} // namespace mltc
