/**
 * @file
 * Command-line plumbing for fault scenarios, shared by cache_explorer,
 * record_replay and any future driver: one function mapping the
 * `--faults` / `--fault-*` / `--retry-*` option family onto a
 * HostPathConfig.
 */
#ifndef MLTC_HOST_HOST_CLI_HPP
#define MLTC_HOST_HOST_CLI_HPP

#include "host/host_backend.hpp"
#include "util/cli.hpp"

namespace mltc {

/**
 * Build a HostPathConfig from the command line. Fault injection is
 * enabled by `--faults` or by any `--fault-*` option being present.
 *
 * Options (defaults in FaultConfig / RetryConfig):
 *   --faults                  enable fault injection
 *   --fault-seed N            scenario seed
 *   --fault-drop R            transient drop probability [0,1]
 *   --fault-corrupt R         corrupted-payload probability [0,1]
 *   --fault-spike R           latency-spike probability [0,1]
 *   --fault-burst-period N    attempts per burst-outage window
 *   --fault-burst-len N       failing attempts at the end of each window
 *   --retry-max N             attempts per request (first included)
 *   --retry-backoff-us N      base backoff before the 2nd attempt
 *   --retry-budget-us N       total per-request time budget
 */
HostPathConfig hostPathFromCli(const CommandLine &cli);

} // namespace mltc

#endif // MLTC_HOST_HOST_CLI_HPP
