#include "host/fault_injector.hpp"

namespace mltc {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::Drop: return "drop";
      case FaultKind::Corrupt: return "corrupt";
      case FaultKind::LatencySpike: return "latency-spike";
      case FaultKind::BurstOutage: return "burst-outage";
    }
    return "?";
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : cfg_(config), rng_(config.seed)
{
}

void
FaultInjector::reconfigure(const FaultConfig &config)
{
    cfg_ = config;
    rng_.reseed(config.seed);
    seq_ = 0;
}

FaultDecision
FaultInjector::decide()
{
    const uint64_t seq = seq_++;
    ++stats_.attempts;

    // Scheduled burst outages trump the probabilistic faults. One PRNG
    // draw is still consumed so the post-burst stream does not depend on
    // where the burst windows fell.
    const double u = rng_.uniform();
    if (cfg_.burst_period > 0 && cfg_.burst_length > 0 &&
        seq % cfg_.burst_period >=
            static_cast<uint64_t>(cfg_.burst_period) - cfg_.burst_length) {
        ++stats_.burst_failures;
        return {FaultKind::BurstOutage, cfg_.base_latency_us};
    }

    // One partitioned draw per attempt keeps PRNG consumption constant
    // regardless of which fault fires.
    if (u < cfg_.drop_rate) {
        ++stats_.drops;
        return {FaultKind::Drop, cfg_.base_latency_us};
    }
    if (u < cfg_.drop_rate + cfg_.corrupt_rate) {
        ++stats_.corruptions;
        return {FaultKind::Corrupt, cfg_.base_latency_us};
    }
    if (u < cfg_.drop_rate + cfg_.corrupt_rate + cfg_.spike_rate) {
        ++stats_.spikes;
        return {FaultKind::LatencySpike, cfg_.spike_latency_us};
    }
    return {FaultKind::None, cfg_.base_latency_us};
}

namespace {
constexpr uint32_t kFaultTag = snapTag("FLT ");
} // namespace

void
FaultInjector::save(SnapshotWriter &w) const
{
    w.section(kFaultTag);
    // Full scenario config: a resumed run continues the snapshot's
    // scenario even if benches reconfigured it mid-run.
    w.u64(cfg_.seed);
    w.f64(cfg_.drop_rate);
    w.f64(cfg_.corrupt_rate);
    w.f64(cfg_.spike_rate);
    w.u32(cfg_.base_latency_us);
    w.u32(cfg_.spike_latency_us);
    w.u32(cfg_.burst_period);
    w.u32(cfg_.burst_length);
    uint64_t state[4];
    rng_.saveState(state);
    for (uint64_t word : state)
        w.u64(word);
    w.u64(seq_);
    w.u64(stats_.attempts);
    w.u64(stats_.drops);
    w.u64(stats_.corruptions);
    w.u64(stats_.spikes);
    w.u64(stats_.burst_failures);
}

void
FaultInjector::load(SnapshotReader &r)
{
    r.expectSection(kFaultTag, "FaultInjector");
    cfg_.seed = r.u64();
    cfg_.drop_rate = r.f64();
    cfg_.corrupt_rate = r.f64();
    cfg_.spike_rate = r.f64();
    cfg_.base_latency_us = r.u32();
    cfg_.spike_latency_us = r.u32();
    cfg_.burst_period = r.u32();
    cfg_.burst_length = r.u32();
    uint64_t state[4];
    for (auto &word : state)
        word = r.u64();
    rng_.loadState(state);
    seq_ = r.u64();
    stats_.attempts = r.u64();
    stats_.drops = r.u64();
    stats_.corruptions = r.u64();
    stats_.spikes = r.u64();
    stats_.burst_failures = r.u64();
}

} // namespace mltc
