#include "host/retry_policy.hpp"

namespace mltc {

uint32_t
RetryPolicy::backoffAfter(uint32_t attempt) const
{
    double backoff = cfg_.base_backoff_us;
    for (uint32_t i = 1; i < attempt; ++i) {
        backoff *= cfg_.backoff_multiplier;
        if (backoff >= cfg_.max_backoff_us)
            return cfg_.max_backoff_us;
    }
    if (backoff >= cfg_.max_backoff_us)
        return cfg_.max_backoff_us;
    return static_cast<uint32_t>(backoff);
}

} // namespace mltc
