/**
 * @file
 * Deterministic fault injection for the host-memory download path.
 *
 * The paper's L2 architecture makes host memory over AGP the backing
 * store for all texture data; a production system has to survive that
 * channel stalling, dropping or corrupting transfers (cf. virtual
 * texturing systems, which degrade to coarser resident MIP levels).
 * The injector adjudicates every transfer *attempt* from a seeded PRNG
 * plus a deterministic burst-outage schedule, so a fault scenario is a
 * pure function of (seed, attempt ordinal) and any run can be replayed
 * bit-identically.
 */
#ifndef MLTC_HOST_FAULT_INJECTOR_HPP
#define MLTC_HOST_FAULT_INJECTOR_HPP

#include <cstdint>

#include "util/rng.hpp"
#include "util/serializer.hpp"

namespace mltc {

/** What the injector decrees for one transfer attempt. */
enum class FaultKind : uint8_t
{
    None,        ///< transfer succeeds at base latency
    Drop,        ///< transient failure, nothing crosses the bus
    Corrupt,     ///< bytes cross the bus but fail the integrity check
    LatencySpike,///< transfer succeeds but far over base latency
    BurstOutage, ///< scheduled outage window: behaves like Drop
};

/** Stable name of @p kind for logs and CSVs. */
const char *faultKindName(FaultKind kind);

/** A seeded fault scenario. All-zero rates model a perfect channel. */
struct FaultConfig
{
    uint64_t seed = 42;       ///< PRNG seed; same seed => same scenario
    double drop_rate = 0.0;   ///< P(attempt is dropped)
    double corrupt_rate = 0.0;///< P(attempt delivers corrupted bytes)
    double spike_rate = 0.0;  ///< P(attempt suffers a latency spike)
    uint32_t base_latency_us = 10;   ///< nominal sector transfer latency
    uint32_t spike_latency_us = 400; ///< latency under a spike
    /**
     * Burst outages: within every window of @c burst_period attempts the
     * last @c burst_length attempts fail outright. 0 disables bursts.
     */
    uint32_t burst_period = 0;
    uint32_t burst_length = 0;

    /** True when any fault source is active. */
    bool
    anyFaults() const
    {
        return drop_rate > 0.0 || corrupt_rate > 0.0 || spike_rate > 0.0 ||
               (burst_period > 0 && burst_length > 0);
    }
};

/** Verdict for one attempt. */
struct FaultDecision
{
    FaultKind kind = FaultKind::None;
    uint32_t latency_us = 0; ///< simulated latency of the attempt
};

/** Cumulative injector counters (per simulator, across frames). */
struct FaultStats
{
    uint64_t attempts = 0;
    uint64_t drops = 0;
    uint64_t corruptions = 0;
    uint64_t spikes = 0;
    uint64_t burst_failures = 0;
};

/**
 * The injector proper. Single-threaded, like the simulator that owns
 * it: determinism follows from the stable attempt order.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /** Adjudicate the next transfer attempt. */
    FaultDecision decide();

    /**
     * Replace the scenario: reseeds the PRNG and restarts the attempt
     * ordinal (a fresh scenario, not a continuation). Stats are kept.
     */
    void reconfigure(const FaultConfig &config);

    const FaultConfig &config() const { return cfg_; }
    const FaultStats &stats() const { return stats_; }

    /** Attempts adjudicated since the last (re)configure. */
    uint64_t attempts() const { return seq_; }

    /**
     * Serialize scenario config, PRNG state, attempt ordinal and
     * counters; load() resumes the fault stream bit-identically.
     */
    void save(SnapshotWriter &w) const;

    /** Restore state captured by save() (config included). */
    void load(SnapshotReader &r);

  private:
    FaultConfig cfg_;
    Rng rng_;
    uint64_t seq_ = 0;
    FaultStats stats_;
};

} // namespace mltc

#endif // MLTC_HOST_FAULT_INJECTOR_HPP
