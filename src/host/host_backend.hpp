/**
 * @file
 * The host-memory download path as an explicit, fallible subsystem.
 *
 * The seed simulator modelled every host download as an infallible byte
 * counter. Here each sector download is a request against a
 * HostMemoryBackend that can succeed, be delayed past its timeout, fail
 * transiently, or deliver corrupted bytes. HostFetchPath wraps a backend
 * with the retry/backoff policy and per-request timeout budget; when
 * retries are exhausted it reports a typed Error and the cache
 * controller degrades gracefully (re-issuing the access against a
 * coarser resident MIP level) instead of crashing or miscounting.
 */
#ifndef MLTC_HOST_HOST_BACKEND_HPP
#define MLTC_HOST_HOST_BACKEND_HPP

#include <cstdint>
#include <memory>

#include "host/fault_injector.hpp"
#include "host/retry_policy.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"

namespace mltc {

/** One sector download request. */
struct HostRequest
{
    uint32_t t_index = 0; ///< page-table index, for diagnostics (0 = pull)
    uint64_t bytes = 0;   ///< payload size at the texture's host depth
};

/** Outcome of a single transfer attempt. */
enum class HostTransferStatus : uint8_t
{
    Ok,      ///< payload delivered intact
    Dropped, ///< transient failure, nothing delivered
    Corrupt, ///< payload delivered but failed the integrity check
};

/** One transfer attempt's result. */
struct HostTransfer
{
    HostTransferStatus status = HostTransferStatus::Ok;
    uint32_t latency_us = 0;

    /** Whether bytes crossed the bus (even if discarded afterwards). */
    bool
    movedBytes() const
    {
        return status != HostTransferStatus::Dropped;
    }
};

/** Abstract host-memory channel: one sector transfer attempt at a time. */
class HostMemoryBackend
{
  public:
    virtual ~HostMemoryBackend() = default;

    /** Attempt one sector transfer. */
    virtual HostTransfer transfer(const HostRequest &request) = 0;
};

/** Infallible channel: the seed simulator's implicit model. */
class ReliableHostBackend final : public HostMemoryBackend
{
  public:
    explicit ReliableHostBackend(uint32_t latency_us = 10)
        : latency_us_(latency_us)
    {
    }

    HostTransfer
    transfer(const HostRequest &) override
    {
        return {HostTransferStatus::Ok, latency_us_};
    }

  private:
    uint32_t latency_us_;
};

/** Channel whose attempts are adjudicated by a FaultInjector. */
class FaultyHostBackend final : public HostMemoryBackend
{
  public:
    explicit FaultyHostBackend(const FaultConfig &faults)
        : injector_(faults)
    {
    }

    HostTransfer transfer(const HostRequest &request) override;

    FaultInjector &injector() { return injector_; }
    const FaultInjector &injector() const { return injector_; }

  private:
    FaultInjector injector_;
};

/** Final verdict of one retried host fetch. */
struct HostFetchResult
{
    bool success = false;
    uint32_t attempts = 0;          ///< transfer attempts made (>= 1)
    uint32_t retries = 0;           ///< attempts beyond the first
    uint32_t corrupt_transfers = 0; ///< attempts that moved garbage bytes
    uint64_t elapsed_us = 0;        ///< simulated transfer + backoff time
    Error error;                    ///< set when !success
};

/** Cumulative fetch-path counters (per simulator, across frames). */
struct HostPathStats
{
    uint64_t requests = 0;
    uint64_t attempts = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;       ///< attempts abandoned past the timeout
    uint64_t failures = 0;       ///< requests that exhausted retries
    uint64_t elapsed_us = 0;     ///< total simulated stall time
};

/**
 * Everything CacheSim needs to turn on the fallible host path. With
 * fault_injection false the simulator keeps the seed's infallible byte
 * counter and is bit-identical to it.
 */
struct HostPathConfig
{
    bool fault_injection = false;
    FaultConfig faults;
    RetryConfig retry;
};

/**
 * The executor: drives a backend under the retry policy. Attempts whose
 * latency exceeds the per-attempt timeout are abandoned (retryable);
 * corrupted payloads are detected and refetched; retries stop when the
 * attempt count or the request's time budget runs out.
 */
class HostFetchPath
{
  public:
    HostFetchPath(std::unique_ptr<HostMemoryBackend> backend,
                  const RetryConfig &retry);

    /** Perform one sector download with retries. Never throws. */
    HostFetchResult fetch(const HostRequest &request);

    HostMemoryBackend &backend() { return *backend_; }
    const RetryPolicy &policy() const { return policy_; }
    const HostPathStats &stats() const { return stats_; }

    /**
     * Distribution of per-fetch simulated latency (transfer + backoff
     * µs, one sample per fetch, failures included). Serialized with the
     * path so resumed distributions match straight runs.
     */
    const Histogram &latencyHistogram() const { return latency_hist_; }

    /** Serialize the cumulative fetch-path counters. */
    void save(SnapshotWriter &w) const;

    /** Restore counters captured by save(). */
    void load(SnapshotReader &r);

  private:
    std::unique_ptr<HostMemoryBackend> backend_;
    RetryPolicy policy_;
    HostPathStats stats_;
    Histogram latency_hist_{4096}; ///< per-fetch simulated µs
};

} // namespace mltc

#endif // MLTC_HOST_HOST_BACKEND_HPP
