#include "host/host_cli.hpp"

namespace mltc {

HostPathConfig
hostPathFromCli(const CommandLine &cli)
{
    HostPathConfig host;
    host.faults.seed =
        static_cast<uint64_t>(cli.getInt("fault-seed", 42));
    host.faults.drop_rate = cli.getDouble("fault-drop", 0.0);
    host.faults.corrupt_rate = cli.getDouble("fault-corrupt", 0.0);
    host.faults.spike_rate = cli.getDouble("fault-spike", 0.0);
    host.faults.burst_period =
        static_cast<uint32_t>(cli.getInt("fault-burst-period", 0));
    host.faults.burst_length =
        static_cast<uint32_t>(cli.getInt("fault-burst-len", 0));
    host.retry.max_attempts = static_cast<uint32_t>(
        cli.getInt("retry-max", host.retry.max_attempts));
    host.retry.base_backoff_us = static_cast<uint32_t>(
        cli.getInt("retry-backoff-us", host.retry.base_backoff_us));
    host.retry.request_budget_us = static_cast<uint32_t>(
        cli.getInt("retry-budget-us", host.retry.request_budget_us));
    host.fault_injection =
        cli.getFlag("faults") || cli.has("fault-seed") ||
        cli.has("fault-drop") || cli.has("fault-corrupt") ||
        cli.has("fault-spike") || cli.has("fault-burst-period") ||
        cli.has("fault-burst-len");
    return host;
}

} // namespace mltc
