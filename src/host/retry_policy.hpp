/**
 * @file
 * Bounded-exponential-backoff retry policy for host sector downloads.
 *
 * Pure policy: given an attempt ordinal it yields the backoff to wait
 * before the next attempt, and given elapsed simulated time it says
 * whether another attempt still fits the per-request budget. The
 * executor that applies it lives in host_backend.hpp (HostFetchPath).
 */
#ifndef MLTC_HOST_RETRY_POLICY_HPP
#define MLTC_HOST_RETRY_POLICY_HPP

#include <cstdint>

namespace mltc {

/** Retry/backoff/timeout knobs for one host fetch. */
struct RetryConfig
{
    uint32_t max_attempts = 4;      ///< total attempts, first included
    uint32_t base_backoff_us = 20;  ///< backoff before the 2nd attempt
    double backoff_multiplier = 2.0;///< growth factor per further attempt
    uint32_t max_backoff_us = 1000; ///< backoff cap (bounded exponential)
    /**
     * An attempt whose simulated latency exceeds this is abandoned and
     * treated as a timeout (retryable).
     */
    uint32_t attempt_timeout_us = 200;
    /**
     * Total simulated time budget (transfers + backoffs) for one
     * request; once exceeded, no further attempts are made.
     */
    uint32_t request_budget_us = 5000;
};

/** Deterministic backoff schedule over a RetryConfig. */
class RetryPolicy
{
  public:
    explicit RetryPolicy(const RetryConfig &config) : cfg_(config) {}

    const RetryConfig &config() const { return cfg_; }

    /**
     * Backoff in microseconds after failed attempt number @p attempt
     * (1-based): base * multiplier^(attempt-1), capped at max_backoff_us.
     */
    uint32_t backoffAfter(uint32_t attempt) const;

    /** True when attempt number @p next_attempt (1-based) may run. */
    bool
    attemptAllowed(uint32_t next_attempt, uint64_t elapsed_us) const
    {
        return next_attempt <= cfg_.max_attempts &&
               elapsed_us < cfg_.request_budget_us;
    }

  private:
    RetryConfig cfg_;
};

} // namespace mltc

#endif // MLTC_HOST_RETRY_POLICY_HPP
