/**
 * @file
 * Per-stream host-bandwidth governor for multi-tenant serving.
 *
 * Each tenant stream gets a host-download budget per round (one frame
 * per stream). A stream that overruns its budget is degraded gracefully
 * instead of stalled: the governor raises the stream's LOD bias by one
 * MIP level, which the multi-stream runner applies during access
 * replay (coarser MIP levels touch quadratically fewer texels, so
 * download traffic collapses fast). Recovery is hysteretic — the bias
 * only steps back down after the stream has spent two consecutive
 * rounds under *half* its budget — so a stream oscillating around the
 * budget line does not flap between quality levels.
 *
 * The governor is deterministic simulator state: it is serialized into
 * checkpoints so a resumed run replays the same bias schedule.
 */
#ifndef MLTC_HOST_BANDWIDTH_HPP
#define MLTC_HOST_BANDWIDTH_HPP

#include <cstdint>
#include <vector>

namespace mltc {

class SnapshotWriter;
class SnapshotReader;

/** Governor knobs (shared by every stream). */
struct BandwidthGovernorConfig
{
    /** Host-download budget per stream per round; 0 = unlimited. */
    uint64_t budget_bytes_per_round = 0;
    /** Largest LOD bias the governor will impose. */
    uint32_t max_bias = 4;
};

/** Tracks per-stream download traffic and assigns LOD biases. */
class BandwidthGovernor
{
  public:
    BandwidthGovernor(uint32_t streams, const BandwidthGovernorConfig &config);

    const BandwidthGovernorConfig &config() const { return cfg_; }

    uint32_t streamCount() const { return static_cast<uint32_t>(bias_.size()); }

    /** Current LOD bias for @p stream (0 = full quality). */
    uint32_t bias(uint32_t stream) const { return bias_[stream]; }

    /** Cumulative host bytes observed for @p stream. */
    uint64_t totalBytes(uint32_t stream) const { return total_bytes_[stream]; }

    /** Rounds @p stream spent over budget (shedding pressure). */
    uint32_t overBudgetRounds(uint32_t stream) const
    {
        return over_rounds_[stream];
    }

    /**
     * Feed one round's host download volume for @p stream and apply
     * the hysteresis rule. Returns the bias to use for the *next*
     * round.
     */
    uint32_t observe(uint32_t stream, uint64_t bytes);

    void save(SnapshotWriter &w) const;

    /**
     * Restore state captured by save().
     * @throws mltc::Exception (VersionMismatch) on stream-count or
     *         budget skew, (Corrupt) on inconsistent content.
     */
    void load(SnapshotReader &r);

  private:
    BandwidthGovernorConfig cfg_;
    std::vector<uint32_t> bias_;        ///< current LOD bias per stream
    std::vector<uint32_t> calm_streak_; ///< consecutive rounds under budget/2
    std::vector<uint32_t> over_rounds_; ///< total rounds spent over budget
    std::vector<uint64_t> total_bytes_; ///< cumulative host bytes
};

} // namespace mltc

#endif // MLTC_HOST_BANDWIDTH_HPP
