/**
 * @file
 * One-pass multi-configuration simulation.
 *
 * Rasterization dominates runtime, so each frame's access stream is
 * generated once and fanned out to every registered consumer: cache
 * simulators (CacheSim and friends), the working-set statistics
 * collector and the push-architecture model. This is how all the
 * parameter sweeps (Figures 9/10, Tables 2/3/5-8) are produced.
 */
#ifndef MLTC_SIM_MULTI_CONFIG_RUNNER_HPP
#define MLTC_SIM_MULTI_CONFIG_RUNNER_HPP

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cache_sim.hpp"
#include "core/push_model.hpp"
#include "obs/observability.hpp"
#include "sim/animation_driver.hpp"
#include "sim/resilience.hpp"
#include "trace/working_set_collector.hpp"
#include "util/error.hpp"

namespace mltc {

/** Everything measured for one frame across all registered consumers. */
struct FrameRow
{
    int frame = 0;
    FrameStats raster;                    ///< pipeline counters
    std::vector<CacheFrameStats> sims;    ///< one per registered CacheSim
    std::optional<FrameWorkingSet> working_sets;
    uint64_t push_bytes = 0;              ///< oracle push memory (if enabled)
};

/** Per-frame observer; also receives the row after it is stored. */
using RowCallback = std::function<void(const FrameRow &)>;

/** How a supervised run ended. */
enum class RunOutcome : uint8_t
{
    Completed,        ///< every frame rendered
    Cancelled,        ///< SIGINT/SIGTERM (checkpointed at the boundary)
    DeadlineExceeded, ///< a frame overran --deadline-ms
    BudgetExhausted,  ///< the run overran --budget-ms
};

/** Stable name of @p outcome for the manifest. */
const char *runOutcomeName(RunOutcome outcome);

/** Per-simulator record in the run manifest. */
struct SimManifestEntry
{
    std::string label;
    bool quarantined = false;      ///< threw and was isolated
    int quarantined_at_frame = -1; ///< frame of the first throw
    Error error;                   ///< what it threw
    uint32_t restart_failures = 0; ///< consecutive failures at run end
};

/**
 * Per-simulator quarantine + crash-loop state, carried across
 * checkpoint/resume so a resumed run continues the same backoff ladder.
 */
struct SimQuarantine
{
    bool dead = false;        ///< not consuming accesses
    int at_frame = -1;        ///< frame of the most recent failure
    Error error;              ///< what it threw most recently
    uint32_t failures = 0;    ///< consecutive failures (clean frame resets)
    int revive_at_frame = -1; ///< scheduled restart frame (-1 = none)
};

/**
 * Result of a supervised run: how it ended, how far it got, and the
 * status of every registered simulator. Written next to the checkpoint
 * as `<checkpoint>.manifest` (CSV).
 */
struct RunManifest
{
    RunOutcome outcome = RunOutcome::Completed;
    int frames_completed = 0;  ///< rows harvested over the run's lifetime
    int next_frame = 0;        ///< where a resume would continue
    std::string checkpoint;    ///< final checkpoint path ("" if none)
    int checkpoint_write_failures = 0; ///< commits skipped on I/O failure
    std::vector<SimManifestEntry> sims;

    /** Number of quarantined simulators. */
    size_t quarantinedCount() const;
};

/** Owns the consumers and runs the animation once. */
class MultiConfigRunner
{
  public:
    /**
     * @param workload the scene/animation to drive (must outlive the
     *        runner; its TextureManager is shared by all consumers)
     * @param config frame count, filter, resolution
     */
    MultiConfigRunner(Workload &workload, const DriverConfig &config);

    /** Register a cache simulator; returned reference stays valid. */
    CacheSim &addSim(const CacheSimConfig &config, std::string label);

    /** Register the working-set statistics collector (at most one). */
    WorkingSetCollector &addWorkingSets(std::vector<uint32_t> l2_tiles,
                                        std::vector<uint32_t> l1_tiles);

    /** Register the push-architecture oracle model (at most one). */
    PushArchitectureModel &addPushModel();

    /**
     * Attach an extra raw sink (e.g. SetAssocL2Sim); the caller handles
     * its frame boundaries via the row callback.
     */
    void addExtraSink(TexelAccessSink *sink);

    /**
     * Attach per-run observability (not owned; may be null to detach).
     * At every frame boundary the runner re-derives the registry's
     * counters/gauges from the simulators' cumulative totals, appends
     * one JSONL snapshot row, and emits per-simulator trace counter
     * tracks (L1/L2/TLB miss rates, AGP bytes). Metric state is derived,
     * never fed back, so attaching observability cannot change a single
     * simulated counter or checkpoint byte.
     */
    void setObservability(Observability *obs) { obs_ = obs; }

    /** Run the animation; rows accumulate and @p cb fires per frame. */
    void run(const RowCallback &cb = {});

    /**
     * Run under watchdog supervision: periodic crash-safe checkpoints,
     * resume, invariant audits at frame boundaries, per-sim quarantine
     * of throwing configurations, per-frame deadline / wall-clock
     * budget, and cooperative SIGINT/SIGTERM cancellation (install the
     * handlers with installCancellationHandlers()). With a default
     * ResilienceConfig this renders exactly what run() renders.
     *
     * A quarantined simulator stops consuming accesses; its partial
     * stats stay in the rows (zero deltas after the throwing frame) and
     * its error is recorded in the returned manifest while the
     * remaining configurations finish. The manifest is also written as
     * CSV to `<checkpoint>.manifest` when checkpointing is enabled.
     *
     * With rc.restart_limit > 0 a quarantined simulator is revived
     * (audit-gated, state intact) at an exponentially backed-off later
     * frame, at most restart_limit consecutive times — a crash-looping
     * configuration stays quarantined instead of burning the run's
     * budget. A clean frame resets the consecutive-failure count.
     */
    RunManifest runSupervised(const ResilienceConfig &rc,
                              const RowCallback &cb = {});

    /**
     * Write a crash-safe snapshot of the full runner state (every
     * simulator, working sets, push model, accumulated rows, quarantine
     * records) such that loadCheckpoint() + finishing the run equals an
     * uninterrupted run byte-for-byte.
     * @param next_frame the first frame a resume should render
     */
    void saveCheckpoint(const std::string &path, int next_frame) const;

    /**
     * Restore state written by saveCheckpoint() into an identically
     * configured runner (same sims in the same order, same labels, same
     * collectors).
     * @return the first frame to render
     * @throws mltc::Exception — VersionMismatch on configuration skew,
     *         Truncated/BadMagic/Corrupt on damaged snapshots.
     */
    int loadCheckpoint(const std::string &path);

    /** All rows from the last run(). */
    const std::vector<FrameRow> &rows() const { return rows_; }

    /** Registered simulators, in registration order. */
    const std::vector<std::unique_ptr<CacheSim>> &sims() const
    {
        return sims_;
    }

    /**
     * Average per-frame host download bytes for simulator @p idx over
     * the last run.
     */
    double averageHostBytesPerFrame(size_t idx) const;

  private:
    /** Harvest one frame boundary into rows_ (shared by run paths). */
    void harvestRow(int frame, const FrameStats &fs, const RowCallback &cb);

    /** Derive metrics + trace counter tracks from the finished row. */
    void publishFrame(const FrameRow &row);

    /** Write the manifest CSV next to the checkpoint. */
    void writeManifest(const RunManifest &manifest) const;

    Workload &workload_;
    DriverConfig config_;
    std::vector<std::unique_ptr<CacheSim>> sims_;
    std::unique_ptr<WorkingSetCollector> working_sets_;
    std::unique_ptr<PushArchitectureModel> push_;
    std::vector<TexelAccessSink *> extra_sinks_;
    Observability *obs_ = nullptr; ///< not owned; null = no observability
    std::vector<FrameRow> rows_;
    std::vector<SimQuarantine> quarantine_; ///< parallel to sims_ (may be empty)
};

} // namespace mltc

#endif // MLTC_SIM_MULTI_CONFIG_RUNNER_HPP
