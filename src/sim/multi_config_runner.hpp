/**
 * @file
 * One-pass multi-configuration simulation.
 *
 * Rasterization dominates runtime, so each frame's access stream is
 * generated once and fanned out to every registered consumer: cache
 * simulators (CacheSim and friends), the working-set statistics
 * collector and the push-architecture model. This is how all the
 * parameter sweeps (Figures 9/10, Tables 2/3/5-8) are produced.
 */
#ifndef MLTC_SIM_MULTI_CONFIG_RUNNER_HPP
#define MLTC_SIM_MULTI_CONFIG_RUNNER_HPP

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/cache_sim.hpp"
#include "core/push_model.hpp"
#include "sim/animation_driver.hpp"
#include "trace/working_set_collector.hpp"

namespace mltc {

/** Everything measured for one frame across all registered consumers. */
struct FrameRow
{
    int frame = 0;
    FrameStats raster;                    ///< pipeline counters
    std::vector<CacheFrameStats> sims;    ///< one per registered CacheSim
    std::optional<FrameWorkingSet> working_sets;
    uint64_t push_bytes = 0;              ///< oracle push memory (if enabled)
};

/** Per-frame observer; also receives the row after it is stored. */
using RowCallback = std::function<void(const FrameRow &)>;

/** Owns the consumers and runs the animation once. */
class MultiConfigRunner
{
  public:
    /**
     * @param workload the scene/animation to drive (must outlive the
     *        runner; its TextureManager is shared by all consumers)
     * @param config frame count, filter, resolution
     */
    MultiConfigRunner(Workload &workload, const DriverConfig &config);

    /** Register a cache simulator; returned reference stays valid. */
    CacheSim &addSim(const CacheSimConfig &config, std::string label);

    /** Register the working-set statistics collector (at most one). */
    WorkingSetCollector &addWorkingSets(std::vector<uint32_t> l2_tiles,
                                        std::vector<uint32_t> l1_tiles);

    /** Register the push-architecture oracle model (at most one). */
    PushArchitectureModel &addPushModel();

    /**
     * Attach an extra raw sink (e.g. SetAssocL2Sim); the caller handles
     * its frame boundaries via the row callback.
     */
    void addExtraSink(TexelAccessSink *sink);

    /** Run the animation; rows accumulate and @p cb fires per frame. */
    void run(const RowCallback &cb = {});

    /** All rows from the last run(). */
    const std::vector<FrameRow> &rows() const { return rows_; }

    /** Registered simulators, in registration order. */
    const std::vector<std::unique_ptr<CacheSim>> &sims() const
    {
        return sims_;
    }

    /**
     * Average per-frame host download bytes for simulator @p idx over
     * the last run.
     */
    double averageHostBytesPerFrame(size_t idx) const;

  private:
    Workload &workload_;
    DriverConfig config_;
    std::vector<std::unique_ptr<CacheSim>> sims_;
    std::unique_ptr<WorkingSetCollector> working_sets_;
    std::unique_ptr<PushArchitectureModel> push_;
    std::vector<TexelAccessSink *> extra_sinks_;
    std::vector<FrameRow> rows_;
};

} // namespace mltc

#endif // MLTC_SIM_MULTI_CONFIG_RUNNER_HPP
