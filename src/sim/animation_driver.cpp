#include "sim/animation_driver.hpp"

namespace mltc {

FrameStats
runAnimationRange(const Workload &workload, const DriverConfig &config,
                  TexelAccessSink *sink, int start_frame,
                  const FrameCallback &per_frame, const FrameGate &gate)
{
    Rasterizer raster(config.width, config.height);
    raster.setFilter(config.filter);
    raster.setSink(sink);
    raster.setZPrepass(config.z_prepass);

    const int frames =
        config.frames > 0 ? config.frames : workload.default_frames;
    const float aspect = static_cast<float>(config.width) /
                         static_cast<float>(config.height);

    FrameStats total;
    for (int f = start_frame; f < frames; ++f) {
        if (gate && !gate(f))
            break;
        Camera cam = workload.cameraAtFrame(f, frames, aspect);
        FrameStats fs = raster.renderFrame(workload.scene, cam,
                                           *workload.textures);
        total.objects_visible += fs.objects_visible;
        total.triangles_in += fs.triangles_in;
        total.triangles_drawn += fs.triangles_drawn;
        total.pixels_textured += fs.pixels_textured;
        total.texel_accesses += fs.texel_accesses;
        if (per_frame)
            per_frame(f, fs);
    }
    return total;
}

FrameStats
runAnimation(const Workload &workload, const DriverConfig &config,
             TexelAccessSink *sink, const FrameCallback &per_frame)
{
    return runAnimationRange(workload, config, sink, 0, per_frame, {});
}

} // namespace mltc
