#include "sim/parallel_runner.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "obs/profiler.hpp"
#include "obs/telemetry_server.hpp"
#include "sim/resilience.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace mltc {

const char *
legOutcomeName(LegOutcome outcome)
{
    switch (outcome) {
    case LegOutcome::Completed:
        return "completed";
    case LegOutcome::Failed:
        return "failed";
    case LegOutcome::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

bool
SweepManifest::allCompleted() const
{
    for (const LegResult &leg : legs)
        if (leg.outcome != LegOutcome::Completed)
            return false;
    return !legs.empty();
}

void
SweepManifest::writeCsv(const std::string &path) const
{
    CsvWriter csv(path, {"leg", "name", "outcome", "error"});
    for (size_t i = 0; i < legs.size(); ++i)
        csv.rowStrings({std::to_string(i), legs[i].name,
                        legOutcomeName(legs[i].outcome), legs[i].error});
    csv.close();
}

void
LegContext::printf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n > 0) {
        size_t old = out_.size();
        out_.resize(old + static_cast<size_t>(n) + 1);
        std::vsnprintf(out_.data() + old, static_cast<size_t>(n) + 1, fmt,
                       args);
        out_.resize(old + static_cast<size_t>(n));
    }
    va_end(args);
}

SweepExecutor::SweepExecutor(unsigned jobs)
    : jobs_(jobs == 0 ? ThreadPool::defaultJobs() : jobs)
{
}

void
SweepExecutor::addLeg(std::string name,
                      std::function<void(LegContext &)> body)
{
    legs_.push_back({std::move(name), std::move(body)});
}

namespace {

void
runOneLeg(const std::function<void(LegContext &)> &body, LegContext &ctx,
          LegResult &result)
{
    result.name = ctx.name();
    if (cancellationRequested()) {
        result.outcome = LegOutcome::Cancelled;
        return;
    }
    auto t0 = std::chrono::steady_clock::now();
    try {
        // Every sample taken while this worker runs the leg carries a
        // "leg:<name>" root frame; hardware counters (when available)
        // bracket the whole leg body.
        ScopedProfileStage leg_prof(
            profileInternAnnotation("leg:" + ctx.name()),
            /*with_counters=*/true);
        body(ctx);
        result.outcome = LegOutcome::Completed;
    } catch (const std::exception &e) {
        result.outcome = LegOutcome::Failed;
        result.error = e.what();
    } catch (...) {
        result.outcome = LegOutcome::Failed;
        result.error = "unknown exception";
    }
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
}

void
flushLeg(const LegContext &ctx)
{
    const std::string &text = ctx.buffered();
    if (!text.empty()) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fflush(stdout);
    }
}

} // namespace

void
SweepExecutor::publishLegStatus(
    const std::vector<const char *> &status) const
{
    if (!telemetry_)
        return;
    JsonWriter w;
    w.beginObject();
    w.kv("mode", "sweep");
    w.kv("jobs", static_cast<uint64_t>(jobs_));
    w.key("legs");
    w.beginArray();
    for (size_t i = 0; i < legs_.size(); ++i) {
        w.beginObject();
        w.kv("index", static_cast<uint64_t>(i));
        w.kv("name", legs_[i].name);
        w.kv("status", status[i]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    telemetry_->publishRunz(w.str());
}

SweepManifest
SweepExecutor::run()
{
    const size_t n = legs_.size();
    SweepManifest manifest;
    manifest.legs.resize(n);

    std::vector<LegContext> ctxs;
    ctxs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ctxs.emplace_back(i, legs_[i].name);

    if (jobs_ <= 1 || n <= 1) {
        // Serial: bit-for-bit the pre-parallel program, including the
        // point in time at which each leg's output reaches stdout.
        std::vector<const char *> status(n, "pending");
        publishLegStatus(status);
        for (size_t i = 0; i < n; ++i) {
            status[i] = "running";
            publishLegStatus(status);
            runOneLeg(legs_[i].body, ctxs[i], manifest.legs[i]);
            status[i] = legOutcomeName(manifest.legs[i].outcome);
            publishLegStatus(status);
            flushLeg(ctxs[i]);
        }
        return manifest;
    }

    std::mutex mutex;
    std::condition_variable cv;
    std::vector<char> done(n, 0);
    std::vector<const char *> status(n, "pending");
    publishLegStatus(status);

    {
        ThreadPool pool(jobs_);
        for (size_t i = 0; i < n; ++i) {
            pool.submit([this, i, &ctxs, &manifest, &mutex, &cv, &done,
                         &status]() {
                {
                    // Status snapshots are taken under the same mutex
                    // the flags mutate under, so /runz never shows a
                    // torn view.
                    std::lock_guard<std::mutex> lock(mutex);
                    status[i] = "running";
                    publishLegStatus(status);
                }
                runOneLeg(legs_[i].body, ctxs[i], manifest.legs[i]);
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    done[i] = 1;
                    status[i] = legOutcomeName(manifest.legs[i].outcome);
                    publishLegStatus(status);
                }
                cv.notify_all();
            });
        }
        // Stream buffers in registration order: leg i prints as soon as
        // it and all earlier legs finished, however the pool scheduled
        // them.
        for (size_t i = 0; i < n; ++i) {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&done, i]() { return done[i] != 0; });
            lock.unlock();
            flushLeg(ctxs[i]);
        }
    } // drain + join
    return manifest;
}

unsigned
jobsFromCli(const CommandLine &cli)
{
    unsigned long jobs = cli.getUnsigned("jobs", 0);
    if (jobs > 1024)
        throw Exception(ErrorCode::BadArgument,
                        "--jobs: implausible worker count");
    if (jobs == 0)
        return ThreadPool::defaultJobs();
    return static_cast<unsigned>(jobs);
}

} // namespace mltc
