/**
 * @file
 * Drives a workload's scripted animation through the rasterizer frame by
 * frame, streaming texel accesses into an attached sink.
 */
#ifndef MLTC_SIM_ANIMATION_DRIVER_HPP
#define MLTC_SIM_ANIMATION_DRIVER_HPP

#include <functional>

#include "raster/rasterizer.hpp"
#include "workload/workload.hpp"

namespace mltc {

/** Animation run parameters. The paper renders at 1024x768. */
struct DriverConfig
{
    int width = 1024;
    int height = 768;
    FilterMode filter = FilterMode::Trilinear;
    int frames = 0; ///< 0 = the workload's default animation length
    bool z_prepass = false; ///< §6 future-work extension
};

/** Called after each frame with the frame index and raster counters. */
using FrameCallback = std::function<void(int frame, const FrameStats &)>;

/** Called before each frame; return false to stop the run early. */
using FrameGate = std::function<bool(int frame)>;

/**
 * Render @p config.frames frames of @p workload, streaming accesses to
 * @p sink (may be null for a pure render).
 * @return aggregate raster stats summed over all frames.
 */
FrameStats runAnimation(const Workload &workload, const DriverConfig &config,
                        TexelAccessSink *sink,
                        const FrameCallback &per_frame = {});

/**
 * Like runAnimation() but starting at frame @p start_frame (each frame
 * is a pure function of its index, so a resumed run renders the exact
 * frames a straight run would) and consulting @p gate before each frame
 * for cooperative cancellation / watchdog stops.
 * @return aggregate raster stats over the frames actually rendered.
 */
FrameStats runAnimationRange(const Workload &workload,
                             const DriverConfig &config,
                             TexelAccessSink *sink, int start_frame,
                             const FrameCallback &per_frame = {},
                             const FrameGate &gate = {});

} // namespace mltc

#endif // MLTC_SIM_ANIMATION_DRIVER_HPP
