#include "sim/multi_stream_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <thread>

#include "core/audit.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/trace_event.hpp"
#include "raster/rasterizer.hpp"
#include "sim/parallel_runner.hpp"
#include "texture/mip_pyramid.hpp"
#include "texture/procedural.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/serializer.hpp"
#include "workload/registry.hpp"

namespace mltc {

namespace {

constexpr uint32_t kMsTag = snapTag("MST ");

/** Max refs buffered per accessBatch() call during batched replay. */
constexpr size_t kReplayBatchCap = 4096;

/** Buffers the rasterizer's texel stream as RecordedOps. */
class RecordingSink final : public TexelAccessSink
{
  public:
    explicit RecordingSink(std::vector<RecordedOp> &out) : out_(out) {}

    void
    bindTexture(TextureId tid) override
    {
        out_.push_back({tid, 0, 0, 0, 0, 0});
    }

    void
    beginPixel(uint32_t px, uint32_t py) override
    {
        out_.push_back({px, py, 0, 0, 1, 0});
    }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        out_.push_back({x, y, 0, 0, 2, static_cast<uint8_t>(mip)});
    }

    void
    accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
               uint32_t mip) override
    {
        out_.push_back({x0, y0, x1, y1, 3, static_cast<uint8_t>(mip)});
    }

  private:
    std::vector<RecordedOp> &out_;
};

/** Smallest power of two >= @p v. */
uint32_t
pow2Ceil(uint32_t v)
{
    uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Remap a recorded texel coordinate one or more MIP levels coarser
 * (the governor's LOD bias). Exact: clamps to the biased level's
 * extent so non-square pyramids stay in range.
 */
void
biasCoord(const MipPyramid &pyr, uint32_t bias, uint32_t &x, uint32_t &y,
          uint32_t &mip)
{
    const uint32_t m =
        std::min(mip + bias, pyr.levels() > 0 ? pyr.levels() - 1 : 0u);
    const uint32_t shift = m - mip;
    const Image &lvl = pyr.level(m);
    x = std::min(x >> shift, lvl.width() - 1);
    y = std::min(y >> shift, lvl.height() - 1);
    mip = m;
}

/** SLO metric names the multi-stream runner can sample per round. */
constexpr const char *kSloMetrics[] = {
    "stream.miss_rate.l1", "stream.miss_rate.l2", "stream.host_mb",
    "stream.lod_bias"};

bool
isStreamSloMetric(const std::string &name)
{
    for (const char *m : kSloMetrics)
        if (name == m)
            return true;
    return false;
}

/** Sample @p metric from one stream's freshly harvested round row. */
double
sloSample(const std::string &metric, const StreamRoundRow &row)
{
    if (metric == "stream.miss_rate.l1")
        return row.accesses == 0
                   ? 0.0
                   : static_cast<double>(row.l1_misses) /
                         static_cast<double>(row.accesses);
    if (metric == "stream.miss_rate.l2") {
        const uint64_t lookups =
            row.l2_full_hits + row.l2_partial_hits + row.l2_full_misses;
        return lookups == 0 ? 0.0
                            : static_cast<double>(row.l2_full_misses) /
                                  static_cast<double>(lookups);
    }
    if (metric == "stream.host_mb")
        return static_cast<double>(row.host_bytes) / (1024.0 * 1024.0);
    if (metric == "stream.lod_bias")
        return static_cast<double>(row.lod_bias);
    return std::numeric_limits<double>::quiet_NaN();
}

std::string
formatBurn(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

} // namespace

size_t
MultiStreamManifest::quarantinedCount() const
{
    size_t n = 0;
    for (const StreamManifestEntry &s : streams)
        if (s.quarantined)
            ++n;
    return n;
}

MultiStreamRunner::MultiStreamRunner(const MultiStreamConfig &config)
    : cfg_(config),
      governor_(static_cast<uint32_t>(config.streams.size()),
                BandwidthGovernorConfig{config.stream_budget_bytes, 4})
{
    if (cfg_.streams.empty())
        throw std::invalid_argument(
            "MultiStreamRunner: at least one stream is required");
    if (cfg_.rounds == 0)
        throw std::invalid_argument(
            "MultiStreamRunner: at least one round is required");

    streams_.reserve(cfg_.streams.size());
    for (uint32_t i = 0; i < cfg_.streams.size(); ++i)
        buildStream(i, cfg_.streams[i]);

    // The shared L2's page table spans every stream's texture set; it
    // must be built after the last texture is registered.
    std::vector<TextureManager *> managers;
    managers.reserve(streams_.size());
    for (auto &st : streams_)
        managers.push_back(&st->textures());

    L2Config l2cfg;
    l2cfg.size_bytes = cfg_.l2_bytes;
    l2cfg.l2_tile = cfg_.l2_tile;
    l2cfg.l1_tile = cfg_.l1_tile;
    l2_ = std::make_unique<L2TextureCache>(managers, l2cfg, cfg_.share);

    for (uint32_t i = 0; i < streams_.size(); ++i) {
        StreamRuntime &st = *streams_[i];
        CacheSimConfig sc = CacheSimConfig::pull(cfg_.l1_bytes, cfg_.l1_tile);
        sc.classify_misses = cfg_.classify_misses;
        st.sim = std::make_unique<CacheSim>(st.textures(), sc, st.name);
        st.sim->attachSharedL2(l2_.get(), i);
        st.tracker = std::make_unique<ReuseDistanceTracker>(1.0);
        st.sim->setL2BlockTracker(st.tracker.get());
    }

    rows_.resize(streams_.size());
    last_noisy_.assign(streams_.size(), 0);
}

MultiStreamRunner::~MultiStreamRunner() = default;

void
MultiStreamRunner::buildStream(uint32_t index, const StreamSpec &spec)
{
    auto st = std::make_unique<StreamRuntime>();
    st->spec = spec;
    st->name = std::to_string(index) + ":" + spec.workload + "/" +
               filterModeName(spec.filter);

    if (spec.workload == kThrasherWorkload) {
        // A checker texture spanning at least twice the L2 block count
        // so a linear sweep never re-hits before eviction.
        const uint64_t l2_blocks =
            cfg_.l2_bytes / (cfg_.l2_tile * cfg_.l2_tile * 4ull);
        uint64_t edge_blocks = 1;
        while (edge_blocks * edge_blocks < 2 * l2_blocks)
            ++edge_blocks;
        uint32_t side = pow2Ceil(
            static_cast<uint32_t>(edge_blocks) * cfg_.l2_tile);
        side = std::min(side, 4096u);
        st->thrasher_textures = std::make_unique<TextureManager>();
        st->thrasher_tid = st->thrasher_textures->load(
            "thrasher", MipPyramid(makeChecker(side, cfg_.l2_tile,
                                               0xFF808080u, 0xFFC0C0C0u)));
        st->thrasher_grid = side / cfg_.l2_tile;
    } else {
        st->workload = std::make_unique<Workload>(buildWorkload(spec.workload));
    }
    streams_.push_back(std::move(st));
}

void
MultiStreamRunner::recordThrasher(StreamRuntime &st)
{
    // Two L2 capacities' worth of distinct blocks per round, visited
    // in a deterministic linear sweep that persists its cursor.
    const uint64_t l2_blocks =
        cfg_.l2_bytes / (cfg_.l2_tile * cfg_.l2_tile * 4ull);
    const uint64_t total =
        static_cast<uint64_t>(st.thrasher_grid) * st.thrasher_grid;
    const uint64_t per_round = std::min(2 * l2_blocks, total);

    st.pending.push_back({st.thrasher_tid, 0, 0, 0, 0, 0});
    for (uint64_t i = 0; i < per_round; ++i) {
        const uint64_t b = (st.thrasher_cursor + i) % total;
        const uint32_t bx = static_cast<uint32_t>(b % st.thrasher_grid);
        const uint32_t by = static_cast<uint32_t>(b / st.thrasher_grid);
        st.pending.push_back(
            {bx * cfg_.l2_tile, by * cfg_.l2_tile, 0, 0, 2, 0});
    }
    st.thrasher_cursor = (st.thrasher_cursor + per_round) % total;
}

void
MultiStreamRunner::recordRound(uint32_t round)
{
    SweepExecutor sweep(cfg_.jobs);
    for (uint32_t i = 0; i < streams_.size(); ++i) {
        StreamRuntime &st = *streams_[i];
        if (st.dead)
            continue;
        st.pending.clear();
        sweep.addLeg(st.name, [this, round, &st](LegContext &) {
            if (st.workload) {
                Rasterizer raster(cfg_.width, cfg_.height);
                raster.setFilter(st.spec.filter);
                RecordingSink rec(st.pending);
                raster.setSink(&rec);
                const int total = st.workload->default_frames;
                const int frame =
                    static_cast<int>(round + st.spec.phase) % total;
                const float aspect = static_cast<float>(cfg_.width) /
                                     static_cast<float>(cfg_.height);
                Camera cam =
                    st.workload->cameraAtFrame(frame, total, aspect);
                raster.renderFrame(st.workload->scene, cam, st.textures());
            } else {
                recordThrasher(st);
            }
        });
    }
    SweepManifest manifest = sweep.run();
    // A recording leg should never fail; if one does, quarantine the
    // stream rather than abort the tenants that are fine.
    size_t leg = 0;
    for (uint32_t i = 0; i < streams_.size(); ++i) {
        StreamRuntime &st = *streams_[i];
        if (st.dead)
            continue;
        const LegResult &lr = manifest.legs[leg++];
        if (lr.outcome == LegOutcome::Failed)
            quarantineStream(i, round, {ErrorCode::None, lr.error});
    }
}

void
MultiStreamRunner::replayStream(uint32_t index)
{
    StreamRuntime &st = *streams_[index];
    CacheSim &sim = *st.sim;
    const uint32_t bias = governor_.bias(index);
    const MipPyramid *pyr = nullptr;

    if (batchedAccess()) {
        // Decode recorded ops (LOD bias applied here, at decode time)
        // into TexelRef batches; the batch drains before every bind so
        // all buffered refs replay under the binding they were recorded
        // with. Event order is identical to the scalar loop below.
        std::vector<TexelRef> batch;
        batch.reserve(kReplayBatchCap);
        auto flush = [&] {
            if (!batch.empty()) {
                sim.accessBatch(batch);
                batch.clear();
            }
        };
        for (const RecordedOp &op : st.pending) {
            switch (op.kind) {
              case 0:
                flush();
                sim.bindTexture(op.a);
                pyr = &st.textures().texture(op.a).pyramid;
                break;
              case 1:
                batch.push_back(TexelRef::pixel(op.a, op.b));
                break;
              case 2: {
                uint32_t x = op.a, y = op.b, mip = op.mip;
                if (bias != 0)
                    biasCoord(*pyr, bias, x, y, mip);
                batch.push_back(TexelRef::texel(x, y, mip));
                break;
              }
              default: {
                uint32_t x0 = op.a, y0 = op.b, x1 = op.c, y1 = op.d;
                uint32_t mip = op.mip;
                if (bias != 0) {
                    uint32_t m0 = op.mip, m1 = op.mip;
                    biasCoord(*pyr, bias, x0, y0, m0);
                    biasCoord(*pyr, bias, x1, y1, m1);
                    mip = m0;
                }
                batch.push_back(TexelRef::quad(x0, y0, x1, y1, mip));
                break;
              }
            }
            if (batch.size() >= kReplayBatchCap)
                flush();
        }
        flush();
        return;
    }

    for (const RecordedOp &op : st.pending) {
        switch (op.kind) {
          case 0:
            sim.bindTexture(op.a);
            pyr = &st.textures().texture(op.a).pyramid;
            break;
          case 1:
            sim.beginPixel(op.a, op.b);
            break;
          case 2: {
            uint32_t x = op.a, y = op.b, mip = op.mip;
            if (bias != 0)
                biasCoord(*pyr, bias, x, y, mip);
            sim.access(x, y, mip);
            break;
          }
          default: {
            uint32_t x0 = op.a, y0 = op.b, x1 = op.c, y1 = op.d;
            uint32_t mip = op.mip;
            if (bias != 0) {
                uint32_t m0 = op.mip, m1 = op.mip;
                biasCoord(*pyr, bias, x0, y0, m0);
                biasCoord(*pyr, bias, x1, y1, m1);
                mip = m0;
            }
            sim.accessQuad(x0, y0, x1, y1, mip);
            break;
          }
        }
    }
}

void
MultiStreamRunner::harvestRow(uint32_t index, uint32_t round)
{
    StreamRuntime &st = *streams_[index];
    const CacheFrameStats fr = st.sim->endFrame();
    const L2StreamStats &ls = l2_->streamStats(index);

    StreamRoundRow row;
    row.round = round;
    row.accesses = fr.accesses;
    row.l1_misses = fr.l1_misses;
    row.l2_full_hits = fr.l2_full_hits;
    row.l2_partial_hits = fr.l2_partial_hits;
    row.l2_full_misses = fr.l2_full_misses;
    row.host_bytes = fr.host_bytes;
    row.cross_evictions = ls.cross_evictions;
    row.quota_blocks = l2_->quotas()[index];
    row.alloc_blocks = l2_->streamAllocated(index);
    row.lod_bias = governor_.bias(index);
    rows_[index].push_back(row);

    governor_.observe(index, fr.host_bytes);

    // Feed the flight recorder's bounded ring: cheap per-round deltas
    // so a post-mortem bundle shows each tenant's final trajectory.
    char fname[32];
    std::snprintf(fname, sizeof(fname), "s%u.l1_misses", index);
    flightMetric(fname, static_cast<double>(fr.l1_misses));
    std::snprintf(fname, sizeof(fname), "s%u.host_bytes", index);
    flightMetric(fname, static_cast<double>(fr.host_bytes));
}

void
MultiStreamRunner::quarantineStream(uint32_t index, uint32_t round,
                                    Error error)
{
    StreamRuntime &st = *streams_[index];
    if (st.dead)
        return;
    st.dead = true;
    st.error = std::move(error);
    st.quarantined_at = round;
    st.pending.clear();
    // Hand the dead tenant's blocks back to the survivors.
    l2_->releaseStream(index);

    StreamRoundRow row;
    row.round = round;
    row.quarantined = 1;
    rows_[index].push_back(row);

    if (ChromeTraceWriter *t = globalTracer())
        t->instant("stream.quarantined", "resilience");
    // A tenant death is exactly what the flight recorder exists for:
    // mark it in the ring, then land the bundle while we still can.
    flightEvent("stream.quarantined", "resilience",
                static_cast<double>(index));
    flightDump("quarantine");
}

void
MultiStreamRunner::repartition(uint32_t round)
{
    const uint64_t blocks = l2_->config().blocks();
    const uint32_t k = streamCount();

    // Marginal utility of growing stream s from q to q+chunk blocks,
    // in absolute misses saved (MRC delta times access volume).
    const uint64_t chunk = std::max<uint64_t>(1, blocks / 64);
    auto gain = [&](uint32_t s, uint64_t q) {
        const ReuseDistanceTracker &t = *streams_[s]->tracker;
        return (t.missRatio(q) - t.missRatio(q + chunk)) *
               static_cast<double>(t.totalAccesses());
    };

    // Noisy-neighbor detection: a stream holding more than its fair
    // share whose own marginal utility is dwarfed by what some victim
    // would gain from the same blocks.
    std::vector<uint8_t> noisy(k, 0);
    for (uint32_t s = 0; s < k; ++s) {
        if (streams_[s]->dead)
            continue;
        if (l2_->streamAllocated(s) <= blocks / k)
            continue;
        const uint64_t held = l2_->streamAllocated(s);
        const double keep = gain(s, held > chunk ? held - chunk : 0);
        for (uint32_t v = 0; v < k; ++v) {
            if (v == s || streams_[v]->dead)
                continue;
            if (gain(v, l2_->streamAllocated(v)) > 2.0 * keep) {
                noisy[s] = 1;
                break;
            }
        }
    }
    for (uint32_t s = 0; s < k; ++s) {
        if (!rows_[s].empty() && rows_[s].back().round == round)
            rows_[s].back().noisy = noisy[s];
        last_noisy_[s] = noisy[s];
    }

    if (cfg_.share != L2SharePolicy::Utility)
        return;

    // Greedy hill-climb: hand out the pool chunk by chunk to whichever
    // live stream's miss-ratio curve pays most for it.
    std::vector<uint64_t> q(k, 1);
    uint64_t remaining = blocks - k;
    while (remaining > 0) {
        const uint64_t give = std::min(chunk, remaining);
        uint32_t best = k;
        double best_gain = -1.0;
        for (uint32_t s = 0; s < k; ++s) {
            if (streams_[s]->dead)
                continue;
            const double g = gain(s, q[s]);
            if (g > best_gain) {
                best_gain = g;
                best = s;
            }
        }
        if (best == k)
            break; // every stream dead; keep the floor quotas
        q[best] += give;
        remaining -= give;
    }
    // Dead streams keep their 1-block floor; fold leftover (all-dead
    // case) into stream 0 so the quota invariant (sum == blocks) holds.
    q[0] += remaining;
    l2_->setQuotas(q);
}

void
MultiStreamRunner::publishRound(uint32_t round)
{
    if (!obs_ || !obs_->metrics().enabled())
        return;
    MetricsRegistry &m = obs_->metrics();
    // One guard for the whole round's batch: a concurrent /metrics
    // scrape sees either the previous round or this one, never a
    // half-updated registry.
    auto guard = m.updateGuard();
    for (uint32_t i = 0; i < streams_.size(); ++i) {
        const StreamRuntime &st = *streams_[i];
        const CacheFrameStats &tot = st.sim->totals();
        const L2StreamStats &ls = l2_->streamStats(i);
        const MetricLabels lbl{{"stream", std::to_string(i)}};
        m.counter("accesses", lbl).set(tot.accesses);
        m.counter("l1.miss", lbl).set(tot.l1_misses);
        m.counter("l2.full_hit", lbl).set(tot.l2_full_hits);
        m.counter("l2.partial_hit", lbl).set(tot.l2_partial_hits);
        m.counter("l2.full_miss", lbl).set(tot.l2_full_misses);
        m.counter("host.bytes", lbl).set(tot.host_bytes);
        m.counter("l2.read_bytes", lbl).set(tot.l2_read_bytes);
        m.counter("l2.evictions_suffered", lbl).set(ls.evictions_suffered);
        m.counter("l2.cross_evictions", lbl).set(ls.cross_evictions);
        m.counter("quarantined", lbl).set(st.dead ? 1 : 0);
        m.gauge("l2.stream_miss_rate", lbl).set(ls.missRate());
        m.gauge("l2.quota_blocks", lbl)
            .set(static_cast<double>(l2_->quotas()[i]));
        m.gauge("l2.alloc_blocks", lbl)
            .set(static_cast<double>(l2_->streamAllocated(i)));
        m.gauge("lod_bias", lbl).set(governor_.bias(i));
        if (!rows_[i].empty() && rows_[i].back().round == round)
            m.gauge("noisy", lbl).set(rows_[i].back().noisy);
        if (slo_) {
            const bool alerting = slo_->anyAlerting(i);
            m.gauge("slo.alerting", lbl).set(alerting ? 1.0 : 0.0);
            if (alerting) {
                // Attribute the violating round: an overloaded tenant
                // is being shed by the governor; a victim of a noisy
                // neighbor is thrashing through no fault of its own.
                const char *cause = "other";
                bool neighbor_noisy = false;
                for (uint32_t j = 0; j < streams_.size(); ++j)
                    if (j != i && !streams_[j]->dead && last_noisy_[j])
                        neighbor_noisy = true;
                if (governor_.bias(i) > 0)
                    cause = "overload";
                else if (neighbor_noisy || last_noisy_[i])
                    cause = "thrash";
                m.counter("slo.violation_rounds",
                          {{"cause", cause},
                           {"stream", std::to_string(i)}})
                    .inc();
            }
        }
    }
    // --telemetry-port alone enables the registry with no JSONL sink.
    if (obs_->metricsSink())
        m.writeFrameSnapshot(*obs_->metricsSink(), round);
}

void
MultiStreamRunner::evaluateSlo(uint32_t round)
{
    if (!slo_)
        return;
    const std::vector<SloRule> &rules = slo_->rules();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<std::vector<double>> values(
        rules.size(), std::vector<double>(streams_.size(), nan));
    for (uint32_t i = 0; i < streams_.size(); ++i) {
        if (streams_[i]->dead)
            continue; // NaN: a dead stream cannot keep an alert burning
        if (rows_[i].empty() || rows_[i].back().round != round)
            continue;
        const StreamRoundRow &row = rows_[i].back();
        for (size_t r = 0; r < rules.size(); ++r)
            values[r][i] = sloSample(rules[r].metric, row);
    }

    for (const SloEvent &ev : slo_->observeFrame(round, values)) {
        const SloRule &rule = rules[ev.rule];
        const std::string stream = std::to_string(ev.entity);
        const char *what = ev.firing ? "slo.fired" : "slo.cleared";
        if (ChromeTraceWriter *t = globalTracer())
            t->instant(what, "slo",
                       {{"rule", rule.spec}, {"stream", stream}});
        flightEvent(what, "slo", ev.value);
        char val[32];
        std::snprintf(val, sizeof(val), "%.4g", ev.value);
        const std::string line =
            std::string("MultiStreamRunner: SLO '") + rule.spec +
            "' " + (ev.firing ? "fired" : "cleared") + " for stream " +
            stream + " at round " + std::to_string(round) + " (value " +
            val + ", burn fast/slow " + formatBurn(ev.burn_fast) + "/" +
            formatBurn(ev.burn_slow) + ")";
        if (ev.firing)
            logWarn(line);
        else
            logInfo(line);
        if (obs_ && obs_->sloSink()) {
            JsonWriter w;
            w.beginObject();
            w.kv("ts", logTimestampUtc());
            w.kv("event", ev.firing ? "fired" : "cleared");
            w.kv("rule", rule.spec);
            w.kv("metric", rule.metric);
            w.kv("stream", static_cast<uint64_t>(ev.entity));
            w.kv("round", static_cast<uint64_t>(round));
            w.kv("value", ev.value);
            w.kv("burn_fast", ev.burn_fast);
            w.kv("burn_slow", ev.burn_slow);
            w.endObject();
            obs_->sloSink()->writeLine(w.str());
        }
    }
}

void
MultiStreamRunner::publishTelemetry(const char *status, uint32_t next_round,
                                    int checkpoint_write_failures)
{
    if (!obs_ || !obs_->telemetry())
        return;
    size_t quarantined = 0, alerting = 0;
    for (uint32_t i = 0; i < streams_.size(); ++i) {
        if (streams_[i]->dead)
            ++quarantined;
        if (slo_ && slo_->anyAlerting(i))
            ++alerting;
    }

    JsonWriter h;
    h.beginObject();
    h.kv("status", status);
    h.kv("round", static_cast<uint64_t>(next_round));
    h.kv("rounds", static_cast<uint64_t>(cfg_.rounds));
    h.kv("quarantined", static_cast<uint64_t>(quarantined));
    h.kv("alerting", static_cast<uint64_t>(alerting));
    h.kv("checkpoint_write_failures",
         static_cast<int64_t>(checkpoint_write_failures));
    h.endObject();
    obs_->telemetry()->publishHealth(h.str());

    JsonWriter r;
    r.beginObject();
    r.kv("mode", "streams");
    r.kv("width", cfg_.width);
    r.kv("height", cfg_.height);
    r.kv("rounds", static_cast<uint64_t>(cfg_.rounds));
    r.kv("round", static_cast<uint64_t>(next_round));
    r.kv("share", l2SharePolicyName(cfg_.share));
    r.kv("jobs", static_cast<uint64_t>(cfg_.jobs));
    r.kv("l2_bytes", cfg_.l2_bytes);
    r.key("streams");
    r.beginArray();
    for (uint32_t i = 0; i < streams_.size(); ++i) {
        const StreamRuntime &st = *streams_[i];
        r.beginObject();
        r.kv("index", static_cast<uint64_t>(i));
        r.kv("name", st.name);
        r.kv("workload", st.spec.workload);
        r.kv("seed", st.spec.seed);
        r.kv("status", st.dead ? "quarantined" : "serving");
        r.kv("rounds_completed", static_cast<uint64_t>(rows_[i].size()));
        r.kv("alerting", slo_ ? slo_->anyAlerting(i) : false);
        r.endObject();
    }
    r.endArray();
    r.endObject();
    obs_->telemetry()->publishRunz(r.str());
}

MultiStreamManifest
MultiStreamRunner::run(const ResilienceConfig &res)
{
    using Clock = std::chrono::steady_clock;
    using MsDouble = std::chrono::duration<double, std::milli>;

    uint32_t round = 0;
    if (res.resume) {
        if (res.checkpoint_path.empty())
            throw Exception(ErrorCode::BadArgument,
                            "--resume requires --checkpoint=PATH");
        round = loadCheckpoint(res.checkpoint_path);
    }

    if (obs_ && !obs_->sloRules().empty()) {
        for (const SloRule &r : obs_->sloRules())
            if (!isStreamSloMetric(r.metric))
                throw Exception(
                    ErrorCode::BadArgument,
                    "--slo: unknown metric '" + r.metric +
                        "' (expected stream.miss_rate.l1, "
                        "stream.miss_rate.l2, stream.host_mb or "
                        "stream.lod_bias)");
        slo_ = std::make_unique<SloTracker>(obs_->sloRules());
    }

    RunOutcome outcome = RunOutcome::Completed;
    uint32_t checkpoints_written = 0;
    int checkpoint_write_failures = 0;
    uint32_t ckpt_backoff = 0; ///< doubling skip multiplier (0 = healthy)
    int ckpt_retry_at = -1;    ///< first round allowed to retry commits
    const Clock::time_point run_start = Clock::now();

    publishTelemetry("serving", round, checkpoint_write_failures);

    for (; round < cfg_.rounds; ++round) {
        if (cancellationRequested()) {
            outcome = RunOutcome::Cancelled;
            break;
        }
        if (res.wall_budget_ms > 0.0 &&
            MsDouble(Clock::now() - run_start).count() >=
                res.wall_budget_ms) {
            outcome = RunOutcome::BudgetExhausted;
            break;
        }

        const Clock::time_point round_start = Clock::now();

        flightFrame(round);

        // Fault-injection hooks fire before any work so a round-0
        // failure means the stream never contributes a byte.
        for (uint32_t i = 0; i < streams_.size(); ++i) {
            const StreamRuntime &st = *streams_[i];
            if (!st.dead && st.spec.fail_at_round >= 0 &&
                static_cast<uint32_t>(st.spec.fail_at_round) == round)
                quarantineStream(i, round,
                                 {ErrorCode::Transient,
                                  "injected stream fault at round " +
                                      std::to_string(round)});
        }

        recordRound(round);

        // Serial replay in stream order: the only writer of the shared
        // L2, so output bytes cannot depend on recording concurrency.
        for (uint32_t i = 0; i < streams_.size(); ++i) {
            StreamRuntime &st = *streams_[i];
            if (st.dead)
                continue;
            try {
                // Replay+harvest samples roll up under the tenant's
                // own "stream:<name>" root (record-phase work already
                // carries the sweep leg named after the stream).
                ScopedProfileStage stream_prof(
                    profileInternAnnotation("stream:" + st.name),
                    /*with_counters=*/true);
                replayStream(i);
                harvestRow(i, round);
                st.sim->audit(res.audit);
            } catch (const Exception &e) {
                quarantineStream(i, round, e.error());
            } catch (const std::exception &e) {
                quarantineStream(i, round, {ErrorCode::None, e.what()});
            }
            st.pending.clear();
        }
        try {
            CacheAuditor::checkL2(*l2_, res.audit);
        } catch (...) {
            // A shared-L2 invariant violation is fatal; capture the
            // last moments before the exception unwinds the run.
            flightDump("audit");
            throw;
        }

        if (cfg_.repartition_every > 0 &&
            (round + 1) % cfg_.repartition_every == 0)
            repartition(round);

        evaluateSlo(round);
        publishRound(round);
        publishTelemetry("serving", round + 1, checkpoint_write_failures);

        if (res.frame_deadline_ms > 0.0 &&
            MsDouble(Clock::now() - round_start).count() >
                res.frame_deadline_ms) {
            outcome = RunOutcome::DeadlineExceeded;
            ++round;
            break;
        }

        if (!res.checkpoint_path.empty() && res.checkpoint_every > 0 &&
            (round + 1) % res.checkpoint_every == 0 &&
            static_cast<int>(round + 1) >= ckpt_retry_at) {
            try {
                saveCheckpoint(res.checkpoint_path, round + 1);
                ckpt_backoff = 0;
                ckpt_retry_at = -1;
                if (res.die_after_checkpoints > 0 &&
                    ++checkpoints_written >= res.die_after_checkpoints) {
                    std::fflush(nullptr);
                    std::raise(SIGKILL);
                }
            } catch (const Exception &e) {
                // Same skip-with-backoff ladder as runSupervised: a
                // checkpoint that cannot land must not kill the serving
                // rounds that produced it.
                ++checkpoint_write_failures;
                ckpt_backoff =
                    std::min<uint32_t>(ckpt_backoff ? ckpt_backoff * 2 : 1,
                                       64);
                ckpt_retry_at = static_cast<int>(
                    round + 1 +
                    ckpt_backoff *
                        std::max<uint32_t>(1, res.checkpoint_every));
                logWarn("MultiStreamRunner: checkpoint write failed (" +
                        e.error().describe() + "); retrying at round " +
                        std::to_string(ckpt_retry_at));
                if (obs_) {
                    auto guard = obs_->metrics().updateGuard();
                    obs_->metrics()
                        .counter("checkpoint.write_failed")
                        .inc();
                }
                flightEvent("checkpoint.write_failed", "resilience");
            }
        }

        if (cfg_.round_sleep_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg_.round_sleep_ms));
    }

    if (outcome == RunOutcome::DeadlineExceeded ||
        outcome == RunOutcome::BudgetExhausted)
        flightDump("watchdog");

    if (obs_)
        obs_->flush();

    uint32_t completed = 0;
    for (const auto &r : rows_)
        for (const StreamRoundRow &row : r)
            completed = std::max(completed, row.round + 1);

    MultiStreamManifest manifest = buildManifest(outcome, completed, round);
    manifest.checkpoint_write_failures = checkpoint_write_failures;
    if (!res.checkpoint_path.empty()) {
        try {
            saveCheckpoint(res.checkpoint_path, round);
        } catch (const Exception &e) {
            ++manifest.checkpoint_write_failures;
            logWarn("MultiStreamRunner: final checkpoint write failed (" +
                    e.error().describe() + ")");
            // The run's durable state just failed to land: preserve the
            // last moments for the post-mortem.
            flightDump("io");
        }
        manifest.checkpoint = res.checkpoint_path;
    }
    publishTelemetry(runOutcomeName(outcome), round,
                     manifest.checkpoint_write_failures);
    return manifest;
}

MultiStreamManifest
MultiStreamRunner::buildManifest(RunOutcome outcome,
                                 uint32_t rounds_completed,
                                 uint32_t next_round) const
{
    MultiStreamManifest m;
    m.outcome = outcome;
    m.rounds_completed = rounds_completed;
    m.next_round = next_round;
    for (const auto &st : streams_) {
        StreamManifestEntry e;
        e.name = st->name;
        e.quarantined = st->dead;
        e.error = st->error;
        e.at_round = st->quarantined_at;
        m.streams.push_back(std::move(e));
    }
    return m;
}

std::vector<std::string>
MultiStreamRunner::csvColumns()
{
    return {"round",        "accesses",    "l1_misses",
            "l2_full_hits", "l2_partial_hits", "l2_full_misses",
            "host_bytes",   "cross_evictions", "quota_blocks",
            "alloc_blocks", "lod_bias",    "noisy",
            "quarantined"};
}

void
MultiStreamRunner::writeStreamCsv(uint32_t i, const std::string &path) const
{
    CsvWriter csv(path, csvColumns());
    for (const StreamRoundRow &r : rows_[i]) {
        csv.rowStrings({std::to_string(r.round),
                        std::to_string(r.accesses),
                        std::to_string(r.l1_misses),
                        std::to_string(r.l2_full_hits),
                        std::to_string(r.l2_partial_hits),
                        std::to_string(r.l2_full_misses),
                        std::to_string(r.host_bytes),
                        std::to_string(r.cross_evictions),
                        std::to_string(r.quota_blocks),
                        std::to_string(r.alloc_blocks),
                        std::to_string(r.lod_bias),
                        std::to_string(static_cast<unsigned>(r.noisy)),
                        std::to_string(
                            static_cast<unsigned>(r.quarantined))});
    }
    csv.close();
}

void
MultiStreamRunner::saveCheckpoint(const std::string &path,
                                  uint32_t next_round) const
{
    SnapshotWriter w(path);
    // Generational commit: keep the last good round's checkpoint as
    // `<path>.prev` so a torn commit never strands a resume.
    w.keepPrevious(true);
    w.section(kMsTag);

    // Configuration fingerprint: a resumed process must be running the
    // same experiment.
    w.u32(static_cast<uint32_t>(cfg_.width));
    w.u32(static_cast<uint32_t>(cfg_.height));
    w.u32(cfg_.rounds);
    w.u64(cfg_.l1_bytes);
    w.u64(cfg_.l2_bytes);
    w.u32(cfg_.l2_tile);
    w.u32(cfg_.l1_tile);
    w.u8(static_cast<uint8_t>(cfg_.share));
    w.u8(cfg_.classify_misses ? 1 : 0);
    w.u64(cfg_.stream_budget_bytes);
    w.u32(cfg_.repartition_every);
    w.u32(streamCount());
    for (const StreamSpec &s : cfg_.streams) {
        w.str(s.workload);
        w.u8(static_cast<uint8_t>(s.filter));
        w.u32(s.phase);
        w.u64(s.seed);
        w.u32(static_cast<uint32_t>(s.fail_at_round + 1));
    }

    w.u32(next_round);
    l2_->save(w); // the shared L2 is serialized exactly once

    for (uint32_t i = 0; i < streams_.size(); ++i) {
        const StreamRuntime &st = *streams_[i];
        w.u8(st.dead ? 1 : 0);
        w.u8(static_cast<uint8_t>(st.error.code));
        w.str(st.error.message);
        w.u32(st.quarantined_at);
        w.u64(st.thrasher_cursor);
        st.sim->save(w);
        st.tracker->save(w);
    }

    governor_.save(w);

    for (uint32_t i = 0; i < streams_.size(); ++i) {
        const std::vector<StreamRoundRow> &rs = rows_[i];
        w.u32(static_cast<uint32_t>(rs.size()));
        for (const StreamRoundRow &r : rs) {
            w.u32(r.round);
            w.u64(r.accesses);
            w.u64(r.l1_misses);
            w.u64(r.l2_full_hits);
            w.u64(r.l2_partial_hits);
            w.u64(r.l2_full_misses);
            w.u64(r.host_bytes);
            w.u64(r.cross_evictions);
            w.u64(r.quota_blocks);
            w.u64(r.alloc_blocks);
            w.u32(r.lod_bias);
            w.u8(r.noisy);
            w.u8(r.quarantined);
        }
    }

    w.finish();
}

uint32_t
MultiStreamRunner::loadCheckpoint(const std::string &path)
{
    SnapshotReader r = openSnapshotGeneration(path);
    r.expectSection(kMsTag, "MultiStreamRunner");

    auto mismatch = [](const char *what) {
        throw Exception(ErrorCode::VersionMismatch,
                        std::string("MultiStreamRunner: checkpoint ") + what +
                            " differs from this run's configuration");
    };
    if (r.u32() != static_cast<uint32_t>(cfg_.width))
        mismatch("width");
    if (r.u32() != static_cast<uint32_t>(cfg_.height))
        mismatch("height");
    if (r.u32() != cfg_.rounds)
        mismatch("round count");
    if (r.u64() != cfg_.l1_bytes)
        mismatch("L1 size");
    if (r.u64() != cfg_.l2_bytes)
        mismatch("L2 size");
    if (r.u32() != cfg_.l2_tile)
        mismatch("L2 tile");
    if (r.u32() != cfg_.l1_tile)
        mismatch("L1 tile");
    if (r.u8() != static_cast<uint8_t>(cfg_.share))
        mismatch("share policy");
    if (r.u8() != (cfg_.classify_misses ? 1 : 0))
        mismatch("miss classification");
    if (r.u64() != cfg_.stream_budget_bytes)
        mismatch("stream budget");
    if (r.u32() != cfg_.repartition_every)
        mismatch("repartition interval");
    if (r.u32() != streamCount())
        mismatch("stream count");
    for (const StreamSpec &s : cfg_.streams) {
        if (r.str() != s.workload)
            mismatch("stream workload");
        if (r.u8() != static_cast<uint8_t>(s.filter))
            mismatch("stream filter");
        if (r.u32() != s.phase)
            mismatch("stream phase");
        if (r.u64() != s.seed)
            mismatch("stream seed");
        if (r.u32() != static_cast<uint32_t>(s.fail_at_round + 1))
            mismatch("stream fault schedule");
    }

    const uint32_t next_round = r.u32();
    if (next_round > cfg_.rounds)
        throw Exception(ErrorCode::Corrupt,
                        "MultiStreamRunner: resume round beyond the "
                        "configured rounds");
    l2_->load(r);

    for (uint32_t i = 0; i < streams_.size(); ++i) {
        StreamRuntime &st = *streams_[i];
        st.dead = r.u8() != 0;
        st.error.code = static_cast<ErrorCode>(r.u8());
        st.error.message = r.str();
        st.quarantined_at = r.u32();
        st.thrasher_cursor = r.u64();
        st.sim->load(r);
        st.tracker->load(r);
    }

    governor_.load(r);

    for (uint32_t i = 0; i < streams_.size(); ++i) {
        const uint32_t n = r.u32();
        std::vector<StreamRoundRow> &rs = rows_[i];
        rs.clear();
        rs.reserve(n);
        for (uint32_t j = 0; j < n; ++j) {
            StreamRoundRow row;
            row.round = r.u32();
            row.accesses = r.u64();
            row.l1_misses = r.u64();
            row.l2_full_hits = r.u64();
            row.l2_partial_hits = r.u64();
            row.l2_full_misses = r.u64();
            row.host_bytes = r.u64();
            row.cross_evictions = r.u64();
            row.quota_blocks = r.u64();
            row.alloc_blocks = r.u64();
            row.lod_bias = r.u32();
            row.noisy = r.u8();
            row.quarantined = r.u8();
            rs.push_back(row);
        }
    }

    r.expectEnd();
    return next_round;
}

} // namespace mltc
