/**
 * @file
 * Resilience configuration and cooperative cancellation for supervised
 * long-running simulations.
 *
 * Three coordinated pieces (see docs/checkpoint_format.md and
 * docs/fault_model.md):
 *
 *  - crash-safe checkpoint/resume of the full simulator state, so a
 *    killed run finishes from its last checkpoint with byte-identical
 *    CSV output;
 *  - the always-on state invariant auditor (core/audit.hpp), run at
 *    frame and checkpoint boundaries;
 *  - watchdog supervision: a per-frame deadline, a wall-clock budget,
 *    and SIGINT/SIGTERM handlers that request a final checkpoint at the
 *    next frame boundary instead of dying mid-write.
 *
 * All knobs flow through resilienceFromCli() so every bench and example
 * exposes the same flags: --checkpoint=PATH, --checkpoint-every=N,
 * --resume, --deadline-ms=D, --budget-ms=B, --audit=LEVEL,
 * --restart-limit=N.
 */
#ifndef MLTC_SIM_RESILIENCE_HPP
#define MLTC_SIM_RESILIENCE_HPP

#include <string>

#include "core/audit.hpp"
#include "util/cli.hpp"

namespace mltc {

/** Supervision knobs for MultiConfigRunner::runSupervised(). */
struct ResilienceConfig
{
    /** Checkpoint file; empty disables checkpointing entirely. */
    std::string checkpoint_path;

    /** Checkpoint every N frames (0 = only on cancellation/stop). */
    uint32_t checkpoint_every = 0;

    /** Resume from checkpoint_path instead of starting at frame 0. */
    bool resume = false;

    /**
     * Per-frame wall-clock deadline in milliseconds; a frame exceeding
     * it stops the run at the next boundary with a checkpoint (0 = no
     * deadline).
     */
    double frame_deadline_ms = 0.0;

    /** Whole-run wall-clock budget in milliseconds (0 = unlimited). */
    double wall_budget_ms = 0.0;

    /** Invariant auditing at frame/checkpoint boundaries. */
    AuditLevel audit = AuditLevel::Cheap;

    /**
     * Crash-path test hook: raise SIGKILL immediately after the Nth
     * periodic checkpoint commits (0 = disabled). Lets tests and
     * scripts/kill_resume.sh kill a run at a deterministic point.
     */
    uint32_t die_after_checkpoints = 0;

    /**
     * Crash-loop containment: revive a quarantined simulator after an
     * exponential frame backoff and a clean audit, up to this many
     * consecutive failures — one more and it stays quarantined for the
     * rest of the run. A clean frame resets the consecutive count.
     * 0 = never revive (quarantine is permanent, the pre-existing
     * behaviour).
     */
    uint32_t restart_limit = 0;
};

/**
 * Build a ResilienceConfig from the shared command-line flags.
 * @throws mltc::Exception (BadArgument) on malformed values.
 */
ResilienceConfig resilienceFromCli(const CommandLine &cli);

/**
 * Install SIGINT/SIGTERM handlers that set the cancellation flag. The
 * handlers only flip a sig_atomic_t; the supervised run loop polls it
 * at frame boundaries and performs the final checkpoint itself.
 */
void installCancellationHandlers();

/** True once SIGINT/SIGTERM arrived (or requestCancellation() ran). */
bool cancellationRequested();

/** Programmatic cancellation (tests; same path as the signals). */
void requestCancellation();

/** Clear the flag (between supervised runs in one process). */
void clearCancellation();

} // namespace mltc

#endif // MLTC_SIM_RESILIENCE_HPP
