#include "sim/resilience.hpp"

#include <atomic>
#include <csignal>

#include "util/error.hpp"

namespace mltc {

ResilienceConfig
resilienceFromCli(const CommandLine &cli)
{
    ResilienceConfig rc;
    rc.checkpoint_path = cli.getString("checkpoint", "");
    rc.checkpoint_every =
        static_cast<uint32_t>(cli.getUnsigned("checkpoint-every", 0));
    rc.resume = cli.getFlag("resume");
    rc.frame_deadline_ms = cli.getDouble("deadline-ms", 0.0);
    rc.wall_budget_ms = cli.getDouble("budget-ms", 0.0);
    rc.audit = parseAuditLevel(cli.getString("audit", "cheap").c_str());
    rc.die_after_checkpoints =
        static_cast<uint32_t>(cli.getUnsigned("die-after-checkpoint", 0));
    rc.restart_limit =
        static_cast<uint32_t>(cli.getUnsigned("restart-limit", 0));
    if (rc.frame_deadline_ms < 0.0)
        throw Exception(ErrorCode::BadArgument,
                        "--deadline-ms: must be non-negative");
    if (rc.wall_budget_ms < 0.0)
        throw Exception(ErrorCode::BadArgument,
                        "--budget-ms: must be non-negative");
    if (rc.resume && rc.checkpoint_path.empty())
        throw Exception(ErrorCode::BadArgument,
                        "--resume: requires --checkpoint=PATH");
    if ((rc.checkpoint_every > 0 || rc.die_after_checkpoints > 0) &&
        rc.checkpoint_path.empty())
        throw Exception(ErrorCode::BadArgument,
                        "--checkpoint-every: requires --checkpoint=PATH");
    return rc;
}

namespace {

// Lock-free atomic rather than volatile sig_atomic_t: the handler may
// fire on any thread while sweep workers poll the flag concurrently, so
// the flag must be both async-signal-safe (lock-free atomic store) and
// a proper synchronisation point for the data-race checker. C++ only
// guarantees signal handler use of std::atomic when it is lock-free;
// int is on every platform we target.
std::atomic<int> g_cancel_requested{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "cancellation flag must be async-signal-safe");

void
cancelHandler(int)
{
    // Async-signal-safe: only flip the flag; every run loop (on any
    // worker thread) polls it at frame boundaries and writes its final
    // checkpoint from normal context.
    g_cancel_requested.store(1, std::memory_order_relaxed);
}

} // namespace

void
installCancellationHandlers()
{
    std::signal(SIGINT, cancelHandler);
    std::signal(SIGTERM, cancelHandler);
}

bool
cancellationRequested()
{
    return g_cancel_requested.load(std::memory_order_relaxed) != 0;
}

void
requestCancellation()
{
    g_cancel_requested.store(1, std::memory_order_relaxed);
}

void
clearCancellation()
{
    g_cancel_requested.store(0, std::memory_order_relaxed);
}

} // namespace mltc
