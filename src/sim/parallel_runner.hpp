/**
 * @file
 * Parallel sweep executor: runs independent simulation legs (one leg ==
 * one MultiConfigRunner pass over its own Workload) concurrently while
 * keeping every observable output byte-identical to the serial run and
 * invariant to thread count.
 *
 * Determinism model — compute in parallel, emit in order:
 *
 *  - legs never share mutable state: each leg builds its own Workload
 *    (TextureManager layouts are lazily cached), its own runner, its
 *    own sims (so fault-injection RNG streams are per-leg exactly as in
 *    the serial program), and writes results only into its own slot;
 *  - console output produced inside a leg goes through
 *    LegContext::printf into a per-leg buffer; SweepExecutor flushes
 *    buffers to stdout strictly in leg registration order (streaming:
 *    leg i prints the moment legs 0..i-1 have printed, even while later
 *    legs are still running);
 *  - CSV/metrics/snapshot emission stays in the drivers, which write
 *    from per-leg results after (or in order during) run() — so the
 *    bytes on disk cannot depend on completion order.
 *
 * Failure containment mirrors the per-sim quarantine of runSupervised:
 * an exception escaping a leg marks that leg Failed in the
 * SweepManifest and the remaining legs still run. Cooperative
 * cancellation (SIGINT/SIGTERM or requestCancellation()) stops
 * dispatching new legs; already-running legs observe the same flag at
 * frame boundaries via their own supervised gates.
 *
 * See docs/parallelism.md for the full contract.
 */
#ifndef MLTC_SIM_PARALLEL_RUNNER_HPP
#define MLTC_SIM_PARALLEL_RUNNER_HPP

#include <cstdarg>
#include <functional>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace mltc {

class TelemetryServer;

/** How a sweep leg ended. */
enum class LegOutcome
{
    Completed, ///< ran to the end
    Failed,    ///< an exception escaped the leg body
    Cancelled, ///< cancellation arrived before the leg started
};

const char *legOutcomeName(LegOutcome outcome);

/** Per-leg record in the sweep manifest. */
struct LegResult
{
    std::string name;
    LegOutcome outcome = LegOutcome::Cancelled;
    std::string error;   ///< exception text when outcome == Failed
    double wall_ms = 0.0; ///< leg wall time (diagnostic; never emitted)
};

/** Outcome summary for a whole sweep. */
struct SweepManifest
{
    std::vector<LegResult> legs;

    bool allCompleted() const;

    /**
     * Write `leg,name,outcome,error` rows to @p path. Deliberately
     * excludes timings so the file is byte-identical across thread
     * counts and machines.
     */
    void writeCsv(const std::string &path) const;
};

/**
 * Handed to each leg body: identifies the leg and buffers its console
 * output for in-order flushing.
 */
class LegContext
{
public:
    LegContext(size_t index, std::string name)
        : index_(index), name_(std::move(name))
    {
    }

    size_t index() const { return index_; }
    const std::string &name() const { return name_; }

    /** Buffered stand-in for std::printf. */
    void printf(const char *fmt, ...)
#if defined(__GNUC__)
        __attribute__((format(printf, 2, 3)))
#endif
        ;

    /** Append raw text to the leg's console buffer. */
    void write(const std::string &text) { out_ += text; }

    const std::string &buffered() const { return out_; }

private:
    size_t index_;
    std::string name_;
    std::string out_;
};

/**
 * Work-stealing executor for independent sweep legs.
 *
 * Usage:
 *   SweepExecutor sweep(jobs);
 *   sweep.addLeg("village/bilinear", [&](LegContext &ctx) { ... });
 *   SweepManifest manifest = sweep.run();
 *
 * jobs <= 1 runs every leg inline on the calling thread in
 * registration order — bit-for-bit the old serial program. jobs > 1
 * runs legs on a ThreadPool; outputs are emitted in registration order
 * regardless of completion order, so both modes produce identical
 * bytes.
 */
class SweepExecutor
{
public:
    /** @p jobs 0 means ThreadPool::defaultJobs(). */
    explicit SweepExecutor(unsigned jobs = 0);

    /** Register a leg; legs run (or at least emit) in this order. */
    void addLeg(std::string name, std::function<void(LegContext &)> body);

    /** Effective worker count. */
    unsigned jobs() const { return jobs_; }

    size_t legCount() const { return legs_.size(); }

    /**
     * Publish live per-leg status (pending/running/completed/...) to
     * @p telemetry's /runz endpoint as legs progress (null detaches;
     * not owned). Pure observation: the sweep's outputs and scheduling
     * are byte-identical with or without a server attached.
     */
    void setTelemetry(TelemetryServer *telemetry)
    {
        telemetry_ = telemetry;
    }

    /**
     * Run every leg and stream each leg's buffered console output to
     * stdout in registration order. Returns the manifest; exceptions
     * from leg bodies are captured there, never thrown.
     */
    SweepManifest run();

private:
    struct Leg
    {
        std::string name;
        std::function<void(LegContext &)> body;
    };

    void publishLegStatus(const std::vector<const char *> &status) const;

    unsigned jobs_;
    std::vector<Leg> legs_;
    TelemetryServer *telemetry_ = nullptr;
};

/**
 * Parse the shared --jobs=N flag (0 or absent = default policy:
 * MLTC_JOBS env, else hardware concurrency).
 * @throws mltc::Exception (BadArgument) on malformed or negative N.
 */
unsigned jobsFromCli(const CommandLine &cli);

} // namespace mltc

#endif // MLTC_SIM_PARALLEL_RUNNER_HPP
