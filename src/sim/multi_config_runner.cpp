#include "sim/multi_config_runner.hpp"

#include "raster/access_sink.hpp"

namespace mltc {

MultiConfigRunner::MultiConfigRunner(Workload &workload,
                                     const DriverConfig &config)
    : workload_(workload), config_(config)
{
}

CacheSim &
MultiConfigRunner::addSim(const CacheSimConfig &config, std::string label)
{
    sims_.push_back(std::make_unique<CacheSim>(*workload_.textures, config,
                                               std::move(label)));
    return *sims_.back();
}

WorkingSetCollector &
MultiConfigRunner::addWorkingSets(std::vector<uint32_t> l2_tiles,
                                  std::vector<uint32_t> l1_tiles)
{
    working_sets_ = std::make_unique<WorkingSetCollector>(
        *workload_.textures, std::move(l2_tiles), std::move(l1_tiles));
    return *working_sets_;
}

PushArchitectureModel &
MultiConfigRunner::addPushModel()
{
    push_ = std::make_unique<PushArchitectureModel>(*workload_.textures);
    return *push_;
}

void
MultiConfigRunner::addExtraSink(TexelAccessSink *sink)
{
    extra_sinks_.push_back(sink);
}

void
MultiConfigRunner::run(const RowCallback &cb)
{
    rows_.clear();

    FanoutSink fanout;
    for (auto &sim : sims_)
        fanout.add(sim.get());
    if (working_sets_)
        fanout.add(working_sets_.get());
    if (push_)
        fanout.add(push_.get());
    for (auto *s : extra_sinks_)
        fanout.add(s);

    runAnimation(workload_, config_, &fanout,
                 [&](int frame, const FrameStats &fs) {
                     FrameRow row;
                     row.frame = frame;
                     row.raster = fs;
                     row.sims.reserve(sims_.size());
                     for (auto &sim : sims_)
                         row.sims.push_back(sim->endFrame());
                     if (working_sets_)
                         row.working_sets = working_sets_->endFrame();
                     if (push_)
                         row.push_bytes = push_->endFrame();
                     rows_.push_back(std::move(row));
                     if (cb)
                         cb(rows_.back());
                 });
}

double
MultiConfigRunner::averageHostBytesPerFrame(size_t idx) const
{
    if (rows_.empty())
        return 0.0;
    uint64_t total = 0;
    for (const auto &row : rows_)
        total += row.sims[idx].host_bytes;
    return static_cast<double>(total) / static_cast<double>(rows_.size());
}

} // namespace mltc
