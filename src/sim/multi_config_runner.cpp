#include "sim/multi_config_runner.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "raster/access_sink.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/serializer.hpp"

namespace mltc {

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Completed: return "completed";
      case RunOutcome::Cancelled: return "cancelled";
      case RunOutcome::DeadlineExceeded: return "deadline-exceeded";
      case RunOutcome::BudgetExhausted: return "budget-exhausted";
    }
    return "?";
}

size_t
RunManifest::quarantinedCount() const
{
    size_t n = 0;
    for (const auto &s : sims)
        if (s.quarantined)
            ++n;
    return n;
}

MultiConfigRunner::MultiConfigRunner(Workload &workload,
                                     const DriverConfig &config)
    : workload_(workload), config_(config)
{
}

CacheSim &
MultiConfigRunner::addSim(const CacheSimConfig &config, std::string label)
{
    sims_.push_back(std::make_unique<CacheSim>(*workload_.textures, config,
                                               std::move(label)));
    return *sims_.back();
}

WorkingSetCollector &
MultiConfigRunner::addWorkingSets(std::vector<uint32_t> l2_tiles,
                                  std::vector<uint32_t> l1_tiles)
{
    working_sets_ = std::make_unique<WorkingSetCollector>(
        *workload_.textures, std::move(l2_tiles), std::move(l1_tiles));
    return *working_sets_;
}

PushArchitectureModel &
MultiConfigRunner::addPushModel()
{
    push_ = std::make_unique<PushArchitectureModel>(*workload_.textures);
    return *push_;
}

void
MultiConfigRunner::addExtraSink(TexelAccessSink *sink)
{
    extra_sinks_.push_back(sink);
}

void
MultiConfigRunner::harvestRow(int frame, const FrameStats &fs,
                              const RowCallback &cb)
{
    FrameRow row;
    row.frame = frame;
    row.raster = fs;
    row.sims.reserve(sims_.size());
    for (auto &sim : sims_)
        row.sims.push_back(sim->endFrame());
    if (working_sets_)
        row.working_sets = working_sets_->endFrame();
    if (push_)
        row.push_bytes = push_->endFrame();
    rows_.push_back(std::move(row));
    publishFrame(rows_.back());
    if (cb)
        cb(rows_.back());
}

void
MultiConfigRunner::publishFrame(const FrameRow &row)
{
    if (ChromeTraceWriter *t = globalTracer()) {
        // Hot-path self time accumulated by SelfTimer inside the access
        // path, surfaced as a stage aggregate (no timeline event).
        uint64_t access_ns = 0;
        for (auto &sim : sims_)
            access_ns += sim->takeAccessNs();
        t->recordAggregate("cachesim.access", access_ns / 1000);

        for (size_t i = 0; i < sims_.size(); ++i) {
            const CacheFrameStats &s = row.sims[i];
            const std::string &label = sims_[i]->label();
            const double sector_misses = static_cast<double>(
                s.l2_partial_hits + s.l2_full_misses);
            t->counter(
                "miss_rates/" + label,
                {{"l1", s.accesses ? static_cast<double>(s.l1_misses) /
                                         static_cast<double>(s.accesses)
                                   : 0.0},
                 {"l2_sector",
                  s.l1_misses ? sector_misses /
                                    static_cast<double>(s.l1_misses)
                              : 0.0},
                 {"tlb", s.tlb_probes
                             ? 1.0 - static_cast<double>(s.tlb_hits) /
                                         static_cast<double>(s.tlb_probes)
                             : 0.0}});
            t->counter("agp_bytes/" + label,
                       {{"host", static_cast<double>(s.host_bytes)},
                        {"l2_read", static_cast<double>(s.l2_read_bytes)}});
        }
    }

    if (!obs_ || !obs_->metrics().enabled())
        return;
    MetricsRegistry &m = obs_->metrics();
    // Batch the frame's registry updates under the scrape lock so a
    // concurrent /metrics render never sees a half-published frame.
    auto reg_guard = m.updateGuard();
    for (size_t i = 0; i < sims_.size(); ++i) {
        const CacheSim &sim = *sims_[i];
        const CacheFrameStats &tot = sim.totals();
        const CacheFrameStats &fr = row.sims[i];
        const MetricLabels ls{{"sim", sim.label()}};
        // Counters are cumulative (consumers diff adjacent rows);
        // everything is *derived* from simulator totals each frame.
        m.counter("accesses", ls).set(tot.accesses);
        m.counter("l1.miss", ls).set(tot.l1_misses);
        m.counter("l2.full_hit", ls).set(tot.l2_full_hits);
        m.counter("l2.partial_hit", ls).set(tot.l2_partial_hits);
        m.counter("l2.full_miss", ls).set(tot.l2_full_misses);
        m.counter("host.bytes", ls).set(tot.host_bytes);
        m.counter("l2.read_bytes", ls).set(tot.l2_read_bytes);
        m.counter("tlb.probe", ls).set(tot.tlb_probes);
        m.counter("tlb.hit", ls).set(tot.tlb_hits);
        m.counter("host.retry", ls).set(tot.host_retries);
        m.counter("host.failure", ls).set(tot.host_failures);
        m.counter("degraded.access", ls).set(tot.degraded_accesses);
        // Gauges carry this frame's instantaneous rates.
        m.gauge("l1.hit_rate", ls).set(fr.l1HitRate());
        m.gauge("l2.full_hit_rate", ls).set(fr.l2FullHitRate());
        m.gauge("tlb.hit_rate", ls).set(fr.tlbHitRate());
        if (sim.config().classify_misses) {
            auto cls = [&](const char *name, const char *cls_name,
                           uint64_t v) {
                MetricLabels l = ls;
                l.push_back({"class", cls_name});
                m.counter(name, l).set(v);
            };
            cls("l1.miss.class", "compulsory", tot.l1_compulsory);
            cls("l1.miss.class", "capacity", tot.l1_capacity);
            cls("l1.miss.class", "conflict", tot.l1_conflict);
            if (sim.l2Classifier()) {
                cls("l2.miss.class", "compulsory", tot.l2_compulsory);
                cls("l2.miss.class", "capacity", tot.l2_capacity);
                cls("l2.miss.class", "conflict", tot.l2_conflict);
            }
        }
        if (const L2TextureCache *l2 = sim.l2()) {
            const Histogram &vh = l2->victimStepsHistogram();
            m.gauge("l2.victim_steps.p50", ls).set(
                static_cast<double>(vh.percentile(0.50)));
            m.gauge("l2.victim_steps.p99", ls).set(
                static_cast<double>(vh.percentile(0.99)));
        }
        if (const HostFetchPath *hp = sim.hostPath()) {
            const Histogram &lh = hp->latencyHistogram();
            m.gauge("host.fetch_us.p50", ls).set(
                static_cast<double>(lh.percentile(0.50)));
            m.gauge("host.fetch_us.p99", ls).set(
                static_cast<double>(lh.percentile(0.99)));
        }
    }
    if (obs_->metricsSink())
        m.writeFrameSnapshot(*obs_->metricsSink(), row.frame);
}

void
MultiConfigRunner::run(const RowCallback &cb)
{
    rows_.clear();

    FanoutSink fanout;
    for (auto &sim : sims_)
        fanout.add(sim.get());
    if (working_sets_)
        fanout.add(working_sets_.get());
    if (push_)
        fanout.add(push_.get());
    for (auto *s : extra_sinks_)
        fanout.add(s);

    // The frame bracket spans gate -> per-frame callback (same thread),
    // so the profiler scope is carried manually rather than via RAII.
    detail::ProfileSlot *frame_prof = nullptr;
    const FrameGate gate = [&frame_prof](int) {
        if (ChromeTraceWriter *t = globalTracer())
            t->begin("frame", "frame");
        if (StageProfiler *p = stageProfiler())
            frame_prof = p->enter("frame");
        return true;
    };
    runAnimationRange(workload_, config_, &fanout, 0,
                      [&](int frame, const FrameStats &fs) {
                          harvestRow(frame, fs, cb);
                          if (ChromeTraceWriter *t = globalTracer())
                              t->end();
                          if (frame_prof != nullptr) {
                              StageProfiler::leave(frame_prof);
                              frame_prof = nullptr;
                          }
                      },
                      gate);
    if (frame_prof != nullptr) // stopped between gate and callback
        StageProfiler::leave(frame_prof);
}

double
MultiConfigRunner::averageHostBytesPerFrame(size_t idx) const
{
    if (rows_.empty())
        return 0.0;
    uint64_t total = 0;
    for (const auto &row : rows_)
        total += row.sims[idx].host_bytes;
    return static_cast<double>(total) / static_cast<double>(rows_.size());
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

namespace {

constexpr uint32_t kRunTag = snapTag("RUN ");

void
saveFrameStats(SnapshotWriter &w, const FrameStats &fs)
{
    w.u64(fs.objects_visible);
    w.u64(fs.triangles_in);
    w.u64(fs.triangles_drawn);
    w.u64(fs.pixels_textured);
    w.u64(fs.texel_accesses);
}

void
loadFrameStats(SnapshotReader &r, FrameStats &fs)
{
    fs.objects_visible = r.u64();
    fs.triangles_in = r.u64();
    fs.triangles_drawn = r.u64();
    fs.pixels_textured = r.u64();
    fs.texel_accesses = r.u64();
}

void
saveWorkingSet(SnapshotWriter &w, const FrameWorkingSet &ws)
{
    w.u64(ws.pixel_refs);
    w.u64(ws.textures_touched);
    w.u64(ws.push_bytes);
    w.u64(ws.loaded_bytes);
    w.u32(static_cast<uint32_t>(ws.l2.size()));
    for (const auto &e : ws.l2) {
        w.u32(e.l2_tile);
        w.u64(e.blocks_touched);
        w.u64(e.blocks_new);
    }
    w.u32(static_cast<uint32_t>(ws.l1.size()));
    for (const auto &e : ws.l1) {
        w.u32(e.l1_tile);
        w.u64(e.tiles_touched);
        w.u64(e.tiles_new);
    }
}

void
loadWorkingSet(SnapshotReader &r, FrameWorkingSet &ws)
{
    ws.pixel_refs = r.u64();
    ws.textures_touched = r.u64();
    ws.push_bytes = r.u64();
    ws.loaded_bytes = r.u64();
    ws.l2.resize(r.u32());
    for (auto &e : ws.l2) {
        e.l2_tile = r.u32();
        e.blocks_touched = r.u64();
        e.blocks_new = r.u64();
    }
    ws.l1.resize(r.u32());
    for (auto &e : ws.l1) {
        e.l1_tile = r.u32();
        e.tiles_touched = r.u64();
        e.tiles_new = r.u64();
    }
}

} // namespace

void
MultiConfigRunner::saveCheckpoint(const std::string &path,
                                  int next_frame) const
{
    SnapshotWriter w(path);
    // Generational commit: the last good checkpoint survives as
    // `<path>.prev` so a torn commit (crash or injected fault) can
    // never leave a resume with nothing valid to load.
    w.keepPrevious(true);
    w.section(kRunTag);

    // Driver configuration fingerprint: resuming under a different
    // resolution/filter/length would not reproduce the straight run.
    w.u32(static_cast<uint32_t>(config_.width));
    w.u32(static_cast<uint32_t>(config_.height));
    w.u8(static_cast<uint8_t>(config_.filter));
    w.u32(static_cast<uint32_t>(config_.frames));
    w.u8(config_.z_prepass ? 1 : 0);

    w.u32(static_cast<uint32_t>(next_frame));

    w.u32(static_cast<uint32_t>(sims_.size()));
    for (size_t i = 0; i < sims_.size(); ++i) {
        w.str(sims_[i]->label());
        const bool dead = i < quarantine_.size() && quarantine_[i].dead;
        w.u8(dead ? 1 : 0);
        if (dead) {
            w.u8(static_cast<uint8_t>(quarantine_[i].error.code));
            w.str(quarantine_[i].error.message);
            w.u32(static_cast<uint32_t>(quarantine_[i].at_frame));
        }
        // Crash-loop state (v5): a resumed run continues the same
        // consecutive-failure count and backoff schedule.
        const SimQuarantine q =
            i < quarantine_.size() ? quarantine_[i] : SimQuarantine{};
        w.u32(q.failures);
        w.u32(static_cast<uint32_t>(q.revive_at_frame + 1));
    }
    for (const auto &sim : sims_)
        sim->save(w);

    w.u8(working_sets_ ? 1 : 0);
    if (working_sets_)
        working_sets_->save(w);
    w.u8(push_ ? 1 : 0);
    if (push_)
        push_->save(w);

    w.u64(rows_.size());
    for (const auto &row : rows_) {
        w.u32(static_cast<uint32_t>(row.frame));
        saveFrameStats(w, row.raster);
        if (row.sims.size() != sims_.size())
            throw Exception(ErrorCode::Corrupt,
                            "saveCheckpoint: row " +
                                std::to_string(row.frame) +
                                " has an inconsistent simulator count");
        for (const auto &s : row.sims)
            s.save(w);
        w.u8(row.working_sets ? 1 : 0);
        if (row.working_sets)
            saveWorkingSet(w, *row.working_sets);
        w.u64(row.push_bytes);
    }

    w.finish();
}

int
MultiConfigRunner::loadCheckpoint(const std::string &path)
{
    SnapshotReader r = openSnapshotGeneration(path);
    r.expectSection(kRunTag, "MultiConfigRunner");

    const uint32_t width = r.u32();
    const uint32_t height = r.u32();
    const uint8_t filter = r.u8();
    const uint32_t frames = r.u32();
    const uint8_t z_prepass = r.u8();
    if (width != static_cast<uint32_t>(config_.width) ||
        height != static_cast<uint32_t>(config_.height) ||
        filter != static_cast<uint8_t>(config_.filter) ||
        frames != static_cast<uint32_t>(config_.frames) ||
        (z_prepass != 0) != config_.z_prepass)
        throw Exception(ErrorCode::VersionMismatch,
                        "loadCheckpoint: snapshot driver configuration "
                        "(resolution/filter/frames) does not match this run");

    const uint32_t next_frame = r.u32();

    const uint32_t sim_count = r.u32();
    if (sim_count != sims_.size())
        throw Exception(ErrorCode::VersionMismatch,
                        "loadCheckpoint: snapshot has " +
                            std::to_string(sim_count) +
                            " simulators, this runner has " +
                            std::to_string(sims_.size()));
    quarantine_.assign(sims_.size(), {});
    for (size_t i = 0; i < sims_.size(); ++i) {
        const std::string label = r.str();
        if (label != sims_[i]->label())
            throw Exception(ErrorCode::VersionMismatch,
                            "loadCheckpoint: simulator " + std::to_string(i) +
                                " is labelled '" + label +
                                "' in the snapshot but '" +
                                sims_[i]->label() + "' here");
        if (r.u8() != 0) {
            quarantine_[i].dead = true;
            quarantine_[i].error.code = static_cast<ErrorCode>(r.u8());
            quarantine_[i].error.message = r.str();
            quarantine_[i].at_frame = static_cast<int>(r.u32());
        }
        quarantine_[i].failures = r.u32();
        quarantine_[i].revive_at_frame = static_cast<int>(r.u32()) - 1;
    }
    for (auto &sim : sims_)
        sim->load(r);

    const uint8_t has_ws = r.u8();
    if ((has_ws != 0) != (working_sets_ != nullptr))
        throw Exception(ErrorCode::VersionMismatch,
                        "loadCheckpoint: working-set collector presence "
                        "differs from the snapshot");
    if (working_sets_)
        working_sets_->load(r);
    const uint8_t has_push = r.u8();
    if ((has_push != 0) != (push_ != nullptr))
        throw Exception(ErrorCode::VersionMismatch,
                        "loadCheckpoint: push-model presence differs from "
                        "the snapshot");
    if (push_)
        push_->load(r);

    const uint64_t row_count = r.u64();
    rows_.clear();
    rows_.reserve(row_count);
    for (uint64_t i = 0; i < row_count; ++i) {
        FrameRow row;
        row.frame = static_cast<int>(r.u32());
        loadFrameStats(r, row.raster);
        row.sims.resize(sims_.size());
        for (auto &s : row.sims)
            s.load(r);
        if (r.u8() != 0) {
            FrameWorkingSet ws;
            loadWorkingSet(r, ws);
            row.working_sets = std::move(ws);
        }
        row.push_bytes = r.u64();
        rows_.push_back(std::move(row));
    }
    r.expectEnd();
    return static_cast<int>(next_frame);
}

// ---------------------------------------------------------------------------
// Supervised run

namespace {

/**
 * Per-simulator isolation: forwards the access stream until the wrapped
 * sink throws, then quarantines it (records the error, stops
 * forwarding) so the remaining configurations finish the run.
 */
class GuardedSink final : public TexelAccessSink
{
  public:
    GuardedSink(TexelAccessSink &inner, SimQuarantine *q,
                const int *current_frame)
        : inner_(inner), q_(q), current_frame_(current_frame)
    {
    }

    void
    bindTexture(TextureId tid) override
    {
        if (q_->dead)
            return;
        try {
            inner_.bindTexture(tid);
        } catch (...) {
            quarantine();
        }
    }

    void
    beginPixel(uint32_t px, uint32_t py) override
    {
        if (q_->dead)
            return;
        try {
            inner_.beginPixel(px, py);
        } catch (...) {
            quarantine();
        }
    }

    void
    access(uint32_t x, uint32_t y, uint32_t mip) override
    {
        if (q_->dead)
            return;
        try {
            inner_.access(x, y, mip);
        } catch (...) {
            quarantine();
        }
    }

    void
    accessQuad(uint32_t x0, uint32_t y0, uint32_t x1, uint32_t y1,
               uint32_t mip) override
    {
        if (q_->dead)
            return;
        try {
            inner_.accessQuad(x0, y0, x1, y1, mip);
        } catch (...) {
            quarantine();
        }
    }

    void
    accessBatch(std::span<const TexelRef> refs) override
    {
        if (q_->dead)
            return;
        try {
            inner_.accessBatch(refs);
        } catch (...) {
            quarantine();
        }
    }

    /** Record @p err and stop forwarding (used for audit violations). */
    void
    quarantineWith(const Error &err)
    {
        q_->dead = true;
        q_->error = err;
        q_->at_frame = *current_frame_;
        ++q_->failures;
        q_->revive_at_frame = -1; // gate reschedules from the new failure
        if (ChromeTraceWriter *t = globalTracer()) {
            t->instant("sim.quarantined", "runner");
            // A quarantine often precedes an operator killing the run:
            // make sure the evidence reaches the file now.
            t->flush();
        }
        flightEvent("sim.quarantined", "resilience",
                    static_cast<double>(*current_frame_));
        flightDump("quarantine");
    }

  private:
    void
    quarantine()
    {
        try {
            throw;
        } catch (const Exception &e) {
            quarantineWith(e.error());
        } catch (const std::exception &e) {
            quarantineWith({ErrorCode::None, e.what()});
        } catch (...) {
            quarantineWith({ErrorCode::None, "unknown exception"});
        }
    }

    TexelAccessSink &inner_;
    SimQuarantine *q_;
    const int *current_frame_;
};

} // namespace

void
MultiConfigRunner::writeManifest(const RunManifest &manifest) const
{
    auto sanitize = [](std::string s) {
        for (char &c : s)
            if (c == ',' || c == '\n' || c == '\r')
                c = ';';
        return s;
    };

    CsvWriter csv(manifest.checkpoint + ".manifest",
                  {"record", "label", "status", "frames_completed",
                   "next_frame", "error_code", "error",
                   "checkpoint_failures"});
    csv.rowStrings({"run", "", runOutcomeName(manifest.outcome),
                    std::to_string(manifest.frames_completed),
                    std::to_string(manifest.next_frame), "", "",
                    std::to_string(manifest.checkpoint_write_failures)});
    for (const auto &s : manifest.sims) {
        csv.rowStrings({"sim", sanitize(s.label),
                        s.quarantined ? "quarantined" : "ok",
                        s.quarantined ? std::to_string(s.quarantined_at_frame)
                                      : "",
                        "",
                        s.quarantined ? errorCodeName(s.error.code) : "",
                        s.quarantined ? sanitize(s.error.message) : "",
                        std::to_string(s.restart_failures)});
    }
    csv.close();
}

RunManifest
MultiConfigRunner::runSupervised(const ResilienceConfig &rc,
                                 const RowCallback &cb)
{
    using Clock = std::chrono::steady_clock;
    using MsDouble = std::chrono::duration<double, std::milli>;

    int start_frame = 0;
    if (rc.resume)
        start_frame = loadCheckpoint(rc.checkpoint_path);
    else {
        rows_.clear();
        quarantine_.assign(sims_.size(), {});
    }
    if (quarantine_.size() != sims_.size())
        quarantine_.assign(sims_.size(), {});

    int current_frame = start_frame;
    std::vector<std::unique_ptr<GuardedSink>> guards;
    guards.reserve(sims_.size());
    FanoutSink fanout;
    for (size_t i = 0; i < sims_.size(); ++i) {
        guards.push_back(std::make_unique<GuardedSink>(
            *sims_[i], &quarantine_[i], &current_frame));
        fanout.add(guards.back().get());
    }
    if (working_sets_)
        fanout.add(working_sets_.get());
    if (push_)
        fanout.add(push_.get());
    for (auto *s : extra_sinks_)
        fanout.add(s);

    const auto run_start = Clock::now();
    auto frame_start = run_start;
    // Frame bracket carried gate -> per-frame callback on one thread.
    detail::ProfileSlot *frame_prof = nullptr;
    RunOutcome outcome = RunOutcome::Completed;
    int next_frame = start_frame;
    uint32_t checkpoints_written = 0;
    int checkpoint_write_failures = 0;
    uint32_t ckpt_backoff = 0; ///< doubling skip multiplier (0 = healthy)
    int ckpt_retry_at = -1;    ///< first frame allowed to retry commits
    bool stop = false;

    // Live telemetry: push /healthz + /runz documents each frame. The
    // scrape thread only reads the pushed strings, never runner state.
    const auto publish_telemetry = [&](const char *status, int frame) {
        if (!obs_ || !obs_->telemetry())
            return;
        size_t dead = 0;
        for (const SimQuarantine &q : quarantine_)
            if (q.dead)
                ++dead;
        JsonWriter h;
        h.beginObject();
        h.kv("status", status);
        h.kv("frame", static_cast<int64_t>(frame));
        h.kv("frames", static_cast<int64_t>(config_.frames));
        h.kv("quarantined", static_cast<uint64_t>(dead));
        h.kv("checkpoint_write_failures",
             static_cast<int64_t>(checkpoint_write_failures));
        h.endObject();
        obs_->telemetry()->publishHealth(h.str());

        JsonWriter r;
        r.beginObject();
        r.kv("mode", "sims");
        r.kv("width", config_.width);
        r.kv("height", config_.height);
        r.kv("frames", static_cast<int64_t>(config_.frames));
        r.kv("frame", static_cast<int64_t>(frame));
        r.key("sims");
        r.beginArray();
        for (size_t i = 0; i < sims_.size(); ++i) {
            r.beginObject();
            r.kv("index", static_cast<uint64_t>(i));
            r.kv("label", sims_[i]->label());
            r.kv("status",
                 quarantine_[i].dead ? "quarantined" : "serving");
            r.kv("failures",
                 static_cast<uint64_t>(quarantine_[i].failures));
            r.endObject();
        }
        r.endArray();
        r.endObject();
        obs_->telemetry()->publishRunz(r.str());
    };

    publish_telemetry("serving", start_frame);

    const FrameGate gate = [&](int frame) {
        current_frame = frame;
        next_frame = frame;
        flightFrame(frame);
        if (cancellationRequested()) {
            outcome = RunOutcome::Cancelled;
            return false;
        }
        if (stop)
            return false;
        if (rc.wall_budget_ms > 0.0 &&
            MsDouble(Clock::now() - run_start).count() > rc.wall_budget_ms) {
            outcome = RunOutcome::BudgetExhausted;
            return false;
        }

        // Crash-loop containment: a quarantined simulator is revived
        // after an exponential frame backoff while its consecutive
        // failure count stays within --restart-limit; one failure past
        // the limit and the quarantine is permanent. Revival is gated
        // on a clean audit so a corrupted simulator never rejoins.
        if (rc.restart_limit > 0) {
            for (size_t i = 0; i < sims_.size(); ++i) {
                SimQuarantine &q = quarantine_[i];
                if (!q.dead || q.failures > rc.restart_limit)
                    continue;
                if (q.revive_at_frame < 0) {
                    const uint32_t shift =
                        std::min<uint32_t>(q.failures > 0 ? q.failures - 1
                                                          : 0,
                                           16);
                    q.revive_at_frame =
                        q.at_frame + static_cast<int>(1u << shift);
                }
                if (frame < q.revive_at_frame)
                    continue;
                try {
                    if (rc.audit != AuditLevel::Off)
                        sims_[i]->audit(rc.audit);
                    q.dead = false;
                    q.revive_at_frame = -1;
                    logInfo("runSupervised: restarted '" +
                            sims_[i]->label() + "' at frame " +
                            std::to_string(frame) + " (failure " +
                            std::to_string(q.failures) + "/" +
                            std::to_string(rc.restart_limit) + ")");
                    if (ChromeTraceWriter *t = globalTracer())
                        t->instant("sim.restarted", "runner");
                } catch (const Exception &e) {
                    // The revival audit failed: count it as another
                    // consecutive failure and back off further.
                    q.error = e.error();
                    q.at_frame = frame;
                    ++q.failures;
                    q.revive_at_frame = -1;
                }
            }
        }

        frame_start = Clock::now();
        if (ChromeTraceWriter *t = globalTracer())
            t->begin("frame", "frame");
        if (StageProfiler *p = stageProfiler())
            frame_prof = p->enter("frame");
        return true;
    };

    const FrameCallback per_frame = [&](int frame, const FrameStats &fs) {
        harvestRow(frame, fs, cb);
        if (ChromeTraceWriter *t = globalTracer())
            t->end();
        if (frame_prof != nullptr) {
            StageProfiler::leave(frame_prof);
            frame_prof = nullptr;
        }
        next_frame = frame + 1;

        // Invariant audits at the frame boundary: a violating simulator
        // is quarantined (its state can no longer be trusted) and the
        // healthy configurations continue.
        if (rc.audit != AuditLevel::Off) {
            for (size_t i = 0; i < sims_.size(); ++i) {
                if (quarantine_[i].dead)
                    continue;
                try {
                    sims_[i]->audit(rc.audit);
                } catch (const Exception &e) {
                    guards[i]->quarantineWith(e.error());
                }
            }
        }

        // A clean frame (alive, no failure recorded this frame) resets
        // the consecutive-failure count, so only genuine crash loops
        // accumulate toward --restart-limit.
        for (auto &q : quarantine_)
            if (!q.dead && q.failures > 0 && q.at_frame != frame)
                q.failures = 0;

        if (rc.frame_deadline_ms > 0.0 &&
            MsDouble(Clock::now() - frame_start).count() >
                rc.frame_deadline_ms) {
            outcome = RunOutcome::DeadlineExceeded;
            stop = true;
        }

        if (!rc.checkpoint_path.empty() && rc.checkpoint_every > 0 &&
            static_cast<uint32_t>(frame + 1) % rc.checkpoint_every == 0 &&
            frame + 1 >= ckpt_retry_at) {
            try {
                saveCheckpoint(rc.checkpoint_path, frame + 1);
                ++checkpoints_written;
                ckpt_backoff = 0;
                ckpt_retry_at = -1;
                if (ChromeTraceWriter *t = globalTracer())
                    t->instant("checkpoint.saved", "runner");
                // Crash-path test hook: die *after* the checkpoint
                // committed, leaving exactly the state a real crash
                // would.
                if (rc.die_after_checkpoints > 0 &&
                    checkpoints_written >= rc.die_after_checkpoints)
                    std::raise(SIGKILL);
            } catch (const Exception &e) {
                // Checkpointing is an optimisation, not a correctness
                // requirement: degrade to skip-with-backoff (the next
                // attempt waits exponentially more checkpoint periods)
                // instead of aborting a healthy simulation.
                ++checkpoint_write_failures;
                ckpt_backoff =
                    std::min<uint32_t>(ckpt_backoff ? ckpt_backoff * 2 : 1,
                                       64);
                ckpt_retry_at =
                    frame + 1 +
                    static_cast<int>(ckpt_backoff *
                                     std::max<uint32_t>(1,
                                                        rc.checkpoint_every));
                logWarn("runSupervised: checkpoint write failed (" +
                        e.error().describe() + "); retrying at frame " +
                        std::to_string(ckpt_retry_at));
                if (obs_) {
                    auto guard = obs_->metrics().updateGuard();
                    obs_->metrics()
                        .counter("checkpoint.write_failed")
                        .inc();
                }
                flightEvent("checkpoint.write_failed", "resilience");
            }
        }

        publish_telemetry("serving", frame + 1);
    };

    runAnimationRange(workload_, config_, &fanout, start_frame, per_frame,
                      gate);
    if (frame_prof != nullptr) // stopped between gate and callback
        StageProfiler::leave(frame_prof);

    if (outcome == RunOutcome::DeadlineExceeded ||
        outcome == RunOutcome::BudgetExhausted)
        flightDump("watchdog");

    if (outcome != RunOutcome::Completed) {
        // Interrupted (SIGINT/SIGTERM, deadline, budget): make sure
        // every telemetry row/event up to the last complete frame is on
        // disk even if the process is killed before close(). The
        // metrics JSONL sink flushes per line already; the trace buffer
        // is the one that loses data.
        if (obs_)
            obs_->flush();
        else if (ChromeTraceWriter *t = globalTracer())
            t->flush();
    }

    RunManifest manifest;
    manifest.outcome = outcome;
    manifest.frames_completed = static_cast<int>(rows_.size());
    manifest.next_frame = next_frame;
    manifest.sims.reserve(sims_.size());
    for (size_t i = 0; i < sims_.size(); ++i)
        manifest.sims.push_back({sims_[i]->label(), quarantine_[i].dead,
                                 quarantine_[i].at_frame,
                                 quarantine_[i].error,
                                 quarantine_[i].failures});
    if (!rc.checkpoint_path.empty()) {
        try {
            saveCheckpoint(rc.checkpoint_path, next_frame);
            manifest.checkpoint = rc.checkpoint_path;
        } catch (const Exception &e) {
            // The results are already in rows_/the caller's CSVs; a
            // final checkpoint that cannot land must not erase them.
            ++checkpoint_write_failures;
            logWarn("runSupervised: final checkpoint write failed (" +
                    e.error().describe() + ")");
            flightDump("io");
            manifest.checkpoint = rc.checkpoint_path;
        }
        manifest.checkpoint_write_failures = checkpoint_write_failures;
        try {
            writeManifest(manifest);
        } catch (const Exception &e) {
            logWarn("runSupervised: manifest write failed (" +
                    e.error().describe() + ")");
        }
    }
    manifest.checkpoint_write_failures = checkpoint_write_failures;
    publish_telemetry(runOutcomeName(outcome), next_frame);
    return manifest;
}

} // namespace mltc
