/**
 * @file
 * Multi-tenant serving runner: K independent camera streams share one
 * L2 texture cache.
 *
 * Each tenant stream renders its own workload (Village / City at its
 * own camera phase and filter mode, or the synthetic "thrasher" that
 * streams through twice the L2 capacity every round) into a private
 * L1, and all L1 misses meet in a single shared L2TextureCache whose
 * share policy is Shared (free-for-all), Static (hard partitions) or
 * Utility (online quota repartitioning from per-stream reuse-distance
 * miss-ratio curves).
 *
 * Determinism model — record in parallel, replay in order:
 *
 *  - a round is one frame per stream. Rasterization is side-effect
 *    free per stream, so rounds record each stream's texel access
 *    stream concurrently on a SweepExecutor (each leg writes only its
 *    own op buffer);
 *  - the shared L2 is mutable state, so the recorded ops are replayed
 *    into it strictly serially in stream order. The replayed byte
 *    stream — and therefore every counter, CSV and checkpoint — is
 *    invariant to --jobs.
 *
 * Robustness mirrors MultiConfigRunner: a stream that throws is
 * quarantined (its shared-L2 blocks are released to the survivors and
 * it stops participating), rounds checkpoint to a crash-safe snapshot,
 * and overload is shed gracefully — a stream exceeding its host
 * bandwidth budget gets an LOD bias applied during replay (the PR-1
 * MIP-fallback idea turned into admission control) instead of stalling
 * the other tenants.
 */
#ifndef MLTC_SIM_MULTI_STREAM_RUNNER_HPP
#define MLTC_SIM_MULTI_STREAM_RUNNER_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/cache_sim.hpp"
#include "host/bandwidth.hpp"
#include "obs/reuse_profiler.hpp"
#include "raster/sampler.hpp"
#include "sim/multi_config_runner.hpp"
#include "sim/resilience.hpp"
#include "workload/workload.hpp"

namespace mltc {

class Observability;
class SloTracker;

/** Name of the synthetic L2-thrashing workload. */
inline constexpr const char *kThrasherWorkload = "thrasher";

/** One tenant stream's configuration. */
struct StreamSpec
{
    /** Workload name ("village", "city" or kThrasherWorkload). */
    std::string workload = "village";
    FilterMode filter = FilterMode::Bilinear;
    /** Camera phase offset in frames (staggers the animation). */
    uint32_t phase = 0;
    /** Per-stream seed (procedural content / future fault streams). */
    uint64_t seed = 0;
    /**
     * Test hook: quarantine this stream with a Transient fault at the
     * start of this round (-1 = never). Round 0 means the stream never
     * contributes a single access.
     */
    int fail_at_round = -1;
};

/** Whole-run configuration. */
struct MultiStreamConfig
{
    int width = 320;
    int height = 240;
    /** Rounds to run; one round = one frame per stream. */
    uint32_t rounds = 16;
    uint64_t l1_bytes = 16ull << 10;
    uint64_t l2_bytes = 1ull << 20;
    uint32_t l2_tile = 16;
    uint32_t l1_tile = 4;
    L2SharePolicy share = L2SharePolicy::Shared;
    /** Per-stream host budget per round in bytes (0 = unlimited). */
    uint64_t stream_budget_bytes = 0;
    /** Re-derive Utility quotas every N rounds (0 = never). */
    uint32_t repartition_every = 8;
    /** Recording threads (<= 1 records serially; replay is always serial). */
    unsigned jobs = 1;
    /** Run the 3C classifiers beside every stream's caches. */
    bool classify_misses = false;
    /**
     * Test hook: sleep this long at the end of every round so an
     * external scraper reliably lands mid-run. Pure wall-clock — no
     * effect on any output byte — and deliberately excluded from the
     * checkpoint fingerprint.
     */
    uint32_t round_sleep_ms = 0;
    std::vector<StreamSpec> streams;
};

/**
 * One recorded texel-stream operation. Rounds record each stream's
 * access stream in parallel and replay the buffers serially into the
 * shared L2 (see file comment); the LOD bias the bandwidth governor
 * assigns is applied during replay, not recording.
 */
struct RecordedOp
{
    uint32_t a = 0, b = 0, c = 0, d = 0;
    uint8_t kind = 0; ///< 0 bind, 1 beginPixel, 2 access, 3 quad
    uint8_t mip = 0;
};

/** One stream's per-round report row. */
struct StreamRoundRow
{
    uint32_t round = 0;
    uint64_t accesses = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_full_hits = 0;
    uint64_t l2_partial_hits = 0;
    uint64_t l2_full_misses = 0;
    uint64_t host_bytes = 0;
    uint64_t cross_evictions = 0; ///< blocks this stream stole (cumulative)
    uint64_t quota_blocks = 0;
    uint64_t alloc_blocks = 0;
    uint32_t lod_bias = 0;
    uint8_t noisy = 0;       ///< flagged by the noisy-neighbor detector
    uint8_t quarantined = 0; ///< 1 on the stream's final (fault) row
};

/** Per-stream record in the run manifest. */
struct StreamManifestEntry
{
    std::string name; ///< "<index>:<workload>/<filter>"
    bool quarantined = false;
    Error error;           ///< meaningful when quarantined
    uint32_t at_round = 0; ///< round the quarantine hit
};

/** Outcome summary for a whole multi-stream run. */
struct MultiStreamManifest
{
    RunOutcome outcome = RunOutcome::Completed;
    uint32_t rounds_completed = 0;
    uint32_t next_round = 0;
    std::string checkpoint; ///< path written, empty if none
    int checkpoint_write_failures = 0; ///< commits skipped on I/O failure
    std::vector<StreamManifestEntry> streams;

    size_t quarantinedCount() const;
};

/**
 * The runner. Construct, optionally attach Observability, call run().
 */
class MultiStreamRunner
{
  public:
    /**
     * Build every stream (workloads, private L1 sims, shared L2).
     * @throws std::invalid_argument on an empty stream list, an
     *         unknown workload name or an invalid share configuration.
     */
    explicit MultiStreamRunner(const MultiStreamConfig &config);

    ~MultiStreamRunner();

    MultiStreamRunner(const MultiStreamRunner &) = delete;
    MultiStreamRunner &operator=(const MultiStreamRunner &) = delete;

    const MultiStreamConfig &config() const { return cfg_; }

    /** Attach metrics/tracing sinks (null detaches; not owned). */
    void setObservability(Observability *obs) { obs_ = obs; }

    /**
     * Run (or resume) the configured rounds under the given
     * supervision policy. Returns the manifest; per-stream faults are
     * quarantined into it, never thrown.
     * @throws mltc::Exception on checkpoint I/O failures and on
     *         VersionMismatch / Corrupt resume snapshots.
     */
    MultiStreamManifest run(const ResilienceConfig &res);

    uint32_t streamCount() const
    {
        return static_cast<uint32_t>(streams_.size());
    }

    /** The shared L2. */
    const L2TextureCache &l2() const { return *l2_; }

    /** Stream @p i's private simulator. */
    const CacheSim &sim(uint32_t i) const { return *streams_[i]->sim; }

    /** Stream @p i's display name ("<index>:<workload>/<filter>"). */
    const std::string &streamName(uint32_t i) const
    {
        return streams_[i]->name;
    }

    /** Rounds stream @p i spent over its host bandwidth budget. */
    uint32_t governorOverBudgetRounds(uint32_t i) const
    {
        return governor_.overBudgetRounds(i);
    }

    /** Stream @p i's reuse-distance tracker (L2-block granularity). */
    const ReuseDistanceTracker &tracker(uint32_t i) const
    {
        return *streams_[i]->tracker;
    }

    /** Per-round rows harvested so far for stream @p i. */
    const std::vector<StreamRoundRow> &rows(uint32_t i) const
    {
        return rows_[i];
    }

    /** Column names of writeStreamCsv(). */
    static std::vector<std::string> csvColumns();

    /**
     * Write stream @p i's per-round rows to @p path. The bytes depend
     * only on the replayed access streams, so they are identical for
     * any --jobs value and across a SIGKILL resume.
     * @throws mltc::Exception (Io) on write failure.
     */
    void writeStreamCsv(uint32_t i, const std::string &path) const;

  private:
    /** Everything one tenant stream owns. */
    struct StreamRuntime
    {
        StreamSpec spec;
        std::string name;
        std::unique_ptr<Workload> workload; ///< null for the thrasher
        std::unique_ptr<TextureManager> thrasher_textures;
        TextureId thrasher_tid = 0;
        uint32_t thrasher_grid = 0;   ///< thrasher texture, blocks per edge
        uint64_t thrasher_cursor = 0; ///< next block index to touch
        std::unique_ptr<CacheSim> sim;
        std::unique_ptr<ReuseDistanceTracker> tracker;
        std::vector<RecordedOp> pending; ///< this round's recorded ops
        bool dead = false;
        Error error;
        uint32_t quarantined_at = 0;

        TextureManager &textures() const
        {
            return workload ? *workload->textures : *thrasher_textures;
        }
    };

    void buildStream(uint32_t index, const StreamSpec &spec);
    void recordRound(uint32_t round);
    void recordThrasher(StreamRuntime &st);
    void replayStream(uint32_t index);
    void harvestRow(uint32_t index, uint32_t round);
    void quarantineStream(uint32_t index, uint32_t round, Error error);
    void repartition(uint32_t round);
    void publishRound(uint32_t round);
    void evaluateSlo(uint32_t round);
    void publishTelemetry(const char *status, uint32_t next_round,
                          int checkpoint_write_failures);
    void saveCheckpoint(const std::string &path, uint32_t next_round) const;
    uint32_t loadCheckpoint(const std::string &path);
    MultiStreamManifest buildManifest(RunOutcome outcome,
                                      uint32_t rounds_completed,
                                      uint32_t next_round) const;

    MultiStreamConfig cfg_;
    std::vector<std::unique_ptr<StreamRuntime>> streams_;
    std::unique_ptr<L2TextureCache> l2_;
    BandwidthGovernor governor_;
    std::vector<std::vector<StreamRoundRow>> rows_;
    Observability *obs_ = nullptr;
    std::unique_ptr<SloTracker> slo_;
    /** Latest noisy-neighbor verdict per stream (repartition cadence);
     *  used to attribute SLO violations to thrash vs overload. */
    std::vector<uint8_t> last_noisy_;
};

} // namespace mltc

#endif // MLTC_SIM_MULTI_STREAM_RUNNER_HPP
