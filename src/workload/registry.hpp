/**
 * @file
 * Name-based workload lookup for the bench and example drivers.
 */
#ifndef MLTC_WORKLOAD_REGISTRY_HPP
#define MLTC_WORKLOAD_REGISTRY_HPP

#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace mltc {

/**
 * Names of the paper's workloads ("village", "city") — the set every
 * paper-table bench iterates over.
 */
std::vector<std::string> workloadNames();

/** All workloads including extensions ("terrain"). */
std::vector<std::string> allWorkloadNames();

/**
 * Build a workload by name ("village", "city", "terrain").
 * @throws std::invalid_argument for unknown names.
 */
Workload buildWorkload(const std::string &name);

} // namespace mltc

#endif // MLTC_WORKLOAD_REGISTRY_HPP
